"""Setuptools shim.

The sandboxed environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs an egg-link instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""The shared search kernel: fingerprint canonicality, pruning
soundness, strategy behaviour, and the memo-on/off corpus property.

The load-bearing guarantee is the last one: fingerprint memoisation,
subsumption and chain compression may only change how *fast* the search
converges, never what it concludes — the full corpus must produce
byte-identical verdicts with memoisation enabled and disabled, on both
backends.
"""

import os

from repro.core import NAT, PrimApp, SNum, SOpq, PLt, HConst
from repro.core.heap import Heap
from repro.core.machine import State
from repro.core.syntax import Loc
from repro.driver.runner import RunConfig, run_corpus
from repro.search import (
    CoreFingerprinter,
    Fingerprint,
    ScvFingerprinter,
    SearchKernel,
)
from repro.search.intern import Interner
from repro.search.kernel import KernelStats
from repro.scv.heap import UConc, UHeap, UOpq
from repro.scv.machine import MEnv, SState


def _core_state(loc_name: str, store, extra=None) -> State:
    entries = {Loc(loc_name): store}
    if extra:
        entries.update(extra)
    # A non-answer control so refinements stay subsumption-comparable.
    return State(PrimApp("zero?", (Loc(loc_name),), "t"), Heap(entries))


class TestCoreFingerprints:
    def test_stable_across_location_renaming(self):
        fp = CoreFingerprinter()
        a = fp(_core_state("L5", SNum(1)))
        b = fp(_core_state("L9", SNum(1)))
        assert a == b

    def test_distinguishes_different_values(self):
        fp = CoreFingerprinter()
        assert fp(_core_state("L5", SNum(1))) != fp(_core_state("L5", SNum(2)))

    def test_ignores_unreachable_garbage(self):
        fp = CoreFingerprinter()
        a = fp(_core_state("L5", SNum(1)))
        b = fp(_core_state("L5", SNum(1), extra={Loc("L77"): SNum(99)}))
        assert a == b

    def test_opaque_locations_keep_their_label_identity(self):
        # o:-locations are label-derived and re-used by the Opq rule; a
        # structurally identical heap at a plain location is *not* the
        # same state.
        fp = CoreFingerprinter()
        a = fp(_core_state("o:n", SOpq(NAT)))
        b = fp(_core_state("L5", SOpq(NAT)))
        assert a != b

    def test_refinements_are_erased_from_the_shape(self):
        fp = CoreFingerprinter()
        plain = fp(_core_state("L5", SOpq(NAT)))
        refined = fp(_core_state("L5", SOpq(NAT, (PLt(HConst(3)),))))
        assert plain.shape == refined.shape
        assert plain != refined

    def test_subsumption_is_pointwise_subset(self):
        fp = CoreFingerprinter()
        plain = fp(_core_state("L5", SOpq(NAT)))
        refined = fp(_core_state("L5", SOpq(NAT, (PLt(HConst(3)),))))
        assert refined.subsumed_by(plain)  # weaker covers stronger
        assert not plain.subsumed_by(refined)


class TestScvFingerprints:
    def _state(self, loc_name: str, store) -> SState:
        heap = UHeap({Loc(loc_name): store}).frozen()
        # Non-empty continuation so the state is not an answer.
        from repro.scv.machine import KSet

        return SState(Loc(loc_name), MEnv({}), heap, (KSet(Loc(loc_name)),))

    def test_stable_across_location_renaming(self):
        fp = ScvFingerprinter()
        assert fp(self._state("u3", UConc(5))) == fp(self._state("u8", UConc(5)))

    def test_distinguishes_tag_narrowings(self):
        fp = ScvFingerprinter()
        wide = fp(self._state("u3", UOpq()))
        narrow = fp(self._state("u3", UOpq(frozenset({"integer"}))))
        assert wide != narrow

    def test_answers_fold_refinements_into_the_shape(self):
        # Answer states are deduplicated exactly, never subsumed: their
        # refinement sets are what counterexample models are read from.
        fp = ScvFingerprinter()
        heap = UHeap({Loc("u3"): UConc(5)}).frozen()
        answer = SState(Loc("u3"), MEnv({}), heap, ())
        assert answer.is_answer
        assert fp(answer).refs == ()


class TestInterner:
    def test_structurally_equal_tuples_share_identity(self):
        it = Interner()
        a = it.intern((1, ("x", 2), frozenset({3})))
        b = it.intern((1, ("x", 2), frozenset({3})))
        assert a is b
        assert it.hits > 0


def _toy_kernel(step, **kw):
    ident = lambda s: Fingerprint(s, ())  # noqa: E731
    kw.setdefault("fingerprint", ident)
    return SearchKernel(step, **kw)


class TestKernelBehaviour:
    def test_dedup_collapses_the_diamond(self):
        # step(n) branches to two copies of n+1: an exponential tree
        # with only `depth` distinct states.
        def step(n):
            return None if n >= 10 else [n + 1, n + 1]

        stats = KernelStats()
        k = _toy_kernel(step, compress=False, stats=stats)
        answers = list(k.run(0))
        assert answers == [10]
        assert stats.states_explored == 11
        assert stats.pruned == 10

    def test_without_fingerprint_the_tree_is_exponential(self):
        def step(n):
            return None if n >= 6 else [n + 1, n + 1]

        stats = KernelStats()
        k = SearchKernel(step, fingerprint=None, stats=stats)
        answers = list(k.run(0))
        assert len(answers) == 2 ** 6
        assert stats.pruned == 0

    def test_chain_compression_folds_deterministic_runs(self):
        def step(n):
            return None if n >= 50 else [n + 1]

        stats = KernelStats()
        k = _toy_kernel(step, stats=stats)
        assert list(k.run(0)) == [50]
        assert stats.states_explored == 1
        assert stats.chained == 50

    def test_chain_limit_bounds_unproductive_loops(self):
        # A deterministic cycle: without the cap (or fingerprints at cap
        # boundaries) this would never terminate.
        def step(n):
            return [(n + 1) % 7]

        stats = KernelStats()
        k = _toy_kernel(step, chain_limit=3, stats=stats)
        assert list(k.run(0)) == []
        assert stats.pruned >= 1

    def test_strategies_find_the_same_answers(self):
        def step(state):
            n, path = state
            if n >= 3:
                return None
            return [(n + 1, path + "L"), (n + 1, path + "R")]

        found = {}
        for strategy in ("bfs", "dfs", "depth"):
            k = SearchKernel(step, strategy=strategy, fingerprint=None)
            found[strategy] = sorted(p for _, p in k.run((0, "")))
        assert found["bfs"] == found["dfs"] == found["depth"]
        assert len(found["bfs"]) == 8

    def test_unknown_strategy_is_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SearchKernel(lambda s: None, strategy="astar")

    def test_budget_truncates(self):
        def step(n):
            return [n + 1, -n]  # never an answer, never repeats

        stats = KernelStats()
        k = SearchKernel(step, fingerprint=None, max_states=40, stats=stats)
        assert list(k.run(1)) == []
        assert stats.truncated is True
        assert stats.states_explored == 40


class TestGlobalShadowing:
    """A ``set!`` on a *primitive* name writes a frozen-base ``g…``
    location into the heap overlay.  Fingerprinting treats globals as
    per-program constants (names-only cached frame token); that
    shortcut must be revoked on such paths or states differing only in
    the rebound primitive collide and reachable counterexamples are
    pruned (regression: the memoised run used to report ``safe`` here
    while ``--no-memo`` found the division by zero)."""

    SOURCE = (
        "(define (go y) (if (zero? y) (void)"
        " (set! quotient (lambda (a b) 0))))\n"
        "(define (use z) (if (zero? z) (quotient 1 0) 0))\n"
        "(begin (go •) (use •))"
    )

    def test_set_bang_on_a_primitive_is_not_fingerprint_invisible(self):
        from repro.driver.runner import verify_source

        results = {
            memo: verify_source(
                self.SOURCE, backend="scv",
                config=RunConfig(timeout_s=30.0, memo=memo),
            ).status
            for memo in (True, False)
        }
        assert results[True] == results[False] == "counterexample"

    def test_set_on_a_global_marks_the_heap(self):
        from repro.core.syntax import Loc
        from repro.scv.heap import UConc, UHeap

        base = UHeap().set(Loc("g0"), UConc(1)).frozen()
        assert not base.has_global_writes  # freezing resets the flag
        assert base.set(Loc("u1"), UConc(2)).has_global_writes is False
        assert base.set(Loc("g0"), UConc(3)).has_global_writes is True


class TestMemoOnOffProperty:
    """Full-corpus verdicts must be byte-identical with memoisation
    enabled vs disabled (the pruning-is-invisible property)."""

    def _verdicts(self, memo: bool):
        jobs = min(4, os.cpu_count() or 1)
        cfg = RunConfig(timeout_s=60.0, jobs=jobs, memo=memo)
        report = run_corpus(config=cfg, backend="both")
        return {
            (r.name, r.backend): r.status for r in report.results
        }, report

    def test_full_corpus_verdicts_identical(self):
        with_memo, report_on = self._verdicts(memo=True)
        without_memo, report_off = self._verdicts(memo=False)
        assert with_memo == without_memo
        # And the memoised run must actually be doing its job.
        t_on = report_on.totals()
        t_off = report_off.totals()
        assert t_on["states_explored"] < t_off["states_explored"]
        # Since the incremental contexts (schema v5), repeated proof
        # queries are answered on warm solver scopes rather than through
        # cached one-shot solves, so the cache-hit count is no longer a
        # memo-on signal — incremental reuse is.
        assert t_on["solver_incremental"] > t_on["solver_fresh_solves"]
        assert t_off["solver_cache_hits"] == 0

"""The verification service (repro.serve) and this PR's bugfixes:

* **protocol** — request validation rejects malformed bodies with
  clear messages instead of crashing a worker;
* **queue** — the disk-backed job queue survives restarts, requeues a
  crashed job exactly once, and terminates it with clean ``error``
  rows when the retry budget is spent;
* **HTTP end-to-end** — a submitted program round-trips through a
  worker process and its rows match a batch run byte-for-byte outside
  the volatile fields; a re-submitted program is answered
  synchronously from the store; an edited module re-verifies only its
  cone;
* **crash/retry** — a worker SIGKILLed mid-job is replaced and the job
  retried; a second kill yields well-formed error rows either way;
* **deadline flag** — a caller that cannot arm SIGALRM gets
  ``deadline_enforced: false`` on the row plus a one-time warning,
  instead of a silently unbounded run;
* **env/flag numerics** — garbage in ``REPRO_SHARDS`` /
  ``REPRO_SERVE_PORT`` / ``--port`` exits 2 with a clear message;
* **solver flush** — buffered solver entries survive worker teardown,
  SIGTERM, and concurrent compaction.
"""

import json
import multiprocessing
import os
import signal
import threading
import time
import urllib.error
import urllib.request
import warnings
from dataclasses import asdict

import pytest

from repro.driver import backends
from repro.driver.__main__ import main as cli_main
from repro.driver.corpus import get_program
from repro.driver.report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_ERROR,
    VOLATILE_ROW_FIELDS,
)
from repro.driver.runner import RunConfig, verify_source
from repro.serve import MAX_ATTEMPTS, JobQueue, ProtocolError, ServeApp
from repro.serve.app import make_server
from repro.serve.protocol import parse_verify_request
from repro.serve.workers import job_run_config, worker_main
from repro.smt.errors import Result
from repro.smt.terms import Eq, IntConst, Var
from repro.store import SolverStore
from repro.store.solver import flush_all_stores
from repro.store.verdicts import check_entries, get_store

CHAIN = get_program("modules-chain-div").source
TRIPLE = get_program("modules-triple-pipeline").source


def _stable(row: dict) -> dict:
    return {k: v for k, v in row.items() if k not in VOLATILE_ROW_FIELDS}


def _base_config(store_root: str) -> dict:
    base = asdict(RunConfig(timeout_s=60.0))
    base["store_dir"] = store_root
    return base


class _Server:
    """An in-process server on an ephemeral port, plus HTTP helpers."""

    def __init__(self, tmp_path, workers=2):
        self.root = str(tmp_path / "store")
        self.app = ServeApp(
            store_root=self.root,
            base_config=_base_config(self.root),
            workers=workers,
        )
        self.httpd = make_server(self.app)
        threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        ).start()
        self.app.start()
        host, port = self.httpd.server_address[:2]
        self.url = f"http://{host}:{port}"

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        self.app.pool.drain(15)

    def request(self, path, body=None):
        if body is None:
            req = urllib.request.Request(self.url + path)
        else:
            req = urllib.request.Request(
                self.url + path,
                data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.load(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, json.load(exc)

    def wait_done(self, job_id, timeout=120.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            code, payload = self.request(f"/v1/jobs/{job_id}")
            assert code == 200
            if payload["job"]["state"] == "done":
                return payload["job"]
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")


@pytest.fixture
def server(tmp_path):
    srv = _Server(tmp_path)
    try:
        yield srv
    finally:
        srv.close()


class TestProtocol:
    def test_minimal_request_gets_defaults(self):
        req = parse_verify_request({"source": "(+ 1 2)"})
        assert req["name"] == "<request>"
        assert req["kind"] == "?"
        assert req["backend"] == "core"
        assert req["config"] == {}

    def test_missing_source_rejected(self):
        with pytest.raises(ProtocolError, match="source"):
            parse_verify_request({"name": "x"})

    def test_unknown_body_key_rejected(self):
        with pytest.raises(ProtocolError, match="sauce"):
            parse_verify_request({"source": "1", "sauce": "2"})

    def test_bad_backend_and_kind_rejected(self):
        with pytest.raises(ProtocolError, match="backend"):
            parse_verify_request({"source": "1", "backend": "gpu"})
        with pytest.raises(ProtocolError, match="kind"):
            parse_verify_request({"source": "1", "kind": "mystery"})

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ProtocolError, match="jobs"):
            # Orchestration knobs are forced server-side, not settable.
            parse_verify_request({"source": "1", "config": {"jobs": 4}})

    def test_bool_is_not_an_int(self):
        with pytest.raises(ProtocolError, match="max_states"):
            parse_verify_request(
                {"source": "1", "config": {"max_states": True}}
            )

    def test_oversized_source_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            parse_verify_request({"source": "x" * ((1 << 20) + 1)})


class TestJobQueue:
    def test_lifecycle_and_persistence(self, tmp_path):
        q = JobQueue(str(tmp_path / "jobs"))
        job = q.submit({"source": "(+ 1 2)", "name": "p", "kind": "?",
                        "backend": "core", "config": {}})
        assert job.state == "queued"
        assert os.path.exists(os.path.join(q.root, f"{job.id}.json"))
        claimed = q.claim()
        assert claimed.id == job.id and claimed.attempts == 1
        q.complete(job.id, [{"status": "safe"}])
        got = q.get(job.id)
        assert got.state == "done" and got.rows == [{"status": "safe"}]
        with open(os.path.join(q.root, f"{job.id}.json")) as fh:
            assert json.load(fh)["state"] == "done"

    def test_crash_requeues_once_then_errors(self, tmp_path):
        q = JobQueue(str(tmp_path / "jobs"))
        job = q.submit({"source": "(+ 1 2)", "name": "p", "kind": "?",
                        "backend": "both", "config": {}})
        q.claim()
        assert q.crash(job.id, detail="kill 1") == "requeued"
        assert q.get(job.id).state == "queued"
        q.claim()
        assert q.get(job.id).attempts == MAX_ATTEMPTS
        assert q.crash(job.id, detail="kill 2") == "errored"
        done = q.get(job.id)
        assert done.state == "done"
        # One clean error row per engine of the "both" selection.
        assert [r["backend"] for r in done.rows] == ["core", "scv"]
        assert all(r["status"] == STATUS_ERROR for r in done.rows)
        # Crashing a finished job is ignored, not double-counted.
        assert q.crash(job.id, detail="late") == "ignored"

    def test_recover_requeues_running_and_keeps_order(self, tmp_path):
        root = str(tmp_path / "jobs")
        q = JobQueue(root)
        first = q.submit({"source": "1", "name": "a", "kind": "?",
                          "backend": "core", "config": {}})
        second = q.submit({"source": "2", "name": "b", "kind": "?",
                           "backend": "core", "config": {}})
        q.claim()  # first goes running; pretend the server dies here
        q2 = JobQueue(root)
        summary = q2.recover()
        assert summary == {"recovered": 2, "requeued": 1, "errored": 0}
        # The interrupted job already spent attempt 1; it retries first.
        assert q2.claim().id == first.id
        assert q2.claim().id == second.id

    def test_recover_errors_job_out_of_retries(self, tmp_path):
        root = str(tmp_path / "jobs")
        q = JobQueue(root)
        job = q.submit({"source": "1", "name": "a", "kind": "?",
                        "backend": "scv", "config": {}})
        q.claim()
        q.crash(job.id, detail="kill 1")
        q.claim()  # attempts == MAX_ATTEMPTS, running again
        q2 = JobQueue(root)
        summary = q2.recover()
        assert summary["errored"] == 1
        done = q2.get(job.id)
        assert done.state == "done"
        assert done.rows[0]["status"] == STATUS_ERROR


class TestServeHTTP:
    def test_cold_job_matches_batch_run(self, server, tmp_path):
        code, resp = server.request(
            "/v1/verify",
            {"source": CHAIN, "name": "chain", "kind": "buggy",
             "backend": "scv"},
        )
        assert code == 202 and resp["job"]["state"] == "queued"
        job = server.wait_done(resp["job"]["id"])
        assert not job["warm"]
        (row,) = job["rows"]
        assert row["status"] == STATUS_COUNTEREXAMPLE
        batch = verify_source(
            CHAIN, name="chain", kind="buggy",
            config=RunConfig(timeout_s=60.0,
                             store_dir=str(tmp_path / "batch-store")),
            backend="scv",
        )
        assert _stable(row) == _stable(asdict(batch))

    def test_resubmission_is_warm_and_synchronous(self, server):
        body = {"source": CHAIN, "name": "chain", "backend": "scv"}
        cold = server.wait_done(
            server.request("/v1/verify", body)[1]["job"]["id"]
        )
        code, resp = server.request("/v1/verify", body)
        assert code == 200  # answered in the POST, no queueing
        warm = resp["job"]
        assert warm["state"] == "done" and warm["warm"]
        (row,) = warm["rows"]
        assert row["store_hits"] == 2 and row["store_misses"] == 0
        assert row["modules_reverified"] == 0
        assert _stable(row) == _stable(cold["rows"][0])

    def test_edited_module_reverifies_only_its_cone(self, server):
        server.wait_done(server.request(
            "/v1/verify", {"source": TRIPLE, "backend": "scv"}
        )[1]["job"]["id"])
        edited = TRIPLE.replace("(dec (dec n))", "(dec (dec (dec n)))")
        job = server.wait_done(server.request(
            "/v1/verify", {"source": edited, "backend": "scv"}
        )[1]["job"]["id"])
        (row,) = job["rows"]
        # m1 replays from the store; only m2 and m3 recompute.
        assert row["store_hits"] == 1
        assert row["modules_reverified"] == 2

    def test_concurrent_jobs_share_the_store_cleanly(self, server):
        ids = [
            server.request("/v1/verify", body)[1]["job"]["id"]
            for body in (
                {"source": CHAIN, "backend": "both"},
                {"source": TRIPLE, "backend": "scv"},
            )
        ]
        jobs = [server.wait_done(jid) for jid in ids]
        assert [len(j["rows"]) for j in jobs] == [2, 1]
        # Two workers published shards concurrently: nothing corrupted.
        outcome = check_entries(get_store(server.root))
        assert outcome["checked"] > 0
        assert outcome["matched"] == outcome["checked"]

    def test_bad_requests_get_clean_errors(self, server):
        code, resp = server.request("/v1/verify", {"nope": 1})
        assert code == 400 and "source" in resp["error"]
        assert server.request("/v1/jobs/deadbeef")[0] == 404
        assert server.request("/v1/nonsense")[0] == 404
        code, resp = server.request("/v1/results/abc")
        assert code == 400  # digest prefix too short

    def test_healthz_stats_and_results(self, server):
        code, health = server.request("/v1/healthz")
        assert code == 200 and health["ok"]
        assert health["workers_alive"] == 2
        server.wait_done(server.request(
            "/v1/verify", {"source": CHAIN, "backend": "scv"}
        )[1]["job"]["id"])
        entry = os.path.basename(get_store(server.root).entry_paths()[0])
        prefix = entry[:12]
        code, resp = server.request(f"/v1/results/{prefix}")
        assert code == 200 and len(resp["matches"]) >= 1
        assert resp["matches"][0]["result"]["status"]
        stats = server.request("/v1/stats")[1]
        assert stats["queue"]["done"] == 1
        assert stats["workers"]["alive"] == 2


class TestDigestIndex:
    """``GET /v1/results/<digest>`` is served through a sidecar index
    (``verdicts.index.jsonl``) instead of a linear scan of every entry
    file; the entry files stay the source of truth, so the answers must
    be identical to a full scan with the index in *any* state —
    present, missing, corrupt, or stale."""

    @staticmethod
    def _populate(store_dir: str) -> None:
        cfg = RunConfig(timeout_s=60.0, store_dir=store_dir)
        verify_source(CHAIN, name="chain", kind="buggy",
                      config=cfg, backend="scv")
        verify_source(TRIPLE, name="triple", kind="?",
                      config=cfg, backend="scv")

    @staticmethod
    def _linear_scan(store, digest: str) -> list:
        paths = []
        for path in store.entry_paths():
            base = os.path.basename(path)[: -len(".json")]
            with open(path, encoding="utf-8") as fh:
                program = json.load(fh)["key"]["program"]
            if base.startswith(digest) or program.startswith(digest):
                paths.append(path)
        return paths

    def test_index_answers_match_a_linear_scan(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        store = get_store(store_dir)
        assert os.path.exists(store.index_path)  # put() maintains it
        with open(store.entry_paths()[0], encoding="utf-8") as fh:
            digest = json.load(fh)["key"]["program"][:12]
        want = self._linear_scan(store, digest)
        assert want  # the prefix matches something
        assert store.paths_for_digest(digest) == want
        # An entry-hash prefix resolves too.
        entry = os.path.basename(store.entry_paths()[0])[:12]
        assert store.paths_for_digest(entry) == \
            self._linear_scan(store, entry)

    def test_missing_index_is_rebuilt(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        store = get_store(store_dir)
        with open(store.entry_paths()[0], encoding="utf-8") as fh:
            digest = json.load(fh)["key"]["program"][:12]
        want = self._linear_scan(store, digest)
        os.unlink(store.index_path)
        assert store.paths_for_digest(digest) == want
        assert os.path.exists(store.index_path)  # rebuilt on disk

    def test_corrupt_index_is_rebuilt(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        store = get_store(store_dir)
        with open(store.entry_paths()[0], encoding="utf-8") as fh:
            digest = json.load(fh)["key"]["program"][:12]
        want = self._linear_scan(store, digest)
        for garbage in ("not json\n", '{"program": 7}\n', '{"entry": "x"}\n'):
            with open(store.index_path, "w", encoding="utf-8") as fh:
                fh.write(garbage)
            assert store.paths_for_digest(digest) == want

    def test_stale_index_is_rebuilt_after_entry_deletion(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self._populate(store_dir)
        store = get_store(store_dir)
        victim = store.entry_paths()[0]
        with open(victim, encoding="utf-8") as fh:
            digest = json.load(fh)["key"]["program"][:12]
        assert victim in store.paths_for_digest(digest)
        os.unlink(victim)  # the index line is now stale
        got = store.paths_for_digest(digest)
        assert victim not in got
        assert got == self._linear_scan(store, digest)

    def test_results_endpoint_survives_a_deleted_index(self, server):
        server.wait_done(server.request(
            "/v1/verify", {"source": CHAIN, "backend": "scv"}
        )[1]["job"]["id"])
        store = get_store(server.root)
        entry = os.path.basename(store.entry_paths()[0])
        prefix = entry[:12]
        code, with_index = server.request(f"/v1/results/{prefix}")
        assert code == 200 and with_index["matches"]
        os.unlink(store.index_path)
        code, without = server.request(f"/v1/results/{prefix}")
        assert code == 200
        assert without == with_index


class TestCrashRetry:
    @staticmethod
    def _patched_server(tmp_path, monkeypatch, run_job_fn):
        # Workers are forked, so patching the parent's module before
        # the pool starts patches every worker (and every respawn).
        from repro.serve import workers as workers_mod

        monkeypatch.setattr(workers_mod, "run_job", run_job_fn)
        return _Server(tmp_path, workers=1)

    @staticmethod
    def _wait_busy(srv, timeout=30.0):
        # A just-killed worker lingers in the pool map until the manager
        # reaps it, so insist on busy AND alive to find the new one.
        deadline = time.time() + timeout
        while time.time() < deadline:
            for w in srv.app.pool.stats()["workers"]:
                if w["busy"] and w["alive"]:
                    return w["pid"]
            time.sleep(0.02)
        raise AssertionError("no worker ever went busy")

    def test_killed_worker_retries_once_and_succeeds(
        self, tmp_path, monkeypatch
    ):
        from repro.driver.runner import run_job as real_run_job

        flag = str(tmp_path / "first-attempt-done")

        def flaky(source, **kw):
            if not os.path.exists(flag):
                open(flag, "w").close()
                time.sleep(300)  # hold the job until the test kills us
            return real_run_job(source, **kw)

        srv = self._patched_server(tmp_path, monkeypatch, flaky)
        try:
            code, resp = srv.request(
                "/v1/verify", {"source": CHAIN, "backend": "scv"}
            )
            assert code == 202
            pid = self._wait_busy(srv)
            os.kill(pid, signal.SIGKILL)
            job = srv.wait_done(resp["job"]["id"])
            assert job["attempts"] == 2
            assert "retrying" in job["detail"]
            # The retry produced a real verdict, not an error row.
            assert job["rows"][0]["status"] == STATUS_COUNTEREXAMPLE
            assert srv.app.pool.stats()["jobs_requeued"] == 1
            assert srv.app.pool.stats()["workers_replaced"] >= 1
        finally:
            srv.close()

    def test_killed_twice_terminates_with_error_rows(
        self, tmp_path, monkeypatch
    ):
        def hang(source, **kw):
            time.sleep(300)

        srv = self._patched_server(tmp_path, monkeypatch, hang)
        try:
            code, resp = srv.request(
                "/v1/verify", {"source": CHAIN, "backend": "both"}
            )
            assert code == 202
            for _ in range(MAX_ATTEMPTS):
                os.kill(self._wait_busy(srv), signal.SIGKILL)
                time.sleep(0.2)
            job = srv.wait_done(resp["job"]["id"])
            assert job["attempts"] == MAX_ATTEMPTS
            assert [r["backend"] for r in job["rows"]] == ["core", "scv"]
            assert all(r["status"] == STATUS_ERROR for r in job["rows"])
            assert "retry budget" in job["rows"][0]["detail"]
        finally:
            srv.close()

    def test_drain_persists_queued_jobs(self, tmp_path, monkeypatch):
        def hang(source, **kw):
            time.sleep(300)

        srv = self._patched_server(tmp_path, monkeypatch, hang)
        running = srv.request(
            "/v1/verify", {"source": CHAIN, "backend": "scv"}
        )[1]["job"]["id"]
        queued = srv.request(
            "/v1/verify", {"source": TRIPLE, "backend": "scv"}
        )[1]["job"]["id"]
        self._wait_busy(srv)
        srv.httpd.shutdown()
        srv.httpd.server_close()
        srv.app.pool.drain(1.0)  # too short: escalates to SIGTERM
        # A fresh queue on the same directory sees both jobs: the
        # queued one untouched, the interrupted one requeued.
        q2 = JobQueue(os.path.join(srv.root, "jobs"))
        q2.recover()
        states = {jid: q2.get(jid).state for jid in (running, queued)}
        assert states[queued] == "queued"
        assert states[running] in ("queued", "done")


class TestDeadlineFlag:
    SRC = "(define (f x) (+ x 1))\n(f 2)"

    def test_threaded_caller_is_flagged_and_warned_once(self, monkeypatch):
        monkeypatch.setattr(backends, "_deadline_warned", False)
        rows = []

        def run():
            rows.append(verify_source(
                self.SRC, config=RunConfig(timeout_s=30.0), backend="core"
            ))

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(2):
                t = threading.Thread(target=run)
                t.start()
                t.join()
        assert all(r.deadline_enforced is False for r in rows)
        assert all(r.status for r in rows)  # the run itself still works
        deadline_warnings = [
            w for w in caught
            if issubclass(w.category, RuntimeWarning)
            and "deadline" in str(w.message)
        ]
        assert len(deadline_warnings) == 1  # one-time, not per-program

    def test_main_thread_is_enforced(self):
        r = verify_source(
            self.SRC, config=RunConfig(timeout_s=30.0), backend="core"
        )
        assert r.deadline_enforced is True

    def test_flag_is_volatile_for_differentials(self):
        # Warm/cold and threaded/process runs may disagree on this
        # field; differential comparisons must not.
        assert "deadline_enforced" in VOLATILE_ROW_FIELDS


class TestEnvNumerics:
    def test_garbage_shards_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SHARDS", "abc")
        with pytest.raises(SystemExit) as exc:
            cli_main(["bench"])
        assert exc.value.code == 2
        assert "REPRO_SHARDS" in capsys.readouterr().err

    def test_garbage_port_flag_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["serve", "--port", "abc"])
        assert exc.value.code == 2
        assert "--port" in capsys.readouterr().err

    def test_garbage_serve_port_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_SERVE_PORT", "xyz")
        with pytest.raises(SystemExit) as exc:
            cli_main(["serve"])
        assert exc.value.code == 2
        assert "REPRO_SERVE_PORT" in capsys.readouterr().err


def _phi(i: int):
    return Eq(Var("$0"), IntConst(i))


def _buffer_then_sleep(root: str, ready: str) -> None:
    # Child for the SIGTERM test: solve (well, buffer) and never flush.
    from repro.serve.workers import _flush_and_exit

    signal.signal(signal.SIGTERM, _flush_and_exit)
    store = SolverStore(root)
    store.store(_phi(7), Result.SAT, (((0, 7),), ()), True)
    open(ready, "w").close()
    time.sleep(300)


def _write_entries(root: str, n: int) -> None:
    store = SolverStore(root)
    for i in range(n):
        store.store(_phi(i), Result.SAT, (((0, i),), ()), True)
        store.flush()


class TestSolverFlush:
    def test_flush_all_stores_publishes_every_buffer(self, tmp_path):
        a = SolverStore(str(tmp_path / "a"))
        b = SolverStore(str(tmp_path / "b"))
        a.store(_phi(1), Result.SAT, (((0, 1),), ()), True)
        b.store(_phi(2), Result.UNSAT, None, False)
        assert flush_all_stores() >= 2
        assert SolverStore(str(tmp_path / "a")).lookup(_phi(1)) is not None
        assert SolverStore(str(tmp_path / "b")).lookup(_phi(2)) is not None

    def test_sigterm_after_solve_still_publishes(self, tmp_path):
        # The killed-after-solve regression: a worker terminated between
        # solving and flushing must not lose its entries.
        root = str(tmp_path / "solver")
        ready = str(tmp_path / "ready")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_buffer_then_sleep, args=(root, ready))
        proc.start()
        deadline = time.time() + 30
        while not os.path.exists(ready) and time.time() < deadline:
            time.sleep(0.02)
        assert os.path.exists(ready)
        proc.terminate()  # SIGTERM — the flush handler must run
        proc.join(10)
        assert proc.exitcode == 0
        assert SolverStore(root).lookup(_phi(7)) is not None

    def test_worker_main_flushes_after_each_job(self, tmp_path):
        root = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")
        task_q, result_q = ctx.SimpleQueue(), ctx.Queue()
        cfg = job_run_config(_base_config(root), {}, root)
        task_q.put({"job": "j1", "source": CHAIN, "name": "c",
                    "kind": "buggy", "backend": "scv", "config": cfg})
        task_q.put(None)
        proc = ctx.Process(target=worker_main, args=(0, task_q, result_q))
        proc.start()
        _wid, jid, rows = result_q.get(timeout=180)
        proc.join(30)
        assert jid == "j1"
        assert rows[0]["status"] == STATUS_COUNTEREXAMPLE
        # The job's solver entries hit the shard directory before the
        # result was even reported.
        assert get_store(root).solver.stats()["entries"] > 0

    def test_compaction_races_a_live_writer(self, tmp_path):
        root = str(tmp_path / "solver")
        n = 40
        ctx = multiprocessing.get_context("fork")
        writer = ctx.Process(target=_write_entries, args=(root, n))
        compactor = SolverStore(root)
        writer.start()
        while writer.is_alive():
            compactor.compact()
            time.sleep(0.01)
        writer.join(10)
        compactor.compact()
        final = SolverStore(root)
        for i in range(n):
            assert final.lookup(_phi(i)) is not None, i

    def test_gc_races_a_live_verifier(self, tmp_path):
        store_dir = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")

        def _verify():
            verify_source(
                TRIPLE,
                config=RunConfig(timeout_s=60.0, store_dir=store_dir),
                backend="scv",
            )

        writer = ctx.Process(target=_verify)
        writer.start()
        vs = get_store(store_dir)
        while writer.is_alive():
            vs.gc()
            time.sleep(0.01)
        writer.join(10)
        assert writer.exitcode == 0
        # Whatever landed is intact, and a warm replay works end to end.
        outcome = check_entries(get_store(store_dir))
        assert outcome["matched"] == outcome["checked"]
        r = verify_source(
            TRIPLE,
            config=RunConfig(timeout_s=60.0, store_dir=store_dir),
            backend="scv",
        )
        assert r.status and r.store_misses == 0

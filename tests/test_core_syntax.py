"""Unit tests for SPCF syntax, substitution and the type checker."""

import pytest

from repro.core import (
    App,
    Err,
    Fix,
    FunType,
    If,
    Lam,
    Loc,
    NAT,
    Num,
    Ref,
    TypeError_,
    app,
    check_program,
    fun,
    known_labels,
    lam,
    opaque_labels,
    opq,
    prim,
    subst,
)
from repro.core.syntax import free_refs, fresh_label, subexprs


class TestTypes:
    def test_fun_right_associates(self):
        t = fun(NAT, NAT, NAT)
        assert t == FunType(NAT, FunType(NAT, NAT))

    def test_fun_single(self):
        assert fun(NAT) == NAT

    def test_fun_empty_rejected(self):
        with pytest.raises(ValueError):
            fun()


class TestSubstitution:
    def test_substitutes_free(self):
        e = subst(Ref("x"), "x", Num(1))
        assert e == Num(1)

    def test_leaves_bound(self):
        e = Lam("x", NAT, Ref("x"))
        assert subst(e, "x", Num(1)) == e

    def test_shadowing_in_fix(self):
        e = Fix("x", NAT, Ref("x"))
        assert subst(e, "x", Num(1)) == e

    def test_descends_structure(self):
        e = If(Ref("x"), prim("add1", Ref("x"), label="a"), Num(0))
        out = subst(e, "x", Num(5))
        assert out.test == Num(5)
        assert out.then.args == (Num(5),)

    def test_substitutes_under_other_binder(self):
        e = Lam("y", NAT, Ref("x"))
        out = subst(e, "x", Num(3))
        assert out.body == Num(3)

    def test_app_both_sides(self):
        e = App(Ref("x"), Ref("x"))
        out = subst(e, "x", Num(2))
        assert out == App(Num(2), Num(2))


class TestTraversals:
    def test_free_refs(self):
        e = Lam("x", NAT, App(Ref("f"), Ref("x")))
        assert free_refs(e) == {"f"}

    def test_known_labels_are_prim_sites(self):
        e = prim("div", Num(1), prim("add1", Num(0), label="inner"), label="outer")
        assert known_labels(e) == {"inner", "outer"}

    def test_opaque_labels(self):
        o = opq(NAT, "u1")
        e = App(Lam("x", NAT, Ref("x")), o)
        assert opaque_labels(e) == {"u1"}

    def test_fresh_labels_unique(self):
        assert fresh_label() != fresh_label()

    def test_subexprs_preorder(self):
        e = If(Num(1), Num(2), Num(3))
        subs = list(subexprs(e))
        assert subs[0] is e and len(subs) == 4


class TestTypeChecker:
    def test_num(self):
        assert check_program(Num(3)) == NAT

    def test_lambda(self):
        e = lam("x", NAT, Ref("x"))
        assert check_program(e) == FunType(NAT, NAT)

    def test_application(self):
        e = app(lam("x", NAT, Ref("x")), Num(1))
        assert check_program(e) == NAT

    def test_higher_order(self):
        e = lam("g", fun(NAT, NAT), app(Ref("g"), Num(0)))
        assert check_program(e) == FunType(fun(NAT, NAT), NAT)

    def test_opaque_types(self):
        e = app(opq(fun(NAT, NAT)), Num(1))
        assert check_program(e) == NAT

    def test_fix(self):
        # μf:nat→nat. λn. if n = 0 then 0 else f (n-1)
        e = Fix(
            "f",
            fun(NAT, NAT),
            lam(
                "n",
                NAT,
                If(
                    prim("zero?", Ref("n")),
                    Num(0),
                    app(Ref("f"), prim("sub1", Ref("n"))),
                ),
            ),
        )
        assert check_program(e) == fun(NAT, NAT)

    def test_unbound_variable(self):
        with pytest.raises(TypeError_):
            check_program(Ref("nope"))

    def test_bad_application(self):
        with pytest.raises(TypeError_):
            check_program(app(Num(1), Num(2)))

    def test_argument_mismatch(self):
        f = lam("g", fun(NAT, NAT), Num(0))
        with pytest.raises(TypeError_):
            check_program(app(f, Num(3)))

    def test_if_branches_must_agree(self):
        e = If(Num(1), Num(2), lam("x", NAT, Ref("x")))
        with pytest.raises(TypeError_):
            check_program(e)

    def test_prim_arity(self):
        with pytest.raises(TypeError_):
            check_program(prim("div", Num(1)))

    def test_unknown_prim(self):
        with pytest.raises(TypeError_):
            check_program(prim("frobnicate", Num(1)))

    def test_fix_annotation_mismatch(self):
        e = Fix("f", NAT, lam("x", NAT, Ref("x")))
        with pytest.raises(TypeError_):
            check_program(e)

    def test_internal_forms_rejected(self):
        with pytest.raises(TypeError_):
            check_program(Loc("L0"))
        with pytest.raises(TypeError_):
            check_program(Err("l", "div"))

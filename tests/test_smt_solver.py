"""Integration tests for the DPLL(T) solver — the Z3 substitute.

These exercise exactly the query shapes the paper's heap translation
produces: conjunctions of equalities with linear combinations, zero/nonzero
refinements, case-mapping consistency, and validity queries for the proof
relation (Fig. 5).
"""

import pytest

from repro.smt import (
    FuncDecl,
    Result,
    Solver,
    check_sat,
    get_model,
    is_valid,
    mk_add,
    mk_and,
    mk_app,
    mk_distinct,
    mk_div,
    mk_eq,
    mk_ge,
    mk_gt,
    mk_implies,
    mk_int,
    mk_le,
    mk_lt,
    mk_mod,
    mk_mul,
    mk_or,
    mk_sub,
    mk_var,
)
from repro.smt.errors import SolverError

x, y, z, w = mk_var("x"), mk_var("y"), mk_var("z"), mk_var("w")


def model_satisfies(formulas):
    m = get_model(*formulas)
    assert m is not None
    for f in formulas:
        assert m.eval(f), f"model {m} violates {f}"
    return m


class TestBasicSat:
    def test_trivial_true(self):
        assert check_sat(mk_eq(x, x)) is Result.SAT

    def test_trivial_false(self):
        assert check_sat(mk_and(mk_eq(x, 1), mk_eq(x, 2))) is Result.UNSAT

    def test_paper_worked_example(self):
        # §2: L5 = 100 - L4 and L5 = 0 must give L4 = 100.
        l4, l5 = mk_var("L4"), mk_var("L5")
        m = model_satisfies([mk_eq(l5, mk_sub(100, l4)), mk_eq(0, l5)])
        assert m[l4] == 100
        assert m[l5] == 0

    def test_linear_system(self):
        m = model_satisfies([mk_eq(mk_add(x, y), 10), mk_eq(mk_sub(x, y), 4)])
        assert m[x] == 7 and m[y] == 3

    def test_inequality_chain(self):
        m = model_satisfies([mk_lt(x, y), mk_lt(y, z), mk_eq(z, 2)])
        assert m[x] < m[y] < 2

    def test_strict_vs_nonstrict(self):
        assert check_sat(mk_and(mk_le(x, 5), mk_gt(x, 5))) is Result.UNSAT
        assert check_sat(mk_and(mk_le(x, 5), mk_ge(x, 5))) is Result.SAT

    def test_no_integer_between(self):
        # 2x = 1 has no integer solution.
        assert check_sat(mk_eq(mk_mul(2, x), 1)) is Result.UNSAT

    def test_integer_gap(self):
        # 0 < x < 1 has no integer solution.
        assert check_sat(mk_and(mk_lt(0, x), mk_lt(x, 1))) is Result.UNSAT

    def test_disequality_split(self):
        m = model_satisfies([mk_distinct(x, 0), mk_ge(x, 0), mk_le(x, 1)])
        assert m[x] == 1

    def test_multiple_disequalities(self):
        fs = [mk_ge(x, 0), mk_le(x, 3)] + [
            mk_distinct(x, k) for k in (0, 1, 3)
        ]
        m = model_satisfies(fs)
        assert m[x] == 2

    def test_all_values_excluded(self):
        fs = [mk_ge(x, 0), mk_le(x, 2)] + [
            mk_distinct(x, k) for k in (0, 1, 2)
        ]
        assert check_sat(*fs) is Result.UNSAT


class TestBooleanStructure:
    def test_disjunction(self):
        m = model_satisfies([mk_or(mk_eq(x, 1), mk_eq(x, 2)), mk_distinct(x, 1)])
        assert m[x] == 2

    def test_implication_chain(self):
        fs = [
            mk_implies(mk_eq(x, 1), mk_eq(y, 2)),
            mk_implies(mk_eq(y, 2), mk_eq(z, 3)),
            mk_eq(x, 1),
        ]
        m = model_satisfies(fs)
        assert m[y] == 2 and m[z] == 3

    def test_case_split_boolean(self):
        # (x=0 or x=1) and (x=0 => y=5) and (x=1 => y=7) and y=7
        fs = [
            mk_or(mk_eq(x, 0), mk_eq(x, 1)),
            mk_implies(mk_eq(x, 0), mk_eq(y, 5)),
            mk_implies(mk_eq(x, 1), mk_eq(y, 7)),
            mk_eq(y, 7),
        ]
        m = model_satisfies(fs)
        assert m[x] == 1

    def test_unsat_via_boolean(self):
        fs = [
            mk_or(mk_eq(x, 0), mk_eq(x, 1)),
            mk_distinct(x, 0),
            mk_distinct(x, 1),
        ]
        assert check_sat(*fs) is Result.UNSAT

    def test_deep_nesting(self):
        f = mk_and(
            mk_or(
                mk_and(mk_eq(x, 1), mk_eq(y, 1)),
                mk_and(mk_eq(x, 2), mk_eq(y, 4)),
                mk_and(mk_eq(x, 3), mk_eq(y, 9)),
            ),
            mk_gt(y, 5),
        )
        m = model_satisfies([f])
        assert (m[x], m[y]) == (3, 9)


class TestUninterpretedFunctions:
    def test_functional_consistency(self):
        g = FuncDecl("g", 1)
        # g(x) != g(y) and x = y is unsat.
        fs = [mk_distinct(mk_app(g, x), mk_app(g, y)), mk_eq(x, y)]
        assert check_sat(*fs) is Result.UNSAT

    def test_case_mapping_shape(self):
        # The paper's case-mapping: same input must give same output;
        # different inputs may differ.
        g = FuncDecl("g", 1)
        fs = [
            mk_eq(mk_app(g, mk_int(0)), 10),
            mk_eq(mk_app(g, mk_int(1)), 20),
            mk_eq(x, mk_app(g, mk_int(0))),
        ]
        m = model_satisfies(fs)
        assert m[x] == 10
        table = m.func_table(g)
        assert table[(0,)] == 10 and table[(1,)] == 20

    def test_congruence_through_args(self):
        g = FuncDecl("g", 2)
        fs = [
            mk_eq(x, y),
            mk_distinct(mk_app(g, x, mk_int(3)), mk_app(g, y, mk_int(3))),
        ]
        assert check_sat(*fs) is Result.UNSAT

    def test_function_can_differ_on_distinct_args(self):
        g = FuncDecl("g", 1)
        fs = [
            mk_distinct(x, y),
            mk_distinct(mk_app(g, x), mk_app(g, y)),
        ]
        assert check_sat(*fs) is Result.SAT


class TestDivMod:
    def test_div_exact(self):
        m = model_satisfies([mk_eq(x, mk_div(mk_int(10), mk_int(2)))])
        assert m[x] == 5

    def test_div_symbolic_denominator(self):
        # x div y = 3 and x = 7 forces y in {2} (Euclidean, y > 0 branch).
        fs = [
            mk_eq(mk_div(x, y), 3),
            mk_eq(x, 7),
            mk_ge(y, 1),
        ]
        m = model_satisfies(fs)
        assert m[x] // m[y] == 3

    def test_mod_range(self):
        fs = [mk_eq(z, mk_mod(x, mk_int(3))), mk_eq(x, 17)]
        m = model_satisfies(fs)
        assert m[z] == 2

    def test_div_by_zero_unsat(self):
        # Divisor forced to zero makes the axiomatisation unsatisfiable.
        fs = [mk_eq(z, mk_div(x, y)), mk_eq(y, 0)]
        assert check_sat(*fs) is Result.UNSAT


class TestNonlinear:
    def test_product_with_constant_propagation(self):
        fs = [mk_eq(x, 4), mk_eq(z, mk_mul(x, y)), mk_eq(z, 12)]
        m = model_satisfies(fs)
        assert m[y] == 3

    def test_small_product_search(self):
        fs = [mk_eq(mk_mul(x, y), 6), mk_ge(x, 2), mk_ge(y, 2)]
        m = model_satisfies(fs)
        assert m[x] * m[y] == 6

    def test_square(self):
        fs = [mk_eq(mk_mul(x, x), 49), mk_ge(x, 0)]
        m = model_satisfies(fs)
        assert m[x] == 7

    def test_product_unsat(self):
        fs = [mk_eq(mk_mul(x, x), 2)]
        res = check_sat(*fs)
        # No integer square root of 2; bounded search cannot *prove* unsat,
        # so UNKNOWN is also acceptable — but never SAT.
        assert res in (Result.UNSAT, Result.UNKNOWN)


class TestValidity:
    def test_valid_implication(self):
        assert is_valid(mk_ge(x, 0), mk_ge(x, 5)) is True

    def test_invalid_implication(self):
        assert is_valid(mk_ge(x, 5), mk_ge(x, 0)) is False

    def test_proof_relation_shapes(self):
        # Fig 5: Σ ⊢ L : zero? !  when heap implies L = 0.
        l4, l5 = mk_var("L4"), mk_var("L5")
        heap = mk_and(mk_eq(l5, mk_sub(100, l4)), mk_eq(l4, 100))
        assert is_valid(mk_eq(l5, 0), heap) is True
        # Refuted: heap and L5 = 0 unsat.
        heap2 = mk_and(mk_eq(l5, mk_sub(100, l4)), mk_eq(l4, 0))
        assert check_sat(heap2, mk_eq(l5, 0)) is Result.UNSAT
        # Ambiguous: both satisfiable.
        heap3 = mk_eq(l5, mk_sub(100, l4))
        assert is_valid(mk_eq(l5, 0), heap3) is False
        assert check_sat(heap3, mk_eq(l5, 0)) is Result.SAT


class TestSolverInterface:
    def test_push_pop(self):
        s = Solver()
        s.add(mk_ge(x, 0))
        s.push()
        s.add(mk_lt(x, 0))
        assert s.check() is Result.UNSAT
        s.pop()
        assert s.check() is Result.SAT

    def test_pop_without_push_raises(self):
        s = Solver()
        with pytest.raises(SolverError):
            s.pop()

    def test_model_without_sat_raises(self):
        s = Solver()
        s.add(mk_and(mk_eq(x, 0), mk_eq(x, 1)))
        assert s.check() is Result.UNSAT
        with pytest.raises(SolverError):
            s.model()

    def test_incremental_lemma_reuse(self):
        s = Solver()
        s.add(mk_or(*(mk_eq(x, k) for k in range(8))))
        s.add(mk_ge(x, 6))
        assert s.check() is Result.SAT
        assert s.model()[x] >= 6

    def test_check_with_extra(self):
        s = Solver()
        s.add(mk_ge(x, 0))
        assert s.check(mk_lt(x, 0)) is Result.UNSAT
        assert s.check() is Result.SAT

    def test_empty_solver_sat(self):
        s = Solver()
        assert s.check() is Result.SAT
        assert s.model().env == {}

    def test_model_repr(self):
        s = Solver()
        s.add(mk_eq(x, 3))
        assert s.check() is Result.SAT
        assert "x = 3" in repr(s.model())

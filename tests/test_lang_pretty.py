"""Round-trip property of the surface pretty-printer.

The printer's contract (``lang.pretty``): printed text re-parses to the
same core AST modulo parse-generated metadata (blame labels, lambda
display names, opaque labels), and printing is idempotent — parsing the
printed text and printing again reproduces it byte for byte.  Checked
over the entire benchmark corpus plus targeted datum edge cases.
"""

from fractions import Fraction

import pytest

from repro.lang.ast import Quote, ULam, UVar, reset_labels
from repro.lang.parser import parse_expr_string, parse_program
from repro.lang.pretty import (
    pp,
    pp_datum,
    pp_program,
    strip_metadata,
    strip_program,
    substitute_opaques,
)
from repro.lang.sexp import Symbol
from repro.driver.corpus import CORPUS


def _parse(src):
    reset_labels()
    return parse_program(src)


class TestRoundTripCorpus:
    @pytest.mark.parametrize("prog", CORPUS, ids=lambda p: p.name)
    def test_parse_print_parse(self, prog):
        p1 = _parse(prog.source)
        text = pp_program(p1)
        p2 = _parse(text)
        assert strip_program(p2) == strip_program(p1), text

    @pytest.mark.parametrize("prog", CORPUS, ids=lambda p: p.name)
    def test_print_is_idempotent(self, prog):
        text = pp_program(_parse(prog.source))
        assert pp_program(_parse(text)) == text


class TestDatums:
    @pytest.mark.parametrize(
        "src",
        [
            "0", "-7", "#t", "#f", "1/2", "-3/4", "0.5", "0+1i", "2-3i",
            '"hi"', '"a\\"b\\\\c"', "'sym", "'()", "'(1 2 3)",
            "'(a (b c) 4)", "(quote (quote x))",
        ],
    )
    def test_datum_round_trip(self, src):
        e1 = parse_expr_string(src)
        e2 = parse_expr_string(pp(e1))
        assert strip_metadata(e1) == strip_metadata(e2)

    def test_fraction_renders_exactly(self):
        assert pp_datum(Fraction(3, 4)) == "3/4"

    def test_symbol_takes_reader_prefix(self):
        assert pp_datum(Symbol("x")) == "'x"
        assert pp_datum([Symbol("a"), 1]) == "'(a 1)"


class TestSugarDesugars:
    @pytest.mark.parametrize(
        "src",
        [
            "(let ([x 1] [y 2]) (+ x y))",
            "(let* ([x 1] [y (add1 x)]) y)",
            "(let loop ([n 3]) (if (zero? n) 0 (loop (sub1 n))))",
            "(cond [(zero? 0) 1] [else 2])",
            "(case 2 [(1 2) 'lo] [else 'hi])",
            "(and 1 2 3)", "(or #f 2)", "(when 1 2)", "(unless #f 3)",
            "(begin (define x 1) (add1 x))",
            "(λ (f) (set! f (λ (x) x)))",
            "(->d ([x integer?]) (>/c x))",
            "(recursive-contract integer?)",
            "•",
        ],
    )
    def test_expr_round_trip(self, src):
        e1 = parse_expr_string(src)
        e2 = parse_expr_string(pp(e1))
        assert strip_metadata(e1) == strip_metadata(e2)


class TestSubstitution:
    def test_substitute_opaques_closes_program(self):
        e = parse_expr_string("(quotient 100 •)")
        opq = e.args[1]
        closed = substitute_opaques(e, {opq.label: Quote(0)})
        assert pp(closed) == "(quotient 100 0)"

    def test_missing_bindings_stay_opaque(self):
        e = parse_expr_string("•")
        assert substitute_opaques(e, {}) is e


class TestDefineStyle:
    def test_named_lambda_prints_as_function_define(self):
        p = _parse("(module m (define (f x) x) (provide f))")
        text = pp_program(p)
        assert "(define (f x) x)" in text
        # and the style restores the lambda's display name on re-parse
        p2 = _parse(text)
        (name, lam), = p2.modules[0].definitions
        assert isinstance(lam, ULam) and lam.name == "f"

    def test_value_define_stays_value_style(self):
        p = _parse("(module m (define k 7) (provide k))")
        assert "(define k 7)" in pp_program(p)

    def test_opaque_instantiation_drops_contract(self):
        p = _parse(
            "(module m (define-opaque g (-> integer? integer?))"
            " (define (use n) (g n)) (provide [use (-> integer? integer?)]))"
        )
        text = pp_program(
            p, opaque_exprs={"g": ULam(("x",), UVar("x"))}
        )
        assert "define-opaque" not in text
        assert "(define g (λ (x) x))" in text

"""Unit tests for the term/formula AST and builders."""


import pytest

from repro.smt.linearize import LinExpr, linearize
from repro.smt.simplify import simplify, to_nnf
from repro.smt.terms import (
    Add,
    Eq,
    FALSE,
    FuncDecl,
    IntConst,
    Le,
    Lt,
    Not,
    Or,
    TRUE,
    eval_formula,
    eval_term,
    free_vars,
    func_decls,
    mk_add,
    mk_and,
    mk_app,
    mk_div,
    mk_eq,
    mk_ge,
    mk_gt,
    mk_iff,
    mk_implies,
    mk_int,
    mk_le,
    mk_lt,
    mk_mod,
    mk_mul,
    mk_neg,
    mk_not,
    mk_or,
    mk_sub,
    mk_var,
)

x, y, z = mk_var("x"), mk_var("y"), mk_var("z")


class TestBuilders:
    def test_add_folds_constants(self):
        assert mk_add(1, 2, 3) == IntConst(6)

    def test_add_flattens(self):
        t = mk_add(x, mk_add(y, 1), 2)
        assert isinstance(t, Add)
        assert IntConst(3) in t.args
        assert x in t.args and y in t.args

    def test_add_identity(self):
        assert mk_add(x, 0) == x
        assert mk_add() == IntConst(0)

    def test_mul_zero_annihilates(self):
        assert mk_mul(x, 0, y) == IntConst(0)

    def test_mul_identity(self):
        assert mk_mul(x, 1) == x
        assert mk_mul(3, 4) == IntConst(12)

    def test_neg_and_sub(self):
        assert mk_sub(x, x) != IntConst(0)  # no deep simplification
        assert eval_term(mk_sub(x, x), {x: 7}) == 0
        assert eval_term(mk_neg(x), {x: 5}) == -5

    def test_div_constant_fold(self):
        assert mk_div(7, 2) == IntConst(3)
        assert mk_div(-7, 2) == IntConst(-4)  # Euclidean / floor
        assert mk_mod(7, 2) == IntConst(1)
        assert mk_mod(-7, 2) == IntConst(1)

    def test_div_by_zero_not_folded(self):
        t = mk_div(7, 0)
        assert not isinstance(t, IntConst)

    def test_eq_reflexive(self):
        assert mk_eq(x, x) == TRUE
        assert mk_eq(3, 3) == TRUE
        assert mk_eq(3, 4) == FALSE

    def test_comparisons_fold(self):
        assert mk_le(2, 3) == TRUE
        assert mk_lt(3, 3) == FALSE
        assert mk_ge(3, 3) == TRUE
        assert mk_gt(2, 3) == FALSE

    def test_not_involution(self):
        f = mk_lt(x, y)
        assert mk_not(mk_not(f)) == f

    def test_and_or_simplify(self):
        f = mk_lt(x, y)
        assert mk_and(f, TRUE) == f
        assert mk_and(f, FALSE) == FALSE
        assert mk_or(f, FALSE) == f
        assert mk_or(f, TRUE) == TRUE
        assert mk_and() == TRUE
        assert mk_or() == FALSE

    def test_implies_simplify(self):
        f = mk_lt(x, y)
        assert mk_implies(FALSE, f) == TRUE
        assert mk_implies(TRUE, f) == f
        assert mk_implies(f, FALSE) == mk_not(f)

    def test_iff_simplify(self):
        f = mk_lt(x, y)
        assert mk_iff(f, f) == TRUE
        assert mk_iff(f, TRUE) == f
        assert mk_iff(f, FALSE) == mk_not(f)

    def test_app_arity_checked(self):
        f = FuncDecl("f", 2)
        with pytest.raises(ValueError):
            mk_app(f, x)

    def test_coercion_rejects_junk(self):
        with pytest.raises(TypeError):
            mk_add(x, "nope")  # type: ignore[arg-type]


class TestTraversals:
    def test_free_vars(self):
        f = mk_and(mk_eq(x, mk_add(y, 1)), mk_lt(z, 2))
        assert free_vars(f) == {x, y, z}

    def test_func_decls(self):
        g = FuncDecl("g", 1)
        f = mk_eq(mk_app(g, x), y)
        assert func_decls(f) == {g}

    def test_eval_term_arith(self):
        env = {x: 10, y: 3}
        assert eval_term(mk_add(x, mk_mul(2, y)), env) == 16
        assert eval_term(mk_div(x, y), env) == 3
        assert eval_term(mk_mod(x, y), env) == 1

    def test_eval_formula(self):
        env = {x: 1, y: 2}
        assert eval_formula(mk_lt(x, y), env)
        assert not eval_formula(mk_eq(x, y), env)
        assert eval_formula(mk_implies(mk_eq(x, y), FALSE), env)

    def test_eval_app_uses_table(self):
        g = FuncDecl("g", 1)
        env = {x: 5}
        funcs = {g: {(5,): 42}}
        assert eval_term(mk_app(g, x), env, funcs) == 42
        assert eval_term(mk_app(g, mk_int(6)), env, funcs) == 0  # default


class TestNNF:
    def test_negated_le_becomes_lt(self):
        f = to_nnf(mk_not(Le(x, y)))
        assert f == Lt(y, x)

    def test_negated_lt_becomes_le(self):
        f = to_nnf(mk_not(Lt(x, y)))
        assert f == Le(y, x)

    def test_negated_eq_keeps_not(self):
        f = to_nnf(mk_not(Eq(x, y)))
        assert isinstance(f, Not) and isinstance(f.arg, Eq)

    def test_de_morgan(self):
        f = to_nnf(mk_not(mk_and(Le(x, y), Le(y, z))))
        assert isinstance(f, Or)
        assert all(isinstance(a, Lt) for a in f.args)

    def test_implies_eliminated(self):
        f = to_nnf(mk_implies(Le(x, y), Le(y, z)))
        assert isinstance(f, Or)

    def test_iff_expanded_preserves_semantics(self):
        f = mk_iff(Le(x, y), Lt(y, z))
        g = to_nnf(f)
        for env in [{x: 0, y: 1, z: 2}, {x: 5, y: 1, z: 0}, {x: 1, y: 1, z: 1}]:
            assert eval_formula(f, env) == eval_formula(g, env)

    def test_nnf_negate_preserves_semantics(self):
        f = mk_implies(mk_and(Le(x, y), mk_not(Eq(y, z))), Lt(x, z))
        g = to_nnf(f, negate=True)
        for env in [{x: 0, y: 1, z: 2}, {x: 2, y: 3, z: 1}, {x: 0, y: 0, z: 0}]:
            assert eval_formula(g, env) == (not eval_formula(f, env))


class TestLinearize:
    def test_constant(self):
        le = linearize(mk_int(5))
        assert le.is_constant and le.const == 5

    def test_linear_combo(self):
        le = linearize(mk_add(mk_mul(3, x), mk_mul(-2, y), 7))
        assert le.coeff_of(x) == 3
        assert le.coeff_of(y) == -2
        assert le.const == 7

    def test_nested_products_distribute(self):
        le = linearize(mk_mul(2, mk_add(x, 3)))
        # 2*(x+3) cannot be distributed by mk_mul alone, but linearize
        # scales the single non-constant factor.
        assert le.coeff_of(x) == 2
        assert le.const == 6

    def test_nonlinear_kept_opaque(self):
        t = mk_mul(x, y)
        le = linearize(t)
        assert le.coeff_of(t) == 1
        assert not le.atoms() == {x, y}

    def test_linexpr_arith(self):
        a = LinExpr.atom(x, 2).add(LinExpr.constant(1))
        b = a.scale(3)
        assert b.coeff_of(x) == 6 and b.const == 3
        c = b.sub(a)
        assert c.coeff_of(x) == 4 and c.const == 2

    def test_substitute(self):
        a = LinExpr.atom(x, 2).add(LinExpr.atom(y)).add(LinExpr.constant(5))
        b = a.substitute(x, LinExpr.atom(z).add(LinExpr.constant(1)))
        assert b.coeff_of(z) == 2
        assert b.coeff_of(y) == 1
        assert b.const == 7


class TestSimplify:
    def test_folds_ground_atoms(self):
        assert simplify(Eq(IntConst(2), IntConst(2))) == TRUE
        assert simplify(mk_and(Le(IntConst(1), IntConst(0)))) == FALSE

    def test_result_not_boolean(self):
        from repro.smt.errors import Result

        with pytest.raises(TypeError):
            bool(Result.SAT)

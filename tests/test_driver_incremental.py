"""Driver-level guarantees of the incremental-solving revision (v5):

* **equivalence** — corpus verdicts and counterexamples are identical
  with the per-path incremental contexts on vs ``--no-incremental``
  (the full-corpus byte-identity run backs ``BENCH_driver.json``; here
  a representative subset keeps the suite fast);
* **economy** — incremental runs answer most queries on warm contexts
  (the ≥30% fresh-solve reduction the v5 report records);
* **stale alarms** — a fast verification followed by slow report
  assembly must not be killed by the per-program SIGALRM: the deadline
  context is exited (cancelling the alarm, restoring the previous
  handler) before assembly;
* **worker hygiene** — the solver cache's hit/miss counters reset
  atomically with its table, so a reused pool worker cannot bleed one
  row's ``solver_cache_hits`` into the next row's stats.
"""

import signal
import time
from dataclasses import asdict

import pytest

from repro.driver import backends as backends_mod
from repro.driver.corpus import corpus_names, get_program
from repro.driver.report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_SAFE,
    VOLATILE_ROW_FIELDS,
)
from repro.driver.runner import RunConfig, run_corpus, verify_program, verify_source
from repro.smt import solver_cache


def _stable(result) -> dict:
    return {
        k: v for k, v in asdict(result).items()
        if k not in VOLATILE_ROW_FIELDS
    }


class TestIncrementalOffEquivalence:
    """Verdicts, counterexamples and search stats must be identical with
    incrementality on vs off, on both backends."""

    @pytest.mark.parametrize("backend", ["core", "scv"])
    def test_subset_identical(self, backend):
        names = corpus_names(tag="smoke")
        for name in names:
            prog = get_program(name)
            if backend not in prog.backends:
                continue
            rows = {
                inc: verify_program(
                    prog,
                    RunConfig(timeout_s=60.0, incremental=inc),
                    backend=backend,
                )
                for inc in (True, False)
            }
            assert _stable(rows[True]) == _stable(rows[False]), name

    def test_fresh_solve_reduction_on_solver_heavy_subset(self):
        # The acceptance metric in miniature: across programs that
        # actually reach the solver, incrementality must cut the
        # from-scratch solve count by well over 30%.
        names = [n for n in corpus_names() if "guarded" in n or "gap" in n]
        assert names
        fresh = {True: 0, False: 0}
        queries = 0
        for name in names:
            prog = get_program(name)
            for inc in (True, False):
                r = verify_program(
                    prog, RunConfig(timeout_s=60.0, incremental=inc),
                    backend=prog.backends[0],
                )
                fresh[inc] += r.solver_fresh_solves
                if inc:
                    queries += r.solver_queries
        assert queries > 0
        assert fresh[True] <= 0.7 * fresh[False]

    def test_incremental_counters_populated(self):
        r = verify_program(
            get_program("pred-chain-guarded"),
            RunConfig(timeout_s=60.0),
            backend="core",
        )
        assert r.solver_incremental > 0
        assert r.solver_scope_depth > 0
        # With incrementality off the counters stay zero.
        r_off = verify_program(
            get_program("pred-chain-guarded"),
            RunConfig(timeout_s=60.0, incremental=False),
            backend="core",
        )
        assert r_off.solver_incremental == 0
        assert r_off.solver_scope_depth == 0
        assert r_off.solver_fresh_solves >= r.solver_fresh_solves


class TestStaleAlarmCancelledOnSuccess:
    """driver satellite: a fast verification + slow report assembly must
    not be killed by the per-program SIGALRM."""

    @property
    def BUGGY(self) -> str:
        return get_program("div-unchecked").source  # ~10ms to verify

    def test_slow_assembly_survives_deadline(self, monkeypatch):
        real = backends_mod.closed_program_text

        def slow(*args, **kwargs):
            time.sleep(1.0)  # well past the remaining 0.8s budget
            return real(*args, **kwargs)

        monkeypatch.setattr(backends_mod, "closed_program_text", slow)
        r = verify_source(
            self.BUGGY, name="slow-assembly", kind="buggy",
            config=RunConfig(timeout_s=0.8), backend="core",
        )
        # Pre-fix this row came back STATUS_TIMEOUT: the alarm armed for
        # the verification fired inside client synthesis.
        assert r.status == STATUS_COUNTEREXAMPLE
        assert r.counterexample is not None and r.counterexample.client

    def test_no_alarm_left_armed_after_success(self):
        r = verify_source(
            self.BUGGY, name="armed", kind="buggy",
            config=RunConfig(timeout_s=30.0), backend="core",
        )
        assert r.status == STATUS_COUNTEREXAMPLE
        assert signal.getitimer(signal.ITIMER_REAL) == (0.0, 0.0)
        assert signal.getsignal(signal.SIGALRM) is signal.SIG_DFL


class TestWorkerCounterHygiene:
    """The per-row solver_cache_hits of a program must not depend on
    what ran before it in the same (simulated) pool worker."""

    def test_row_counters_independent_of_predecessor(self):
        name = "sum-unknown-fn"
        prog = get_program(name)
        cfg = RunConfig(timeout_s=60.0)
        alone = verify_program(prog, cfg, backend="core")
        # Simulate a reused worker: another program ran first and left
        # cache counters behind.
        verify_program(get_program("pred-chain-guarded"), cfg, backend="core")
        after = verify_program(prog, cfg, backend="core")
        assert after.solver_cache_hits == alone.solver_cache_hits
        assert _stable(after) == _stable(alone)

    def test_clear_is_atomic_even_with_foreign_snapshots(self):
        solver_cache.clear()
        # A stale snapshot taken before unrelated traffic...
        snap = solver_cache.snapshot()
        solver_cache.hits += 7  # ...traffic from a previous row
        solver_cache.clear()
        # ...cannot produce a negative or bled counter afterwards.
        assert solver_cache.snapshot() == (0, 0)
        assert solver_cache.hits_since(solver_cache.snapshot()) == 0
        assert solver_cache.hits_since(snap) <= 0


class TestBothBackendsCrossCheckWithIncrementality:
    def test_smoke_corpus_agreement(self):
        names = corpus_names(tag="smoke")
        report = run_corpus(
            names, config=RunConfig(timeout_s=60.0), backend="both"
        )
        agreement = report.agreement()
        assert not agreement["disagreements"]
        for r in report.results:
            assert r.status in (STATUS_SAFE, STATUS_COUNTEREXAMPLE)

"""Cross-backend counterexample normalization (regression).

The two backends used to render the *same* finding differently — core
emitted bindings like ``0`` and ``err_op "div"`` where scv emitted
``'0`` and ``err_op "Λ: quotient: division by zero"`` — which made the
report's agreement section unable to compare counterexamples.  Both
``counterexample`` modules now normalize to one form: scalar bindings
render bare, operations under their canonical surface names.
"""

from repro.core.counterexample import CANONICAL_OPS, canonical_op
from repro.driver.report import BenchReport
from repro.driver.runner import RunConfig, verify_program
from repro.driver.corpus import get_program
from repro.scv.counterexample import canonical_blame_op, render_datum, render_value
from repro.scv.machine import Blame
from repro.lang.ast import Quote
from repro.lang.sexp import Symbol

CFG = RunConfig(timeout_s=0)


class TestCanonicalOps:
    def test_core_div_maps_to_quotient(self):
        assert canonical_op("div") == "quotient"
        assert canonical_op("mod") == "modulo"
        assert canonical_op("=?") == "="

    def test_unknown_ops_pass_through(self):
        assert canonical_op("car") == "car"

    def test_scv_prim_blame_reduces_to_op(self):
        b = Blame("Λ", "a3", "quotient: division by zero")
        assert canonical_blame_op(b) == "quotient"

    def test_scv_contract_blame_keeps_description(self):
        b = Blame("m", "a1", "broke (-> positive? positive?) on -1")
        assert canonical_blame_op(b) == "broke (-> positive? positive?) on -1"

    def test_tables_agree_on_the_overlap(self):
        # Every canonical name is a surface primitive the scv machine
        # blames under — the normal forms meet in the middle.
        assert CANONICAL_OPS["div"] == "quotient"
        assert CANONICAL_OPS["mod"] == "modulo"


class TestScalarRendering:
    def test_quoted_integers_render_bare(self):
        assert render_value(Quote(0)) == "0"  # used to be "'0"
        assert render_value(Quote(-7)) == "-7"

    def test_booleans_render_as_hash(self):
        assert render_datum(True) == "#t"
        assert render_datum(False) == "#f"

    def test_nonreal_witness_renders_as_the_papers_0_plus_1i(self):
        assert render_datum(complex(0, 1)) == "0+1i"

    def test_symbols_and_strings(self):
        assert render_datum(Symbol("sym")) == "'sym"
        assert render_datum("x") == '"x"'
        assert render_datum([]) == "'()"


class TestCrossBackendAgreement:
    def _both(self, name):
        prog = get_program(name)
        return [
            verify_program(prog, CFG, backend=b) for b in ("core", "scv")
        ]

    def test_shared_finding_is_field_identical(self):
        core_r, scv_r = self._both("div-unchecked")
        assert core_r.status == scv_r.status == "counterexample"
        c, s = core_r.counterexample, scv_r.counterexample
        assert c.err_op == s.err_op == "quotient"
        assert c.err_label == s.err_label
        # The denominator is forced to 0 — both witnesses agree, in the
        # same spelling.
        assert set(c.bindings) == set(s.bindings)
        for label in c.bindings:
            assert c.bindings[label] == s.bindings[label] == "0"

    def test_agreement_section_compares_counterexamples(self):
        report = BenchReport(config={})
        report.results.extend(self._both("div-unchecked"))
        cex = report.agreement()["counterexamples"]
        assert cex["compared"] == 1
        assert cex["matched"] == 1
        assert cex["mismatches"] == []

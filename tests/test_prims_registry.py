"""The primitive registry is the single source of truth: all four
consuming layers (concrete view, typed core δ, untyped scv δ, compiled
executor) must agree with it — and with each other — by construction.

The suppression tests are *generated from the registry*: every
declaration whose untyped handler tag-splits its arguments is run on
fully-unconstrained opaques under both cross-check disciplines, and the
``assume_well_typed`` contract (tag-uncertainty blame suppressed,
narrowing kept) is asserted uniformly.  A new family added to the
declarations is covered here with zero test edits.
"""

import pytest

from repro.core.delta import _tables as core_tables
from repro.lang.prims import base_primitives
from repro.prims import EXTENDED_PRIMS, REGISTRY, all_specs
from repro.scv.delta import OBlame, OEval, delta_u
from repro.scv.delta import _dispatch as scv_dispatch
from repro.scv.heap import UHeap, UOpq
from repro.scv.machine import SMachine


class TestLayerParity:
    def test_concrete_view_matches_registry_in_order(self):
        # base_primitives() is the symbolic global frame's allocation
        # order, so key *order* (not just key set) is load-bearing.
        assert list(base_primitives()) == list(REGISTRY)

    def test_scv_dispatch_covers_every_declaration(self):
        assert set(scv_dispatch()) == set(REGISTRY)

    def test_core_tables_match_core_op_declarations(self):
        unary, binary = core_tables()
        declared = {
            s.core_op
            for s in REGISTRY.values()
            if s.core_op is not None and s.refine is not None
        }
        assert set(unary) | set(binary) == declared
        assert not set(unary) & set(binary)

    def test_executor_inline_set_is_the_registry(self):
        from repro.compile.executor import _INLINE_UPRIM_NAMES

        assert _INLINE_UPRIM_NAMES == frozenset(REGISTRY)

    def test_aliases_resolve_and_share_behaviour(self):
        for s in all_specs():
            if s.alias_of is not None:
                target = REGISTRY[s.alias_of]
                assert s.concrete is target.concrete
                assert s.name in target.aliases

    def test_extended_family_is_a_declaration_suffix(self):
        # The base heap allocates g-locs in declaration order and skips
        # the extended family unless the program opts in; the family
        # must therefore sit strictly after every legacy name, or every
        # legacy program's heap (and committed report bytes) would shift.
        order = list(REGISTRY)
        first_ext = min(order.index(n) for n in EXTENDED_PRIMS)
        legacy = [n for n in order if n not in EXTENDED_PRIMS]
        assert first_ext > max(order.index(n) for n in legacy)

    def test_min_max_are_ordinary_synthesis_rules(self):
        # Historically special-cased in the untyped δ; now they are
        # plain registry declarations whose synthesis expands to a
        # comparison chain (OEval) on symbolic input.
        for name in ("min", "max"):
            assert REGISTRY[name].synth is not None
            m = SMachine()
            heap = UHeap.empty()
            l1, heap = heap.alloc(m.fresh_opq())
            l2, heap = heap.alloc(m.fresh_opq())
            outs = delta_u(m, heap, name, (l1, l2), "t")
            assert any(isinstance(o, OEval) for o in outs)


def _narrowing_specs():
    """Declarations whose untyped handler tag-splits opaque arguments
    (the refinement templates and the generic signature handler); the
    custom rules with the same discipline are listed explicitly."""
    out = []
    for s in all_specs():
        if s.alias_of is not None:
            continue
        if s.refine is not None:
            out.append(s)
        elif (s.rule is None and s.synth is None and s.pred_tags is None
              and s.sig.result is not None and s.sig.want is not None):
            out.append(s)
    out.extend(REGISTRY[n] for n in
               ("substring", "vector-ref", "vector-set!", "vector-length"))
    return out


def _n_args(spec) -> int:
    n = max(spec.arity.min, 1)
    if spec.arity.max is not None:
        n = min(n, spec.arity.max)
    return n


def _tag_blames(outcomes):
    return [
        o for o in outcomes
        if isinstance(o, OBlame)
        and "expected" in o.description
        and "argument" not in o.description  # not an arity violation
    ]


@pytest.mark.parametrize(
    "spec", _narrowing_specs(), ids=lambda s: s.name,
)
class TestWellTypedSuppression:
    """On fully-unconstrained opaques, every tag-splitting primitive
    must blame under the untyped discipline and stay silent under
    ``assume_well_typed`` — while still narrowing the ok branches."""

    def _run(self, spec, typed: bool):
        m = SMachine(assume_well_typed=typed, extended_prims=True)
        heap = UHeap.empty()
        locs = []
        for _ in range(_n_args(spec)):
            l, heap = heap.alloc(m.fresh_opq())
            locs.append(l)
        return m, locs, delta_u(m, heap, spec.name, tuple(locs), "t")

    def test_untyped_blames_tag_uncertainty(self, spec):
        if spec.refine is not None and spec.refine.kind == "sign":
            # Sign predicates are *total*: a non-number answers #f, so
            # there is no tag blame to suppress in either discipline.
            pytest.skip("total predicate: never blames")
        _, _, outs = self._run(spec, typed=False)
        assert _tag_blames(outs), outs

    def test_typed_suppresses_blame_but_keeps_narrowing(self, spec):
        m, locs, outs = self._run(spec, typed=True)
        assert not _tag_blames(outs), outs
        # Sign predicates answer #f on the non-number branch instead of
        # narrowing in place; everything else must keep at least one ok
        # branch whose first argument has a strictly narrowed tag set.
        if spec.refine is not None and spec.refine.kind == "sign":
            return
        narrowed = False
        for o in outs:
            if isinstance(o, OBlame):
                continue
            _, s = o.heap.deref(locs[0])
            if not isinstance(s, UOpq) or s.possible < m.all_tags:
                narrowed = True
        assert narrowed, outs

"""Demonic-context synthesis: every module-program finding must come
with an executable client.

Three layers of checks:

* **unit** — ``synthesize_client`` reconstructs the expected client
  shapes (havoc closure → lambda over the provides, trivial client for
  pre-application blame) and ``check_client`` re-runs them to the same
  blame;
* **per scenario** — every buggy module program in the corpus reports a
  counterexample whose surface validation is a real ``True`` (never the
  old ``skipped``), whose client text is present, parseable, and — re-run
  standalone through ``conc.interp`` — blames the same source label;
* **driver** — timeout rows keep the partial per-backend stats observed
  before the SIGALRM deadline fired.
"""

import pytest

from repro.conc.interp import (
    ContractBlame,
    Interp,
    PrimBlame,
    RuntimeFault,
    UserAbort,
)
from repro.driver.backends import RunConfig
from repro.driver.corpus import corpus_names, get_program
from repro.driver.report import STATUS_COUNTEREXAMPLE, STATUS_TIMEOUT
from repro.driver.runner import run_corpus, verify_program, verify_source
from repro.lang.ast import ULam, reset_labels
from repro.lang.parser import parse_program
from repro.scv import (
    SMachine,
    collect_struct_types,
    construct_u,
    find_known_blames,
    inject_program,
)
from repro.synth import synthesize_client

CFG = RunConfig(max_states=20_000, timeout_s=60.0)

MODULE_BUGGY = [
    n for n in corpus_names(tag="contracts", kind="buggy")
]


def _first_cex(source):
    reset_labels()
    program = parse_program(source)
    machine = SMachine(struct_types=collect_struct_types(program))
    for state in find_known_blames(
        inject_program(program, machine), machine, max_states=20_000
    ):
        cex = construct_u(program, state)
        if cex is not None and cex.validated:
            return program, cex
    raise AssertionError("no validated counterexample found")


class TestClientSynthesis:
    def test_havoc_client_is_lambda_over_provides(self):
        program, cex = _first_cex(
            "(module m (define (shift x) (- x 10))"
            " (provide [shift (-> positive? positive?)]))"
        )
        sc = cex.client
        assert sc is not None and not sc.trivial
        assert isinstance(sc.client, ULam)
        assert sc.client.params == ("shift",)
        assert cex.validated is True

    def test_load_time_blame_gets_trivial_client(self):
        # The module faults while evaluating its own definitions; the
        # client is never applied, so any client reproduces the blame.
        program, cex = _first_cex(
            "(module m (define boom (quotient 1 0))"
            " (provide [boom integer?]))"
        )
        assert cex.client is not None and cex.client.trivial
        assert cex.validated is True

    def test_non_module_program_has_no_client(self):
        reset_labels()
        program = parse_program("(quotient 1 •)")
        machine = SMachine(assume_well_typed=True)
        state = next(
            iter(
                find_known_blames(
                    inject_program(program, machine), machine
                )
            )
        )
        recon = object()  # never consulted for module-free programs
        assert synthesize_client(program, state.heap, recon) is None


def _expect_blame(source, err_op):
    """Run a closed surface program from text alone and return whether
    it blames with the same canonical operation.  (Exact *label* match
    is the AST-level validation oracle, where labels are preserved; a
    re-parse of instantiated text necessarily renumbers them.)"""
    reset_labels()  # the label namespace is per-parse
    interp = Interp(fuel=200_000)
    try:
        interp.run_program(parse_program(source))
    except PrimBlame as b:
        return b.op == err_op
    except (ContractBlame, UserAbort):
        return True
    except RuntimeFault:
        return False
    return False


class TestScenarioClients:
    @pytest.mark.parametrize("name", MODULE_BUGGY)
    def test_finding_is_validated_with_client(self, name):
        r = verify_program(get_program(name), CFG, backend="scv")
        assert r.status == STATUS_COUNTEREXAMPLE, (name, r.status, r.detail)
        cex = r.counterexample
        assert cex.validated_conc is True, (name, cex)
        assert cex.client, name

    @pytest.mark.parametrize("name", MODULE_BUGGY)
    def test_client_text_reruns_to_same_blame(self, name):
        # The emitted artifact is *closed*: parsed from text alone it
        # must still reproduce the same fault concretely.
        r = verify_program(get_program(name), CFG, backend="scv")
        cex = r.counterexample
        assert _expect_blame(cex.client, cex.err_op), (name, cex.client)


class TestTimeoutRowsKeepPartialStats:
    SPIN = (
        "(define a •)\n"
        "(define (walk n) (if (< n a) (walk (add1 n)) 7))\n"
        "(walk 0)"
    )

    @pytest.mark.parametrize("backend", ["core", "scv"])
    def test_verify_timeout_reports_partial_work(self, backend):
        cfg = RunConfig(max_states=10_000_000, timeout_s=0.5)
        r = verify_source(
            self.SPIN, name="spin", kind="?", config=cfg, backend=backend
        )
        assert r.status == STATUS_TIMEOUT
        # The SIGALRM deadline must not zero the observed counters.
        assert r.states_explored > 0
        assert r.solver_queries > 0
        assert r.chained_steps > 0

    def test_runner_keeps_partial_stats_in_totals(self, monkeypatch):
        # A spinning program makes the timeout machine-speed-independent
        # (sum-unknown-fn-abs, used previously, got fast enough under
        # the incremental solver to finish inside any sane budget).
        from repro.driver import corpus as corpus_mod
        from repro.driver.corpus import CorpusProgram

        spin = CorpusProgram(
            name="spin-forever", kind="?", source=self.SPIN,
            description="unbounded walk for the timeout test",
            backends=("scv",),
        )
        monkeypatch.setitem(corpus_mod._BY_NAME, spin.name, spin)
        cfg = RunConfig(max_states=10_000_000, timeout_s=0.3)
        report = run_corpus([spin.name], config=cfg, backend="scv")
        [row] = report.results
        assert row.status == STATUS_TIMEOUT
        assert row.states_explored > 0
        totals = report.backend_totals()["scv"]
        assert totals["states_explored"] == row.states_explored
        assert totals["chained_steps"] == row.chained_steps

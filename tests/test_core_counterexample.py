"""End-to-end counterexample generation tests for SPCF (paper §2, §3.5).

Every test here checks both halves of the pipeline: symbolic execution
reaches the error, and the reconstructed counterexample *re-runs
concretely to the same blame* (Theorem 1 is enforced, not assumed).
"""


from repro.core import (
    If,
    Lam,
    NAT,
    Num,
    Ref,
    app,
    check_counterexample,
    find_counterexample,
    fun,
    instantiate,
    lam,
    opq,
    pp,
    prim,
    run,
)


def assert_validated(cex):
    assert cex is not None, "no counterexample found"
    assert cex.validated is True, f"counterexample failed validation: {cex!r}"
    return cex


class TestFirstOrder:
    def test_direct_div_by_opaque(self):
        # (div 1 •) errors iff • = 0.
        program = prim("div", Num(1), opq(NAT, "n"), label="site")
        cex = assert_validated(find_counterexample(program))
        assert cex.bindings["n"] == Num(0)

    def test_quickcheck_comparison(self):
        # §5.2: f n = 1 / (100 - n); QuickCheck's default int range
        # misses n = 100, symbolic execution finds it.
        f = lam("n", NAT, prim("div", Num(1), prim("-", Num(100), Ref("n"))))
        program = app(f, opq(NAT, "n"))
        cex = assert_validated(find_counterexample(program))
        assert cex.bindings["n"] == Num(100)

    def test_guarded_error_needs_solver(self):
        # if (n < 5) then 1/n else 0 — error needs n = 0 which satisfies
        # the guard; the path condition must carry the inequality.
        n = opq(NAT, "n")
        program = app(
            lam(
                "n",
                NAT,
                If(
                    prim("<?", Ref("n"), Num(5)),
                    prim("div", Num(1), Ref("n")),
                    Num(0),
                ),
            ),
            n,
        )
        cex = assert_validated(find_counterexample(program))
        assert cex.bindings["n"] == Num(0)

    def test_unreachable_error(self):
        # if zero?(n) then 1 else 1/n — denominator can never be zero.
        program = app(
            lam(
                "n",
                NAT,
                If(
                    prim("zero?", Ref("n")),
                    Num(1),
                    prim("div", Num(1), Ref("n")),
                ),
            ),
            opq(NAT, "n"),
        )
        assert find_counterexample(program) is None

    def test_no_opaques_no_error(self):
        program = prim("div", Num(10), Num(5))
        assert find_counterexample(program) is None

    def test_concrete_error_trivial_counterexample(self):
        program = prim("div", Num(1), Num(0), label="crash")
        cex = assert_validated(find_counterexample(program))
        assert cex.bindings == {}

    def test_two_opaques_constrained_sum(self):
        # error iff a + b = 7 and a < b: solver must coordinate both.
        a, b = opq(NAT, "a"), opq(NAT, "b")
        body = If(
            prim("=?", prim("+", Ref("a"), Ref("b")), Num(7)),
            If(
                prim("<?", Ref("a"), Ref("b")),
                prim("div", Num(1), Num(0), label="boom"),
                Num(0),
            ),
            Num(0),
        )
        program = app(lam("a", NAT, lam("b", NAT, body)), a, b)
        cex = assert_validated(find_counterexample(program))
        va, vb = cex.bindings["a"].value, cex.bindings["b"].value
        assert va + vb == 7 and va < vb


class TestHigherOrder:
    def test_paper_worked_example(self):
        # §2: let f g n = 1/(100 - (g n)) in (• f).
        f = lam(
            "g",
            fun(NAT, NAT),
            lam(
                "n",
                NAT,
                prim(
                    "div",
                    Num(1),
                    prim("-", Num(100), app(Ref("g"), Ref("n"))),
                    label="div-site",
                ),
            ),
        )
        program = app(opq(fun(fun(fun(NAT, NAT), NAT, NAT), NAT), "ctx"), f)
        cex = assert_validated(find_counterexample(program))
        assert cex.err.label == "div-site"
        # The binding is a function; re-running is the real check, but the
        # pretty form should mention the magic constant 100 somewhere.
        assert "100" in pp(cex.bindings["ctx"])

    def test_unknown_function_input(self):
        # f : (nat→nat) → nat applied to unknown g; errors iff g(3) = 7.
        g = opq(fun(NAT, NAT), "g")
        f = lam(
            "g",
            fun(NAT, NAT),
            If(
                prim("=?", app(Ref("g"), Num(3)), Num(7)),
                prim("div", Num(1), Num(0), label="bang"),
                Num(0),
            ),
        )
        cex = assert_validated(find_counterexample(app(f, g)))
        # The reconstructed g must actually map 3 to 7.
        g_concrete = cex.bindings["g"]
        probe = app(g_concrete, Num(3))
        assert run(probe).number() == 7

    def test_case_consistency_required(self):
        # errors iff g(0) != g(0) — impossible; without the memoising
        # case mapping the tool would report a spurious error here.
        g = opq(fun(NAT, NAT), "g")
        f = lam(
            "g",
            fun(NAT, NAT),
            If(
                prim("=?", app(Ref("g"), Num(0)), app(Ref("g"), Num(0))),
                Num(0),
                prim("div", Num(1), Num(0), label="spurious"),
            ),
        )
        assert find_counterexample(app(f, g)) is None

    def test_case_two_points(self):
        # errors iff g(0) = 1 and g(1) = 2 — needs a two-entry mapping.
        g = opq(fun(NAT, NAT), "g")
        body = If(
            prim("=?", app(Ref("g"), Num(0)), Num(1)),
            If(
                prim("=?", app(Ref("g"), Num(1)), Num(2)),
                prim("div", Num(1), Num(0), label="two-point"),
                Num(0),
            ),
            Num(0),
        )
        cex = assert_validated(find_counterexample(app(lam("g", fun(NAT, NAT), body), g)))
        gc = cex.bindings["g"]
        assert run(app(gc, Num(0))).number() == 1
        assert run(app(gc, Num(1))).number() == 2

    def test_delayed_exploration(self):
        # F : nat→(nat→nat); error iff (F 0) 1 = 5 — the result of the
        # unknown is itself an unknown function (AppOpq1 with fun range,
        # then application of the opaque output).
        F = opq(fun(NAT, fun(NAT, NAT)), "F")
        body = If(
            prim("=?", app(app(Ref("F"), Num(0)), Num(1)), Num(5)),
            prim("div", Num(1), Num(0), label="deep"),
            Num(0),
        )
        program = app(lam("F", fun(NAT, fun(NAT, NAT)), body), F)
        cex = assert_validated(find_counterexample(program))
        fc = cex.bindings["F"]
        assert run(app(app(fc, Num(0)), Num(1))).number() == 5


class TestValidationMachinery:
    def test_instantiate_replaces_all(self):
        o = opq(NAT, "n")
        program = prim("+", o, o)
        closed = instantiate(program, {"n": Num(21)})
        assert run(closed).number() == 42

    def test_instantiate_missing_binding_uses_default(self):
        o = opq(NAT, "n")
        closed = instantiate(prim("add1", o), {})
        assert run(closed).number() == 1

    def test_check_counterexample_rejects_wrong_model(self):
        from repro.core.counterexample import Counterexample
        from repro.core import Err
        from repro.smt import Model

        program = prim("div", Num(1), opq(NAT, "n"), label="site")
        bogus = Counterexample(
            {"n": Num(5)}, Model(), Err("site", "div")
        )
        assert not check_counterexample(program, bogus)

    def test_default_value_types(self):
        from repro.core import default_value

        assert default_value(NAT) == Num(0)
        f = default_value(fun(NAT, NAT))
        assert isinstance(f, Lam)
        assert run(app(f, Num(9))).number() == 0

"""Differential fuzzing: the concrete surface interpreter vs. the core
symbolic backend, over ~200 seeded random SPCF programs.

Two properties, one per program population:

* **closed programs** (no unknowns) — symbolic execution degenerates to
  a concrete run, so the verdict must agree with ``conc.interp``
  exactly: an interpreter fault means ``counterexample`` *at the same
  blame label*, a clean value means ``safe``;
* **open programs** (with ``•`` unknowns) — a ``counterexample`` must
  carry both validation flags (the concrete oracles reproduced the
  blame), and a ``safe`` verdict is spot-checked by instantiating every
  unknown with sample values and demanding the interpreter cannot be
  made to fault.

Both populations additionally serve as the **compile oracle**: every
fuzzed program is re-verified with the bytecode executor
(``compile=True``) against the step machine (``compile=False``) and the
result rows must match byte-for-byte outside the volatile fields — the
step machines are the semantics of record and the compiler must never
drift from them.  ``REPRO_FUZZ_N`` scales both populations (nightly
runs crank it up; the seed is fixed so any size is reproducible) and
``REPRO_SHARDS`` routes everything through the sharded frontier.

Any disagreement is *shrunk*: subterms are repeatedly replaced with
smaller ones while the disagreement persists, and the minimal program
is what the assertion message reports.

Generator discipline (mirrors the corpus notes in ``driver.corpus``):
all arithmetic stays nonnegative — subtraction generates as a guarded
"monus" and ``sub1`` is guarded by ``zero?`` — because Racket's
truncating ``quotient`` and the core's flooring ``div`` only agree on
nonnegative operands; ``if`` tests are always predicate results, keeping
PCF and Racket truthiness aligned.  Division *denominators* are left
free: reachable zero denominators are exactly the fault class the tool
exists to find.  In the *open* population multiplication only scales by
a constant — products of unknowns produce nonlinear queries outside the
bundled solver's fragment (the documented §5.3 boundary) — and open
programs run under a wall timeout with inconclusive verdicts counted as
skips rather than failures.
"""

import os
import random
from dataclasses import asdict, replace

import pytest

from repro.conc.interp import Interp, InterpTimeout, PrimBlame, RuntimeFault
from repro.driver.report import STATUS_TIMEOUT, VOLATILE_ROW_FIELDS
from repro.driver.runner import RunConfig, verify_source
from repro.lang.ast import reset_labels
from repro.lang.parser import parse_program
from repro.scv.counterexample import opaque_labels

SEED = 20260726


def _env_int(var: str, default: int) -> int:
    try:
        return max(1, int(os.environ.get(var, "") or default))
    except ValueError:
        return default


#: ``REPRO_FUZZ_N`` scales the whole fuzz (a nightly knob: the default
#: is the PR-sized population, nightly runs crank it up; the seed stays
#: fixed so any population size is reproducible).
N_CLOSED = _env_int("REPRO_FUZZ_N", 140)
N_OPEN = max(10, (N_CLOSED * 3) // 7)
FUEL = 200_000

def _env_shards() -> int:
    """``REPRO_SHARDS`` routes the whole fuzz through the sharded
    frontier engine (one CI leg runs with 2 shards): byte-identical
    verdicts are the engine's contract, so every assertion — including
    the shrinker's disagreement checks — must hold unchanged."""
    try:
        return max(1, int(os.environ.get("REPRO_SHARDS", "1") or "1"))
    except ValueError:
        return 1


CFG = RunConfig(timeout_s=0, fuel=FUEL, shards=_env_shards())


def _stable(row) -> dict:
    """A result row minus the volatile fields: the byte-identity
    surface the compiled executor must reproduce."""
    d = asdict(row)
    return {k: v for k, v in d.items() if k not in VOLATILE_ROW_FIELDS}


def compile_divergence(source: str, cfg: RunConfig = CFG):
    """None when the bytecode executor and the step machine produce
    identical rows (volatile fields aside); otherwise a description.
    Timeout rows are skipped — which row a wall-clock budget truncates
    is scheduling, not semantics."""
    ri = verify_source(
        source, backend="core", config=replace(cfg, compile=False)
    )
    rc = verify_source(
        source, backend="core", config=replace(cfg, compile=True)
    )
    if STATUS_TIMEOUT in (ri.status, rc.status):
        return None
    si, sc = _stable(ri), _stable(rc)
    if si == sc:
        return None
    keys = sorted(k for k in si if si[k] != sc[k])
    return (
        "compiled row diverges from interpreted on "
        + ", ".join(f"{k}: {si[k]!r} != {sc[k]!r}" for k in keys)
    )

# ---------------------------------------------------------------------------
# Program generator — a tiny nat-sorted tree grammar
# ---------------------------------------------------------------------------

_LEAVES = ("num", "var", "opq")
_UNARY = ("add1", "sub1z")
_BINARY = ("+", "*", "monus", "quotient", "modk")
_STRUCTURED = ("ifz", "iflt", "let", "app")


def gen(rng: random.Random, depth: int, env: tuple, allow_opq: bool):
    """A random nonnegative-integer-sorted expression tree."""
    leaves = ["num"] * 3 + (["var"] * 3 if env else []) + (
        ["opq"] * 2 if allow_opq else []
    )
    if depth <= 0:
        kind = rng.choice(leaves)
    else:
        kind = rng.choice(
            leaves + list(_UNARY) + 3 * list(_BINARY) + 2 * list(_STRUCTURED)
        )
    if kind == "num":
        return ("num", rng.randint(0, 3))
    if kind == "var":
        return ("var", rng.choice(env))
    if kind == "opq":
        return ("opq",)
    if kind in _UNARY:
        return (kind, gen(rng, depth - 1, env, allow_opq))
    if kind == "modk":
        return ("modk", gen(rng, depth - 1, env, allow_opq), rng.randint(1, 3))
    if kind == "*" and allow_opq:
        # Keep symbolic queries linear: scale by a constant.
        return ("*", ("num", rng.randint(0, 3)),
                gen(rng, depth - 1, env, allow_opq))
    if kind in _BINARY:
        return (
            kind,
            gen(rng, depth - 1, env, allow_opq),
            gen(rng, depth - 1, env, allow_opq),
        )
    if kind in ("ifz", "iflt"):
        return (
            kind,
            gen(rng, depth - 1, env, allow_opq),
            *(() if kind == "ifz" else (gen(rng, depth - 1, env, allow_opq),)),
            gen(rng, depth - 1, env, allow_opq),
            gen(rng, depth - 1, env, allow_opq),
        )
    x = f"x{len(env)}"
    bound = gen(rng, depth - 1, env, allow_opq)
    body = gen(rng, depth - 1, env + (x,), allow_opq)
    return (kind, x, bound, body)  # "let" | "app"


def render(t) -> str:
    kind = t[0]
    if kind == "num":
        return str(t[1])
    if kind == "var":
        return t[1]
    if kind == "opq":
        return "•"
    if kind == "add1":
        return f"(add1 {render(t[1])})"
    if kind == "sub1z":
        # Guarded decrement: stays nonnegative.
        return f"(let ([s {render(t[1])}]) (if (zero? s) 0 (sub1 s)))"
    if kind == "monus":
        # Guarded subtraction: stays nonnegative.
        return (
            f"(let ([a {render(t[1])}]) (let ([b {render(t[2])}])"
            f" (if (< a b) 0 (- a b))))"
        )
    if kind == "modk":
        return f"(modulo {render(t[1])} {t[2]})"
    if kind in ("+", "*", "quotient"):
        return f"({kind} {render(t[1])} {render(t[2])})"
    if kind == "ifz":
        return f"(if (zero? {render(t[1])}) {render(t[2])} {render(t[3])})"
    if kind == "iflt":
        return (
            f"(if (< {render(t[1])} {render(t[2])}) "
            f"{render(t[3])} {render(t[4])})"
        )
    if kind == "let":
        return f"(let ([{t[1]} {render(t[2])}]) {render(t[3])})"
    if kind == "app":
        return f"((lambda ({t[1]}) {render(t[3])}) {render(t[2])})"
    raise ValueError(f"unrenderable {t!r}")


def size(t) -> int:
    return 1 + sum(size(c) for c in t if isinstance(c, tuple))


# ---------------------------------------------------------------------------
# Oracles
# ---------------------------------------------------------------------------


def conc_verdict(source: str):
    """Run the surface program concretely: ('error', label) | ('value',)
    | ('skip',) when the oracle itself cannot run it."""
    reset_labels()
    try:
        program = parse_program(source)
    except Exception:
        return ("skip",)
    try:
        Interp(fuel=FUEL).run_program(program)
    except PrimBlame as b:
        return ("error", b.label)
    except (RuntimeFault, InterpTimeout, RecursionError):
        return ("skip",)
    return ("value",)


def disagreement(source: str):
    """None when backends agree; otherwise a description string."""
    conc = conc_verdict(source)
    if conc[0] == "skip":
        return None
    r = verify_source(source, backend="core", config=CFG)
    if conc[0] == "error":
        if r.status != "counterexample":
            return f"conc blames {conc[1]} but core says {r.status}"
        cex = r.counterexample
        if cex.err_label != conc[1]:
            return (
                f"conc blames {conc[1]} but core blames {cex.err_label}"
            )
        if cex.validated_conc is not True or cex.validated_core is not True:
            return (
                f"core counterexample failed validation "
                f"(core={cex.validated_core}, conc={cex.validated_conc})"
            )
        return None
    if r.status != "safe":
        return f"conc produces a value but core says {r.status}: {r.detail}"
    return None


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _subst(t, name: str, repl):
    if t[0] == "var":
        return repl if t[1] == name else t
    if t[0] in ("let", "app"):
        bound = _subst(t[2], name, repl)
        body = t[3] if t[1] == name else _subst(t[3], name, repl)
        return (t[0], t[1], bound, body)
    return tuple(
        _subst(c, name, repl) if isinstance(c, tuple) else c for c in t
    )


def candidates(t):
    """One-step-smaller variants of ``t`` (child hoisting, constant
    collapse, recursive rewriting)."""
    yield ("num", 0)
    yield ("num", 1)
    kind = t[0]
    if kind in ("add1", "sub1z", "modk"):
        yield t[1]
    elif kind in ("+", "*", "monus", "quotient"):
        yield t[1]
        yield t[2]
    elif kind == "ifz":
        yield t[2]
        yield t[3]
        yield t[1]
    elif kind == "iflt":
        yield from (t[1], t[2], t[3], t[4])
    elif kind in ("let", "app"):
        yield t[2]
        yield _subst(t[3], t[1], ("num", 0))
        yield _subst(t[3], t[1], t[2])
    for i, c in enumerate(t):
        if not isinstance(c, tuple):
            continue
        for sub in candidates(c):
            yield t[:i] + (sub,) + t[i + 1:]


def shrink(t, still_fails) -> tuple:
    improved = True
    while improved:
        improved = False
        for cand in candidates(t):
            if size(cand) < size(t) and still_fails(cand):
                t = cand
                improved = True
                break
    return t


# ---------------------------------------------------------------------------
# The tests
# ---------------------------------------------------------------------------


def _report_failure(tree, why: str, population: str):
    minimal = shrink(tree, lambda c: disagreement(render(c)) is not None)
    pytest.fail(
        f"[{population}] backends disagree on\n  {render(minimal)}\n"
        f"original ({size(tree)} nodes): {render(tree)}\n"
        f"disagreement: {disagreement(render(minimal)) or why}"
    )


def _report_compile_failure(tree, why: str, population: str, cfg: RunConfig):
    minimal = shrink(
        tree, lambda c: compile_divergence(render(c), cfg) is not None
    )
    pytest.fail(
        f"[{population}] compiled executor diverges on\n  {render(minimal)}\n"
        f"original ({size(tree)} nodes): {render(tree)}\n"
        f"divergence: {compile_divergence(render(minimal), cfg) or why}"
    )


class TestClosedPrograms:
    def test_conc_and_core_agree_on_140_random_closed_programs(self):
        rng = random.Random(SEED)
        checked = 0
        for _ in range(N_CLOSED):
            tree = gen(rng, depth=4, env=(), allow_opq=False)
            why = disagreement(render(tree))
            if why is not None:
                _report_failure(tree, why, "closed")
            why = compile_divergence(render(tree))
            if why is not None:
                _report_compile_failure(tree, why, "closed", CFG)
            checked += 1
        assert checked == N_CLOSED


class TestOpenPrograms:
    def _sample_instantiations(self, source: str):
        reset_labels()
        program = parse_program(source)
        labels = sorted(set(opaque_labels(program)))
        for v in (0, 1, 2, 7):
            exprs = {}
            for label in labels:
                reset_labels()
                exprs[label] = parse_program(str(v)).main
            reset_labels()
            program = parse_program(source)
            try:
                Interp(fuel=FUEL).run_program(program, opaque_exprs=exprs)
            except PrimBlame as b:
                return v, b.label
            except (RuntimeFault, InterpTimeout, RecursionError):
                continue
        return None

    def test_core_verdicts_hold_up_on_60_random_open_programs(self):
        rng = random.Random(SEED + 1)
        # Solver-hard programs degrade to timeout/no-model rows instead
        # of wedging the suite; those are skips, not failures.
        cfg = RunConfig(timeout_s=5.0, fuel=FUEL, shards=_env_shards())
        cexs = safes = 0
        for _ in range(N_OPEN):
            tree = gen(rng, depth=4, env=(), allow_opq=True)
            source = render(tree)
            r = verify_source(source, backend="core", config=cfg)
            why = compile_divergence(source, cfg)
            if why is not None:
                _report_compile_failure(tree, why, "open", cfg)
            if r.status == "counterexample":
                cexs += 1
                cex = r.counterexample
                if cex.validated_core is not True or cex.validated_conc is not True:
                    _report_failure(
                        tree,
                        f"unvalidated counterexample (core={cex.validated_core}, "
                        f"conc={cex.validated_conc})",
                        "open",
                    )
            elif r.status == "safe":
                safes += 1
                witness = self._sample_instantiations(source)
                if witness is not None:
                    v, label = witness
                    pytest.fail(
                        f"[open] core proved safe but • = {v} blames {label}"
                        f" in\n  {source}"
                    )
        # The populations must both be non-trivially exercised.
        assert cexs > 5
        assert safes > 5


# ---------------------------------------------------------------------------
# Extended-family population — sort-directed strings/vectors grammar
# ---------------------------------------------------------------------------

_EXT_STRINGS = ('""', '"ab"', '"hello"')


def gen_ext(rng: random.Random, depth: int, sort: str = "int"):
    """A random *closed* expression of the requested sort over the
    registry's extended string/vector family (plus enough integer
    arithmetic to build indices).  The population's job is to pin the
    registry's concrete delegation and the symbolic rules to the same
    partial-primitive behaviour: out-of-range ``substring``/
    ``vector-ref`` indices and wrong-tag arguments are generated
    freely, because reachable preconditions are the fault class."""
    if sort == "int":
        if depth <= 0:
            return ("num", rng.randint(0, 3))
        kind = rng.choice(
            ("num", "num", "add1", "+", "strlen", "veclen", "vecref")
        )
        if kind == "num":
            return ("num", rng.randint(0, 3))
        if kind == "add1":
            return ("add1", gen_ext(rng, depth - 1, "int"))
        if kind == "+":
            return ("+", gen_ext(rng, depth - 1, "int"),
                    gen_ext(rng, depth - 1, "int"))
        if kind == "strlen":
            return ("strlen", gen_ext(rng, depth - 1, "str"))
        if kind == "veclen":
            return ("veclen", gen_ext(rng, depth - 1, "vec"))
        return ("vecref", gen_ext(rng, depth - 1, "vec"),
                gen_ext(rng, depth - 1, "int"))
    if sort == "str":
        if depth <= 0:
            return ("str", rng.choice(_EXT_STRINGS))
        kind = rng.choice(("str", "sappend", "substr"))
        if kind == "str":
            return ("str", rng.choice(_EXT_STRINGS))
        if kind == "sappend":
            return ("sappend", gen_ext(rng, depth - 1, "str"),
                    gen_ext(rng, depth - 1, "str"))
        return ("substr", gen_ext(rng, depth - 1, "str"),
                gen_ext(rng, depth - 1, "int"),
                gen_ext(rng, depth - 1, "int"))
    assert sort == "vec"
    n = rng.randint(0, 3)
    return ("vec", tuple(gen_ext(rng, depth - 1, "int") for _ in range(n)))


def render_ext(t) -> str:
    kind = t[0]
    if kind == "num":
        return str(t[1])
    if kind == "str":
        return t[1]
    if kind == "add1":
        return f"(add1 {render_ext(t[1])})"
    if kind == "+":
        return f"(+ {render_ext(t[1])} {render_ext(t[2])})"
    if kind == "strlen":
        return f"(string-length {render_ext(t[1])})"
    if kind == "veclen":
        return f"(vector-length {render_ext(t[1])})"
    if kind == "vecref":
        return f"(vector-ref {render_ext(t[1])} {render_ext(t[2])})"
    if kind == "sappend":
        return f"(string-append {render_ext(t[1])} {render_ext(t[2])})"
    if kind == "substr":
        return (
            f"(substring {render_ext(t[1])} {render_ext(t[2])}"
            f" {render_ext(t[3])})"
        )
    if kind == "vec":
        inner = " ".join(render_ext(c) for c in t[1])
        return f"(vector{' ' if inner else ''}{inner})"
    raise ValueError(f"unrenderable {t!r}")


def disagreement_ext(source: str):
    """``disagreement`` against the scv backend (the only engine with
    string/vector sorts); closed programs, so symbolic execution must
    degenerate to the concrete run."""
    conc = conc_verdict(source)
    if conc[0] == "skip":
        return None
    r = verify_source(source, backend="scv", config=CFG)
    if conc[0] == "error":
        if r.status != "counterexample":
            return f"conc blames {conc[1]} but scv says {r.status}"
        cex = r.counterexample
        if cex.err_label != conc[1]:
            return f"conc blames {conc[1]} but scv blames {cex.err_label}"
        if cex.validated_conc is not True:
            return (
                f"scv counterexample failed the surface oracle "
                f"(conc={cex.validated_conc})"
            )
        return None
    if r.status != "safe":
        return f"conc produces a value but scv says {r.status}: {r.detail}"
    return None


def compile_divergence_ext(source: str):
    """The compile oracle for the extended family: the bytecode
    executor's inline-dispatch set comes from the registry, so compiled
    rows over the new primitives must match the step machine's."""
    ri = verify_source(
        source, backend="scv", config=replace(CFG, compile=False)
    )
    rc = verify_source(
        source, backend="scv", config=replace(CFG, compile=True)
    )
    if STATUS_TIMEOUT in (ri.status, rc.status):
        return None
    si, sc = _stable(ri), _stable(rc)
    if si == sc:
        return None
    keys = sorted(k for k in si if si[k] != sc[k])
    return (
        "compiled row diverges from interpreted on "
        + ", ".join(f"{k}: {si[k]!r} != {sc[k]!r}" for k in keys)
    )


N_EXT = max(10, N_CLOSED // 2)


class TestExtendedFamilyPrograms:
    def test_conc_and_scv_agree_on_random_string_vector_programs(self):
        rng = random.Random(SEED + 2)
        faults = values = 0
        for _ in range(N_EXT):
            sort = rng.choice(("int", "str"))
            source = render_ext(gen_ext(rng, depth=4, sort=sort))
            if conc_verdict(source)[0] == "error":
                faults += 1
            else:
                values += 1
            why = disagreement_ext(source)
            if why is not None:
                pytest.fail(f"[extended] backends disagree on\n  {source}\n"
                            f"disagreement: {why}")
            why = compile_divergence_ext(source)
            if why is not None:
                pytest.fail(f"[extended] compiled executor diverges on\n"
                            f"  {source}\ndivergence: {why}")
        # Both verdicts must be non-trivially exercised.
        assert faults > 5
        assert values > 5

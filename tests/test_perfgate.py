"""The CI perf-regression gate (``repro.driver.perfgate``)."""

import json

from repro.driver.perfgate import compare, main


def _report(tmp_path, name, states, wall):
    path = tmp_path / name
    path.write_text(json.dumps({
        "schema": "repro-bench/v3",
        "totals": {"states_explored": states, "wall_ms": wall},
    }))
    return str(path)


class TestCompare:
    def test_within_budget_passes(self):
        lines = compare(
            {"states_explored": 100, "wall_ms": 1000},
            {"states_explored": 110, "wall_ms": 1100},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_regression_beyond_budget_fails(self):
        lines = compare(
            {"states_explored": 100, "wall_ms": 1000},
            {"states_explored": 130, "wall_ms": 1000},
            0.20,
        )
        assert any(line.startswith("FAIL") for line in lines)

    def test_improvements_never_fail(self):
        lines = compare(
            {"states_explored": 100, "wall_ms": 1000},
            {"states_explored": 10, "wall_ms": 100},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_zero_baseline_is_skipped_not_divided_by(self):
        lines = compare({"states_explored": 0}, {"states_explored": 50}, 0.2)
        assert any(line.startswith("SKIP") for line in lines)


class TestValidatedRatchet:
    def test_drop_in_validated_counterexamples_fails(self):
        lines = compare(
            {"validated_counterexamples": 40},
            {"validated_counterexamples": 39},
            0.20,
        )
        assert any(
            line.startswith("FAIL") and "validated" in line for line in lines
        )

    def test_equal_or_higher_passes(self):
        for fresh in (40, 41):
            lines = compare(
                {"validated_counterexamples": 40},
                {"validated_counterexamples": fresh},
                0.20,
            )
            assert not any(line.startswith("FAIL") for line in lines)

    def test_pre_v4_baseline_is_skipped(self):
        # A baseline from an older schema has no validated count; the
        # ratchet skips rather than failing the build on the upgrade.
        lines = compare({}, {"validated_counterexamples": 40}, 0.20)
        assert any(
            line.startswith("SKIP") and "validated" in line for line in lines
        )

    def test_zero_baseline_still_ratchets(self):
        # Unlike the relative gates, 0 is a usable ratchet floor.
        lines = compare(
            {"validated_counterexamples": 0},
            {"validated_counterexamples": 0},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)


class TestIncrementalReuseRatchet:
    """Schema v5: the from-scratch solver-solve count is gated like the
    other grow-bad totals — contexts that stop being reused fail CI."""

    def test_fresh_solve_regression_fails(self):
        lines = compare(
            {"solver_fresh_solves": 100},
            {"solver_fresh_solves": 150},
            0.20,
        )
        assert any(
            line.startswith("FAIL") and "from-scratch" in line
            for line in lines
        )

    def test_fresh_solve_within_budget_passes(self):
        lines = compare(
            {"solver_fresh_solves": 100},
            {"solver_fresh_solves": 110},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_fewer_fresh_solves_is_an_improvement(self):
        lines = compare(
            {"solver_fresh_solves": 100},
            {"solver_fresh_solves": 40},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)
        assert any("improvement" in line and "from-scratch" in line
                   for line in lines)

    def test_pre_v5_baseline_is_skipped(self):
        lines = compare(
            {"states_explored": 100, "wall_ms": 1000},
            {"solver_fresh_solves": 40, "states_explored": 100,
             "wall_ms": 1000},
            0.20,
        )
        assert any(
            line.startswith("SKIP") and "from-scratch" in line
            for line in lines
        )
        assert not any(line.startswith("FAIL") for line in lines)


class TestMain:
    def test_exit_codes(self, tmp_path):
        base = _report(tmp_path, "base.json", 100, 1000)
        good = _report(tmp_path, "good.json", 105, 1010)
        bad = _report(tmp_path, "bad.json", 200, 1000)
        assert main([base, good]) == 0
        assert main([base, bad]) == 1
        assert main([base, bad, "--max-regress", "1.5"]) == 0
        assert main([str(tmp_path / "missing.json"), good]) == 2


class TestSchemaValidation:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_unknown_schema_is_a_clear_failure(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {
            "schema": "somebody-elses/v9",
            "totals": {"states_explored": 100, "wall_ms": 1000},
        })
        fresh = _report(tmp_path, "fresh.json", 100, 1000)
        assert main([base, fresh]) == 2
        err = capsys.readouterr().err
        assert "unrecognized report schema" in err
        assert "Traceback" not in err

    def test_future_schema_is_a_clear_failure(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {
            "schema": "repro-bench/v999",
            "totals": {"states_explored": 100, "wall_ms": 1000},
        })
        fresh = _report(tmp_path, "fresh.json", 100, 1000)
        assert main([base, fresh]) == 2
        assert "newer than this checkout" in capsys.readouterr().err

    def test_missing_schema_is_a_clear_failure(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", {
            "totals": {"states_explored": 100, "wall_ms": 1000},
        })
        fresh = _report(tmp_path, "fresh.json", 100, 1000)
        assert main([base, fresh]) == 2
        assert "unrecognized report schema" in capsys.readouterr().err

    def test_older_known_schema_still_gates(self, tmp_path):
        # The fixture reports are schema v3: still accepted.
        base = _report(tmp_path, "base.json", 100, 1000)
        fresh = _report(tmp_path, "fresh.json", 100, 1000)
        assert main([base, fresh]) == 0

    def test_non_numeric_totals_fail_without_traceback(self):
        lines = compare(
            {"states_explored": "lots", "wall_ms": 1000},
            {"states_explored": 100, "wall_ms": "fast"},
            0.20,
        )
        assert any(line.startswith("SKIP states explored") for line in lines)
        assert any(
            line.startswith("FAIL") and "non-numeric" in line
            for line in lines
        )


class TestDispatchStepsGate:
    """Schema v8: executed micro-steps in the bytecode dispatch loop.
    Deterministic per (corpus, configuration), so it is gated like
    ``states_explored`` — more steps per macro state means chains got
    shorter or the executor started delegating transitions it used to
    run inline."""

    def test_dispatch_regression_fails(self):
        lines = compare(
            {"dispatch_steps": 1000},
            {"dispatch_steps": 1500},
            0.20,
        )
        assert any(
            line.startswith("FAIL") and "dispatch" in line for line in lines
        )

    def test_dispatch_within_budget_passes(self):
        lines = compare(
            {"dispatch_steps": 1000},
            {"dispatch_steps": 1100},
            0.20,
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_pre_v8_baseline_is_skipped(self):
        # A baseline written before the compiler existed carries no
        # dispatch count at all; upgrading must not fail CI.
        lines = compare(
            {"states_explored": 100, "wall_ms": 1000},
            {"states_explored": 100, "wall_ms": 1000,
             "dispatch_steps": 5000},
            0.20,
        )
        assert any(
            line.startswith("SKIP") and "dispatch" in line for line in lines
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_interpreted_baseline_zero_is_skipped(self):
        # A --no-compile baseline records dispatch_steps: 0 — nothing
        # to ratio against, so the gate skips instead of dividing.
        lines = compare(
            {"dispatch_steps": 0},
            {"dispatch_steps": 5000},
            0.20,
        )
        assert any(
            line.startswith("SKIP") and "dispatch" in line for line in lines
        )
        assert not any(line.startswith("FAIL") for line in lines)

    def test_garbage_dispatch_value_fails_with_a_name(self):
        lines = compare(
            {"dispatch_steps": 1000},
            {"dispatch_steps": "many"},
            0.20,
        )
        assert any(
            line.startswith("FAIL") and "dispatch steps" in line
            and "non-numeric" in line
            for line in lines
        )

    def test_garbage_report_still_exits_2_with_offender(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({
            "schema": "repro-bench/v8", "totals": "not-a-dict",
        }))
        fresh = _report(tmp_path, "fresh.json", 100, 1000)
        assert main([str(base), str(fresh)]) == 2
        err = capsys.readouterr().err
        assert "base.json" in err  # the offender is named
        assert "Traceback" not in err


class TestWallThreshold:
    def test_separate_wall_budget(self):
        base = {"states_explored": 100, "wall_ms": 1000}
        fresh = {"states_explored": 100, "wall_ms": 1400}
        tight = compare(base, fresh, 0.20)
        assert any(
            line.startswith("FAIL") and "wall" in line for line in tight
        )
        loose = compare(base, fresh, 0.20, max_regress_wall=0.50)
        assert not any(line.startswith("FAIL") for line in loose)
        # ... without loosening the states budget.
        drift = compare(base, {"states_explored": 130, "wall_ms": 1000},
                        0.20, max_regress_wall=0.50)
        assert any(
            line.startswith("FAIL") and "states" in line for line in drift
        )

    def test_wall_flag_via_main(self, tmp_path):
        base = _report(tmp_path, "base.json", 100, 1000)
        slow = _report(tmp_path, "slow.json", 100, 1400)
        assert main([base, slow]) == 1
        assert main([base, slow, "--max-regress-wall", "0.5"]) == 0

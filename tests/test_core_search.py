"""Coverage for ``core.search``: statistics, truncation, and the
first-error vs. enumerate-all-errors generator contract (§5.3)."""

from repro.core import (
    If,
    NAT,
    Num,
    SearchStats,
    explore,
    find_errors,
    first_error,
    fun,
    opq,
    prim,
)
from repro.core.search import SearchResult


def _branchy_program():
    """zero? on an unknown: two answers, one of which errors."""
    return If(prim("zero?", opq(NAT, "n")), prim("div", Num(1), Num(0), label="boom"), Num(42))


def _two_error_program():
    """Both branches of an unknown test error, at different labels."""
    return If(
        prim("zero?", opq(NAT, "n")),
        prim("div", Num(1), Num(0), label="then-site"),
        prim("div", Num(2), Num(0), label="else-site"),
    )


class TestStats:
    def test_counts_answers_and_errors(self):
        stats = SearchStats()
        results = list(explore(_branchy_program(), stats=stats))
        assert stats.answers == 2
        assert stats.errors == 1
        assert stats.truncated is False
        assert stats.states_explored >= stats.answers
        assert sum(1 for r in results if r.is_error) == 1

    def test_states_accumulate_into_caller_stats(self):
        stats = SearchStats()
        list(explore(Num(1), stats=stats))
        first = stats.states_explored
        assert first > 0
        # The same stats object keeps accumulating across searches.
        list(explore(Num(2), stats=stats))
        assert stats.states_explored > first

    def test_default_stats_are_private(self):
        # No stats argument: explore still works.
        results = list(explore(_branchy_program()))
        assert len(results) == 2


class TestTruncation:
    def _loop_program(self):
        # An unbounded loop: (μ f. λx. f x) 0 never reaches an answer.
        from repro.core import App, Fix, Lam, Ref

        loop = Fix(
            "f",
            fun(NAT, NAT),
            Lam("x", NAT, App(Ref("f"), Ref("x"))),
        )
        return App(loop, Num(0))

    def test_budget_sets_truncated_flag(self):
        # Without memoisation the loop unrolls forever and the state
        # budget is what stops it (the pre-kernel behaviour).
        stats = SearchStats()
        results = list(
            explore(self._loop_program(), max_states=25, stats=stats, memo=False)
        )
        assert results == []
        assert stats.truncated is True
        assert stats.states_explored == 25

    def test_memoisation_detects_the_cycle(self):
        # With memoisation the loop's states repeat canonically (the
        # unrolled lambdas are unreachable garbage), so the search
        # terminates on its own: no answers, no truncation.
        stats = SearchStats()
        results = list(explore(self._loop_program(), max_states=25, stats=stats))
        assert results == []
        assert stats.truncated is False
        assert stats.pruned > 0
        assert stats.states_explored < 25

    def test_no_truncation_on_terminating_program(self):
        stats = SearchStats()
        list(explore(Num(7), stats=stats))
        assert stats.truncated is False


class TestErrorEnumeration:
    def test_find_errors_yields_only_errors(self):
        results = list(find_errors(_two_error_program()))
        assert len(results) == 2
        assert all(r.is_error for r in results)
        assert {r.error.label for r in results} == {"then-site", "else-site"}

    def test_find_errors_is_lazy(self):
        # Taking one error must not force the rest of the frontier.
        stats = SearchStats()
        gen = find_errors(_two_error_program(), stats=stats)
        first = next(gen)
        assert first.is_error
        explored_after_one = stats.states_explored
        list(gen)
        assert stats.states_explored > explored_after_one

    def test_first_error_stops_at_first(self):
        r = first_error(_two_error_program())
        assert r is not None and r.is_error
        # BFS order is deterministic: the zero? true-branch comes first.
        assert r.error.label == "then-site"

    def test_first_error_none_for_safe_program(self):
        assert first_error(Num(3)) is None

    def test_search_result_error_accessor(self):
        safe = [r for r in explore(_branchy_program()) if not r.is_error]
        assert safe and all(r.error is None for r in safe)


class TestSearchResultShape:
    def test_results_wrap_answer_states(self):
        for r in explore(_branchy_program()):
            assert isinstance(r, SearchResult)
            assert r.state.is_answer

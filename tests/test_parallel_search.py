"""Differential tests for the sharded frontier engine
(:mod:`repro.search.parallel`).

The engine's contract is *byte-identity*: partitioning a program's bfs
frontier across worker processes must not change anything the report
serializes except the scheduling-dependent volatile fields.  Every test
here is some flavour of that claim:

* the full smoke corpus, every backend, ``shards`` ∈ {1, 2, 4} — rows
  equal to the sequential rows modulo ``VOLATILE_ROW_FIELDS``;
* ``states_explored`` / ``chained_steps`` are partition-invariant —
  deterministic chains are compressed *inside* the expanding worker, so
  a chain that would cross a shard boundary still counts one macro
  state (the historical failure mode this file exists to pin);
* a seeded scheduling-jitter stress: randomized dispatch and steal
  order over many repetitions cannot change the yielded answers or the
  deterministic counters;
* the fork-unavailable fallback degrades to the sequential kernel with
  identical output;
* the shared solver tier: concurrent shard writers publishing to one
  ``SolverStore`` directory mid-search keep rows identical and leave a
  readable store behind.
"""

import dataclasses
import shutil
import tempfile

import pytest

from repro.core.heap import reset_locs
from repro.core.machine import Machine, inject
from repro.core.search import SearchStats
from repro.core.syntax import reset_labels as reset_core_labels
from repro.driver.corpus import CORPUS, get_program
from repro.driver.lower import lower_program
from repro.driver.report import VOLATILE_ROW_FIELDS
from repro.driver.runner import RunConfig, verify_program
from repro.lang.ast import reset_labels as reset_surface_labels
from repro.lang.parser import parse_program
from repro.search import CoreFingerprinter, ShardedSearch, fork_available
from repro.smt import solver_cache
from repro.store.solver import SolverStore

SMOKE = [p for p in CORPUS if "smoke" in p.tags]

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def _stable_row(prog, backend, shards):
    r = verify_program(prog, RunConfig(shards=shards), backend=backend)
    d = dataclasses.asdict(r)
    return {k: v for k, v in d.items() if k not in VOLATILE_ROW_FIELDS}


@pytest.fixture(scope="module")
def sequential_rows():
    """Sequential baseline rows for the whole smoke corpus, computed once."""
    return {
        (p.name, b): _stable_row(p, b, 1)
        for p in SMOKE
        for b in p.backends
    }


# ---------------------------------------------------------------------------
# Smoke-corpus differential
# ---------------------------------------------------------------------------


@needs_fork
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_smoke_corpus_byte_identical(shards, sequential_rows):
    for prog in SMOKE:
        for backend in prog.backends:
            row = _stable_row(prog, backend, shards)
            base = sequential_rows[(prog.name, backend)]
            assert row == base, (
                f"{prog.name}/{backend} diverged under --shards {shards}: "
                + ", ".join(
                    f"{k}: {base[k]!r} != {row[k]!r}"
                    for k in base
                    if base[k] != row[k]
                )
            )


@needs_fork
def test_search_accounting_is_partition_invariant(sequential_rows):
    # Deterministic chains are compressed inside the expanding worker —
    # never cut at a shard boundary — so the macro-state and chain
    # counters are pure functions of the program, not of the partition.
    # (A naive implementation that hands half-run chains to their home
    # shard counts the seam as an extra macro state.)
    for prog in SMOKE:
        for backend in prog.backends:
            base = sequential_rows[(prog.name, backend)]
            for shards in (2, 4):
                row = _stable_row(prog, backend, shards)
                for key in ("states_explored", "chained_steps",
                            "pruned_states"):
                    assert row[key] == base[key], (
                        f"{prog.name}/{backend} --shards {shards}: "
                        f"{key} {base[key]} -> {row[key]}"
                    )


# ---------------------------------------------------------------------------
# Scheduling-jitter stress
# ---------------------------------------------------------------------------


def _core_program(name):
    reset_surface_labels()
    reset_core_labels()
    reset_locs()
    return lower_program(parse_program(get_program(name).source))


def _run_engine(core, kernel_factory):
    """Answer fingerprints + deterministic counters for one search run."""
    reset_locs()
    machine = Machine()
    st = SearchStats()
    kernel = kernel_factory(machine, st)
    fp = CoreFingerprinter()
    answers = [fp(s) for s in kernel.run(inject(core))]
    return answers, (
        st.states_explored, st.chained, st.pruned, st.answers,
        machine.proof.queries, machine.proof.solver_queries,
    )


@needs_fork
def test_seeded_jitter_stress():
    # 20 repetitions with seeded, randomized dispatch and steal order
    # (chunk size 1 maximises scheduling freedom) must reproduce the
    # sequential answers and counters exactly every time.
    core = _core_program("sum-unknown-fn-abs")

    from repro.search import SearchKernel

    seq_answers, seq_counts = _run_engine(
        core,
        lambda m, st: SearchKernel(
            m.step, strategy="bfs", fingerprint=CoreFingerprinter(),
            max_states=50_000, enter=m.proof.note_path, stats=st,
        ),
    )
    assert seq_answers, "stress program must reach at least one answer"

    for rep in range(20):
        answers, counts = _run_engine(
            core,
            lambda m, st: ShardedSearch(
                m.step, shards=3, fingerprint=CoreFingerprinter(),
                max_states=50_000, enter=m.proof.note_path, stats=st,
                counter_probe=lambda: (m.proof.queries,
                                       m.proof.solver_queries),
                counter_sink=lambda c: (
                    setattr(m.proof, "queries", c[0]),
                    setattr(m.proof, "solver_queries", c[1]),
                ),
                jitter=rep, chunk_size=1,
            ),
        )
        assert answers == seq_answers, f"answers diverged at jitter seed {rep}"
        assert counts == seq_counts, f"counters diverged at jitter seed {rep}"


# ---------------------------------------------------------------------------
# Fallback and budget edges
# ---------------------------------------------------------------------------


def test_fallback_without_fork_is_sequential(monkeypatch):
    import repro.search.parallel as parallel

    monkeypatch.setattr(parallel, "fork_available", lambda: False)
    prog = get_program("div-unchecked")
    base = _stable_row(prog, "core", 1)
    row = _stable_row(prog, "core", 4)
    assert row == base
    # The fallback reports itself honestly: one effective shard.
    r = verify_program(prog, RunConfig(shards=4), backend="core")
    assert r.shards == 1
    assert r.stolen_tasks == 0 and r.frontier_exchanges == 0


@needs_fork
def test_truncation_matches_sequential():
    # A state budget that expires mid-search must truncate at the same
    # global bfs prefix whatever the partition.
    core = _core_program("sum-unknown-fn-abs")

    from repro.search import SearchKernel

    for budget in (1, 3, 7):
        seq_answers, seq_counts = _run_engine(
            core,
            lambda m, st: SearchKernel(
                m.step, strategy="bfs", fingerprint=CoreFingerprinter(),
                max_states=budget, enter=m.proof.note_path, stats=st,
            ),
        )
        answers, counts = _run_engine(
            core,
            lambda m, st: ShardedSearch(
                m.step, shards=2, fingerprint=CoreFingerprinter(),
                max_states=budget, enter=m.proof.note_path, stats=st,
                counter_probe=lambda: (m.proof.queries,
                                       m.proof.solver_queries),
                counter_sink=lambda c: (
                    setattr(m.proof, "queries", c[0]),
                    setattr(m.proof, "solver_queries", c[1]),
                ),
            ),
        )
        assert answers == seq_answers, f"answers diverged at budget {budget}"
        assert counts == seq_counts, f"counters diverged at budget {budget}"


def test_rejects_bad_construction():
    with pytest.raises(ValueError):
        ShardedSearch(lambda s: None, shards=0, fingerprint=CoreFingerprinter())
    with pytest.raises(ValueError):
        ShardedSearch(lambda s: None, shards=2, fingerprint=None)


# ---------------------------------------------------------------------------
# Shared solver tier under concurrent shard writers
# ---------------------------------------------------------------------------


@needs_fork
def test_concurrent_shard_writers_share_solver_store():
    # With a persistent backing attached, every shard publishes its fresh
    # solves to the same store directory mid-search (each worker writes
    # its own shard file, so no locking is needed).  Rows stay identical,
    # and a subsequent cold-cache run can replay the published verdicts.
    tmp = tempfile.mkdtemp(prefix="repro-test-shardstore-")
    prog = get_program("sum-unknown-fn-abs")
    try:
        base = _stable_row(prog, "core", 1)

        solver_cache.backing = SolverStore(tmp)
        try:
            row = _stable_row(prog, "core", 4)
            assert row == base

            # The shards flushed their solves: a fresh reader sees them.
            reader = SolverStore(tmp)
            published = len(reader.index())
            assert published > 0

            # Warm replay: the second sharded run probes/promotes from
            # the store instead of publishing anything new, and is still
            # byte-identical.
            again = _stable_row(prog, "core", 4)
            assert again == base
            assert len(SolverStore(tmp).index()) == published
        finally:
            solver_cache.backing = None
            solver_cache.clear()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def test_solver_store_refresh_sees_concurrent_writers():
    # ``refresh()`` is the level barrier: a store handle created before a
    # sibling process flushed must drop its cached index and pick up the
    # sibling's shard file.  Two handles on one directory model the two
    # processes.
    from repro.smt.errors import Result
    from repro.smt.terms import Eq, IntConst, Var

    phi = Eq(Var("$0"), IntConst(3))
    psi = Eq(Var("$0"), IntConst(9))
    tmp = tempfile.mkdtemp(prefix="repro-test-refresh-")
    try:
        writer = SolverStore(tmp)
        reader = SolverStore(tmp)
        assert reader.lookup(phi) is None  # index now cached (empty)

        writer.store(phi, Result.SAT, (((0, 3),), ()), True)
        writer.flush()
        assert reader.lookup(phi) is None  # stale cached index
        reader.refresh()
        got = reader.lookup(phi)
        assert got is not None and got[0] is Result.SAT

        # refresh never drops the handle's own unflushed buffer.
        reader.store(psi, Result.UNSAT, None, False)
        reader.refresh()
        got = reader.lookup(psi)
        assert got is not None and got[0] is Result.UNSAT
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

"""The untyped proof relation: tag judgements, concrete fast paths,
recorded refinements, and the solver path over the integer fragment."""

import pytest

from repro.core.heap import HConst, HLoc, HOp, PEq, PLe, PLt, PNot, PZero
from repro.core.proof import Verdict
from repro.lang.values import NIL
from repro.scv.heap import (
    NUMBER_TAGS,
    PEqDatum,
    REAL_TAGS,
    TAG_BOOLEAN,
    TAG_INTEGER,
    TAG_PAIR,
    TAG_PROCEDURE,
    TAG_STRING,
    UConc,
    UHeap,
    UOpq,
    UPair,
    UCase,
    UAlias,
)
from repro.scv.proof import UProofSystem, translate_uheap
from repro.smt import Result, check_sat, mk_not


@pytest.fixture
def proof():
    return UProofSystem()


def _alloc(heap, s):
    return heap.alloc(s)


class TestTagJudgement:
    def test_concrete_scalar_tags(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UConc(7))
        assert proof.check_tags(heap, l, NUMBER_TAGS) is Verdict.PROVED
        assert proof.check_tags(heap, l, frozenset({TAG_STRING})) is Verdict.REFUTED

    def test_concrete_structured_tags(self, proof):
        heap = UHeap.empty()
        a, heap = _alloc(heap, UConc(1))
        d, heap = _alloc(heap, UConc(NIL))
        p, heap = _alloc(heap, UPair(a, d))
        assert proof.check_tags(heap, p, frozenset({TAG_PAIR})) is Verdict.PROVED
        assert proof.check_tags(heap, p, NUMBER_TAGS) is Verdict.REFUTED

    def test_opaque_three_way(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UOpq())
        assert proof.check_tags(heap, l, NUMBER_TAGS) is Verdict.AMBIG
        heap = heap.narrow(l, REAL_TAGS)
        assert proof.check_tags(heap, l, NUMBER_TAGS) is Verdict.PROVED
        assert proof.check_tags(heap, l, frozenset({TAG_PROCEDURE})) is Verdict.REFUTED


class TestConcreteFastPath:
    def test_int_predicates_without_solver(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UConc(5))
        assert proof.check(heap, l, PZero()) is Verdict.REFUTED
        assert proof.check(heap, l, PEq(HConst(5))) is Verdict.PROVED
        assert proof.check(heap, l, PLt(HConst(10))) is Verdict.PROVED
        assert proof.check(heap, l, PLe(HConst(4))) is Verdict.REFUTED
        assert proof.solver_queries == 0

    def test_scalar_equality_datum(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UConc("hello"))
        assert proof.check(heap, l, PEqDatum("hello")) is Verdict.PROVED
        assert proof.check(heap, l, PEqDatum("bye")) is Verdict.REFUTED

    def test_heap_term_evaluation(self, proof):
        heap = UHeap.empty()
        a, heap = _alloc(heap, UConc(3))
        b, heap = _alloc(heap, UConc(10))
        subj, heap = _alloc(heap, UConc(7))
        term = HOp("-", (HLoc(b), HLoc(a)))
        assert proof.check(heap, subj, PEq(term)) is Verdict.PROVED


class TestRecordedRefinements:
    def test_verbatim_and_negated(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER}), (PZero(),)))
        assert proof.check(heap, l, PZero()) is Verdict.PROVED
        l2, heap = _alloc(
            heap, UOpq(frozenset({TAG_INTEGER}), (PNot(PZero()),))
        )
        assert proof.check(heap, l2, PZero()) is Verdict.REFUTED
        assert proof.solver_queries == 0

    def test_tag_refutes_datum_equality(self, proof):
        heap = UHeap.empty()
        l, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER})))
        # An integer-narrowed opaque can never equal #f.
        assert proof.check(heap, l, PEqDatum(False)) is Verdict.REFUTED


class TestSolverPath:
    def test_arithmetic_chain(self, proof):
        # x: int, t = x + 1, refine ¬(x < 0): then t = 0 is refutable.
        heap = UHeap.empty()
        x, heap = _alloc(
            heap, UOpq(frozenset({TAG_INTEGER}), (PNot(PLt(HConst(0))),))
        )
        t, heap = _alloc(
            heap,
            UOpq(frozenset({TAG_INTEGER}),
                 (PEq(HOp("+", (HLoc(x), HConst(1)))),)),
        )
        assert proof.check(heap, t, PZero()) is Verdict.REFUTED
        assert proof.solver_queries >= 1

    def test_ambiguous_branches(self, proof):
        heap = UHeap.empty()
        x, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER})))
        assert proof.check(heap, x, PZero()) is Verdict.AMBIG

    def test_unnarrowed_subject_is_ambig_not_solved(self, proof):
        # Trusting the integer formula for a maybe-pair subject would be
        # unsound; the relation must answer AMBIG and let δ branch.
        heap = UHeap.empty()
        x, heap = _alloc(heap, UOpq())
        before = proof.solver_queries
        assert proof.check(heap, x, PZero()) is Verdict.AMBIG
        assert proof.solver_queries == before


class TestHeapTranslation:
    def test_concrete_ints_pin_variables(self):
        heap = UHeap.empty()
        x, heap = _alloc(heap, UConc(4))
        phi = translate_uheap(heap)
        from repro.smt import mk_eq, mk_var

        assert check_sat(phi, mk_eq(mk_var(x.name), 4)) is Result.SAT
        assert check_sat(phi, mk_not(mk_eq(mk_var(x.name), 4))) is Result.UNSAT

    def test_case_consistency_implications(self):
        # case [k1 ↦ v1] [k2 ↦ v2] with k1 = k2 forces v1 = v2.
        heap = UHeap.empty()
        k1, heap = _alloc(heap, UConc(3))
        k2, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER}),
                                     (PEq(HConst(3)),)))
        v1, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER})))
        v2, heap = _alloc(heap, UOpq(frozenset({TAG_INTEGER})))
        f, heap = _alloc(heap, UCase(1, (((k1,), v1), ((k2,), v2))))
        phi = translate_uheap(heap)
        from repro.smt import mk_eq, mk_var

        distinct = mk_not(mk_eq(mk_var(v1.name), mk_var(v2.name)))
        assert check_sat(phi, distinct) is Result.UNSAT

    def test_non_integer_facts_are_dropped(self):
        # Booleans, strings, pairs contribute no constraint: the formula
        # stays satisfiable whatever they hold.
        heap = UHeap.empty()
        b, heap = _alloc(heap, UConc(False))
        s, heap = _alloc(heap, UConc("x"))
        o, heap = _alloc(heap, UOpq(frozenset({TAG_BOOLEAN}),
                                    (PEqDatum(False),)))
        assert check_sat(translate_uheap(heap)) is Result.SAT

    def test_alias_links_integers(self):
        heap = UHeap.empty()
        x, heap = _alloc(heap, UConc(9))
        cell, heap = _alloc(heap, UAlias(x))
        phi = translate_uheap(heap)
        from repro.smt import mk_eq, mk_var

        assert check_sat(phi, mk_not(mk_eq(mk_var(cell.name), 9))) is Result.UNSAT

"""Tests for the s-expression reader, parser, and concrete interpreter."""

from fractions import Fraction

import pytest

from repro.conc import (
    ContractBlame,
    Interp,
    InterpTimeout,
    PrimBlame,
    UserAbort,
    run_source,
)
from repro.lang import (
    ParseError,
    ReadError,
    Symbol,
    parse_program,
    read_all,
    read_one,
    to_pylist,
    write_datum,
)


class TestReader:
    def test_atoms(self):
        assert read_one("42") == 42
        assert read_one("-7") == -7
        assert read_one("1/2") == Fraction(1, 2)
        assert read_one("3.25") == 3.25
        assert read_one("#t") is True
        assert read_one("#f") is False
        assert read_one("hello") == Symbol("hello")
        assert read_one('"a string"') == "a string"

    def test_complex_literals(self):
        assert read_one("0+1i") == complex(0, 1)
        assert read_one("3-2i") == complex(3, -2)
        assert read_one("+i") == complex(0, 1)

    def test_nested_lists(self):
        d = read_one("(a (b c) 3)")
        assert d == [Symbol("a"), [Symbol("b"), Symbol("c")], 3]

    def test_square_brackets(self):
        d = read_one("(cond [(= x 1) 2] [else 3])")
        assert isinstance(d, list) and len(d) == 3

    def test_quote_sugar(self):
        assert read_one("'x") == [Symbol("quote"), Symbol("x")]
        assert read_one("'(1 2)") == [Symbol("quote"), [1, 2]]

    def test_comments_skipped(self):
        data = read_all("; comment\n1 ; trailing\n2")
        assert data == [1, 2]

    def test_string_escapes(self):
        assert read_one(r'"a\"b\n"') == 'a"b\n'

    def test_unbalanced(self):
        with pytest.raises(ReadError):
            read_all("(a (b)")
        with pytest.raises(ReadError):
            read_all("a)")

    def test_write_roundtrip(self):
        for text in ["(a 1 #t)", '"s"', "(1 1/2 (x))"]:
            assert read_one(write_datum(read_one(text))) == read_one(text)


class TestInterpBasics:
    def test_arithmetic(self):
        assert run_source("(+ 1 2 3)") == 6
        assert run_source("(* 2 (- 10 3))") == 14
        assert run_source("(/ 1 2)") == Fraction(1, 2)
        assert run_source("(/ 6 3)") == 2  # normalised to int

    def test_division_by_zero_blames_site(self):
        with pytest.raises(PrimBlame) as exc:
            run_source("(/ 1 0)")
        assert exc.value.op == "/"

    def test_comparison_requires_reals(self):
        with pytest.raises(PrimBlame):
            run_source("(< 1 0+1i)")

    def test_if_and_truthiness(self):
        assert run_source("(if 0 'yes 'no)") == Symbol("yes")  # 0 is truthy!
        assert run_source("(if #f 'yes 'no)") == Symbol("no")

    def test_lambda_and_application(self):
        assert run_source("((lambda (x y) (+ x y)) 3 4)") == 7

    def test_let_forms(self):
        assert run_source("(let ([x 1] [y 2]) (+ x y))") == 3
        assert run_source("(let* ([x 1] [y (+ x 1)]) y)") == 2
        assert run_source("(letrec ([f (lambda (n) (if (= n 0) 1 (* n (f (- n 1)))))]) (f 5))") == 120

    def test_named_let(self):
        src = "(let loop ([n 5] [acc 0]) (if (= n 0) acc (loop (- n 1) (+ acc n))))"
        assert run_source(src) == 15

    def test_define_and_recursion(self):
        src = """
        (define (fact n) (if (= n 0) 1 (* n (fact (- n 1)))))
        (fact 6)
        """
        assert run_source(src) == 720

    def test_cond_case(self):
        assert run_source("(cond [#f 1] [(= 1 1) 2] [else 3])") == 2
        assert run_source("(case (+ 1 2) [(1 2) 'small] [(3) 'three] [else 'big])") == Symbol("three")

    def test_and_or(self):
        assert run_source("(and 1 2 3)") == 3
        assert run_source("(and #f 2)") is False
        assert run_source("(or #f 5)") == 5
        assert run_source("(or)") is False

    def test_lists(self):
        assert to_pylist(run_source("(list 1 2 3)")) == [1, 2, 3]
        assert run_source("(car (cons 1 2))") == 1
        assert run_source("(length '(a b c))") == 3
        assert to_pylist(run_source("(reverse '(1 2))")) == [2, 1]
        assert to_pylist(run_source("(append '(1) '(2 3))")) == [1, 2, 3]

    def test_car_of_empty_blames(self):
        with pytest.raises(PrimBlame):
            run_source("(car '())")

    def test_higher_order_prims(self):
        assert to_pylist(run_source("(map (lambda (x) (* x x)) '(1 2 3))")) == [1, 4, 9]
        assert to_pylist(run_source("(filter odd? '(1 2 3 4 5))")) == [1, 3, 5]
        assert run_source("(foldl + 0 '(1 2 3))") == 6
        assert run_source("(andmap number? '(1 2))") is True
        assert run_source("(ormap string? '(1 2))") is False

    def test_numeric_tower(self):
        assert run_source("(number? 0+1i)") is True
        assert run_source("(real? 0+1i)") is False
        assert run_source("(integer? 2)") is True
        assert run_source("(integer? 1/2)") is False
        assert run_source("(rational? 1/2)") is True
        assert run_source("(+ 1/2 1/2)") == 1

    def test_boxes_and_set(self):
        src = "(define b (box 1)) (set-box! b (+ (unbox b) 41)) (unbox b)"
        assert run_source(src) == 42

    def test_set_bang(self):
        src = "(define x 1) (set! x 10) x"
        assert run_source(src) == 10

    def test_user_error(self):
        with pytest.raises(UserAbort):
            run_source('(error "boom")')

    def test_fuel_limit(self):
        with pytest.raises(InterpTimeout):
            run_source("(define (loop) (loop)) (loop)", fuel=1000)

    def test_quoted_data(self):
        v = run_source("'(1 (2 3))")
        items = to_pylist(v)
        assert items[0] == 1 and to_pylist(items[1]) == [2, 3]

    def test_strings(self):
        assert run_source('(string-append "a" "b")') == "ab"
        assert run_source('(string=? "x" "x")') is True
        assert run_source('(string-length "abc")') == 3


class TestStructs:
    SRC = """
    (module m
      (struct posn (x y))
      (define (make-it a b) (posn a b))
      (provide make-it posn posn? posn-x posn-y))
    """

    def test_construct_and_access(self):
        assert run_source(self.SRC + "(posn-x (make-it 3 4))") == 3
        assert run_source(self.SRC + "(posn? (make-it 1 2))") is True
        assert run_source(self.SRC + "(posn? 5)") is False

    def test_accessor_wrong_type_blames(self):
        with pytest.raises(PrimBlame):
            run_source(self.SRC + "(posn-x 7)")


class TestContracts:
    def test_flat_contract_pass(self):
        src = """
        (module m
          (define (f x) (* x 2))
          (provide [f (-> integer? integer?)]))
        (f 21)
        """
        assert run_source(src) == 42

    def test_flat_contract_blames_client_on_bad_arg(self):
        src = """
        (module m
          (define (f x) (* x 2))
          (provide [f (-> integer? integer?)]))
        (f "nope")
        """
        with pytest.raises(ContractBlame) as exc:
            run_source(src)
        assert "client" in exc.value.party

    def test_range_violation_blames_module(self):
        src = """
        (module m
          (define (f x) "oops")
          (provide [f (-> integer? integer?)]))
        (f 1)
        """
        with pytest.raises(ContractBlame) as exc:
            run_source(src)
        assert exc.value.party == "m"

    def test_higher_order_contract_wraps(self):
        src = """
        (module m
          (define (twice g x) (g (g x)))
          (provide [twice (-> (-> integer? integer?) integer? integer?)]))
        (twice (lambda (n) (+ n 1)) 5)
        """
        assert run_source(src) == 7

    def test_higher_order_blames_client_function(self):
        # The client's function returns a string: the client broke the
        # inner range, which is the *client's* obligation here.
        src = """
        (module m
          (define (use g) (+ 1 (g 0)))
          (provide [use (-> (-> integer? integer?) integer?)]))
        (use (lambda (n) "bad"))
        """
        with pytest.raises(ContractBlame) as exc:
            run_source(src)
        assert "client" in exc.value.party

    def test_and_or_contracts(self):
        src = """
        (module m
          (define (f x) x)
          (provide [f (-> (and/c integer? positive?) (or/c integer? string?))]))
        (f 3)
        """
        assert run_source(src) == 3
        bad = src.replace("(f 3)", "(f -3)")
        with pytest.raises(ContractBlame):
            run_source(bad)

    def test_listof_contract(self):
        src = """
        (module m
          (define (total xs) (foldl + 0 xs))
          (provide [total (-> (listof integer?) integer?)]))
        (total (list 1 2 3))
        """
        assert run_source(src) == 6
        with pytest.raises(ContractBlame):
            run_source(src.replace("(list 1 2 3)", "(list 1 'a)"))

    def test_cons_and_one_of(self):
        src = """
        (module m
          (define (f p) (car p))
          (provide [f (-> (cons/c integer? integer?) integer?)]))
        (f (cons 1 2))
        """
        assert run_source(src) == 1

    def test_dependent_contract(self):
        # Range depends on the argument: f must return exactly its input.
        src = """
        (module m
          (define (f x) x)
          (provide [f (->d ([x integer?]) (=/c x))]))
        (f 5)
        """
        assert run_source(src) == 5
        bad = """
        (module m
          (define (f x) (+ x 1))
          (provide [f (->d ([x integer?]) (=/c x))]))
        (f 5)
        """
        with pytest.raises(ContractBlame) as exc:
            run_source(bad)
        assert exc.value.party == "m"

    def test_struct_contract(self):
        src = """
        (module m
          (struct p (x y))
          (define (mk a) (p a a))
          (provide [mk (-> integer? (struct/c p integer? integer?))] p-x p-y p p?))
        (p-x (mk 3))
        """
        assert run_source(src) == 3

    def test_recursive_contract(self):
        src = """
        (module m
          (define list-of-ints/c
            (recursive-contract (or/c null? (cons/c integer? list-of-ints/c))))
          (define (f xs) xs)
          (provide [f (-> list-of-ints/c any/c)]))
        (f (list 1 2 3))
        """
        assert to_pylist(run_source(src)) == [1, 2, 3]

    def test_opaque_requires_binding(self):
        from repro.conc.interp import RuntimeFault

        src = """
        (module m
          (define-opaque mystery (-> integer? integer?))
          (define (f) (mystery 1))
          (provide [f (-> integer?)]))
        (f)
        """
        with pytest.raises(RuntimeFault):
            run_source(src)

    def test_opaque_with_supplied_value(self):
        from repro.lang.parser import parse_expr_string

        src = """
        (module m
          (define-opaque mystery (-> integer? integer?))
          (define (f) (mystery 1))
          (provide [f (-> integer?)]))
        """
        program = parse_program(src + "(f)")
        interp = Interp()

        g = interp.eval(parse_expr_string("(lambda (n) (* n 10))"), interp.globals)
        assert interp.run_program(program, opaque_values={"mystery": g}) == 10


class TestParseErrors:
    def test_variadic_lambda_rejected(self):
        with pytest.raises(ParseError):
            parse_program("(lambda args args)")

    def test_empty_application(self):
        with pytest.raises(ParseError):
            parse_program("()")

    def test_bad_define(self):
        with pytest.raises(ParseError):
            parse_program("(define)")

"""The incremental solving layer: scoped assertion levels, assumption
checks, per-path contexts, and incremental-vs-one-shot equivalence.

The randomized differential test is the correctness anchor: an
interleaving of ``add``/``push``/``pop``/``check`` on one long-lived
incremental solver must give, at every check, the same :class:`Result`
as a fresh one-shot solver handed the same assertion prefix — and every
SAT model must actually satisfy the assertions.  The formulas stay in
the decisive (linear + UF + div-by-constant) fragment so every answer
is SAT or UNSAT and the equality is exact.
"""

import random

import pytest

from repro.smt import (
    FuncDecl,
    PathContext,
    Result,
    SOLVE_STATS,
    Solver,
    check_sat,
    get_model,
    mk_add,
    mk_and,
    mk_app,
    mk_distinct,
    mk_div,
    mk_eq,
    mk_ge,
    mk_le,
    mk_lt,
    mk_mul,
    mk_not,
    mk_or,
    mk_sub,
    mk_var,
    solver_cache,
)
from repro.smt.cache import canonicalize

x, y, z, w = mk_var("x"), mk_var("y"), mk_var("z"), mk_var("w")
f = FuncDecl("f", 1)


class TestScopeDiscipline:
    """Popped scopes must retire their preprocessing state: auxiliary
    variables from div/mod axiomatization and Ackermann consistency
    clauses cannot leak constraints into later scopes."""

    def test_popped_div_axioms_do_not_leak(self):
        s = Solver()
        s.push()
        # Introduces q/r auxiliaries with the nonzero-divisor axiom on y.
        s.add(mk_eq(mk_div(x, y), 3))
        assert s.check() is Result.SAT
        s.pop()
        # If the popped axiom leaked, y = 0 would now be inconsistent.
        s.add(mk_eq(y, 0))
        assert s.check() is Result.SAT

    def test_div_axioms_reemitted_after_pop(self):
        s = Solver()
        s.push()
        s.add(mk_eq(mk_div(mk_var("n"), mk_var("d")), 3))
        s.pop()
        # The same Div term in a fresh scope must get fresh auxiliaries
        # *with* axioms — a stale cache entry would leave it unconstrained.
        s.push()
        s.add(mk_eq(mk_div(mk_var("n"), mk_var("d")), 3), mk_eq(mk_var("d"), 0))
        assert s.check() is Result.UNSAT
        s.pop()

    def test_popped_ackermann_consistency_reemitted(self):
        s = Solver()
        s.push()
        s.add(mk_eq(mk_app(f, x), 1), mk_eq(mk_app(f, y), 2))
        assert s.check() is Result.SAT
        s.pop()
        # Re-using f(x)/f(y) after the pop must re-emit the functional-
        # consistency clause; a leaked app-cache entry would answer SAT.
        s.add(mk_eq(x, y), mk_eq(mk_app(f, x), 1), mk_eq(mk_app(f, y), 2))
        assert s.check() is Result.UNSAT

    def test_pop_restores_sat(self):
        s = Solver()
        s.add(mk_ge(x, 0))
        for _ in range(3):
            s.push()
            s.add(mk_lt(x, 0))
            assert s.check() is Result.UNSAT
            s.pop()
            assert s.check() is Result.SAT

    def test_lemmas_survive_pop(self):
        # A theory lemma learned over base-scope atoms stays after inner
        # scopes are popped: the second identical check reuses clauses.
        s = Solver()
        s.add(mk_or(mk_eq(x, 1), mk_eq(x, 2)), mk_ge(x, 2))
        assert s.check() is Result.SAT
        s.push()
        s.add(mk_le(y, 5))
        assert s.check() is Result.SAT
        s.pop()
        snap = SOLVE_STATS.clauses_reused
        assert s.check() is Result.SAT
        assert SOLVE_STATS.clauses_reused >= snap

    def test_deep_push_pop_stack(self):
        s = Solver()
        for k in range(12):
            s.push()
            s.add(mk_ge(x, k))
        assert s.check() is Result.SAT
        assert s.model()[x] >= 11
        for _ in range(12):
            s.pop()
        assert s.scope_depth() == 0
        assert s.check() is Result.SAT


class TestAssumptionChecks:
    """``check(*extra)`` runs the extras as transient assumptions: the
    persistent context is identical before and after, which is what lets
    the paired ``ψ`` / ``¬ψ`` proof queries share one context."""

    def test_paired_queries_share_context(self):
        s = Solver()
        s.add(mk_ge(x, 1), mk_le(x, 1))
        psi = mk_eq(x, 1)
        assert s.check(mk_not(psi)) is Result.UNSAT
        assert s.check(psi) is Result.SAT
        assert s.check() is Result.SAT  # context unpolluted

    def test_alternating_extras_do_not_accumulate(self):
        s = Solver()
        s.add(mk_ge(x, 0))
        for k in range(6):
            assert s.check(mk_eq(x, k)) is Result.SAT
            assert s.check(mk_lt(x, 0)) is Result.UNSAT
        assert s.check() is Result.SAT

    def test_extra_with_div_is_transient(self):
        s = Solver()
        s.add(mk_ge(y, 5))
        assert s.check(mk_eq(mk_div(x, y), 2)) is Result.SAT
        # The div auxiliaries from the extra were retired with it.
        assert s.check(mk_eq(y, 7)) is Result.SAT
        assert s.check() is Result.SAT

    def test_incremental_counters_tick(self):
        snap = (SOLVE_STATS.fresh_solves, SOLVE_STATS.incremental_queries)
        s = Solver()
        s.add(mk_ge(x, 0))
        s.check()
        s.check(mk_eq(x, 3))
        s.check()
        assert SOLVE_STATS.fresh_solves == snap[0] + 1
        assert SOLVE_STATS.incremental_queries == snap[1] + 2


def _random_formula(rng, depth=0):
    """A decisive-fragment formula: linear atoms, shallow disjunctions,
    uninterpreted applications, division by a nonzero constant."""
    vs = (x, y, z, w)
    def term():
        pick = rng.random()
        a = rng.choice(vs)
        if pick < 0.45:
            return a
        if pick < 0.7:
            return mk_add(a, rng.randint(-4, 4))
        if pick < 0.8:
            return mk_sub(mk_mul(rng.randint(1, 3), a), rng.choice(vs))
        if pick < 0.9:
            return mk_app(f, a)
        return mk_div(a, rng.choice((2, 3, -2)))

    def atom():
        kind = rng.random()
        lhs, rhs = term(), term()
        if kind < 0.4:
            return mk_eq(lhs, rng.randint(-5, 5))
        if kind < 0.6:
            return mk_le(lhs, rhs)
        if kind < 0.8:
            return mk_lt(lhs, rng.randint(-5, 5))
        return mk_distinct(lhs, rhs)

    if depth == 0 and rng.random() < 0.35:
        return mk_or(_random_formula(rng, 1), _random_formula(rng, 1))
    if depth == 0 and rng.random() < 0.2:
        return mk_and(atom(), atom())
    return atom()


def _eval_defaulted(m, g):
    """Evaluate ``g`` under model ``m``, defaulting unconstrained
    variables to 0 (``simplify`` folds vacuous atoms like ``w <= w``
    away before the solver sees them, so such variables legitimately
    have no model entry — any value satisfies)."""
    from repro.smt import eval_formula, free_vars

    env = {v: m[v] for v in free_vars(g)}
    return eval_formula(g, env, m.funcs)


class TestRandomizedDifferential:
    """Interleaved add/push/pop/check vs a fresh one-shot solver per
    prefix: identical Results, and SAT models satisfy the assertions."""

    @pytest.mark.parametrize("seed", range(12))
    def test_differential(self, seed):
        rng = random.Random(0xC0FFEE + seed)
        inc = Solver()
        depth = 0
        for _step in range(30):
            op = rng.random()
            if op < 0.35:
                inc.add(_random_formula(rng))
            elif op < 0.5:
                inc.push()
                depth += 1
            elif op < 0.62 and depth:
                inc.pop()
                depth -= 1
            else:
                extra = (_random_formula(rng),) if rng.random() < 0.5 else ()
                got = inc.check(*extra)
                ref = Solver()
                for g in inc.assertions():
                    ref.add(g)
                want = ref.check(*extra)
                if Result.UNKNOWN not in (got, want):
                    assert got is want, (
                        f"seed {seed}: incremental {got} vs one-shot {want} "
                        f"on {inc.assertions()} + {list(extra)}"
                    )
                else:
                    # Budget asymmetry (the warm context's lemmas can
                    # decide a query the cold solver gives up on, and
                    # vice versa) may produce one UNKNOWN — but never a
                    # SAT/UNSAT contradiction.
                    assert {got, want} <= {
                        Result.UNKNOWN, Result.SAT
                    } or {got, want} <= {Result.UNKNOWN, Result.UNSAT}, (
                        f"seed {seed}: contradictory {got} vs {want}"
                    )
                if got is Result.SAT:
                    m = inc.model()
                    for g in inc.assertions() + list(extra):
                        assert _eval_defaulted(m, g), (
                            f"seed {seed}: model {m} violates {g}"
                        )


class TestPathContext:
    def _parts(self, *formulas):
        return tuple(formulas)

    def test_fork_between_sibling_trails(self):
        ctx = PathContext()
        shared = (mk_ge(x, 0), mk_le(x, 10))
        left = shared + (mk_eq(x, 3),)
        right = shared + (mk_eq(x, 11),)
        assert ctx.check(left) is Result.SAT
        pushes = SOLVE_STATS.scope_pushes
        assert ctx.check(right) is Result.UNSAT  # forked at the shared prefix
        # Only the divergent suffix was re-pushed, not the shared prefix.
        assert SOLVE_STATS.scope_pushes - pushes == 1
        assert ctx.check(left) is Result.SAT

    def test_growing_trail_reuses_prefix(self):
        ctx = PathContext()
        trail = []
        for k in range(8):
            trail.append(mk_ge(x, k))
            assert ctx.check(tuple(trail)) is Result.SAT
        assert ctx.scope_depth == 8
        assert ctx.check(tuple(trail), mk_lt(x, 7)) is Result.UNSAT

    def test_rebuild_threshold_keeps_answers(self):
        ctx = PathContext(rebuild_after=3)
        rebuilds = SOLVE_STATS.context_rebuilds
        for k in range(10):
            parts = (mk_ge(x, 0), mk_eq(y, k))
            assert ctx.check(parts, mk_lt(x, 0)) is Result.UNSAT
            assert ctx.check(parts, mk_eq(x, k)) is Result.SAT
        assert SOLVE_STATS.context_rebuilds > rebuilds

    def test_note_switch_drops_translation_memo(self):
        ctx = PathContext()
        heap = object()
        calls = []

        def translate(h):
            calls.append(h)
            return (mk_ge(x, 0),)

        assert ctx.parts_for(heap, translate) == (mk_ge(x, 0),)
        assert ctx.parts_for(heap, translate) == (mk_ge(x, 0),)
        assert len(calls) == 1  # identity-memoized
        ctx.note_switch()
        ctx.parts_for(heap, translate)
        assert len(calls) == 2


class TestCacheComposition:
    """Incremental answers and the canonicalizing cache must compose:
    result-only entries serve verdicts, and a later ``get_model`` solves
    canonically and upgrades the entry instead of reporting a context-
    history-dependent model."""

    def setup_method(self):
        solver_cache.clear()

    def test_check_under_stores_result_only(self):
        ctx = PathContext()
        parts = (mk_ge(x, 2), mk_le(x, 2))
        psi = mk_eq(x, 2)
        assert ctx.check_under(parts, psi) is Result.SAT
        canon, _, _ = canonicalize(mk_and(*parts, psi))
        entry = solver_cache.get(canon)
        assert entry is not None and entry[0] is Result.SAT
        assert entry[2] is False  # result-only: no model captured

    def test_get_model_upgrades_result_only_entry(self):
        ctx = PathContext()
        parts = (mk_ge(x, 2), mk_le(x, 2))
        psi = mk_eq(x, 2)
        ctx.check_under(parts, psi)
        m = get_model(mk_and(*parts, psi))
        assert m is not None and m[x] == 2
        canon, _, _ = canonicalize(mk_and(*parts, psi))
        entry = solver_cache.get(canon)
        assert entry is not None and entry[2] is True  # upgraded

    def test_cached_verdict_answers_without_context(self):
        ctx = PathContext()
        parts = (mk_ge(x, 0),)
        psi = mk_lt(x, 0)
        assert ctx.check_under(parts, psi) is Result.UNSAT
        hits = solver_cache.hits
        assert ctx.check_under(parts, psi) is Result.UNSAT
        assert solver_cache.hits == hits + 1

    def test_one_shot_and_incremental_agree_through_cache(self):
        ctx = PathContext()
        parts = (mk_ge(x, 1), mk_le(x, 3))
        for psi in (mk_eq(x, 2), mk_eq(x, 5), mk_lt(x, 1)):
            assert ctx.check_under(parts, psi) is check_sat(
                mk_and(*parts), psi
            )


class TestAtomicCacheClear:
    def test_clear_resets_counters_with_table(self):
        solver_cache.clear()
        check_sat(mk_eq(x, 1))  # miss
        check_sat(mk_eq(x, 1))  # hit
        assert solver_cache.hits >= 1 and solver_cache.misses >= 1
        solver_cache.clear()
        assert solver_cache.hits == 0
        assert solver_cache.misses == 0
        assert len(solver_cache) == 0
        assert solver_cache.snapshot() == (0, 0)

"""The persistent verification store (repro.store):

* **fingerprints** — program digests are format- and rename-invariant
  but distinguish genuinely different programs; config digests track
  exactly the semantic fields;
* **module slices** — dependency-closed, order-preserving, and the
  whole granularity story: editing one module leaves independent
  modules' unit keys untouched;
* **round trip** — a warm run replays a cold run byte-for-byte modulo
  the volatile fields (the same differential CI enforces corpus-wide);
* **invalidation** — editing one module of a multi-module program
  re-verifies only the units that can reach it;
* **concurrency** — two writer processes sharing a store directory
  publish entries without losing or corrupting either's work;
* **corruption** — truncated or garbage shard lines and verdict files
  degrade to recomputation, never to a wrong or missing answer;
* **gc** — compaction preserves every entry; a size bound evicts until
  the store fits;
* **store verify** — re-running stored entries detects tampering;
* **CLI** — ``--store``/``--no-store``/``REPRO_STORE`` resolution and
  the ``repro store`` subcommands.
"""

import json
import multiprocessing
import os
from dataclasses import asdict, replace

import pytest

from repro.driver.__main__ import main as cli_main
from repro.driver.corpus import corpus_names, get_program
from repro.driver.report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_SAFE,
    VOLATILE_ROW_FIELDS,
)
from repro.driver.runner import RunConfig, run_corpus, verify_source
from repro.lang.parser import parse_program
from repro.smt.cache import SolverCache
from repro.smt.errors import Result
from repro.smt.terms import And, Eq, IntConst, Le, Var
from repro.store import (
    CLIENT_MAIN,
    CLIENT_MODULE,
    SolverStore,
    config_digest,
    module_slices,
    program_digest,
)
from repro.store.verdicts import check_entries, get_store

CHAIN = get_program("modules-chain-div").source
TRIPLE = get_program("modules-triple-pipeline").source


def _stable(result) -> dict:
    return {
        k: v for k, v in asdict(result).items()
        if k not in VOLATILE_ROW_FIELDS
    }


def _cfg(store_dir=None, **kw) -> RunConfig:
    kw.setdefault("timeout_s", 60.0)
    return RunConfig(store_dir=store_dir, **kw)


class TestFingerprints:
    def test_format_invariance(self):
        a = parse_program("(define (f x) (+ x 1))\n(f 2)")
        b = parse_program(
            ";; a comment\n( define ( f x ) (+ x 1) )\n\n(f 2)"
        )
        assert program_digest(a) == program_digest(b)

    def test_rename_invariance_of_locals(self):
        a = parse_program("(define (f x) (+ x 1))\n(f 2)")
        b = parse_program("(define (f y) (+ y 1))\n(f 2)")
        assert program_digest(a) == program_digest(b)

    def test_distinct_programs_distinct_digests(self):
        a = parse_program("(f 2)")
        b = parse_program("(f 3)")
        assert program_digest(a) != program_digest(b)

    def test_module_interface_names_matter(self):
        # Provide names are observable (blame parties, client API):
        # renaming one must change the digest.
        a = parse_program(
            "(module m (define (f x) x) (provide [f (-> integer? integer?)]))"
        )
        b = parse_program(
            "(module m (define (g x) x) (provide [g (-> integer? integer?)]))"
        )
        assert program_digest(a) != program_digest(b)

    def test_config_digest_tracks_semantic_fields_only(self):
        base = asdict(RunConfig())
        assert config_digest(base) == config_digest(
            {**base, "jobs": 8, "store_dir": "/x", "client_of": "m"}
        )
        assert config_digest(base) != config_digest(
            {**base, "max_states": 7}
        )
        assert config_digest(base) != config_digest(
            {**base, "strategy": "dfs"}
        )


class TestModuleSlices:
    def test_single_module_is_one_unit(self):
        program = parse_program(
            "(module m (define (f x) x) (provide [f (-> integer? integer?)]))"
        )
        assert module_slices(program) is None

    def test_chain_slices(self):
        units = module_slices(parse_program(CHAIN))
        markers = [m for m, _, _ in units]
        assert markers == [CLIENT_MODULE + "lib", CLIENT_MODULE + "app"]
        by = {m: p for m, p, _ in units}
        assert [m.name for m in by[CLIENT_MODULE + "lib"].modules] == ["lib"]
        assert [m.name for m in by[CLIENT_MODULE + "app"].modules] == [
            "lib", "app",
        ]

    def test_transitive_closure(self):
        units = module_slices(parse_program(TRIPLE))
        by = {m: p for m, p, _ in units}
        assert [m.name for m in by[CLIENT_MODULE + "m3"].modules] == [
            "m1", "m2", "m3",
        ]

    def test_main_unit_keeps_only_reachable_modules(self):
        program = parse_program(
            "(module a (define (f x) x) (provide [f (-> integer? integer?)]))\n"
            "(module b (define (g x) x) (provide [g (-> integer? integer?)]))\n"
            "(g 1)"
        )
        units = module_slices(program)
        main = next(p for m, p, _ in units if m == CLIENT_MAIN)
        assert [m.name for m in main.modules] == ["b"]

    def test_independent_module_edit_preserves_unit_key(self):
        # Editing b must not change a's unit digest (they are unrelated).
        v1 = parse_program(
            "(module a (define (f x) x) (provide [f (-> integer? integer?)]))\n"
            "(module b (define (g x) x) (provide [g (-> integer? integer?)]))"
        )
        v2 = parse_program(
            "(module a (define (f x) x) (provide [f (-> integer? integer?)]))\n"
            "(module b (define (g x) (+ x 1)) "
            "(provide [g (-> integer? integer?)]))"
        )
        key = CLIENT_MODULE + "a"
        s1 = next(p for m, p, _ in module_slices(v1) if m == key)
        s2 = next(p for m, p, _ in module_slices(v2) if m == key)
        assert program_digest(s1) == program_digest(s2)


class TestRoundTrip:
    def test_warm_replay_is_byte_identical(self, tmp_path):
        cfg = _cfg(str(tmp_path / "store"))
        cold = verify_source(CHAIN, name="p", kind="buggy",
                             config=cfg, backend="scv")
        warm = verify_source(CHAIN, name="p", kind="buggy",
                             config=cfg, backend="scv")
        assert cold.status == STATUS_COUNTEREXAMPLE
        assert _stable(cold) == _stable(warm)
        assert cold.store_misses == 2 and cold.store_hits == 0
        assert warm.store_hits == 2 and warm.store_misses == 0
        assert warm.modules_reverified == 0

    def test_store_agrees_with_plain_run(self):
        # Decomposition must not change the verdict or the witness.
        for name in corpus_names(tag="modules"):
            prog = get_program(name)
            plain = verify_source(prog.source, name=name, kind=prog.kind,
                                  config=_cfg(), backend="scv")
            assert plain.as_expected, (name, plain.status, plain.detail)

    def test_name_and_kind_come_from_the_request(self, tmp_path):
        cfg = _cfg(str(tmp_path / "store"))
        verify_source(CHAIN, name="first", kind="?", config=cfg,
                      backend="scv")
        r = verify_source(CHAIN, name="second", kind="buggy", config=cfg,
                          backend="scv")
        assert r.name == "second" and r.kind == "buggy"
        assert r.store_hits == 2

    def test_different_config_is_a_different_key(self, tmp_path):
        store = str(tmp_path / "store")
        verify_source(CHAIN, config=_cfg(store), backend="scv")
        r = verify_source(
            CHAIN, config=_cfg(store, max_states=9_999), backend="scv"
        )
        assert r.store_hits == 0 and r.store_misses == 2


class TestInvalidation:
    def test_editing_one_module_reverifies_only_its_cone(self, tmp_path):
        cfg = _cfg(str(tmp_path / "store"))
        verify_source(TRIPLE, config=cfg, backend="scv")
        # Editing m2 invalidates m2's and m3's units; m1 replays.
        edited = TRIPLE.replace("(dec (dec n))", "(dec (dec (dec n)))")
        r = verify_source(edited, config=cfg, backend="scv")
        assert r.store_hits == 1  # m1
        assert r.store_misses == 2  # m2, m3
        assert r.modules_reverified == 2

    def test_editing_a_leaf_module_reverifies_everything_downstream(
        self, tmp_path
    ):
        cfg = _cfg(str(tmp_path / "store"))
        verify_source(TRIPLE, config=cfg, backend="scv")
        edited = TRIPLE.replace("(- x 1)", "(- x 2)")
        r = verify_source(edited, config=cfg, backend="scv")
        assert r.store_hits == 0 and r.store_misses == 3

    def test_whitespace_edit_is_a_full_hit(self, tmp_path):
        cfg = _cfg(str(tmp_path / "store"))
        verify_source(TRIPLE, config=cfg, backend="scv")
        r = verify_source(
            TRIPLE.replace("(define (prep n)", "(define  (prep  n)"),
            config=cfg, backend="scv",
        )
        assert r.store_hits == 3 and r.store_misses == 0


def _worker(store_dir: str, source: str, out):
    from repro.driver.runner import RunConfig, verify_source

    r = verify_source(
        source, config=RunConfig(timeout_s=60.0, store_dir=store_dir),
        backend="scv",
    )
    out.put((r.status, r.store_misses))


class TestConcurrentWriters:
    def test_two_processes_share_one_store(self, tmp_path):
        store = str(tmp_path / "store")
        ctx = multiprocessing.get_context("spawn")
        out = ctx.Queue()
        ps = [
            ctx.Process(target=_worker, args=(store, src, out))
            for src in (CHAIN, TRIPLE)
        ]
        for p in ps:
            p.start()
        results = [out.get(timeout=120) for _ in ps]
        for p in ps:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert all(status == STATUS_COUNTEREXAMPLE for status, _ in results)
        # A fresh process replays both programs entirely from the store.
        for src in (CHAIN, TRIPLE):
            r = verify_source(src, config=_cfg(store), backend="scv")
            assert r.store_misses == 0, src

    def test_parallel_bench_jobs_share_the_store(self, tmp_path):
        store = str(tmp_path / "store")
        names = corpus_names(tag="modules")
        cold = run_corpus(names, config=_cfg(store, jobs=2), backend="scv")
        warm = run_corpus(names, config=_cfg(store, jobs=2), backend="scv")
        t = warm.totals()
        assert t["store_misses"] == 0
        assert t["store_hits"] == cold.totals()["store_hits"] + \
            cold.totals()["store_misses"]


class TestCorruptionRecovery:
    def test_truncated_and_garbage_shard_lines_are_skipped(self, tmp_path):
        root = str(tmp_path / "solver")
        s = SolverStore(root)
        phi = And((Eq(Var("$0"), IntConst(1)), Le(IntConst(0), Var("$1"))))
        s.store(phi, Result.SAT, (((0, 1),), ()), True)
        s.flush()
        # Corrupt the shard: garbage line, then a torn (truncated) line.
        shard = s._shard_paths()[0]
        with open(shard, "a", encoding="utf-8") as fh:
            fh.write("not json at all\n")
            fh.write('["(= $0 7)", "sat", [[[0, 7]], []], tru')
        fresh = SolverStore(root)
        assert fresh.lookup(phi) == (Result.SAT, (((0, 1),), ()), True)
        assert fresh.skipped_lines == 2

    def test_corrupt_verdict_entry_recomputes(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cfg = _cfg(store_dir)
        verify_source(CHAIN, config=cfg, backend="scv")
        vs = get_store(store_dir)
        for path in vs.entry_paths():
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("{ truncated")
        r = verify_source(CHAIN, config=cfg, backend="scv")
        assert r.store_hits == 0 and r.store_misses == 2
        # ... and the rewrite healed the store.
        r2 = verify_source(CHAIN, config=cfg, backend="scv")
        assert r2.store_hits == 2

    def test_solver_cache_backing_round_trip(self, tmp_path):
        root = str(tmp_path / "solver")
        writer = SolverStore(root)
        cache = SolverCache()
        cache.backing = writer
        phi = And((Eq(Var("$0"), IntConst(3)), Le(Var("$0"), Var("$1"))))
        cache.put(phi, Result.SAT, (((0, 3), (1, 3)), ()), model_known=True)
        writer.flush()
        # A different process (fresh cache, fresh store handle) hits.
        cache2 = SolverCache()
        cache2.backing = SolverStore(root)
        assert cache2.get(phi) == (Result.SAT, (((0, 3), (1, 3)), ()), True)
        assert cache2.hits == 1
        # UNKNOWN results are never persisted.
        psi = Eq(Var("$0"), IntConst(9))
        cache.put(psi, Result.UNKNOWN, None, model_known=False)
        assert writer._buffer == {} or all(
            r is not Result.UNKNOWN for r, _, _ in writer._buffer.values()
        )


class TestGc:
    def test_compaction_preserves_entries(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cfg = _cfg(store_dir)
        verify_source(CHAIN, config=cfg, backend="scv")
        verify_source(TRIPLE, config=cfg, backend="scv")
        vs = get_store(store_dir)
        before = vs.stats()
        summary = vs.gc()
        assert summary["entries_evicted"] == 0
        after = vs.stats()
        assert after["verdicts"] == before["verdicts"]
        assert after["solver_entries"] == before["solver_entries"]
        assert after["solver_shards"] <= 1
        # Everything still replays.
        r = verify_source(CHAIN, config=cfg, backend="scv")
        assert r.store_misses == 0

    def test_size_bound_evicts_until_it_fits(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cfg = _cfg(store_dir)
        verify_source(CHAIN, config=cfg, backend="scv")
        verify_source(TRIPLE, config=cfg, backend="scv")
        vs = get_store(store_dir)
        bound = 2000
        summary = vs.gc(max_bytes=bound)
        assert summary["entries_evicted"] > 0
        assert summary["bytes"] <= bound


class TestStoreVerify:
    def test_clean_store_checks_out(self, tmp_path):
        store_dir = str(tmp_path / "store")
        verify_source(CHAIN, config=_cfg(store_dir), backend="scv")
        outcome = check_entries(get_store(store_dir))
        assert outcome["checked"] == 2
        assert outcome["matched"] == 2
        assert outcome["mismatches"] == []

    def test_tampered_verdict_is_detected(self, tmp_path):
        store_dir = str(tmp_path / "store")
        verify_source(CHAIN, config=_cfg(store_dir), backend="scv")
        vs = get_store(store_dir)
        tampered = 0
        for path in vs.entry_paths():
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry["result"]["status"] == STATUS_COUNTEREXAMPLE:
                entry["result"]["status"] = STATUS_SAFE
                entry["result"]["counterexample"] = None
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(entry, fh)
                tampered += 1
        assert tampered
        outcome = check_entries(vs)
        assert len(outcome["mismatches"]) == tampered
        assert "status" in outcome["mismatches"][0]["fields"]


class TestCli:
    def test_store_flag_round_trip(self, tmp_path, capsys):
        f = tmp_path / "p.sexp"
        f.write_text(CHAIN)
        store = str(tmp_path / "store")
        args = ["verify", str(f), "--backend", "scv", "--store", store,
                "--json"]
        assert cli_main(args) == 1  # counterexample
        cold = json.loads(capsys.readouterr().out)
        assert cli_main(args) == 1
        warm = json.loads(capsys.readouterr().out)
        assert warm["store_hits"] == 2
        for k in set(cold) - VOLATILE_ROW_FIELDS:
            assert cold[k] == warm[k], k

    def test_no_store_by_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        f = tmp_path / "p.sexp"
        f.write_text(CHAIN)
        cli_main(["verify", str(f), "--backend", "scv", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert out["store_hits"] == out["store_misses"] == 0
        assert not (tmp_path / ".repro-store").exists()

    def test_env_var_enables_and_no_store_overrides(
        self, tmp_path, capsys, monkeypatch
    ):
        f = tmp_path / "p.sexp"
        f.write_text(CHAIN)
        store = str(tmp_path / "envstore")
        monkeypatch.setenv("REPRO_STORE", store)
        cli_main(["verify", str(f), "--backend", "scv", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert out["store_misses"] == 2
        assert os.path.isdir(store)
        cli_main(["verify", str(f), "--backend", "scv", "--json",
                  "--no-store"])
        out = json.loads(capsys.readouterr().out)
        assert out["store_hits"] == out["store_misses"] == 0

    def test_store_subcommands(self, tmp_path, capsys):
        f = tmp_path / "p.sexp"
        f.write_text(CHAIN)
        store = str(tmp_path / "store")
        cli_main(["verify", str(f), "--backend", "scv", "--store", store])
        capsys.readouterr()
        assert cli_main(["store", "--dir", store, "stats"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["verdicts"] == 2
        assert cli_main(["store", "--dir", store, "gc"]) == 0
        capsys.readouterr()
        assert cli_main(["store", "--dir", store, "verify",
                         "--sample", "0"]) == 0
        outcome = json.loads(capsys.readouterr().out)
        assert outcome["matched"] == outcome["checked"] == 2

    def test_store_subcommand_missing_dir(self, tmp_path, capsys):
        rc = cli_main(["store", "--dir", str(tmp_path / "nope"), "stats"])
        assert rc == 2
        assert "no store at" in capsys.readouterr().err


class TestSmokeCorpusWarm:
    """The CI warm-start invariant, in miniature: a warm smoke-corpus
    run must be ≥90% verdict-store hits and byte-identical to the cold
    run outside the volatile fields."""

    def test_smoke_corpus_cold_then_warm(self, tmp_path):
        store = str(tmp_path / "store")
        names = corpus_names(tag="smoke")
        cold = run_corpus(names, config=_cfg(store), backend="scv")
        warm = run_corpus(names, config=_cfg(store), backend="scv")
        t = warm.totals()
        assert t["store_hits"] / (t["store_hits"] + t["store_misses"]) >= 0.9
        cold_rows = {r.name: _stable(r) for r in cold.results}
        warm_rows = {r.name: _stable(r) for r in warm.results}
        assert cold_rows == warm_rows

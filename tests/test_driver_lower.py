"""The surface→SPCF bridge: inference, lowering, label preservation,
and raising counterexample values back to surface syntax."""

import pytest

from repro.core import (
    App,
    Fix,
    FunType,
    If,
    Lam,
    NAT,
    Num,
    Opq,
    PrimApp,
    check_program,
    fun,
)
from repro.core.syntax import subexprs
from repro.driver.lower import LowerError, lower_expr, lower_program, raise_expr
from repro.lang.ast import Quote, UApp, UIf, ULam, UVar
from repro.lang.parser import parse_expr_string, parse_program


def lower_source(src: str):
    return lower_program(parse_program(src))


def prim_apps(e):
    return [s for s in subexprs(e) if isinstance(s, PrimApp)]


class TestBasics:
    def test_literals_and_arith(self):
        e = lower_expr(parse_expr_string("(+ 1 2)"))
        assert isinstance(e, PrimApp) and e.op == "+"
        assert e.args == (Num(1), Num(2))

    def test_booleans_become_pcf_numbers(self):
        assert lower_expr(parse_expr_string("#t")) == Num(1)
        assert lower_expr(parse_expr_string("#f")) == Num(0)

    def test_prim_renames(self):
        cases = {
            "(quotient 7 2)": "div",
            "(modulo 7 2)": "mod",
            "(= 1 2)": "=?",
            "(< 1 2)": "<?",
            "(<= 1 2)": "<=?",
        }
        for src, op in cases.items():
            e = lower_expr(parse_expr_string(src))
            assert isinstance(e, PrimApp) and e.op == op, src

    def test_swapped_comparisons(self):
        e = lower_expr(parse_expr_string("(> 1 2)"))
        assert e.op == "<?" and e.args == (Num(2), Num(1))
        e = lower_expr(parse_expr_string("(>= 1 2)"))
        assert e.op == "<=?" and e.args == (Num(2), Num(1))

    def test_nary_arith_folds(self):
        e = lower_expr(parse_expr_string("(+ 1 2 3)"))
        assert e.op == "+" and isinstance(e.args[0], PrimApp)

    def test_unary_minus(self):
        e = lower_expr(parse_expr_string("(- 5)"))
        assert e.op == "-" and e.args == (Num(0), Num(5))

    def test_begin_discards_any_type(self):
        # The discarded binder takes the sub-expression's inferred type,
        # not a hardcoded nat.
        e = lower_expr(parse_expr_string("(begin (lambda (x) x) 5)"))
        assert check_program(e) == NAT

    def test_multi_param_lambda_curries(self):
        e = lower_expr(parse_expr_string("((lambda (a b) (+ a b)) 1 2)"))
        assert isinstance(e, App) and isinstance(e.fn, App)
        assert isinstance(e.fn.fn, Lam) and isinstance(e.fn.fn.body, Lam)
        assert check_program(e) == NAT


class TestInference:
    def test_opaque_defaults_to_nat(self):
        e = lower_expr(parse_expr_string("(+ • 1)"))
        opq = next(s for s in subexprs(e) if isinstance(s, Opq))
        assert opq.type == NAT

    def test_opaque_in_function_position(self):
        e = lower_source("(define g •)\n(g 3)")
        opq = next(s for s in subexprs(e) if isinstance(s, Opq))
        assert opq.type == FunType(NAT, NAT)

    def test_curried_opaque(self):
        e = lower_source("(define h •)\n((h 3) 4)")
        opq = next(s for s in subexprs(e) if isinstance(s, Opq))
        assert opq.type == fun(NAT, NAT, NAT)

    def test_higher_order_parameter(self):
        e = lower_source("(define (apply-at-zero g) (g 0))\n(apply-at-zero •)")
        opq = next(s for s in subexprs(e) if isinstance(s, Opq))
        assert opq.type == FunType(NAT, NAT)
        assert check_program(e) == NAT

    def test_type_clash_rejected(self):
        with pytest.raises(LowerError):
            lower_source("(define x •)\n(+ (x 1) x)")


class TestLetrec:
    def test_recursive_define_becomes_fix(self):
        e = lower_source(
            "(define (count n) (if (<= n 0) 0 (count (- n 1))))\n(count 3)"
        )
        assert any(isinstance(s, Fix) for s in subexprs(e))
        assert check_program(e) == NAT

    def test_non_recursive_define_has_no_fix(self):
        e = lower_source("(define (inc n) (+ n 1))\n(inc 3)")
        assert not any(isinstance(s, Fix) for s in subexprs(e))

    def test_earlier_bindings_visible_to_later(self):
        e = lower_source(
            "(define (inc n) (+ n 1))\n(define (twice n) (inc (inc n)))\n(twice 1)"
        )
        assert check_program(e) == NAT

    def test_mutual_recursion_rejected(self):
        # Rejected at inference time: letrec scope is sequential, so the
        # forward reference is simply unbound.
        with pytest.raises(LowerError):
            lower_source(
                "(define (even0? n) (if (= n 0) 1 (odd0? (- n 1))))\n"
                "(define (odd0? n) (if (= n 0) 0 (even0? (- n 1))))\n"
                "(even0? 4)"
            )


class TestLabels:
    def test_blame_labels_survive_lowering(self):
        prog = parse_program("(quotient 1 •)")
        surface_app = prog.main
        assert isinstance(surface_app, UApp)
        core = lower_program(prog)
        (papp,) = prim_apps(core)
        assert papp.label == surface_app.label

    def test_shadowed_prim_is_a_variable(self):
        e = lower_expr(parse_expr_string("((lambda (quotient) (quotient 5)) (lambda (x) x))"))
        # No PrimApp: the binder shadows the primitive name.
        assert prim_apps(e) == []
        assert check_program(e) == NAT


class TestUnsupported:
    def test_set_bang(self):
        with pytest.raises(LowerError):
            lower_source("(define x 1)\n(begin (set! x 2) x)")

    def test_first_class_prim(self):
        with pytest.raises(LowerError):
            lower_source("(define f +)\n(f 1 2)")

    def test_modules(self):
        with pytest.raises(LowerError, match="modules"):
            lower_source("(module m (define x 1) (provide x))\nx")

    def test_non_integer_literal(self):
        with pytest.raises(LowerError):
            lower_expr(parse_expr_string('(+ 1 "two")'))

    def test_remainder_rejected(self):
        # Racket remainder truncates toward zero; core mod is Euclidean.
        # Mapping one onto the other produced false "safe" verdicts, e.g.
        # (quotient 100 (add1 (remainder • 3))) at • = -1.
        with pytest.raises(LowerError, match="remainder"):
            lower_expr(parse_expr_string("(remainder 7 2)"))

    def test_modulo_requires_positive_constant_divisor(self):
        for src in ("(modulo 5 •)", "(modulo 5 (- 0 3))", "(modulo 5 0)"):
            with pytest.raises(LowerError, match="modulo"):
                lower_expr(parse_expr_string(src))


class TestRaise:
    def test_round_trips_numbers(self):
        assert raise_expr(Num(7)) == Quote(7)
        assert raise_expr(Num(-3)) == Quote(-3)

    def test_case_lambda_shape(self):
        # λx. if x = 3 then 10 else 0, as built by counterexample
        # reconstruction, becomes a surface lambda over `=`.
        body = If(
            PrimApp("=?", (Num(3), Num(3)), "p"), Num(10), Num(0)
        )
        raised = raise_expr(Lam("x", NAT, body))
        assert isinstance(raised, ULam) and raised.params == ("x",)
        assert isinstance(raised.body, UIf)
        test = raised.body.test
        assert isinstance(test, UApp) and test.fn == UVar("=")

    def test_rejects_fix(self):
        with pytest.raises(LowerError):
            raise_expr(Fix("f", fun(NAT, NAT), Lam("x", NAT, Num(0))))

"""Driver integration: the corpus round-trips through the full pipeline,
the batch runner parallelises it, and the JSON report schema is stable."""

import json

import pytest

from repro.core import check_program
from repro.driver import (
    CORPUS,
    RunConfig,
    corpus_names,
    get_program,
    lower_program,
    run_corpus,
    verify_source,
)
from repro.driver.__main__ import main as cli_main
from repro.driver.report import (
    SCHEMA,
    STATUS_COUNTEREXAMPLE,
    STATUS_SAFE,
    STATUS_TIMEOUT,
    STATUS_TRUNCATED,
    STATUS_UNSUPPORTED,
)
from repro.lang.parser import parse_program


class TestCorpusIntegrity:
    def test_names_unique(self):
        names = [p.name for p in CORPUS]
        assert len(names) == len(set(names))

    def test_balanced_pairs(self):
        assert len(corpus_names(kind="safe")) == len(corpus_names(kind="buggy"))
        assert len(CORPUS) >= 30

    def test_smoke_subset(self):
        smoke = corpus_names(tag="smoke")
        assert 4 <= len(smoke) <= len(CORPUS) // 2

    def test_every_core_program_parses_lowers_and_typechecks(self):
        for p in CORPUS:
            if "core" in p.backends:
                core = lower_program(parse_program(p.source))
                check_program(core)

    def test_every_program_parses(self):
        for p in CORPUS:
            parse_program(p.source)

    def test_contract_section_is_scv_only(self):
        contract = corpus_names(tag="contracts")
        assert len(contract) >= 10
        for n in contract:
            assert get_program(n).backends == ("scv",)

    def test_get_program_unknown(self):
        with pytest.raises(KeyError):
            get_program("definitely-not-a-benchmark")


# One full-corpus run shared by the round-trip and report tests.
@pytest.fixture(scope="module")
def full_report():
    return run_corpus(config=RunConfig(jobs=2, timeout_s=60.0))


class TestCorpusRoundTrip:
    def test_every_verdict_matches_annotation(self, full_report):
        bad = [
            (r.name, r.kind, r.status, r.detail)
            for r in full_report.results
            if r.as_expected is not True
        ]
        assert bad == []

    def test_safe_programs_verify_clean(self, full_report):
        for r in full_report.results:
            if r.kind == "safe":
                assert r.status == STATUS_SAFE
                assert r.counterexample is None

    def test_buggy_programs_confirmed_twice(self, full_report):
        for r in full_report.results:
            if r.kind == "buggy":
                assert r.status == STATUS_COUNTEREXAMPLE
                cex = r.counterexample
                assert cex is not None
                # Theorem 1 check under core.concrete…
                assert cex.validated_core is True
                # …and the independent surface-interpreter oracle.
                assert cex.validated_conc is True
                assert cex.err_label and cex.err_op

    def test_stats_are_populated(self, full_report):
        for r in full_report.results:
            assert r.states_explored > 0
            assert r.wall_ms > 0

    def test_results_deterministic_across_runs(self, full_report):
        # Label/location counters are reset per program, so a result must
        # not depend on what else ran in the same worker process.
        row = next(r for r in full_report.results if r.name == "sum-unknown-fn")
        alone = verify_source(
            get_program("sum-unknown-fn").source,
            name="sum-unknown-fn",
            kind="buggy",
        )
        assert alone.counterexample == row.counterexample
        assert alone.states_explored == row.states_explored


TOP_KEYS = {"schema", "config", "totals", "backends", "agreement", "programs"}
PROGRAM_KEYS = {
    "name", "kind", "status", "wall_ms", "backend", "states_explored",
    "proof_queries", "solver_queries", "pruned_states", "solver_cache_hits",
    "chained_steps", "solver_fresh_solves", "solver_incremental",
    "solver_clauses_reused", "solver_scope_depth", "errors_found",
    "cex_attempts", "store_hits", "store_misses", "modules_reverified",
    "shards", "stolen_tasks", "frontier_exchanges", "shard_states",
    "compiled_units", "compile_ms", "dispatch_steps",
    "deadline_enforced", "counterexample", "detail",
}
CEX_KEYS = {
    "bindings", "err_label", "err_op", "validated_core", "validated_conc",
    "err_detail", "client",
}
TOTALS_KEYS = {
    "programs", "as_expected", "unexpected", "safe", "counterexamples",
    "validated_counterexamples", "timeouts", "states_explored",
    "chained_steps", "pruned_states", "solver_queries",
    "solver_cache_hits", "solver_fresh_solves", "solver_incremental",
    "solver_clauses_reused", "solver_scope_depth", "store_hits",
    "store_misses", "modules_reverified", "stolen_tasks",
    "frontier_exchanges", "compiled_units", "compile_ms", "dispatch_steps",
    "wall_ms", "max_wall_ms",
}
AGREEMENT_KEYS = {
    "shared_programs", "agreed", "inconclusive", "disagreements",
    "counterexamples",
}


class TestReportSchema:
    def test_json_shape(self, full_report, tmp_path):
        out = tmp_path / "BENCH_driver.json"
        full_report.write(str(out))
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA
        assert set(data) == TOP_KEYS
        assert set(data["totals"]) == TOTALS_KEYS
        assert set(data["agreement"]) == AGREEMENT_KEYS
        assert len(data["programs"]) == len(corpus_names(backend="core"))
        for row in data["programs"]:
            assert set(row) == PROGRAM_KEYS
            if row["counterexample"] is not None:
                assert set(row["counterexample"]) == CEX_KEYS

    def test_backend_sections(self, full_report):
        data = full_report.to_json()
        assert set(data["backends"]) == {"core"}
        assert set(data["backends"]["core"]) == TOTALS_KEYS

    def test_rows_sorted_by_name(self, full_report, tmp_path):
        out = tmp_path / "b.json"
        full_report.write(str(out))
        names = [r["name"] for r in json.loads(out.read_text())["programs"]]
        assert names == sorted(names)

    def test_totals_consistent(self, full_report):
        t = full_report.totals()
        assert t["programs"] == len(corpus_names(backend="core"))
        assert t["safe"] + t["counterexamples"] == t["programs"]
        assert t["unexpected"] == 0


class TestVerifyStatuses:
    def test_unsupported_source(self):
        r = verify_source("(set! x 1)")
        assert r.status == STATUS_UNSUPPORTED
        assert "LowerError" in r.detail or "ParseError" in r.detail

    def test_unparseable_source(self):
        r = verify_source("(((")
        assert r.status == STATUS_UNSUPPORTED

    def test_truncated_on_unbounded_search(self):
        src = "(define (spin n) (spin (+ n 1)))\n(spin •)"
        r = verify_source(src, config=RunConfig(max_states=40))
        assert r.status == STATUS_TRUNCATED
        assert r.states_explored == 40

    def test_timeout_is_reported_not_raised(self):
        slow = get_program("mod-denominator")  # ~1s of solver work
        r = verify_source(
            slow.source, name=slow.name, kind=slow.kind,
            config=RunConfig(timeout_s=0.01),
        )
        assert r.status in (STATUS_TIMEOUT, STATUS_COUNTEREXAMPLE)
        if r.status == STATUS_TIMEOUT:
            assert "wall clock" in r.detail


class TestCli:
    def test_corpus_list(self, capsys):
        assert cli_main(["corpus", "list", "--kind", "buggy"]) == 0
        out = capsys.readouterr().out
        assert "div-unchecked" in out and "div-checked" not in out

    def test_corpus_show(self, capsys):
        assert cli_main(["corpus", "show", "strict-gap"]) == 0
        assert "quotient" in capsys.readouterr().out

    def test_bench_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_driver.json"
        code = cli_main(["bench", "--smoke", "--jobs", "2", "--out", str(out)])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["schema"] == SCHEMA
        assert data["totals"]["unexpected"] == 0
        smoke_core = [
            n for n in corpus_names(tag="smoke")
            if "core" in get_program(n).backends
        ]
        assert len(data["programs"]) == len(smoke_core)

    def test_verify_file_exit_codes(self, tmp_path):
        buggy = tmp_path / "buggy.rkt"
        buggy.write_text("(quotient 1 •)\n")
        assert cli_main(["verify", str(buggy)]) == 1
        safe = tmp_path / "safe.rkt"
        safe.write_text("(quotient 1 (add1 (* • 0)))\n")
        assert cli_main(["verify", str(safe)]) == 0

"""The bytecode compiler (``repro.compile``): lowering, the dispatch
executors, and the compiled-unit cache.

Three layers of pinning:

* **golden opcode streams** — the pre-order instruction sequence for
  the representative forms (application, conditional, letrec, contract
  monitor) is part of the compiler's contract: the serialized cache
  format replays exactly this walk, so an accidental reordering would
  silently orphan every cached unit;
* **byte-identity over the smoke corpus** — compiled runs must produce
  the same rows as the step machines outside the volatile fields,
  across shard counts and store temperatures; the step machines are
  the semantics of record (the fuzz oracle in
  ``tests/test_differential.py`` extends this to random programs);
* **cache round-trip and invalidation** — units persist per program
  digest, rebind against a fresh parse, and refuse to load for a
  different program or engine; a module edit changes the digest and
  orphans the old unit file (a recompile, never a wrong program).
"""

import os
from dataclasses import asdict, replace

from repro.compile import CompiledUnitCache, lower_core, lower_scv
from repro.core.syntax import NAT, App, If, Lam, Num, PrimApp, Ref
from repro.driver.corpus import corpus_names, get_program
from repro.driver.report import VOLATILE_ROW_FIELDS
from repro.driver.runner import RunConfig, verify_source
from repro.lang.ast import Quote, UApp, UIf, ULam, ULetrec, UVar, reset_labels
from repro.lang.parser import parse_program
from repro.scv.engine import assemble
from repro.scv.machine import UMon
from repro.store.fingerprint import program_digest

SMOKE = corpus_names(tag="smoke")


def _stable(row) -> dict:
    d = asdict(row)
    return {k: v for k, v in d.items() if k not in VOLATILE_ROW_FIELDS}


# ---------------------------------------------------------------------------
# Golden opcode streams
# ---------------------------------------------------------------------------


class TestScvLowering:
    def test_application_of_a_lambda(self):
        root = UApp(ULam(("x",), UVar("x")), (Quote(1),), "ℓ")
        units = lower_scv(root)
        # The lambda body is its own unit, discovered from the root.
        assert [u.kind for u in units] == ["module", "lambda"]
        assert units[0].opcode_names() == ("app", "closure", "quote")
        assert units[1].opcode_names() == ("var",)

    def test_conditional(self):
        root = UIf(UVar("t"), Quote(1), Quote(2))
        (unit,) = lower_scv(root)
        assert unit.opcode_names() == ("if", "var", "quote", "quote")

    def test_letrec(self):
        loop = ULam(("x",), UApp(UVar("f"), (UVar("x"),), "r"), name="f")
        root = ULetrec((("f", loop),), UApp(UVar("f"), (Quote(0),), "c"))
        units = lower_scv(root)
        assert units[0].opcode_names() == (
            "letrec", "closure", "app", "var", "quote",
        )
        # The recursive body compiles as a separate lambda unit.
        assert units[1].opcode_names() == ("app", "var", "var")

    def test_contract_monitor(self):
        root = UMon(UVar("pos?"), ULam(("x",), UVar("x")),
                    "m", "client", "ℓ")
        units = lower_scv(root)
        assert units[0].opcode_names() == ("mon", "var", "closure")
        assert units[1].opcode_names() == ("var",)

    def test_interning_shares_equal_constants(self):
        root = UIf(Quote(0), Quote(0), Quote(1))
        (unit,) = lower_scv(root)
        _, test_q, then_q, else_q = unit.instructions
        assert test_q is then_q  # hash-consed: one tuple for (quote 0)
        assert else_q is not test_q

    def test_interning_keeps_false_and_zero_distinct(self):
        # Python's == conflates False == 0 == 0.0: a raw-tuple interner
        # would rewrite (quote #f) into (quote 0) and flip branches.
        root = UIf(Quote(False), Quote(0), Quote(0.0))
        (unit,) = lower_scv(root)
        _, test_q, then_q, else_q = unit.instructions
        assert test_q[1] is False
        assert then_q[1] == 0 and then_q[1].__class__ is int
        assert else_q[1].__class__ is float
        assert len({id(test_q), id(then_q), id(else_q)}) == 3


class TestCoreLowering:
    def test_application_of_a_lambda(self):
        root = App(Lam("x", NAT, Ref("x")), Num(1))
        units = lower_core(root)
        assert [u.kind for u in units] == ["module", "lambda"]
        assert units[0].opcode_names() == ("app", "closure", "const")
        assert units[1].opcode_names() == ("var",)

    def test_conditional(self):
        (unit,) = lower_core(If(Num(0), Num(1), Num(2)))
        assert unit.opcode_names() == ("if", "const", "const", "const")

    def test_primitive_application(self):
        (unit,) = lower_core(PrimApp("div", (Num(1), Num(2)), "ℓ"))
        assert unit.opcode_names() == ("prim", "const", "const")


# ---------------------------------------------------------------------------
# Byte-identity over the smoke corpus
# ---------------------------------------------------------------------------


class TestSmokeCorpusByteIdentity:
    """Every smoke program, on every engine it supports: the compiled
    rows equal the interpreted rows (volatile fields aside) with 1 and
    4 frontier shards and with a cold and a warm persistent store."""

    @staticmethod
    def _rows(cfg: RunConfig):
        out = {}
        for name in SMOKE:
            prog = get_program(name)
            for engine in prog.backends:
                row = verify_source(
                    prog.source, name=name, kind=prog.kind,
                    config=cfg, backend=engine,
                )
                out[(name, engine)] = row
        return out

    def test_compiled_matches_interpreted_across_shards_and_store(
        self, tmp_path
    ):
        # Store runs verify scv programs module-by-module (and combine
        # the unit rows), so they legitimately differ from whole-program
        # rows: the oracle compares compile on vs off *within* each
        # configuration, never across configurations.
        base = RunConfig(timeout_s=60.0)
        store_i = str(tmp_path / "store-interp")
        store_c = str(tmp_path / "store-compiled")
        matrix = {
            "shards=1": (replace(base, compile=False),
                         replace(base, compile=True)),
            "shards=4": (replace(base, compile=False, shards=4),
                         replace(base, compile=True, shards=4)),
            # The same config twice: the first pass is the cold store,
            # the second replays warm (separate stores per engine mode,
            # so the compiled run cannot just replay interpreted rows).
            "store-cold": (replace(base, compile=False, store_dir=store_i),
                           replace(base, compile=True, store_dir=store_c)),
            "store-warm": (replace(base, compile=False, store_dir=store_i),
                           replace(base, compile=True, store_dir=store_c)),
        }
        dispatch = {}
        for label, (interp_cfg, compiled_cfg) in matrix.items():
            want = {k: _stable(r) for k, r in self._rows(interp_cfg).items()}
            assert want  # the smoke tag is non-empty
            rows = self._rows(compiled_cfg)
            got = {k: _stable(r) for k, r in rows.items()}
            assert got == want, f"[{label}] compiled diverges from interpreted"
            dispatch[label] = {k: r.dispatch_steps for k, r in rows.items()}
        # The dispatch count is deterministic: sharded replay and the
        # sequential loop execute the same micro-steps.
        assert dispatch["shards=4"] == dispatch["shards=1"]
        assert any(dispatch["shards=1"].values())

    def test_warm_store_replays_without_recompiling(self, tmp_path):
        store = str(tmp_path / "store")
        cfg = RunConfig(timeout_s=60.0, store_dir=store)
        prog = get_program("modules-chain-div")
        cold = verify_source(prog.source, name=prog.name, kind=prog.kind,
                             config=cfg, backend="scv")
        assert cold.compiled_units > 0
        warm = verify_source(prog.source, name=prog.name, kind=prog.kind,
                             config=cfg, backend="scv")
        assert _stable(warm) == _stable(cold)
        # A pure store replay never reaches the compiler.
        assert warm.store_misses == 0
        # The cold run persisted its units next to the verdicts.
        compiled_dir = os.path.join(store, "compiled")
        assert os.path.isdir(compiled_dir) and os.listdir(compiled_dir)


# ---------------------------------------------------------------------------
# The compiled-unit cache
# ---------------------------------------------------------------------------


def _assembled(source: str):
    reset_labels()
    program = parse_program(source)
    return program, assemble(program)


CACHED_SRC = (
    "(module m\n"
    "  (define (shift x) (+ x 10))\n"
    "  (provide [shift (-> positive? positive?)]))"
)


class TestCompiledUnitCache:
    def test_round_trip_rebinds_to_a_fresh_parse(self, tmp_path):
        program, root = _assembled(CACHED_SRC)
        digest = program_digest(program)
        cache = CompiledUnitCache(str(tmp_path), digest)
        units = lower_scv(root)
        assert cache.store("scv", units)

        _, fresh_root = _assembled(CACHED_SRC)
        loaded = CompiledUnitCache(str(tmp_path), digest).load(
            "scv", fresh_root
        )
        assert loaded is not None
        assert [u.opcode_names() for u in loaded] == \
            [u.opcode_names() for u in units]
        # Node operands are rebound to the *fresh* AST, not the stored
        # walk: the fresh root's own nodes back the new units.
        assert loaded[0].root is fresh_root
        assert loaded[0].nodes[0] is fresh_root

    def test_module_edit_changes_digest_and_orphans_the_units(
        self, tmp_path
    ):
        program, root = _assembled(CACHED_SRC)
        digest = program_digest(program)
        cache = CompiledUnitCache(str(tmp_path), digest)
        assert cache.store("scv", lower_scv(root))

        edited_src = CACHED_SRC.replace("(+ x 10)", "(+ x 20)")
        edited_program, edited_root = _assembled(edited_src)
        edited_digest = program_digest(edited_program)
        assert edited_digest != digest
        # The new digest addresses a file that does not exist: a miss,
        # and the old unit file is left orphaned rather than reused.
        fresh = CompiledUnitCache(str(tmp_path), edited_digest)
        assert fresh.load("scv", edited_root) is None
        assert fresh.misses == 1

    def test_mismatched_program_under_the_same_digest_is_rejected(
        self, tmp_path
    ):
        # Defense in depth: even if the digest collided, rebinding
        # validates every node's class against the stored opcode.
        program, root = _assembled(CACHED_SRC)
        digest = program_digest(program)
        cache = CompiledUnitCache(str(tmp_path), digest)
        assert cache.store("scv", lower_scv(root))
        _, other_root = _assembled(
            "(module m\n"
            "  (define (shift x) (if (zero? x) 1 x))\n"
            "  (provide [shift (-> positive? positive?)]))"
        )
        assert cache.load("scv", other_root) is None

    def test_wrong_engine_is_a_miss(self, tmp_path):
        program, root = _assembled(CACHED_SRC)
        cache = CompiledUnitCache(str(tmp_path), program_digest(program))
        assert cache.store("scv", lower_scv(root))
        assert cache.load("core", root) is None

    def test_truncated_file_recompiles_not_crashes(self, tmp_path):
        program, root = _assembled(CACHED_SRC)
        digest = program_digest(program)
        cache = CompiledUnitCache(str(tmp_path), digest)
        assert cache.store("scv", lower_scv(root))
        (path,) = [
            os.path.join(str(tmp_path), f) for f in os.listdir(str(tmp_path))
        ]
        with open(path, encoding="utf-8") as fh:
            payload = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(payload[: len(payload) // 2])
        _, fresh_root = _assembled(CACHED_SRC)
        assert CompiledUnitCache(str(tmp_path), digest).load(
            "scv", fresh_root
        ) is None


class TestCompileFlagPlumbing:
    def test_compile_off_reports_no_units(self):
        cfg = RunConfig(timeout_s=60.0, compile=False)
        row = verify_source("(+ 1 2)", config=cfg, backend="scv")
        assert row.compiled_units == 0
        assert row.dispatch_steps == 0

    def test_compile_on_reports_units_and_steps(self):
        cfg = RunConfig(timeout_s=60.0, compile=True)
        row = verify_source("(+ 1 2)", config=cfg, backend="scv")
        assert row.compiled_units >= 1
        assert row.dispatch_steps > 0

    def test_compile_is_not_part_of_the_semantic_digest(self):
        # Compiled and interpreted runs must share store entries.
        from repro.store.fingerprint import config_digest

        on = config_digest(asdict(RunConfig(compile=True)))
        off = config_digest(asdict(RunConfig(compile=False)))
        assert on == off

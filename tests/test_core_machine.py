"""Tests for the heap, δ, the proof relation, and the SPCF machine rules."""

import pytest

from repro.core import (
    Fix,
    Heap,
    HConst,
    HLoc,
    HOp,
    If,
    Loc,
    Machine,
    NAT,
    Num,
    PEq,
    PNot,
    PZero,
    ProofSystem,
    Ref,
    SCase,
    SLam,
    SNum,
    SOpq,
    State,
    Verdict,
    app,
    delta,
    fun,
    inject,
    lam,
    opq,
    prim,
    run,
)
from repro.core.machine import _opq_loc


def run_to_answers(program, max_states=5000):
    """Collect all answer states reachable from a program."""
    from repro.core import explore

    return [r.state for r in explore(program, max_states=max_states)]


class TestHeap:
    def test_alloc_get(self):
        h = Heap.empty()
        l, h2 = h.alloc(SNum(5))
        assert h2.get(l) == SNum(5)
        assert l not in h  # original heap unchanged

    def test_set_overwrites(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(1))
        h2 = h.set(l, SNum(2))
        assert h.get(l) == SNum(1)
        assert h2.get(l) == SNum(2)

    def test_refine_accumulates(self):
        h = Heap.empty()
        l, h = h.alloc(SOpq(NAT))
        h = h.refine(l, PZero())
        h = h.refine(l, PZero())  # idempotent
        assert h.get(l).refinements == (PZero(),)

    def test_refine_concrete_rejected(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(1))
        with pytest.raises(TypeError):
            h.refine(l, PZero())

    def test_missing_location(self):
        with pytest.raises(KeyError):
            Heap.empty().get(Loc("nope"))

    def test_case_lookup_extend(self):
        c = SCase(NAT)
        k, v = Loc("k"), Loc("v")
        assert c.lookup(k) is None
        c2 = c.extended(k, v)
        assert c2.lookup(k) == v
        assert c.lookup(k) is None


class TestDelta:
    def setup_method(self):
        self.proof = ProofSystem()

    def test_concrete_arithmetic(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(7))
        l2, h = h.alloc(SNum(3))
        for op, expect in [("+", 10), ("-", 4), ("*", 21), ("div", 2), ("mod", 1)]:
            results = delta(self.proof, h, op, (l1, l2))
            assert len(results) == 1
            assert results[0].value == SNum(expect)

    def test_concrete_zero(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(0))
        (res,) = delta(self.proof, h, "zero?", (l,))
        assert res.value == SNum(1)

    def test_div_by_zero_concrete(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(1))
        l2, h = h.alloc(SNum(0))
        (res,) = delta(self.proof, h, "div", (l1, l2))
        assert res.error

    def test_opaque_zero_branches(self):
        h = Heap.empty()
        l, h = h.alloc(SOpq(NAT))
        results = delta(self.proof, h, "zero?", (l,))
        assert len(results) == 2
        values = {r.value.value for r in results}
        assert values == {0, 1}
        # The true branch refined the subject with zero?.
        true_branch = next(r for r in results if r.value == SNum(1))
        assert PZero() in true_branch.heap.get(l).refinements

    def test_opaque_arith_records_equality(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(100))
        l2, h = h.alloc(SOpq(NAT))
        (res,) = delta(self.proof, h, "-", (l1, l2))
        assert isinstance(res.value, SOpq)
        (p,) = res.value.refinements
        assert p == PEq(HOp("-", (HLoc(l1), HLoc(l2))))

    def test_opaque_div_branches(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(1))
        l2, h = h.alloc(SOpq(NAT))
        results = delta(self.proof, h, "div", (l1, l2))
        assert len(results) == 2
        err = next(r for r in results if r.error)
        ok = next(r for r in results if not r.error)
        assert PZero() in err.heap.get(l2).refinements
        assert PNot(PZero()) in ok.heap.get(l2).refinements

    def test_div_nonzero_by_refinement(self):
        # Denominator already refined nonzero: no error branch.
        h = Heap.empty()
        l1, h = h.alloc(SNum(1))
        l2, h = h.alloc(SOpq(NAT, (PNot(PZero()),)))
        results = delta(self.proof, h, "div", (l1, l2))
        assert len(results) == 1 and not results[0].error

    def test_div_definitely_zero(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(1))
        l2, h = h.alloc(SOpq(NAT, (PZero(),)))
        (res,) = delta(self.proof, h, "div", (l1, l2))
        assert res.error

    def test_comparison_concrete(self):
        h = Heap.empty()
        l1, h = h.alloc(SNum(2))
        l2, h = h.alloc(SNum(3))
        (res,) = delta(self.proof, h, "<?", (l1, l2))
        assert res.value == SNum(1)

    def test_comparison_opaque_branches(self):
        h = Heap.empty()
        l1, h = h.alloc(SOpq(NAT))
        l2, h = h.alloc(SNum(5))
        results = delta(self.proof, h, "<?", (l1, l2))
        assert len(results) == 2

    def test_unknown_op_rejected(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(1))
        with pytest.raises(ValueError):
            delta(self.proof, h, "launch-missiles", (l,))


class TestProofRelation:
    def setup_method(self):
        self.proof = ProofSystem()

    def test_concrete_proved(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(0))
        assert self.proof.check(h, l, PZero()) is Verdict.PROVED

    def test_concrete_refuted(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(5))
        assert self.proof.check(h, l, PZero()) is Verdict.REFUTED

    def test_opaque_ambiguous(self):
        h = Heap.empty()
        l, h = h.alloc(SOpq(NAT))
        assert self.proof.check(h, l, PZero()) is Verdict.AMBIG

    def test_refinement_gives_proved(self):
        h = Heap.empty()
        l, h = h.alloc(SOpq(NAT, (PZero(),)))
        assert self.proof.check(h, l, PZero()) is Verdict.PROVED

    def test_solver_chases_equalities(self):
        # L5 = 100 - L4, L4 = 100 entails zero? L5 (the §2 final heap).
        h = Heap.empty()
        l4, h = h.alloc(SNum(100))
        l5, h = h.alloc(SOpq(NAT, (PEq(HOp("-", (HConst(100), HLoc(l4)))),)))
        assert self.proof.check(h, l5, PZero()) is Verdict.PROVED

    def test_solver_refutes(self):
        h = Heap.empty()
        l4, h = h.alloc(SNum(1))
        l5, h = h.alloc(SOpq(NAT, (PEq(HOp("-", (HConst(100), HLoc(l4)))),)))
        assert self.proof.check(h, l5, PZero()) is Verdict.REFUTED

    def test_fast_path_skips_solver(self):
        h = Heap.empty()
        l, h = h.alloc(SNum(0))
        before = self.proof.solver_queries
        self.proof.check(h, l, PZero())
        assert self.proof.solver_queries == before


class TestMachineRules:
    def test_conc_allocates(self):
        m = Machine()
        (s,) = m.step(inject(Num(42)))
        assert isinstance(s.control, Loc)
        assert s.heap.get(s.control) == SNum(42)

    def test_opq_reuses_location(self):
        m = Machine()
        o = opq(NAT, "shared")
        # Two occurrences of the same opaque label use one location.
        (s1,) = m.step(inject(o))
        (s2,) = m.step(State(o, s1.heap))
        assert s1.control == s2.control
        assert s2.heap is s1.heap

    def test_beta_reduction(self):
        program = app(lam("x", NAT, prim("add1", Ref("x"))), Num(1))
        answer = run(program)
        assert answer.number() == 2

    def test_fix_unfolds(self):
        # sum n = if zero?(n) then 0 else n + sum(n-1)
        summ = Fix(
            "s",
            fun(NAT, NAT),
            lam(
                "n",
                NAT,
                If(
                    prim("zero?", Ref("n")),
                    Num(0),
                    prim("+", Ref("n"), app(Ref("s"), prim("sub1", Ref("n")))),
                ),
            ),
        )
        assert run(app(summ, Num(5))).number() == 15

    def test_if_nonzero_takes_then(self):
        assert run(If(Num(7), Num(1), Num(2))).number() == 1
        assert run(If(Num(0), Num(1), Num(2))).number() == 2

    def test_error_discards_context(self):
        program = prim("add1", prim("div", Num(1), Num(0), label="boom"))
        answer = run(program)
        assert answer.is_error
        assert answer.error.label == "boom"

    def test_app_opq1_creates_case(self):
        # (•(nat→nat) 5): the unknown becomes a one-entry case mapping.
        m = Machine()
        program = app(opq(fun(NAT, NAT), "g"), Num(5))
        state = inject(program)
        # Steps: alloc opq, alloc 5, apply.
        for _ in range(3):
            (state,) = m.step(state)
        fn_loc = _opq_loc("g")
        stored = state.heap.get(fn_loc)
        assert isinstance(stored, SCase)
        assert len(stored.mapping) == 1

    def test_app_case_memoizes(self):
        # Applying an unknown function twice to the same value must give
        # the *same* location (the completeness device).
        g = opq(fun(NAT, NAT), "g")
        program = prim("=?", app(g, Num(3)), app(g, Num(3)))
        answers = run_to_answers(program)
        finals = [
            s.heap.get(s.control)
            for s in answers
            if isinstance(s.control, Loc)
        ]
        # Every execution yields 1 (equal): no path can make them differ.
        assert finals and all(v == SNum(1) for v in finals)

    def test_app_case_fresh_argument(self):
        # Different arguments get (potentially) different results.
        g = opq(fun(NAT, NAT), "g")
        program = prim("=?", app(g, Num(3)), app(g, Num(4)))
        finals = {
            s.heap.get(s.control).value
            for s in run_to_answers(program)
            if isinstance(s.control, Loc)
        }
        assert finals == {0, 1}

    def test_higher_order_opq_branches(self):
        # Applying •((nat→nat)→nat) to a lambda explores Opq2 and Havoc.
        m = Machine()
        f = opq(fun(fun(NAT, NAT), NAT), "F")
        ident = lam("x", NAT, Ref("x"))
        state = inject(app(f, ident))
        (state,) = m.step(state)  # alloc opq
        (state,) = m.step(state)  # alloc lambda
        succs = m.step(state)  # apply: Opq2 + Havoc (no Opq3: rng is nat)
        assert len(succs) == 2

    def test_higher_order_opq3_when_range_is_function(self):
        m = Machine()
        f = opq(fun(fun(NAT, NAT), fun(NAT, NAT)), "F")
        ident = lam("x", NAT, Ref("x"))
        state = inject(app(f, ident))
        (state,) = m.step(state)
        (state,) = m.step(state)
        succs = m.step(state)
        assert len(succs) == 3  # Opq2, Opq3, Havoc

    def test_stuck_on_free_variable(self):
        from repro.core import StuckError

        m = Machine()
        with pytest.raises(StuckError):
            m.step(inject(Ref("x")))


class TestConcreteEvaluator:
    def test_arithmetic(self):
        assert run(prim("*", Num(6), Num(7))).number() == 42

    def test_rejects_opaques(self):
        with pytest.raises(ValueError):
            run(opq(NAT))

    def test_timeout(self):
        from repro.core import Timeout

        omega = Fix("x", NAT, Ref("x"))
        with pytest.raises(Timeout):
            run(omega, fuel=100)

    def test_function_answer(self):
        answer = run(lam("x", NAT, Ref("x")))
        assert isinstance(answer.value, SLam)
        assert answer.number() is None

"""The untyped scv backend end-to-end, and the core/scv cross-check."""

import pytest

from repro.driver import (
    RunConfig,
    corpus_names,
    expand_tasks,
    get_backend,
    get_program,
    run_corpus,
    verify_program,
    verify_source,
)
from repro.driver.report import STATUS_COUNTEREXAMPLE, STATUS_SAFE
from repro.lang.parser import parse_program
from repro.scv import (
    SMachine,
    USearchStats,
    collect_struct_types,
    construct_u,
    find_known_blames,
    inject_program,
    uses_contracts,
)

CFG = RunConfig(timeout_s=60.0)


class TestMachineConstruction:
    def test_smachine_constructs_without_arguments(self):
        # The historical "unconstructible" caveat: δ and proof now land.
        m = SMachine()
        assert m.proof is not None
        assert not m.assume_well_typed

    def test_struct_registration_widens_tags(self):
        p = parse_program(
            "(module g (struct posn (x y)) (define (f p) (posn-x p))"
            " (provide [f (-> (struct/c posn integer? integer?) integer?)]))"
        )
        m = SMachine(struct_types=collect_struct_types(p))
        assert "struct:posn" in m.all_tags
        assert "posn?" in m.struct_prims
        assert "posn-x" in m.struct_prims

    def test_contract_detection(self):
        assert uses_contracts(parse_program("(module m (define x 1) (provide x))"))
        assert not uses_contracts(parse_program("(quotient 1 •)"))


class TestScvEndToEnd:
    def test_finds_division_blame_with_validated_model(self):
        p = parse_program("(define (f g) (quotient 100 (- 100 (g 0))))\n(f •)")
        m = SMachine(assume_well_typed=True)
        stats = USearchStats()
        state = next(
            iter(find_known_blames(inject_program(p, m), m, stats=stats))
        )
        cex = construct_u(p, state)
        assert cex is not None
        assert cex.validated is True
        [label] = cex.bindings
        assert label.startswith("opq")

    def test_unknown_blame_is_not_a_finding(self):
        # The safe module's only blame states fault the demonic client.
        p = parse_program(
            "(module m (define (shift x) (+ x 10))"
            " (provide [shift (-> positive? positive?)]))"
        )
        m = SMachine(struct_types=collect_struct_types(p))
        stats = USearchStats()
        found = list(
            find_known_blames(inject_program(p, m), m, stats=stats)
        )
        assert found == []
        assert stats.blames > 0  # the client *was* blamed, and ignored
        assert stats.known_blames == 0


class TestScvBackendVerdicts:
    @pytest.mark.parametrize("name", corpus_names(tag="contracts", kind="buggy"))
    def test_contract_buggy_finds_blame(self, name):
        r = verify_program(get_program(name), CFG, backend="scv")
        assert r.status == STATUS_COUNTEREXAMPLE, (name, r.status, r.detail)
        assert r.as_expected is True

    @pytest.mark.parametrize("name", corpus_names(tag="contracts", kind="safe"))
    def test_contract_safe_verifies(self, name):
        r = verify_program(get_program(name), CFG, backend="scv")
        assert r.status == STATUS_SAFE, (name, r.status, r.detail)

    def test_tower_counterexample_is_nonreal(self):
        # The demonic client feeds `smaller` a number that is not real;
        # the witness tag surfaces in the blame description (the client
        # itself has no program-level binding to reconstruct).
        r = verify_program(get_program("tower-number-compare"), CFG, backend="scv")
        assert r.status == STATUS_COUNTEREXAMPLE
        assert r.counterexample.err_op == "<"  # canonical surface op
        assert "nonreal" in r.counterexample.err_detail

    def test_validated_counterexample_on_shared_program(self):
        r = verify_source(
            "(quotient 1 •)", name="adhoc", kind="buggy", backend="scv"
        )
        assert r.status == STATUS_COUNTEREXAMPLE
        assert r.counterexample.validated_conc is True


class TestBackendDispatch:
    def test_registry(self):
        assert get_backend("core").name == "core"
        assert get_backend("scv").name == "scv"
        with pytest.raises(KeyError):
            get_backend("z3")

    def test_task_expansion(self):
        shared = ["div-checked"]
        ctc = ["ctc-range-shift"]
        assert expand_tasks(shared, "core") == [("div-checked", "core")]
        assert expand_tasks(ctc, "core") == []  # scv-only: skipped
        assert expand_tasks(ctc, "scv") == [("ctc-range-shift", "scv")]
        assert set(expand_tasks(shared, "both")) == {
            ("div-checked", "core"), ("div-checked", "scv"),
        }

    def test_result_rows_carry_backend(self):
        r = verify_source("(quotient 1 •)", backend="scv")
        assert r.backend == "scv"


class TestCrossCheckAgreement:
    # A representative slice of the shared corpus (one per feature
    # family), both backends, verdicts must agree.  The full-corpus
    # cross-check runs in CI via `bench --backend both`.
    SHARED = [
        "div-checked", "div-unchecked", "intro-unknown-fn",
        "havoc-probes-lambda", "havoc-total-lambda", "curried-unknown",
        "strict-gap", "slack-gap",
    ]

    @pytest.fixture(scope="class")
    def report(self):
        return run_corpus(
            self.SHARED, config=RunConfig(jobs=2, timeout_s=60.0),
            backend="both",
        )

    def test_both_backends_ran_every_program(self, report):
        assert len(report.results) == 2 * len(self.SHARED)

    def test_no_disagreements(self, report):
        agreement = report.agreement()
        assert agreement["shared_programs"] == len(self.SHARED)
        assert agreement["disagreements"] == []
        assert agreement["agreed"] == len(self.SHARED)

    def test_verdicts_match_annotations_on_both(self, report):
        bad = [
            (r.name, r.backend, r.status)
            for r in report.results
            if r.as_expected is not True
        ]
        assert bad == []

    def test_backend_totals_split(self, report):
        totals = report.backend_totals()
        assert set(totals) == {"core", "scv"}
        for t in totals.values():
            assert t["programs"] == len(self.SHARED)

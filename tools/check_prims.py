#!/usr/bin/env python
"""Lint the primitive registry (CI: runs next to ruff).

The registry (``repro.prims``) is the single source of truth for four
engine layers, so a malformed declaration fails late and far from its
cause — an entry without any handler source would silently fall to the
untyped δ's over-approximating fallback, and a misplaced extended-family
entry would shift every program's global heap allocation order.  This
lint front-loads those checks:

* every entry declares a tag signature, and either an integer-refinement
  template or a handler source (synthesis rule, custom rule, predicate
  tags, or a result signature for the generic handler);
* arities are sane (``0 <= min``, ``max`` absent or ``>= min``) and
  refinement templates ride on known kinds;
* aliases resolve, share their target's concrete implementation, and are
  recorded on the target;
* ``core_op`` names are unique (the typed δ's dispatch keys);
* the extended family sits strictly after every legacy declaration
  (the allocation-order invariant ``scv.engine.build_base_heap`` keys
  g-locs on).
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

_REFINE_KINDS = {
    "arith", "offset", "divlike", "slash", "compare", "swap", "sign",
}


def main() -> int:
    from repro.prims import EXTENDED_PRIMS, REGISTRY, all_specs

    problems: list[str] = []

    def bad(name: str, why: str) -> None:
        problems.append(f"  {name}: {why}")

    core_ops: dict[str, str] = {}
    for s in all_specs():
        if not callable(s.concrete):
            bad(s.name, "concrete implementation is not callable")
        if s.sig is None:
            bad(s.name, "missing tag signature")
        elif s.sig.want is not None and not s.sig.desc:
            bad(s.name, "tag signature narrows but carries no blame text")
        if s.arity.min < 0:
            bad(s.name, f"negative minimum arity {s.arity.min}")
        if s.arity.max is not None and s.arity.max < s.arity.min:
            bad(s.name, f"arity max {s.arity.max} < min {s.arity.min}")
        if s.refine is not None and s.refine.kind not in _REFINE_KINDS:
            bad(s.name, f"unknown refinement kind {s.refine.kind!r}")
        if not any((s.refine, s.synth, s.rule,
                    s.pred_tags is not None,
                    s.sig is not None and s.sig.result is not None)):
            bad(s.name, "no refinement template and no handler source "
                        "(rule / synth / pred_tags / sig.result)")
        if s.alias_of is not None:
            target = REGISTRY.get(s.alias_of)
            if target is None:
                bad(s.name, f"alias of unknown primitive {s.alias_of!r}")
            else:
                if s.concrete is not target.concrete:
                    bad(s.name, "alias does not share its target's "
                                "concrete implementation")
                if s.name not in target.aliases:
                    bad(s.name, f"not recorded in {s.alias_of!r}.aliases")
        if s.core_op is not None:
            if s.core_op in core_ops:
                bad(s.name, f"core_op {s.core_op!r} already claimed by "
                            f"{core_ops[s.core_op]!r}")
            core_ops[s.core_op] = s.name
            if s.refine is None:
                bad(s.name, "names a core_op but has no refinement "
                            "template for the typed δ to interpret")

    order = list(REGISTRY)
    unknown_ext = EXTENDED_PRIMS - set(order)
    if unknown_ext:
        problems.append(f"  EXTENDED_PRIMS not declared: {sorted(unknown_ext)}")
    else:
        legacy_last = max(
            order.index(n) for n in order if n not in EXTENDED_PRIMS
        )
        for n in sorted(EXTENDED_PRIMS):
            if order.index(n) < legacy_last:
                problems.append(
                    f"  {n}: extended-family entry declared before a legacy "
                    "primitive (this shifts every program's g-loc order)"
                )

    if problems:
        print(f"check_prims: {len(problems)} problem(s) in the registry:")
        print("\n".join(problems))
        return 1
    print(f"check_prims: {len(REGISTRY)} declarations OK "
          f"({len(EXTENDED_PRIMS)} extended, "
          f"{len(core_ops)} typed-core ops)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

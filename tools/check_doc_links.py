#!/usr/bin/env python3
"""Docs link check: every relative markdown link must resolve.

``python tools/check_doc_links.py [FILE_OR_DIR ...]``

Defaults to ``README.md`` and ``docs/``.  External links (``http(s)``,
``mailto``) and pure fragments are ignored; relative targets are
resolved against the linking file's directory and must exist (fragments
are stripped first).  Exit 1 with one line per broken link.

Bare-path mentions like ``docs/ARCHITECTURE.md`` in prose are also
checked when they look like in-repo markdown paths — the docs lean on
that style heavily, and a renamed file should fail CI even where no
``[]()`` link was used.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: [text](target) markdown links, ignoring images' leading "!".
_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Prose mentions of in-repo markdown files (docs/FOO.md, README.md).
_BARE_DOC = re.compile(r"(?<![\w/(\[])((?:docs|tools)/[\w./-]+\.(?:md|py))")


def check_file(path: Path) -> list[str]:
    errors = []
    text = path.read_text(encoding="utf-8")
    targets: list[tuple[str, str]] = [
        ("link", m.group(1)) for m in _MD_LINK.finditer(text)
    ]
    targets += [("mention", m.group(1)) for m in _BARE_DOC.finditer(text)]
    for kind, raw in targets:
        target = raw.split("#", 1)[0]
        if not target or "://" in raw or raw.startswith(("mailto:", "#")):
            continue
        base = ROOT if kind == "mention" else path.parent
        if not (base / target).exists():
            try:
                shown = path.relative_to(ROOT)
            except ValueError:  # explicitly-passed file outside the repo
                shown = path
            errors.append(f"{shown}: broken {kind} -> {raw}")
    return errors


def main(argv: list[str]) -> int:
    roots = [Path(a) for a in argv] or [ROOT / "README.md", ROOT / "docs"]
    files: list[Path] = []
    for r in roots:
        files.extend(sorted(r.rglob("*.md")) if r.is_dir() else [r])
    errors = [e for f in files for e in check_file(f)]
    for e in errors:
        print(e, file=sys.stderr)
    print(f"check_doc_links: {len(files)} files, {len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Drive a running ``repro serve`` instance over HTTP and write a
bench-report-compatible JSON from the collected job rows.

``python tools/serve_smoke.py --url http://127.0.0.1:8321 --smoke
--backend scv --out BENCH_serve.json``

Submits each selected corpus program to ``POST /v1/verify`` (with its
corpus name and expected kind, so rows line up with a batch report),
polls ``GET /v1/jobs/<id>`` until every job is done, and assembles the
rows into the same ``repro-bench/v8`` report shape ``repro bench``
writes — so ``tools/diff_reports.py`` can compare a served run against
a batch run directly.  The serve-smoke CI leg runs exactly that
differential against a store-warmed server, which also exercises the
synchronous warm path (``--expect-warm`` asserts every job was answered
without touching a worker).

Exit codes: 0 all jobs done and (with ``--expect-warm``) warm; 1 a job
errored out or the warm expectation failed; 2 usage / server
unreachable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, "src")

from repro.driver.corpus import corpus_names, get_program  # noqa: E402
from repro.driver.report import (  # noqa: E402
    STATUS_ERROR,
    BenchReport,
    result_from_row,
)


def _request(url: str, body: dict | None = None, timeout: float = 30.0):
    if body is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url,
            data=json.dumps(body).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return json.load(resp)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--url", required=True,
                        help="server base URL, e.g. http://127.0.0.1:8321")
    parser.add_argument("--smoke", action="store_true",
                        help="submit the smoke-tagged corpus subset")
    parser.add_argument("--programs", nargs="*", default=None,
                        help="explicit corpus program names")
    parser.add_argument("--backend", default="core",
                        choices=["core", "scv", "both"])
    parser.add_argument("--out", required=True,
                        help="where to write the assembled report")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall deadline for all jobs (seconds)")
    parser.add_argument("--expect-warm", action="store_true",
                        help="fail unless every job was answered "
                        "synchronously from the store")
    args = parser.parse_args(argv)

    if args.programs:
        names = list(args.programs)
    elif args.smoke:
        names = corpus_names(tag="smoke", backend=args.backend)
    else:
        names = corpus_names(backend=args.backend)

    try:
        health = _request(f"{args.url}/v1/healthz")
    except (urllib.error.URLError, OSError) as exc:
        print(f"serve_smoke: server unreachable at {args.url}: {exc}",
              file=sys.stderr)
        return 2
    if not health.get("ok"):
        print(f"serve_smoke: server unhealthy: {health}", file=sys.stderr)
        return 2

    pending: dict[str, str] = {}  # job id -> program name
    jobs: dict[str, dict] = {}  # program name -> finished job view
    for name in names:
        prog = get_program(name)
        resp = _request(f"{args.url}/v1/verify", {
            "source": prog.source,
            "name": name,
            "kind": prog.kind,
            "backend": args.backend,
        })
        job = resp["job"]
        if job["state"] == "done":
            jobs[name] = job
        else:
            pending[job["id"]] = name

    deadline = time.time() + args.timeout
    while pending and time.time() < deadline:
        for job_id, name in list(pending.items()):
            view = _request(f"{args.url}/v1/jobs/{job_id}")["job"]
            if view["state"] == "done":
                jobs[name] = view
                del pending[job_id]
        if pending:
            time.sleep(0.2)
    if pending:
        print(f"serve_smoke: {len(pending)} job(s) still running at the "
              f"deadline: {sorted(pending.values())}", file=sys.stderr)
        return 1

    results = [
        result_from_row(row)
        for name in names
        for row in jobs[name]["rows"]
    ]
    report = BenchReport(
        config={"source": "repro serve", "url": args.url,
                "backend": args.backend, "programs": len(names),
                "runs": len(results)},
        results=results,
    )
    report.write(args.out)

    warm = sum(1 for j in jobs.values() if j["warm"])
    errored = [r.name for r in results if r.status == STATUS_ERROR]
    print(f"serve_smoke: {len(names)} programs, {len(results)} rows, "
          f"{warm} warm answers -> {args.out}")
    if errored:
        print(f"serve_smoke: error rows for {sorted(set(errored))}",
              file=sys.stderr)
        return 1
    if args.expect_warm and warm != len(names):
        print(f"serve_smoke: expected every job warm, got {warm}/"
              f"{len(names)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Differential comparison of two bench reports.

``python tools/diff_reports.py A.json B.json [--min-hit-rate 0.9]``

Exit 1 unless the two reports are identical on everything that is
deterministically reproducible:

* every ``(name, backend)`` program row, minus the volatile fields
  (``repro.driver.report.VOLATILE_ROW_FIELDS`` — timing, solver-economy
  and store counters — the single source of truth CI and the tests
  share);
* the ``agreement`` section (cross-backend verdicts and counterexample
  comparisons) verbatim.

With ``--min-hit-rate`` the *second* report must additionally have
answered at least that fraction of its verdict-store lookups from the
store — the warm-start CI leg's economy assertion.

Used by two CI legs: the incremental-solving differential (same corpus
with ``--no-incremental``) and the warm-start differential (same corpus
against a populated ``--store``).
"""

from __future__ import annotations

import argparse
import json
import sys

sys.path.insert(0, "src")

from repro.driver.report import VOLATILE_ROW_FIELDS  # noqa: E402


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def stable_rows(report: dict) -> dict:
    return {
        (r["name"], r["backend"]): {
            k: v for k, v in r.items() if k not in VOLATILE_ROW_FIELDS
        }
        for r in report["programs"]
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("a", help="reference report (e.g. the cold run)")
    parser.add_argument("b", help="report under test (e.g. the warm run)")
    parser.add_argument(
        "--min-hit-rate", type=float, default=None, metavar="FRACTION",
        help="require report B's verdict-store hit rate to be at least "
        "this fraction of its lookups",
    )
    args = parser.parse_args(argv)
    try:
        a, b = load(args.a), load(args.b)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"diff_reports: {exc}", file=sys.stderr)
        return 2

    failed = False
    rows_a, rows_b = stable_rows(a), stable_rows(b)
    for key in sorted(set(rows_a) | set(rows_b)):
        if rows_a.get(key) != rows_b.get(key):
            failed = True
            ra, rb = rows_a.get(key), rows_b.get(key)
            if ra is None or rb is None:
                print(f"DIFF {key}: only in "
                      f"{args.a if rb is None else args.b}", file=sys.stderr)
                continue
            fields = sorted(
                k for k in set(ra) | set(rb) if ra.get(k) != rb.get(k)
            )
            print(f"DIFF {key}: {', '.join(fields)}", file=sys.stderr)
            for f in fields:
                print(f"  {f}: {ra.get(f)!r} != {rb.get(f)!r}",
                      file=sys.stderr)
    if a.get("agreement") != b.get("agreement"):
        failed = True
        print("DIFF agreement sections differ", file=sys.stderr)
    if not failed:
        print(f"{len(rows_a)} rows identical (volatile fields aside); "
              "agreement sections identical")

    if args.min_hit_rate is not None:
        t = b["totals"]
        hits, misses = t.get("store_hits", 0), t.get("store_misses", 0)
        lookups = hits + misses
        rate = hits / lookups if lookups else 0.0
        if rate < args.min_hit_rate:
            failed = True
            print(
                f"FAIL store hit rate {rate:.1%} ({hits}/{lookups}) below "
                f"the {args.min_hit_rate:.0%} floor", file=sys.stderr,
            )
        else:
            print(f"store hit rate {rate:.1%} ({hits}/{lookups})")

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Symbolic execution for the untyped contract language (§4–5).

The subsystem is complete end-to-end: :class:`SMachine` steps the
untyped CESK machine, ``scv.delta`` supplies its primitive relation,
``scv.proof`` its tag/integer proof system, ``scv.engine`` assembles
whole programs (modules, contract boundaries, the demonic client) and
searches them, and ``scv.counterexample`` turns blame states into
concrete, surface-validated inputs.  The batch driver exposes all of
this as the ``scv`` backend (``python -m repro --backend scv``).
"""

from .counterexample import UCounterexample, check_u, construct_u, opaque_labels
from .engine import (
    USearchStats,
    assemble,
    collect_struct_types,
    explore_u,
    find_known_blames,
    inject_program,
    uses_contracts,
)
from .heap import UHeap
from .machine import Blame, SMachine, SState, is_known_label, syn_label
from .proof import UProofSystem, translate_uheap

__all__ = [
    "Blame",
    "SMachine",
    "SState",
    "UCounterexample",
    "UHeap",
    "UProofSystem",
    "USearchStats",
    "assemble",
    "check_u",
    "collect_struct_types",
    "construct_u",
    "explore_u",
    "find_known_blames",
    "inject_program",
    "is_known_label",
    "opaque_labels",
    "syn_label",
    "translate_uheap",
    "uses_contracts",
]

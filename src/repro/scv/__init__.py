"""Symbolic execution for the untyped contract language (§4–5).

The subsystem is complete end-to-end: :class:`SMachine` steps the
untyped CESK machine, ``scv.delta`` supplies its primitive relation,
``scv.proof`` its tag/integer proof system, ``scv.engine`` assembles
whole programs (modules, contract boundaries, the demonic client) and
searches them, and ``scv.counterexample`` turns blame states into
concrete, surface-validated inputs.  The batch driver exposes all of
this as the ``scv`` backend (``python -m repro --backend scv``).

Re-exports resolve lazily (PEP 562): the primitive registry's rules
(``repro.prims.rules``) import ``scv.heap`` at module load, and an
eager package ``__init__`` would drag ``scv.counterexample`` —
and through it the still-initialising ``lang.prims`` — into that
import, closing a cycle.  Lazy attribute access keeps
``from repro.scv import SMachine`` working without eagerly importing
every sibling module.
"""

from importlib import import_module

_EXPORTS = {
    "UCounterexample": "counterexample",
    "check_u": "counterexample",
    "construct_u": "counterexample",
    "opaque_labels": "counterexample",
    "USearchStats": "engine",
    "assemble": "engine",
    "collect_struct_types": "engine",
    "explore_u": "engine",
    "find_known_blames": "engine",
    "inject_program": "engine",
    "uses_contracts": "engine",
    "uses_extended_prims": "engine",
    "UHeap": "heap",
    "Blame": "machine",
    "SMachine": "machine",
    "SState": "machine",
    "is_known_label": "machine",
    "syn_label": "machine",
    "UProofSystem": "proof",
    "translate_uheap": "proof",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        mod = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(import_module(f".{mod}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

"""Symbolic execution for the untyped contract language (§4–5).

Public surface of the scaled-up machine.  Note the current state of the
subsystem: :class:`SMachine` stepping is implemented, but its δ-relation
(``scv.delta``) and proof system (``scv.proof``) are still open items —
constructing an ``SMachine`` without passing ``proof=`` explicitly will
fail until they land.  The batch driver therefore routes corpus programs
through the typed §3 pipeline (``driver.lower`` → ``core``) for now.
"""

from .heap import UHeap
from .machine import Blame, SMachine, SState, is_known_label, syn_label

__all__ = [
    "Blame",
    "SMachine",
    "SState",
    "UHeap",
    "is_known_label",
    "syn_label",
]

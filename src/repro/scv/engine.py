"""Whole-program symbolic execution for the untyped language (§4–5).

``inject_program`` assembles a surface :class:`~repro.lang.ast.Program`
into one initial machine state:

* a *base frame* binds every primitive (as a ``UPrim`` heap cell — the
  same names ``conc.interp`` resolves), ``any/c``, ``empty``/``null``,
  and each struct's constructor/predicate/accessors;
* each module becomes a ``letrec`` over its opaque imports (monitored
  by their contracts, blaming the ``•name`` party so violations by the
  unknown import are ignored per Err-Opq) and its definitions, with the
  contracted provides rebound to *monitored* aliases for everything
  downstream — the Findler–Felleisen boundary;
* the **demonic client**: when the program provides values, they are
  passed to a fresh unknown ``(•ctx prov ...)``.  The machine's own
  opaque-application rule then memoises and havocs them — the unknown
  context is not special-cased, it is literally an unknown function.
  The context location is pre-narrowed to ``procedure`` so the machine
  never blames our synthetic client for not being callable.

``explore_u``/``find_known_blames`` run the search of §5.3 over the
resulting nondeterministic transition system on the shared
:mod:`repro.search` kernel — same pluggable strategies, fingerprint
memoisation and counting as ``core.search``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from ..core.syntax import Loc
from ..lang.ast import (
    Module,
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    ULam,
    ULetrec,
    UOpaque,
    UVar,
    subexprs_u,
)
from ..lang.prims import base_primitives
from ..lang.values import NIL, StructType
from ..prims import EXTENDED_PRIMS
from .heap import (
    TAG_PROCEDURE,
    UConc,
    UCtc,
    UHeap,
    UOpq,
    UPrim,
    UStructCtor,
)
from ..core.heap import current_loc_counter
from .machine import (
    Blame,
    MEnv,
    SMachine,
    SState,
    UMon,
    current_syn_counter,
    syn_label,
)

#: The blame party of the synthesised demonic client.  Starts with "•"
#: so that contract violations *by the client* are the unknown context's
#: business (ignored), per the approximation relation's Err-Opq rule.
CLIENT = "•client"

#: The opaque label of the demonic client context.
CLIENT_LABEL = "demonic-ctx"

_CONTRACT_PRIMS = frozenset({
    "->", "make->d", "and/c", "or/c", "not/c", "cons/c", "listof",
    "list/c", "one-of/c", "=/c", "</c", ">/c", "<=/c", ">=/c",
    "make-rec-contract", "struct/c", "any/c",
})


def uses_contracts(program: Program) -> bool:
    """Does the program leave the contract-free (SPCF-expressible)
    subset?  Modules always do — they introduce boundaries; top-level
    programs do when they mention a contract combinator."""
    if program.modules:
        return True
    if program.main is None:
        return False
    for e in subexprs_u(program.main):
        if isinstance(e, UVar) and e.name in _CONTRACT_PRIMS:
            return True
    return False


def collect_struct_types(program: Program) -> dict[str, StructType]:
    return {
        sd.name: StructType(sd.name, sd.fields)
        for m in program.modules
        for sd in m.structs
    }


def uses_extended_prims(program: Program) -> bool:
    """Does any module mention the extended string/vector family?  The
    base frame allocates g-locs in registry order, so binding the
    extended names unconditionally would shift every later allocation —
    the family (and ``TAG_VECTOR``) is enabled only for programs that
    name it, keeping all other programs' heaps and reports
    byte-identical."""
    def mentions(e: Optional[UExpr]) -> bool:
        if e is None:
            return False
        return any(isinstance(sub, UVar) and sub.name in EXTENDED_PRIMS
                   for sub in subexprs_u(e))

    if mentions(program.main):
        return True
    for m in program.modules:
        if any(mentions(e) for _, e in m.definitions):
            return True
        if any(mentions(ctc) for _, ctc in m.opaques):
            return True
        if any(mentions(p.contract) for p in m.provides):
            return True
    return False


def build_base_heap(machine: SMachine) -> tuple[MEnv, UHeap]:
    """The global frame: primitives, contract constants, struct bindings."""
    heap = UHeap.empty()
    frame: dict[str, Loc] = {}

    def bind(name: str, storeable) -> None:
        nonlocal heap
        l, heap = heap.alloc(storeable, prefix="g")
        frame[name] = l

    for name in base_primitives():
        if name in EXTENDED_PRIMS and not machine.extended_prims:
            continue
        bind(name, UPrim(name))
    bind("any/c", UCtc("any"))
    nil_loc, heap = heap.alloc(UConc(NIL), prefix="g")
    frame["empty"] = nil_loc
    frame["null"] = nil_loc
    for st in machine.struct_types.values():
        bind(st.name, UStructCtor(st))
        for pname in (f"{st.name}?", *(f"{st.name}-{f}" for f in st.fields)):
            bind(pname, UPrim(pname))
    return MEnv(frame), heap


def _wrap_module(m: Module, body: UExpr) -> UExpr:
    """``letrec`` the module's opaques and definitions around ``body``,
    rebinding contracted provides to monitored aliases."""
    bindings: list[tuple[str, UExpr]] = []
    for oname, ctc in m.opaques:
        raw: UExpr = UOpaque(oname)
        if ctc is not None:
            raw = UMon(ctc, raw, pos=f"•{oname}", neg=m.name,
                       label=syn_label("mon"))
        bindings.append((oname, raw))
    bindings.extend(m.definitions)
    monitored = [p for p in m.provides if p.contract is not None]
    if monitored:
        body = UApp(
            ULam(tuple(p.name for p in monitored), body),
            tuple(
                UMon(p.contract, UVar(p.name), pos=m.name, neg=CLIENT,
                     label=p.name)
                for p in monitored
            ),
            label=syn_label("mon"),
        )
    if bindings:
        body = ULetrec(tuple(bindings), body)
    return body


def client_provides(
    program: Program, client_of: Optional[str] = None
) -> list[str]:
    """The provide names fed to the demonic client.

    ``None`` (the default) feeds every module's provides — the
    whole-program question.  A module name narrows the client to that
    module's provides, which is how the persistent store's module units
    (``repro.store``) ask "what can a client of *this* module cause?" —
    the other modules in the unit's slice are still loaded and their
    monitored rebindings still apply.  The empty string drops the client
    entirely (the store's main-expression unit)."""
    if client_of is None:
        return [p.name for m in program.modules for p in m.provides]
    if client_of == "":
        return []
    for m in program.modules:
        if m.name == client_of:
            return [p.name for p in m.provides]
    raise KeyError(f"no module named {client_of!r} to build a client for")


def assemble(program: Program, client_of: Optional[str] = None) -> UExpr:
    """The verification goal as a single expression: modules wrapped
    around the top-level (if any) and the demonic client (if anything is
    provided — narrowed by ``client_of``, see ``client_provides``)."""
    provided = client_provides(program, client_of)
    parts: list[UExpr] = []
    if provided:
        parts.append(
            UApp(
                UOpaque(CLIENT_LABEL),
                tuple(UVar(n) for n in provided),
                label=syn_label("hv"),
            )
        )
    if program.main is not None:
        parts.append(program.main)
    if not parts:
        body: UExpr = Quote(False)
    elif len(parts) == 1:
        body = parts[0]
    else:
        body = UBegin(tuple(parts))
    for m in reversed(program.modules):
        body = _wrap_module(m, body)
    return body


def inject_program(
    program: Program,
    machine: SMachine,
    client_of: Optional[str] = None,
) -> SState:
    env, heap = build_base_heap(machine)
    if client_provides(program, client_of):
        # Pre-narrow the demonic client: our synthetic context is a
        # procedure by construction, never a blameworthy non-procedure.
        heap = heap.set(
            Loc(f"o:{CLIENT_LABEL}"), UOpq(frozenset({TAG_PROCEDURE}))
        )
    # Stamp the counter bases so machine-minted labels/locations are a
    # pure function of the path from here (see SState.syn_base).
    return SState(
        assemble(program, client_of), env, heap.frozen(), (),
        0, current_syn_counter(), current_loc_counter(),
    )


# ---------------------------------------------------------------------------
# Search (§5.3: breadth-first over the execution graph)
# ---------------------------------------------------------------------------


@dataclass
class USearchStats:
    states_explored: int = 0
    answers: int = 0
    blames: int = 0
    known_blames: int = 0
    pruned: int = 0  # states dropped by fingerprint memoisation
    chained: int = 0  # deterministic micro-steps folded into macro states
    truncated: bool = False
    # Sharded-search extras (see repro.search.parallel); scheduling-
    # dependent, reported as volatile fields.
    shards: int = 1
    stolen_tasks: int = 0
    frontier_exchanges: int = 0
    shard_states: tuple = ()
    # Bytecode-compilation extras (see repro.compile); all zero on
    # interpreted runs.  ``dispatch_steps`` counts executed micro-steps
    # in the dispatch loop — deterministic for a given configuration.
    compiled_units: int = 0
    compile_ms: float = 0.0
    dispatch_steps: int = 0


def explore_u(
    init: SState,
    machine: SMachine,
    *,
    max_states: int = 50_000,
    stats: Optional[USearchStats] = None,
    strategy: str = "bfs",
    memo: bool = True,
    shards: int = 1,
    compiled: bool = False,
    compile_cache=None,
) -> Iterator[SState]:
    """Search over machine states, yielding answer states (values and
    blame) in ``strategy`` order; ``memo=False`` disables fingerprint
    pruning (the exact pre-kernel behaviour).  ``shards > 1`` runs the
    bfs frontier sharded across forked processes
    (``repro.search.parallel``) with byte-identical output; requires
    memoisation, falls back to sequential otherwise.  ``compiled``
    lowers the assembled program once (``repro.compile``) and expands
    states with the fused dispatch loop instead of the step-at-a-time
    machine — byte-identical results; ``compile_cache`` optionally
    reuses the lowered units across runs of the same program digest."""
    # Imported lazily: repro.search.fingerprint imports this package at
    # module level, so a module-level import here would be circular.
    from ..search import ScvFingerprinter, SearchKernel, ShardedSearch

    st = stats if stats is not None else USearchStats()
    expander = None
    if compiled:
        from ..compile import ScvExecutor

        expander = ScvExecutor(
            machine, init.control, stats=st, cache=compile_cache
        ).expand
    if shards > 1 and strategy == "bfs" and memo:
        proof = machine.proof
        kernel = ShardedSearch(
            machine.step,
            shards=shards,
            fingerprint=ScvFingerprinter(),
            max_states=max_states,
            enter=proof.note_path,
            stats=st,
            expander=expander,
            # ``dispatch_steps`` rides the deterministic counter replay
            # (see core.search.explore) so sharded totals match.
            counter_probe=lambda: (
                proof.queries, proof.solver_queries, st.dispatch_steps,
            ),
            counter_sink=lambda c: (
                setattr(proof, "queries", c[0]),
                setattr(proof, "solver_queries", c[1]),
                setattr(st, "dispatch_steps", c[2]),
            ),
        )
    else:
        kernel = SearchKernel(
            machine.step,
            strategy=strategy,
            fingerprint=ScvFingerprinter() if memo else None,
            max_states=max_states,
            expander=expander,
            enter=machine.proof.note_path,  # per-path solver context hook
            stats=st,
        )
    for state in kernel.run(init):
        if isinstance(state.control, Blame):
            st.blames += 1
            if state.control.known:
                st.known_blames += 1
        yield state


def find_known_blames(
    init: SState,
    machine: SMachine,
    *,
    max_states: int = 50_000,
    stats: Optional[USearchStats] = None,
    strategy: str = "bfs",
    memo: bool = True,
    shards: int = 1,
    compiled: bool = False,
    compile_cache=None,
) -> Iterator[SState]:
    """Answer states blaming *known* code — errors from the unknown
    context (synthetic labels, ``•`` parties) are not findings."""
    for state in explore_u(
        init, machine, max_states=max_states, stats=stats,
        strategy=strategy, memo=memo, shards=shards, compiled=compiled,
        compile_cache=compile_cache,
    ):
        c = state.control
        if isinstance(c, Blame) and c.known:
            yield state

"""The untyped proof relation ``Σ ⊢ L : P`` — paper Fig. 5 lifted to §4.

The typed proof system (``core.proof``) decides predicates over a heap
whose every location is an integer or a function.  The untyped heap is
richer: a location may hold *any* tag (integer, pair, procedure, ...),
and an opaque value carries a set of possible tags alongside its numeric
refinements.  This module therefore splits the judgement in two:

* ``check_tags`` — a purely lattice-level judgement: is the value at
  ``L`` definitely / definitely-not / possibly inside a set of type
  tags?  This is what the δ-rules for type tests (``pair?``,
  ``number?``, ...) consult, and it needs no solver.
* ``check`` — the numeric three-valued judgement (PROVED / REFUTED /
  AMBIG) over the refinement predicates, reusing the SMT layer
  (``repro.smt``) through :func:`translate_uheap`.

Translation boundary (the documented §5.3 confinement): only
*integer-sorted* facts are translated.  A location contributes a solver
constraint when it holds a concrete exact integer, an opaque narrowed
enough that its numeric refinements are meaningful, or a ``UCase``
mapping whose keys and outputs are integer-sorted (the functional-
consistency implications of Fig. 4).  Pairs, procedures, contracts and
non-integer scalars contribute nothing — their reasoning happens at the
tag level, before the solver is ever consulted.  Scalar equality with
non-numeric datums (``PEqDatum``) is decided syntactically.
"""

from __future__ import annotations

from typing import Optional

from ..core.heap import (
    HConst,
    HLoc,
    HOp,
    HTerm,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
)
from ..core.proof import Verdict
from ..core.syntax import Loc
from ..lang.values import racket_equal
from ..smt import (
    Formula,
    PathContext,
    Result,
    check_sat,
    mk_and,
    mk_eq,
    mk_implies,
    mk_not,
)
from ..core.translate import loc_var, translate_pred
from .heap import (
    PEqDatum,
    TAG_INTEGER,
    UAlias,
    UCase,
    UConc,
    UHeap,
    UOpq,
    UStoreable,
)

__all__ = ["Verdict", "UProofSystem", "translate_uheap", "translate_uheap_parts"]


def _is_exact_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def _int_value(heap: UHeap, l: Loc) -> Optional[int]:
    _, s = heap.deref(l)
    if isinstance(s, UConc) and _is_exact_int(s.value):
        return s.value
    return None


def _eval_hterm(t: HTerm, heap: UHeap) -> Optional[int]:
    """Evaluate a heap term when every mentioned location is a concrete
    exact integer (Euclidean div/mod, matching the solver's axioms)."""
    if isinstance(t, HConst):
        return t.value
    if isinstance(t, HLoc):
        return _int_value(heap, t.loc)
    if isinstance(t, HOp):
        args = [_eval_hterm(a, heap) for a in t.args]
        if any(a is None for a in args):
            return None
        a, b = (args + [None])[0], (args + [None, None])[1]
        if t.op == "+":
            return sum(args)  # type: ignore[arg-type]
        if t.op == "-":
            return a - b  # type: ignore[operator]
        if t.op == "*":
            out = 1
            for v in args:
                out *= v  # type: ignore[assignment]
            return out
        if t.op in ("div", "mod") and b:
            q = a // b if b > 0 else -(a // -b)  # type: ignore[operator]
            return q if t.op == "div" else a - b * q  # type: ignore[operator]
    return None


def _numeric_pred(p: Pred) -> bool:
    """Is ``p`` expressible in the integer fragment (Fig. 4 forms)?"""
    if isinstance(p, PNot):
        return _numeric_pred(p.arg)
    if isinstance(p, (PEq, PLt, PLe, PZero)):
        return True
    if isinstance(p, PEqDatum):
        return _is_exact_int(p.datum)
    return False


def _as_core_pred(p: Pred) -> Pred:
    """Rewrite ``PEqDatum`` over integers into the core ``PEq`` form so
    the shared ``core.translate`` machinery can handle it."""
    if isinstance(p, PNot):
        return PNot(_as_core_pred(p.arg))
    if isinstance(p, PEqDatum) and _is_exact_int(p.datum):
        return PEq(HConst(p.datum))
    return p


def _check_concrete(value: object, p: Pred, heap: UHeap) -> Optional[bool]:
    """Decide a predicate against a concrete scalar without the solver."""
    if isinstance(p, PNot):
        sub = _check_concrete(value, p.arg, heap)
        return None if sub is None else (not sub)
    if isinstance(p, PEqDatum):
        return racket_equal(value, p.datum)
    if not _is_exact_int(value):
        return None
    if isinstance(p, PZero):
        return value == 0
    if isinstance(p, (PEq, PLt, PLe)):
        rhs = _eval_hterm(p.term, heap)
        if rhs is None:
            return None
        if isinstance(p, PEq):
            return value == rhs
        if isinstance(p, PLt):
            return value < rhs
        return value <= rhs
    return None


# ---------------------------------------------------------------------------
# Heap translation — ``{{Σ}}`` restricted to the integer sort
# ---------------------------------------------------------------------------


def translate_uheap(heap: UHeap) -> Formula:
    """The conjunction of integer-sorted facts recorded in ``heap``.

    Mirrors ``core.translate.translate_heap`` in ``implications`` mode:
    concrete exact integers pin their variable, opaque refinements become
    the Fig. 4 predicate formulas, and ``UCase`` memo tables become
    functional-consistency implications (restricted to entries whose keys
    and output are integer-sorted; mixed-sort entries are dropped, which
    only ever *weakens* the formula — spurious models are then caught by
    concrete validation, never the other way round).
    """
    return mk_and(*translate_uheap_parts(heap))


def translate_uheap_parts(heap: UHeap) -> tuple[Formula, ...]:
    """``{{Σ}}`` as its conjunct sequence in heap order — the trail the
    per-path incremental contexts (``smt.incremental``) diff between
    queries (see ``core.translate.translate_heap_parts``)."""
    parts: list[Formula] = []
    for l, s in heap.items():
        if isinstance(s, UConc):
            if _is_exact_int(s.value):
                parts.append(mk_eq(loc_var(l), s.value))
        elif isinstance(s, UOpq):
            for p in s.preds:
                if _numeric_pred(p):
                    parts.append(
                        translate_pred(_as_core_pred(p), loc_var(l))
                    )
        elif isinstance(s, UAlias):
            target, ts = heap.deref(l)
            if _int_sorted(ts):
                parts.append(mk_eq(loc_var(l), loc_var(target)))
        elif isinstance(s, UCase):
            entries = [
                (k, v)
                for k, v in s.mapping
                if all(_int_sorted_at(heap, ki) for ki in k)
                and _int_sorted_at(heap, v)
            ]
            for i in range(len(entries)):
                for j in range(i + 1, len(entries)):
                    (k1, v1), (k2, v2) = entries[i], entries[j]
                    keys_eq = mk_and(
                        *[
                            mk_eq(loc_var(a), loc_var(b))
                            for a, b in zip(k1, k2)
                        ]
                    )
                    parts.append(
                        mk_implies(keys_eq, mk_eq(loc_var(v1), loc_var(v2)))
                    )
        # Pairs, procedures, structs, boxes, contracts: no integer fact.
    return tuple(parts)


def _int_sorted(s: UStoreable) -> bool:
    if isinstance(s, UConc):
        return _is_exact_int(s.value)
    if isinstance(s, UOpq):
        return TAG_INTEGER in s.possible
    return False


def _int_sorted_at(heap: UHeap, l: Loc) -> bool:
    _, s = heap.deref(l)
    return _int_sorted(s)


# ---------------------------------------------------------------------------
# The proof system
# ---------------------------------------------------------------------------


class UProofSystem:
    """Decides tag- and integer-level judgements over untyped heaps.

    Like the typed ``ProofSystem`` it is configuration plus counters —
    no *judgement* is cached across queries — but with ``incremental``
    (the default) it carries a per-path solver context
    (:class:`~repro.smt.PathContext`) whose assertion trail follows the
    heap along the explored path and forks at branch points; the paired
    ``ψ`` / ``¬ψ`` checks share it as assumption queries.
    ``incremental=False`` restores per-query one-shot solving.
    """

    def __init__(self, *, incremental: bool = True) -> None:
        self.queries = 0
        self.solver_queries = 0
        self._ctx = PathContext() if incremental else None

    def note_path(self, state) -> None:
        """Search-kernel hook — see ``core.proof.ProofSystem.note_path``."""
        if self._ctx is not None:
            self._ctx.note_switch()

    # -- tag lattice ----------------------------------------------------

    def check_tags(self, heap: UHeap, l: Loc, tags: frozenset[str]) -> Verdict:
        """Is the value at ``l`` inside the tag set?  Non-opaque
        storeables answer definitely via their primary tag."""
        self.queries += 1
        from .delta import storeable_tag  # local import: delta ↔ proof

        _, s = heap.deref(l)
        if isinstance(s, UOpq):
            if not (s.possible & tags):
                return Verdict.REFUTED
            if s.possible <= tags:
                return Verdict.PROVED
            return Verdict.AMBIG
        tag = storeable_tag(s)
        return Verdict.PROVED if tag in tags else Verdict.REFUTED

    # -- numeric judgement ----------------------------------------------

    def check(self, heap: UHeap, l: Loc, p: Pred) -> Verdict:
        """``Σ ⊢ L : P`` over the integer fragment (plus syntactic
        scalar-equality facts)."""
        self.queries += 1
        target, s = heap.deref(l)
        if isinstance(s, UConc):
            v = _check_concrete(s.value, p, heap)
            if v is True:
                return Verdict.PROVED
            if v is False:
                return Verdict.REFUTED
            return Verdict.AMBIG
        if not isinstance(s, UOpq):
            # Structured values never satisfy numeric predicates; scalar
            # equality against them is decided by δ, not here.
            return Verdict.AMBIG
        # Fast path: the refinement (or its negation) is recorded.
        if p in s.preds:
            return Verdict.PROVED
        if PNot(p) in s.preds:
            return Verdict.REFUTED
        if isinstance(p, PNot) and p.arg in s.preds:
            return Verdict.REFUTED
        # Tag-level refutation: equality with a datum whose tag the
        # opaque can no longer be.
        if isinstance(p, PEqDatum) and not _numeric_pred(p):
            from .delta import datum_tag

            t = datum_tag(p.datum)
            if t is not None and t not in s.possible:
                return Verdict.REFUTED
            return Verdict.AMBIG
        if not _numeric_pred(p):
            return Verdict.AMBIG
        if TAG_INTEGER not in s.possible:
            # The subject cannot be an integer; integer predicates are
            # vacuously refuted (equality) or undecided (orderings on a
            # non-integer are δ's business, it never asks).
            return Verdict.REFUTED
        if s.possible != frozenset({TAG_INTEGER}):
            # Not yet narrowed to the solver's sort; branch rather than
            # trust a formula that assumes integerness.
            return Verdict.AMBIG
        # Solver path (Fig. 5).
        self.solver_queries += 1
        psi = translate_pred(_as_core_pred(p), loc_var(target))
        if self._ctx is not None:
            parts = self._ctx.parts_for(heap, translate_uheap_parts)
            if self._ctx.check_under(parts, mk_not(psi)) is Result.UNSAT:
                return Verdict.PROVED
            if self._ctx.check_under(parts, psi) is Result.UNSAT:
                return Verdict.REFUTED
            return Verdict.AMBIG
        phi = translate_uheap(heap)
        if check_sat(phi, mk_not(psi)) is Result.UNSAT:
            return Verdict.PROVED
        if check_sat(phi, psi) is Result.UNSAT:
            return Verdict.REFUTED
        return Verdict.AMBIG

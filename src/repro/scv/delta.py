"""The untyped primitive relation δ — paper Fig. 3 lifted to §4.

Where the typed δ (``core.delta``) only needs integers, the untyped δ
relates heaps and *tagged* values.  Every rule follows the same recipe:

1. **Concrete fast path** — when every argument reifies to a concrete
   Racket value, the rule *delegates to the very primitives the concrete
   interpreter runs* (``lang.prims``): one implementation, two engines.
   A ``PrimError`` raised there becomes blame at the application label.
2. **Tag split** — opaque arguments branch on their possible tags: one
   blame branch per way the precondition can fail (the untyped machine's
   new error source), one ok branch with the argument narrowed.  Under
   ``assume_well_typed`` (used when cross-checking against the typed §3
   backend on the contract-free corpus) the blame branches are
   suppressed and only the narrowing is kept.
3. **Integer refinement** — narrowed numeric arguments take the integer
   instantiation and results carry ``PEq`` refinements over heap terms,
   confining solver reasoning to LIA exactly as §5.3 prescribes.

Higher-order and inductive primitives (``map``, ``listof`` walks,
``even?``...) are not implemented directly: they *synthesise* checking
code out of simpler primitives (``OEval``), the same move the monitor
makes for compound contracts (§4.3) — "the semantics of contract
checking itself breaks down complex and higher-order contracts into
simple predicates".

Known divergence (shared with ``core.delta`` and documented in the
corpus discipline): symbolic ``quotient``/``modulo`` constraints use the
solver's Euclidean ``div``/``mod``, which differs from Racket's
truncating/floor semantics on negative operands; concrete validation
filters any spurious model this admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Optional

from ..core.heap import HConst, HLoc, HOp, HTerm, PEq, PLe, PLt, PNot, Pred, PZero
from ..core.proof import Verdict
from ..core.syntax import Loc
from ..lang.ast import Quote, UApp, UExpr, UIf, ULam, ULetrec, UVar
from ..lang.prims import PrimError, UserError, base_primitives
from ..lang.sexp import Symbol
from ..lang.values import NIL, Nil, Pair, StructVal, VOID, Void, racket_equal
from .heap import (
    NUMBER_TAGS,
    PEqDatum,
    REAL_TAGS,
    TAG_BOOLEAN,
    TAG_BOX,
    TAG_INTEGER,
    TAG_NONREAL,
    TAG_NULL,
    TAG_PAIR,
    TAG_PROCEDURE,
    TAG_RATREAL,
    TAG_STRING,
    TAG_SYMBOL,
    TAG_VOID,
    UBoxS,
    UCase,
    UClos,
    UConc,
    UCtc,
    UGuard,
    UHeap,
    UOpq,
    UPair,
    UPrim,
    UStoreable,
    UStruct,
    UStructCtor,
    struct_tag,
)

_PRIMS = base_primitives()


# ---------------------------------------------------------------------------
# Outcomes — the codomain of δ
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    pass


@dataclass(frozen=True)
class OValue(Outcome):
    """Allocate ``storeable`` and continue with its location."""

    heap: UHeap
    storeable: UStoreable
    effort: int = 0


@dataclass(frozen=True)
class OLoc(Outcome):
    """Continue with an existing location (e.g. ``car`` of a pair)."""

    heap: UHeap
    loc: Loc
    effort: int = 0


@dataclass(frozen=True)
class OBlame(Outcome):
    """The primitive's precondition failed on this branch."""

    heap: UHeap
    party: str
    label: str
    description: str


@dataclass(frozen=True)
class OEval(Outcome):
    """Continue by evaluating synthesised code (§4.3-style expansion)."""

    heap: UHeap
    expr: UExpr
    env: object  # MEnv; untyped to avoid the machine ↔ delta import cycle
    effort: int = 0


# ---------------------------------------------------------------------------
# Tags of concrete things
# ---------------------------------------------------------------------------


def datum_tag(v: object) -> Optional[str]:
    """Primary tag of a concrete immediate."""
    if isinstance(v, bool):
        return TAG_BOOLEAN
    if isinstance(v, int):
        return TAG_INTEGER
    if isinstance(v, Fraction):
        return TAG_INTEGER if v.denominator == 1 else TAG_RATREAL
    if isinstance(v, float):
        return TAG_RATREAL
    if isinstance(v, complex):
        return TAG_NONREAL
    if isinstance(v, str):
        return TAG_STRING
    if isinstance(v, Symbol):
        return TAG_SYMBOL
    if isinstance(v, Nil):
        return TAG_NULL
    if isinstance(v, Void):
        return TAG_VOID
    return None


def storeable_tag(s: UStoreable) -> Optional[str]:
    """Primary tag of a non-opaque storeable (None: no tag, e.g. a
    contract value — every type predicate answers ``#f`` on it)."""
    if isinstance(s, UConc):
        return datum_tag(s.value)
    if isinstance(s, UPair):
        return TAG_PAIR
    if isinstance(s, UStruct):
        return struct_tag(s.type.name)
    if isinstance(s, UBoxS):
        return TAG_BOX
    if isinstance(s, (UClos, UPrim, UGuard, UStructCtor, UCase)):
        return TAG_PROCEDURE
    return None


def _is_exact_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


# ---------------------------------------------------------------------------
# Reification of concrete arguments (for delegation to lang.prims)
# ---------------------------------------------------------------------------

_UNREIFIABLE = object()


def reify_concrete(heap: UHeap, l: Loc, depth: int = 0) -> object:
    """The concrete Racket value at ``l``, or ``_UNREIFIABLE`` if any
    reachable part is symbolic or behaviourful."""
    if depth > 64:
        return _UNREIFIABLE
    _, s = heap.deref(l)
    if isinstance(s, UConc):
        if s.value is _LETREC_UNDEFINED():
            return _UNREIFIABLE
        return s.value
    if isinstance(s, UPair):
        car = reify_concrete(heap, s.car, depth + 1)
        cdr = reify_concrete(heap, s.cdr, depth + 1)
        if car is _UNREIFIABLE or cdr is _UNREIFIABLE:
            return _UNREIFIABLE
        return Pair(car, cdr)
    if isinstance(s, UStruct):
        fields = [reify_concrete(heap, f, depth + 1) for f in s.fields]
        if any(f is _UNREIFIABLE for f in fields):
            return _UNREIFIABLE
        return StructVal(s.type, tuple(fields))
    return _UNREIFIABLE


def _LETREC_UNDEFINED() -> object:
    from .machine import _UNDEFINED

    return _UNDEFINED


def alloc_value(heap: UHeap, v: object) -> tuple[Loc, UHeap]:
    """Allocate a concrete Racket value back into the symbolic heap."""
    if isinstance(v, Pair):
        car, heap = alloc_value(heap, v.car)
        cdr, heap = alloc_value(heap, v.cdr)
        return heap.alloc(UPair(car, cdr))
    if isinstance(v, StructVal):
        locs = []
        for f in v.values:
            l, heap = alloc_value(heap, f)
            locs.append(l)
        return heap.alloc(UStruct(v.type, tuple(locs)))
    return heap.alloc(UConc(v))


class _NoApplyCtx:
    """Delegation context: concrete fast paths never call back into an
    interpreter — a primitive that tries has been mis-routed."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def apply(self, fn, args):  # pragma: no cover - routing invariant
        raise RuntimeError("higher-order primitive reached the concrete "
                           "delegation path of scv.delta")


# ---------------------------------------------------------------------------
# The rule context
# ---------------------------------------------------------------------------


class Rule:
    """One δ-rule application: primitive + argument locations + label,
    with the branch-building helpers every handler shares."""

    def __init__(self, machine, heap: UHeap, name: str,
                 args: tuple[Loc, ...], label: str) -> None:
        self.m = machine
        self.heap = heap
        self.name = name
        self.args = args
        self.label = label

    # -- basic lookups --------------------------------------------------

    def deref(self, l: Loc, heap: Optional[UHeap] = None):
        return (heap or self.heap).deref(l)

    def conc(self, l: Loc, heap: Optional[UHeap] = None) -> object:
        _, s = self.deref(l, heap)
        return s.value if isinstance(s, UConc) else _UNREIFIABLE

    @property
    def typed(self) -> bool:
        return self.m.assume_well_typed

    # -- outcome constructors -------------------------------------------

    def blame(self, desc: str, heap: Optional[UHeap] = None) -> OBlame:
        return OBlame(heap or self.heap, "Λ", self.label,
                      f"{self.name}: {desc}")

    def value(self, s: UStoreable, heap: Optional[UHeap] = None,
              effort: int = 0) -> OValue:
        return OValue(heap or self.heap, s, effort)

    def boolean(self, b: bool, heap: Optional[UHeap] = None,
                effort: int = 0) -> OValue:
        return self.value(UConc(bool(b)), heap, effort)

    def run(self, expr: UExpr, heap: Optional[UHeap] = None,
            effort: int = 0) -> OEval:
        from .machine import MEnv

        return OEval(heap or self.heap, expr, MEnv({}), effort)

    # -- synthesis helpers ----------------------------------------------

    def prim(self, name: str) -> UExpr:
        """An expression denoting primitive ``name`` (allocated into the
        rule's heap; synthesised code refers to it by location, never by
        name, so user bindings cannot shadow it)."""
        from .machine import ULocE

        l, self.heap = self.heap.alloc(UPrim(name))
        return ULocE(l)

    def loc_expr(self, l: Loc) -> UExpr:
        from .machine import ULocE

        return ULocE(l)

    def app(self, fn: UExpr, *args: UExpr) -> UApp:
        from .machine import syn_label

        return UApp(fn, tuple(args), label=syn_label("dl"))

    def improper(self, what: str) -> UExpr:
        from .machine import UBlameE

        return UBlameE("Λ", f"{self.name}: expected proper list ({what})",
                       self.label)

    # -- concrete delegation --------------------------------------------

    def all_concrete(self) -> Optional[list]:
        vals = [reify_concrete(self.heap, a) for a in self.args]
        if any(v is _UNREIFIABLE for v in vals):
            return None
        return vals

    def delegate(self, vals: list) -> list[Outcome]:
        try:
            out = _PRIMS[self.name](vals, _NoApplyCtx(self.label))
        except PrimError as pe:
            return [OBlame(self.heap, "Λ", self.label,
                           f"{pe.op}: {pe.message}")]
        except UserError as ue:
            return [OBlame(self.heap, "Λ", self.label, f"error: {ue.message}")]
        l, h = alloc_value(self.heap, out)
        return [OLoc(h, l)]

    # -- tag splitting ---------------------------------------------------

    def narrow_args(
        self, locs: tuple[Loc, ...], want: frozenset[str], desc: str
    ) -> tuple[list[tuple[UHeap, int]], list[Outcome]]:
        """Branch each opaque argument on ``want``.  Returns the ok
        branches (heaps with every argument narrowed into ``want``, plus
        accumulated effort) and the blame branches.  Under the typed
        discipline only narrowing happens — no blame branches unless an
        argument is *definitely* outside ``want``."""
        oks: list[tuple[UHeap, int]] = [(self.heap, 0)]
        blames: list[Outcome] = []
        for l in locs:
            next_oks: list[tuple[UHeap, int]] = []
            for heap, effort in oks:
                target, s = heap.deref(l)
                if not isinstance(s, UOpq):
                    tag = storeable_tag(s)
                    if tag in want:
                        next_oks.append((heap, effort))
                    else:
                        blames.append(self.blame(f"{desc}, got {s!r}", heap))
                    continue
                inter = s.possible & want
                if not inter:
                    blames.append(self.blame(f"{desc}, got {s!r}", heap))
                    continue
                if s.possible <= want:
                    next_oks.append((heap, effort))
                    continue
                next_oks.append((heap.narrow(target, want), effort + 1))
                if not self.typed:
                    bad = heap.narrow(target, s.possible - want)
                    blames.append(
                        self.blame(f"{desc}, got {self.deref(l, bad)[1]!r}",
                                   bad)
                    )
            oks = next_oks
        return oks, blames

    def int_narrow(self, heap: UHeap, l: Loc) -> tuple[UHeap, Optional[Loc]]:
        """Take the integer instantiation of a numeric argument: returns
        the (possibly narrowed) heap and the location to mention in heap
        terms, or None when the argument cannot be integer-sorted."""
        target, s = heap.deref(l)
        if isinstance(s, UConc):
            return heap, target if _is_exact_int(s.value) else None
        assert isinstance(s, UOpq)
        if TAG_INTEGER not in s.possible:
            return heap, None
        if s.possible != frozenset({TAG_INTEGER}):
            heap = heap.narrow(target, frozenset({TAG_INTEGER}))
        return heap, target


# ---------------------------------------------------------------------------
# Handlers: arithmetic
# ---------------------------------------------------------------------------


def _fold_term(op: str, terms: list[HTerm]) -> HTerm:
    out = terms[0]
    for t in terms[1:]:
        out = HOp(op, (out, t))
    return out


def _num_term(heap: UHeap, l: Loc) -> HTerm:
    _, s = heap.deref(l)
    if isinstance(s, UConc) and _is_exact_int(s.value):
        return HConst(s.value)
    target, _ = heap.deref(l)
    return HLoc(target)


def _h_arith(op: str) -> Callable[[Rule], list[Outcome]]:
    """n-ary +, -, * (and unary add1/sub1 via the dispatch wrappers)."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        if not r.args or (op == "-" and len(r.args) < 1):
            return [r.blame("needs at least 1 argument")]
        oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
        for heap, effort in oks:
            locs = []
            all_int = True
            for a in r.args:
                heap, il = r.int_narrow(heap, a)
                if il is None:
                    all_int = False
                locs.append(il)
            if not all_int:
                out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
                continue
            terms = [_num_term(heap, a) for a in r.args]
            if op == "-" and len(terms) == 1:
                terms = [HConst(0), terms[0]]
            term = _fold_term(op, terms)
            out.append(
                OValue(heap, UOpq(frozenset({TAG_INTEGER}), (PEq(term),)),
                       effort)
            )
        return out

    return handler


def _h_add1(r: Rule) -> list[Outcome]:
    return _offset(r, "+")


def _h_sub1(r: Rule) -> list[Outcome]:
    return _offset(r, "-")


def _offset(r: Rule, op: str) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
    for heap, effort in oks:
        heap, il = r.int_narrow(heap, r.args[0])
        if il is None:
            out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
            continue
        term = HOp(op, (_num_term(heap, r.args[0]), HConst(1)))
        out.append(
            OValue(heap, UOpq(frozenset({TAG_INTEGER}), (PEq(term),)), effort)
        )
    return out


def _h_divlike(op: str, constrain: bool) -> Callable[[Rule], list[Outcome]]:
    """quotient / modulo / remainder: exact-integer preconditions plus
    the canonical zero-divisor branch.  ``constrain`` attaches the
    Euclidean ``div``/``mod`` refinement; ``remainder`` (whose truncating
    semantics the solver cannot express) leaves the result opaque."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 2:
            return [r.blame(f"expected 2 arguments, got {len(r.args)}")]
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        oks, out = r.narrow_args(
            r.args, frozenset({TAG_INTEGER}), "expected exact integer"
        )
        for heap, effort in oks:
            num, den = r.args
            dv = r.conc(den, heap)
            if dv is not _UNREIFIABLE:
                if dv == 0:
                    out.append(r.blame("division by zero", heap))
                    continue
                out.append(_div_ok(r, heap, effort, op, constrain))
                continue
            dt, _ = heap.deref(den)
            verdict = r.m.proof.check(heap, dt, PZero())
            if verdict is Verdict.PROVED:
                out.append(r.blame("division by zero", heap))
                continue
            if verdict is Verdict.REFUTED:
                out.append(_div_ok(r, heap, effort, op, constrain))
                continue
            out.append(
                r.blame("division by zero", heap.refine(dt, PZero()))
            )
            out.append(
                _div_ok(r, heap.refine(dt, PNot(PZero())), effort + 1, op,
                        constrain)
            )
        return out

    return handler


def _div_ok(r: Rule, heap: UHeap, effort: int, op: str,
            constrain: bool) -> OValue:
    preds: tuple[Pred, ...] = ()
    if constrain:
        term = HOp(op, (_num_term(heap, r.args[0]), _num_term(heap, r.args[1])))
        preds = (PEq(term),)
    return OValue(heap, UOpq(frozenset({TAG_INTEGER}), preds), effort)


def _h_slash(r: Rule) -> list[Outcome]:
    """``/`` — zero check, but results leave the integer fragment."""
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
    for heap, effort in oks:
        den = r.args[-1]
        dv = r.conc(den, heap)
        if dv is not _UNREIFIABLE and dv == 0:
            out.append(r.blame("division by zero", heap))
            continue
        dt, ds = heap.deref(den)
        if isinstance(ds, UOpq):
            heap2, il = r.int_narrow(heap, den)
            if il is not None:
                out.append(r.blame("division by zero",
                                   heap2.refine(il, PZero())))
                heap = heap2.refine(il, PNot(PZero()))
                effort += 1
        out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
    return out


# ---------------------------------------------------------------------------
# Handlers: comparisons and numeric predicates
# ---------------------------------------------------------------------------


def _flip_for_rhs(op: str, v1: int) -> Pred:
    if op == "=":
        return PEq(HConst(v1))
    if op == "<":
        return PNot(PLe(HConst(v1)))
    if op == "<=":
        return PNot(PLt(HConst(v1)))
    raise ValueError(op)


def _pred_for_lhs(op: str, heap: UHeap, l2: Loc) -> Pred:
    t = _num_term(heap, l2)
    if op == "=":
        return PEq(t)
    if op == "<":
        return PLt(t)
    if op == "<=":
        return PLe(t)
    raise ValueError(op)


def _h_compare(op: str) -> Callable[[Rule], list[Outcome]]:
    """Binary-normalised <, <=, = (>, >= arrive pre-swapped); n-ary uses
    chained synthesis."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        if len(r.args) < 2:
            return [r.blame("needs at least 2 arguments")]
        if len(r.args) > 2:
            parts = [
                r.app(r.prim(r.name), r.loc_expr(a), r.loc_expr(b))
                for a, b in zip(r.args, r.args[1:])
            ]
            chain: UExpr = Quote(True)
            for p in reversed(parts):
                chain = UIf(p, chain, Quote(False))
            return [r.run(chain)]
        want = NUMBER_TAGS if op == "=" else REAL_TAGS
        oks, out = r.narrow_args(
            r.args, want,
            "expected number" if op == "=" else "expected real",
        )
        norm_op = op
        l1, l2 = r.args
        for heap, effort in oks:
            heap, i1 = r.int_narrow(heap, l1)
            heap, i2 = r.int_narrow(heap, l2)
            if i1 is None or i2 is None:
                out.append(OValue(heap, UOpq(frozenset({TAG_BOOLEAN})),
                                  effort))
                continue
            v1, v2 = r.conc(l1, heap), r.conc(l2, heap)
            if v1 is not _UNREIFIABLE and v2 is not _UNREIFIABLE:
                out.append(r.boolean(_COMPARE_PY[norm_op](v1, v2), heap,
                                     effort))
                continue
            if v1 is _UNREIFIABLE:
                subject, pred = i1, _pred_for_lhs(norm_op, heap, l2)
            else:
                subject, pred = i2, _flip_for_rhs(norm_op, v1)
            verdict = r.m.proof.check(heap, subject, pred)
            if verdict is Verdict.PROVED:
                out.append(r.boolean(True, heap, effort))
            elif verdict is Verdict.REFUTED:
                out.append(r.boolean(False, heap, effort))
            else:
                out.append(
                    r.boolean(True, heap.refine(subject, pred), effort + 1)
                )
                out.append(
                    r.boolean(False, heap.refine(subject, PNot(pred)),
                              effort + 1)
                )
        return out

    return handler


_COMPARE_PY = {
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def _h_swapped(inner: Callable[[Rule], list[Outcome]]):
    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) == 2:
            r = Rule(r.m, r.heap, _SWAP_NAME[r.name], tuple(reversed(r.args)),
                     r.label)
            return inner(r)
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        parts = [
            r.app(r.prim(r.name), r.loc_expr(a), r.loc_expr(b))
            for a, b in zip(r.args, r.args[1:])
        ]
        chain: UExpr = Quote(True)
        for p in reversed(parts):
            chain = UIf(p, chain, Quote(False))
        return [r.run(chain)]

    return handler


_SWAP_NAME = {">": "<", ">=": "<="}


def _h_sign_pred(pred_of: Callable[[], Pred]) -> Callable[[Rule], list[Outcome]]:
    """zero? / positive? / negative? — *total* predicates: non-numbers
    answer #f, numbers branch three ways through the proof system."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        (l,) = r.args
        target, s = r.deref(l)
        if not isinstance(s, UOpq):
            return [r.boolean(False)]  # a symbolic pair/struct is not a number
        out: list[Outcome] = []
        if not (s.possible & NUMBER_TAGS):
            return [r.boolean(False)]
        if not (s.possible <= NUMBER_TAGS):
            out.append(
                r.boolean(False, r.heap.narrow(target,
                                               s.possible - NUMBER_TAGS), 1)
            )
            r = Rule(r.m, r.heap.narrow(target, NUMBER_TAGS), r.name, r.args,
                     r.label)
        heap, il = r.int_narrow(r.heap, l)
        if il is None:
            out.append(OValue(heap, UOpq(frozenset({TAG_BOOLEAN})), 1))
            return out
        p = pred_of()
        verdict = r.m.proof.check(heap, il, p)
        if verdict is Verdict.PROVED:
            out.append(r.boolean(True, heap))
        elif verdict is Verdict.REFUTED:
            out.append(r.boolean(False, heap))
        else:
            out.append(r.boolean(True, heap.refine(il, p), 1))
            out.append(r.boolean(False, heap.refine(il, PNot(p)), 1))
        return out

    return handler


def _h_parity(test_zero: bool) -> Callable[[Rule], list[Outcome]]:
    """even? / odd? via synthesis: ``(if (integer? x) ⟨mod test⟩ #f)``."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        (l,) = r.args
        x = r.loc_expr(l)
        mod2 = r.app(r.prim("modulo"), x, Quote(2))
        test = r.app(r.prim("zero?"), mod2)
        inner = test if test_zero else r.app(r.prim("not"), test)
        return [r.run(UIf(r.app(r.prim("integer?"), x), inner, Quote(False)))]

    return handler


# ---------------------------------------------------------------------------
# Handlers: type predicates
# ---------------------------------------------------------------------------


def _h_tag_pred(
    tags: frozenset[str],
    materialize: Optional[Callable[[Rule, UHeap], tuple[UStoreable, UHeap]]] = None,
) -> Callable[[Rule], list[Outcome]]:
    """The generic run-time type test (§4.1): concrete subjects answer
    immediately, opaque subjects branch and *narrow*; ``materialize``
    turns a tag-narrowed opaque into its shape (§4.2) on the yes branch
    — once known to be a pair it *becomes* ``(cons • •)``."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        (l,) = r.args
        target, s = r.deref(l)
        if not isinstance(s, UOpq):
            return [r.boolean((storeable_tag(s) or "") in tags)]
        inter = s.possible & tags
        if not inter:
            return [r.boolean(False)]
        if s.possible <= tags:
            return [r.boolean(True)]
        yes_heap = r.heap.narrow(target, inter)
        if materialize is not None:
            shape, yes_heap = materialize(r, yes_heap)
            yes_heap = yes_heap.set(target, shape)
        return [
            r.boolean(True, yes_heap, 1),
            r.boolean(False, r.heap.narrow(target, s.possible - tags), 1),
        ]

    return handler


def _mat_pair(r: Rule, heap: UHeap) -> tuple[UStoreable, UHeap]:
    car, heap = heap.alloc(r.m.fresh_opq())
    cdr, heap = heap.alloc(r.m.fresh_opq())
    return UPair(car, cdr), heap


def _mat_null(r: Rule, heap: UHeap) -> tuple[UStoreable, UHeap]:
    return UConc(NIL), heap


def _mat_box(r: Rule, heap: UHeap) -> tuple[UStoreable, UHeap]:
    content, heap = heap.alloc(r.m.fresh_opq())
    return UBoxS(content), heap


def _h_nonneg_int(r: Rule) -> list[Outcome]:
    """exact-nonnegative-integer? — a tag test plus a sign refinement."""
    if len(r.args) != 1:
        return [r.blame("expected 1 argument")]
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    (l,) = r.args
    target, s = r.deref(l)
    if not isinstance(s, UOpq):
        return [r.boolean(False)]
    out: list[Outcome] = []
    if TAG_INTEGER not in s.possible:
        return [r.boolean(False)]
    if s.possible != frozenset({TAG_INTEGER}):
        out.append(
            r.boolean(
                False,
                r.heap.narrow(target, s.possible - frozenset({TAG_INTEGER})),
                1,
            )
        )
    heap = r.heap.narrow(target, frozenset({TAG_INTEGER}))
    p = PLt(HConst(0))
    verdict = r.m.proof.check(heap, target, p)
    if verdict is Verdict.PROVED:
        out.append(r.boolean(False, heap))
    elif verdict is Verdict.REFUTED:
        out.append(r.boolean(True, heap))
    else:
        out.append(r.boolean(False, heap.refine(target, p), 1))
        out.append(r.boolean(True, heap.refine(target, PNot(p)), 1))
    return out


# ---------------------------------------------------------------------------
# Handlers: booleans and equality
# ---------------------------------------------------------------------------


def _h_not(r: Rule) -> list[Outcome]:
    if len(r.args) != 1:
        return [r.blame("expected 1 argument")]
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UConc):
        return [r.boolean(s.value is False)]
    if not isinstance(s, UOpq):
        return [r.boolean(False)]
    if TAG_BOOLEAN not in s.possible:
        return [r.boolean(False)]
    if PEqDatum(False) in s.preds:
        return [r.boolean(True)]
    if PNot(PEqDatum(False)) in s.preds:
        return [r.boolean(False)]
    return [
        r.boolean(True, r.heap.set(target, UConc(False)), 1),
        r.boolean(False, r.heap.refine(target, PNot(PEqDatum(False))), 1),
    ]


def _h_equal(identity_structured: bool) -> Callable[[Rule], list[Outcome]]:
    """equal? (structural) and eqv?/eq? (identity on structured data)."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 2:
            return [r.blame(f"expected 2 arguments, got {len(r.args)}")]
        a, b = r.args
        ta, sa = r.deref(a)
        tb, sb = r.deref(b)
        if ta == tb:
            return [r.boolean(True)]
        if isinstance(sa, UConc) and isinstance(sb, UConc):
            return [r.boolean(racket_equal(sa.value, sb.value))]
        for structured, other_loc, other in ((sa, tb, sb), (sb, ta, sa)):
            if isinstance(structured, (UPair, UStruct)):
                if identity_structured:
                    if isinstance(other, UOpq):
                        break  # fall through to the generic branch
                    return [r.boolean(False)]
                return _equal_structural(r, structured, a if structured is sa else b,
                                         b if structured is sa else a)
        # Opaque vs concrete scalar: three-way on the recorded equality.
        for opq_loc, opq, conc_loc, conc in ((ta, sa, tb, sb), (tb, sb, ta, sa)):
            if isinstance(opq, UOpq) and isinstance(conc, UConc):
                return _equal_datum(r, opq_loc, conc.value)
        if isinstance(sa, UOpq) and isinstance(sb, UOpq):
            return _equal_opq(r, ta, sa, tb, sb)
        # Procedures / contracts vs anything else: identity already
        # failed above.
        if isinstance(sa, UOpq) or isinstance(sb, UOpq):
            return [r.boolean(True, effort=1), r.boolean(False, effort=1)]
        return [r.boolean(False)]

    return handler


def _equal_structural(r: Rule, s, al: Loc, bl: Loc) -> list[Outcome]:
    bE = r.loc_expr(bl)
    if isinstance(s, UPair):
        test = r.app(r.prim("pair?"), bE)
        same = UIf(
            r.app(r.prim("equal?"), r.loc_expr(s.car),
                  r.app(r.prim("car"), bE)),
            r.app(r.prim("equal?"), r.loc_expr(s.cdr),
                  r.app(r.prim("cdr"), bE)),
            Quote(False),
        )
        return [r.run(UIf(test, same, Quote(False)))]
    assert isinstance(s, UStruct)
    pred = f"{s.type.name}?"
    if pred not in r.m.struct_prims:
        return [r.boolean(False)]
    same: UExpr = Quote(True)
    for i, f in reversed(list(enumerate(s.fields))):
        acc = r.app(r.prim(f"{s.type.name}-{s.type.fields[i]}"), bE)
        same = UIf(r.app(r.prim("equal?"), r.loc_expr(f), acc), same,
                   Quote(False))
    return [r.run(UIf(r.app(r.prim(pred), bE), same, Quote(False)))]


def _equal_datum(r: Rule, l: Loc, d: object) -> list[Outcome]:
    verdict = r.m.proof.check(r.heap, l, PEqDatum(d))
    if verdict is Verdict.PROVED:
        return [r.boolean(True)]
    if verdict is Verdict.REFUTED:
        return [r.boolean(False)]
    dt = datum_tag(d)
    if dt is None:
        return [r.boolean(False)]
    return [
        r.boolean(True, r.heap.set(l, UConc(d)), 1),
        r.boolean(False, r.heap.refine(l, PNot(PEqDatum(d))), 1),
    ]


def _equal_opq(r: Rule, ta: Loc, sa: UOpq, tb: Loc, sb: UOpq) -> list[Outcome]:
    if not (sa.possible & sb.possible):
        return [r.boolean(False)]
    both_int = (sa.possible == frozenset({TAG_INTEGER})
                and sb.possible == frozenset({TAG_INTEGER}))
    if both_int:
        p = PEq(HLoc(tb))
        verdict = r.m.proof.check(r.heap, ta, p)
        if verdict is Verdict.PROVED:
            return [r.boolean(True)]
        if verdict is Verdict.REFUTED:
            return [r.boolean(False)]
        return [
            r.boolean(True, r.heap.refine(ta, p), 1),
            r.boolean(False, r.heap.refine(ta, PNot(p)), 1),
        ]
    return [r.boolean(True, effort=1), r.boolean(False, effort=1)]


# ---------------------------------------------------------------------------
# Handlers: pairs, lists, boxes, structs
# ---------------------------------------------------------------------------


def _h_cons(r: Rule) -> list[Outcome]:
    return [r.value(UPair(r.args[0], r.args[1]))]


def _h_pair_sel(field: str) -> Callable[[Rule], list[Outcome]]:
    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        (l,) = r.args
        target, s = r.deref(l)
        if isinstance(s, UPair):
            return [OLoc(r.heap, s.car if field == "car" else s.cdr)]
        if isinstance(s, UOpq) and TAG_PAIR in s.possible:
            out: list[Outcome] = []
            if s.possible != frozenset({TAG_PAIR}) and not r.typed:
                bad = r.heap.narrow(target, s.possible - frozenset({TAG_PAIR}))
                out.append(r.blame("expected pair", bad))
            shape, heap = _mat_pair(r, r.heap)
            heap = heap.set(target, shape)
            assert isinstance(shape, UPair)
            out.append(
                OLoc(heap, shape.car if field == "car" else shape.cdr, 1)
            )
            return out
        return [r.blame(f"expected pair, got {s!r}")]

    return handler


def _h_list(r: Rule) -> list[Outcome]:
    heap = r.heap
    tail, heap = heap.alloc(UConc(NIL))
    for l in reversed(r.args):
        tail, heap = heap.alloc(UPair(l, tail))
    return [OLoc(heap, tail)]


def _spine_loop(r: Rule, params: tuple[str, ...], body: UExpr,
                *call_args: UExpr) -> list[Outcome]:
    """``(letrec ([.go (λ params body)]) (.go call_args...))``."""
    go = ULam(params, body, name=f"{r.name}-loop")
    return [r.run(ULetrec(((".go", go),),
                          r.app(UVar(".go"), *call_args)))]


def _h_length(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".n"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.prim("add1"), UVar(".n"))),
            r.improper("length"),
        ),
    )
    return _spine_loop(r, (".xs", ".n"), body, r.loc_expr(r.args[0]), Quote(0))


def _h_reverse(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".acc"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                        UVar(".acc"))),
            r.improper("reverse"),
        ),
    )
    return _spine_loop(r, (".xs", ".acc"), body, r.loc_expr(r.args[0]),
                       Quote([]))


def _h_append(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    if not r.args:
        return [r.value(UConc(NIL))]
    if len(r.args) == 1:
        return [OLoc(r.heap, r.args[0])]
    if len(r.args) > 2:
        rest = r.app(r.prim("append"),
                     *[r.loc_expr(a) for a in r.args[1:]])
        return [r.run(r.app(r.prim("append"), r.loc_expr(r.args[0]), rest))]
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        r.loc_expr(r.args[1]),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("append"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(r.args[0]))


def _h_list_p(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(True),
        UIf(r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
            Quote(False)),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(r.args[0]))


def _h_member(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("pair?"), xs),
        UIf(
            r.app(r.prim("equal?"), r.loc_expr(r.args[0]),
                  r.app(r.prim("car"), xs)),
            xs,
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
        ),
        Quote(False),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(r.args[1]))


def _h_map(r: Rule) -> list[Outcome]:
    if len(r.args) != 2:
        return [r.blame("multi-list map is outside the symbolic subset")]
    f, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote([]),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.prim("cons"),
                  r.app(r.loc_expr(f), r.app(r.prim("car"), xs)),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("map"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(xs_loc))


def _h_filter(r: Rule) -> list[Outcome]:
    f, xs_loc = r.args
    xs = UVar(".xs")
    keep = r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                 r.app(UVar(".go"), r.app(r.prim("cdr"), xs)))
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote([]),
        UIf(
            r.app(r.prim("pair?"), xs),
            UIf(r.app(r.loc_expr(f), r.app(r.prim("car"), xs)), keep,
                r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("filter"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(xs_loc))


def _h_foldl(r: Rule) -> list[Outcome]:
    f, init, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".acc"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.loc_expr(f), r.app(r.prim("car"), xs),
                        UVar(".acc"))),
            r.improper("foldl"),
        ),
    )
    return _spine_loop(r, (".xs", ".acc"), body, r.loc_expr(xs_loc),
                       r.loc_expr(init))


def _h_foldr(r: Rule) -> list[Outcome]:
    f, init, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        r.loc_expr(init),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.loc_expr(f), r.app(r.prim("car"), xs),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("foldr"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(xs_loc))


def _h_andmap(r: Rule) -> list[Outcome]:
    f, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(True),
        UIf(
            r.app(r.prim("pair?"), xs),
            UIf(r.app(r.loc_expr(f), r.app(r.prim("car"), xs)),
                r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
                Quote(False)),
            r.improper("andmap"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(xs_loc))


def _h_ormap(r: Rule) -> list[Outcome]:
    f, xs_loc = r.args
    xs = UVar(".xs")
    hit = ULam(
        (".t",),
        UIf(UVar(".t"), UVar(".t"),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
    )
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(False),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(hit, r.app(r.loc_expr(f), r.app(r.prim("car"), xs))),
            r.improper("ormap"),
        ),
    )
    return _spine_loop(r, (".xs",), body, r.loc_expr(xs_loc))


def _h_box(r: Rule) -> list[Outcome]:
    return [r.value(UBoxS(r.args[0]))]


def _h_unbox(r: Rule) -> list[Outcome]:
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UBoxS):
        return [OLoc(r.heap, s.content)]
    if isinstance(s, UOpq) and TAG_BOX in s.possible:
        out: list[Outcome] = []
        if s.possible != frozenset({TAG_BOX}) and not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({TAG_BOX}))
            out.append(r.blame("expected box", bad))
        shape, heap = _mat_box(r, r.heap)
        heap = heap.set(target, shape)
        assert isinstance(shape, UBoxS)
        out.append(OLoc(heap, shape.content, 1))
        return out
    return [r.blame(f"expected box, got {s!r}")]


def _h_set_box(r: Rule) -> list[Outcome]:
    l, v = r.args
    target, s = r.deref(l)
    if isinstance(s, UBoxS) or (
        isinstance(s, UOpq) and s.possible == frozenset({TAG_BOX})
    ):
        return [r.value(UConc(VOID), r.heap.set(target, UBoxS(v)))]
    if isinstance(s, UOpq) and TAG_BOX in s.possible:
        out: list[Outcome] = []
        if not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({TAG_BOX}))
            out.append(r.blame("expected box", bad))
        out.append(r.value(UConc(VOID), r.heap.set(target, UBoxS(v)), 1))
        return out
    return [r.blame(f"expected box, got {s!r}")]


# ---------------------------------------------------------------------------
# Handlers: misc
# ---------------------------------------------------------------------------


def _h_void(r: Rule) -> list[Outcome]:
    return [r.value(UConc(VOID))]


def _h_error(r: Rule) -> list[Outcome]:
    parts = []
    for a in r.args:
        v = reify_concrete(r.heap, a)
        parts.append("..." if v is _UNREIFIABLE else str(v))
    msg = " ".join(parts) if parts else "error"
    return [OBlame(r.heap, "Λ", r.label, f"error: {msg}")]


def _h_generic(
    want: frozenset[str], result: frozenset[str], desc: str
) -> Callable[[Rule], list[Outcome]]:
    """Fallback for scalar primitives with a uniform precondition
    (strings, transcendental-ish numerics): delegate when concrete,
    tag-split and return an unconstrained result otherwise."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        oks, out = r.narrow_args(r.args, want, desc)
        for heap, effort in oks:
            out.append(OValue(heap, UOpq(result), effort))
        return out

    return handler


def _h_abs(r: Rule) -> list[Outcome]:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    x = r.loc_expr(r.args[0])
    return [r.run(UIf(r.app(r.prim("<"), x, Quote(0)),
                      r.app(r.prim("-"), Quote(0), x), x))]


def _h_minmax(op: str) -> Callable[[Rule], list[Outcome]]:
    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        if not r.args:
            return [r.blame("needs at least 1 argument")]
        a = r.loc_expr(r.args[0])
        if len(r.args) == 1:
            # (< a a) is always #f but forces the realness check.
            return [r.run(UIf(r.app(r.prim("<"), a, a), a, a))]
        b = (r.loc_expr(r.args[1]) if len(r.args) == 2
             else r.app(r.prim(r.name), *[r.loc_expr(x) for x in r.args[1:]]))
        pick = ULam(
            (".a", ".b"),
            UIf(r.app(r.prim("<"), UVar(".a"), UVar(".b")),
                UVar(".a") if op == "min" else UVar(".b"),
                UVar(".b") if op == "min" else UVar(".a")),
        )
        return [r.run(r.app(pick, a, b))]

    return handler


# ---------------------------------------------------------------------------
# Handlers: contract constructors (values of kind UCtc, §4.3)
# ---------------------------------------------------------------------------


def _as_ctc_loc(r: Rule, heap: UHeap, l: Loc) -> tuple[Loc, UHeap]:
    """Coerce a value location to a contract location, mirroring
    ``lang.prims._as_contract``: contracts pass through, applicable
    values become flat contracts, literals become equality contracts."""
    target, s = heap.deref(l)
    if isinstance(s, UCtc):
        return target, heap
    if isinstance(s, (UClos, UPrim, UGuard, UStructCtor, UCase, UOpq)):
        return heap.alloc(UCtc("flat", (target,)))
    return heap.alloc(UCtc("oneof", (target,)))


def _ctc_parts(r: Rule, locs: tuple[Loc, ...]) -> tuple[tuple[Loc, ...], UHeap]:
    heap = r.heap
    parts = []
    for l in locs:
        p, heap = _as_ctc_loc(r, heap, l)
        parts.append(p)
    return tuple(parts), heap


def _h_arrow(r: Rule) -> list[Outcome]:
    if not r.args:
        return [r.blame("needs at least a range contract")]
    parts, heap = _ctc_parts(r, r.args)
    return [r.value(UCtc("fun", parts), heap)]


def _h_arrow_d(r: Rule) -> list[Outcome]:
    if not r.args:
        return [r.blame("needs domains and a range maker")]
    doms, heap = _ctc_parts(r, r.args[:-1])
    target, _ = heap.deref(r.args[-1])
    return [r.value(UCtc("dep", doms + (target,)), heap)]


def _h_ctc_nary(kind: str) -> Callable[[Rule], list[Outcome]]:
    def handler(r: Rule) -> list[Outcome]:
        parts, heap = _ctc_parts(r, r.args)
        return [r.value(UCtc(kind, parts), heap)]

    return handler


def _h_one_of(r: Rule) -> list[Outcome]:
    return [r.value(UCtc("oneof", r.args))]


def _h_rec_ctc(r: Rule) -> list[Outcome]:
    target, _ = r.deref(r.args[0])
    return [r.value(UCtc("rec", (target,)))]


def _h_cmp_ctc(op: str) -> Callable[[Rule], list[Outcome]]:
    """``(=/c n)`` etc. — a flat contract whose predicate is synthesised
    as ``(λ (x) (if (real? x) (op x n) #f))`` over primitive locations,
    so the untyped machine can branch through it like any predicate."""

    def handler(r: Rule) -> list[Outcome]:
        bound, _ = r.deref(r.args[0])
        prim = {"=": "=", "<": "<", ">": ">", "<=": "<=", ">=": ">="}[op]
        body = UIf(
            r.app(r.prim("real?"), UVar(".x")),
            r.app(r.prim(prim), UVar(".x"), r.loc_expr(bound)),
            Quote(False),
        )
        heap = r.heap
        pred, heap = heap.alloc(
            UClos(ULam((".x",), body, name=f"{op}/c"), _empty_env())
        )
        return [r.value(UCtc("flat", (pred,)), heap)]

    return handler


def _empty_env():
    from .machine import MEnv

    return MEnv({})


def _h_struct_ctc(r: Rule) -> list[Outcome]:
    if not r.args:
        return [r.blame("needs a struct constructor")]
    _, ctor = r.deref(r.args[0])
    if not isinstance(ctor, UStructCtor):
        return [r.blame(f"expected struct constructor, got {ctor!r}")]
    if len(r.args) - 1 != len(ctor.type.fields):
        return [r.blame(f"{ctor.type.name} has {len(ctor.type.fields)} fields")]
    parts, heap = _ctc_parts(r, r.args[1:])
    return [r.value(UCtc("struct", parts, stype=ctor.type), heap)]


def _h_flat_ctc_p(r: Rule) -> list[Outcome]:
    _, s = r.deref(r.args[0])
    return [r.boolean(isinstance(s, UCtc) and s.kind in ("flat", "oneof"))]


# ---------------------------------------------------------------------------
# Struct predicates and accessors (registered per program)
# ---------------------------------------------------------------------------


def _struct_rule(r: Rule, role: str, stype, index: int) -> list[Outcome]:
    if role == "pred":
        tags = frozenset({struct_tag(stype.name)})

        def mat(rule: Rule, heap: UHeap) -> tuple[UStoreable, UHeap]:
            fields = []
            for _ in stype.fields:
                fl, heap = heap.alloc(rule.m.fresh_opq())
                fields.append(fl)
            return UStruct(stype, tuple(fields)), heap

        return _h_tag_pred(tags, mat)(r)
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UStruct) and s.type == stype:
        return [OLoc(r.heap, s.fields[index])]
    tag = struct_tag(stype.name)
    if isinstance(s, UOpq) and tag in s.possible:
        out: list[Outcome] = []
        if s.possible != frozenset({tag}) and not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({tag}))
            out.append(r.blame(f"expected {stype.name}", bad))
        fields = []
        heap = r.heap
        for _ in stype.fields:
            fl, heap = heap.alloc(r.m.fresh_opq())
            fields.append(fl)
        heap = heap.set(target, UStruct(stype, tuple(fields)))
        out.append(OLoc(heap, fields[index], 1))
        return out
    return [r.blame(f"expected {stype.name}, got {s!r}")]


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------

_HANDLERS: dict[str, Callable[[Rule], list[Outcome]]] = {
    "+": _h_arith("+"),
    "-": _h_arith("-"),
    "*": _h_arith("*"),
    "/": _h_slash,
    "quotient": _h_divlike("div", constrain=True),
    "modulo": _h_divlike("mod", constrain=True),
    "remainder": _h_divlike("mod", constrain=False),
    "add1": _h_add1,
    "sub1": _h_sub1,
    "abs": _h_abs,
    "min": _h_minmax("min"),
    "max": _h_minmax("max"),
    "expt": _h_generic(NUMBER_TAGS, NUMBER_TAGS, "expected number"),
    "sqrt": _h_generic(NUMBER_TAGS, NUMBER_TAGS, "expected number"),
    "exact->inexact": _h_generic(NUMBER_TAGS, NUMBER_TAGS, "expected number"),
    "=": _h_compare("="),
    "<": _h_compare("<"),
    "<=": _h_compare("<="),
    ">": _h_swapped(_h_compare("<")),
    ">=": _h_swapped(_h_compare("<=")),
    "zero?": _h_sign_pred(lambda: PZero()),
    "positive?": _h_sign_pred(lambda: PNot(PLe(HConst(0)))),
    "negative?": _h_sign_pred(lambda: PLt(HConst(0))),
    "even?": _h_parity(True),
    "odd?": _h_parity(False),
    "number?": _h_tag_pred(NUMBER_TAGS),
    "real?": _h_tag_pred(REAL_TAGS),
    "rational?": _h_tag_pred(REAL_TAGS),
    "integer?": _h_tag_pred(frozenset({TAG_INTEGER})),
    "exact-integer?": _h_tag_pred(frozenset({TAG_INTEGER})),
    "exact-nonnegative-integer?": _h_nonneg_int,
    "exact?": _h_tag_pred(frozenset({TAG_INTEGER, TAG_RATREAL})),
    "boolean?": _h_tag_pred(frozenset({TAG_BOOLEAN})),
    "symbol?": _h_tag_pred(frozenset({TAG_SYMBOL})),
    "string?": _h_tag_pred(frozenset({TAG_STRING})),
    "pair?": _h_tag_pred(frozenset({TAG_PAIR}), _mat_pair),
    "null?": _h_tag_pred(frozenset({TAG_NULL}), _mat_null),
    "empty?": _h_tag_pred(frozenset({TAG_NULL}), _mat_null),
    "box?": _h_tag_pred(frozenset({TAG_BOX}), _mat_box),
    "procedure?": _h_tag_pred(frozenset({TAG_PROCEDURE})),
    "not": _h_not,
    "equal?": _h_equal(identity_structured=False),
    "eqv?": _h_equal(identity_structured=True),
    "eq?": _h_equal(identity_structured=True),
    "void": _h_void,
    "error": _h_error,
    "cons": _h_cons,
    "car": _h_pair_sel("car"),
    "cdr": _h_pair_sel("cdr"),
    "first": _h_pair_sel("car"),
    "rest": _h_pair_sel("cdr"),
    "list": _h_list,
    "length": _h_length,
    "append": _h_append,
    "reverse": _h_reverse,
    "list?": _h_list_p,
    "member": _h_member,
    "map": _h_map,
    "filter": _h_filter,
    "foldl": _h_foldl,
    "foldr": _h_foldr,
    "andmap": _h_andmap,
    "ormap": _h_ormap,
    "string-length": _h_generic(frozenset({TAG_STRING}),
                                frozenset({TAG_INTEGER}), "expected string"),
    "string-append": _h_generic(frozenset({TAG_STRING}),
                                frozenset({TAG_STRING}), "expected string"),
    "string=?": _h_generic(frozenset({TAG_STRING}),
                           frozenset({TAG_BOOLEAN}), "expected string"),
    "box": _h_box,
    "unbox": _h_unbox,
    "set-box!": _h_set_box,
    "->": _h_arrow,
    "make->d": _h_arrow_d,
    "and/c": _h_ctc_nary("and"),
    "or/c": _h_ctc_nary("or"),
    "not/c": _h_ctc_nary("not"),
    "cons/c": _h_ctc_nary("cons"),
    "listof": _h_ctc_nary("listof"),
    "list/c": _h_ctc_nary("list"),
    "one-of/c": _h_one_of,
    "=/c": _h_cmp_ctc("="),
    "</c": _h_cmp_ctc("<"),
    ">/c": _h_cmp_ctc(">"),
    "<=/c": _h_cmp_ctc("<="),
    ">=/c": _h_cmp_ctc(">="),
    "make-rec-contract": _h_rec_ctc,
    "struct/c": _h_struct_ctc,
    "flat-contract?": _h_flat_ctc_p,
}


def delta_u(machine, heap: UHeap, name: str, args: tuple[Loc, ...],
            label: str) -> list[Outcome]:
    """All δ-branches for primitive ``name`` on ``args`` under ``heap``."""
    r = Rule(machine, heap, name, args, label)
    struct_entry = machine.struct_prims.get(name)
    if struct_entry is not None:
        role, stype, index = struct_entry
        if len(args) != 1:
            return [r.blame("expected 1 argument")]
        return _struct_rule(r, role, stype, index)
    handler = _HANDLERS.get(name)
    if handler is not None:
        return handler(r)
    if name in _PRIMS:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        # Unmodelled primitive on symbolic input: over-approximate the
        # value, under-approximate the errors (documented limitation).
        return [r.value(UOpq(machine.all_tags))]
    return [r.blame("unknown primitive")]

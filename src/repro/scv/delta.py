"""The untyped primitive relation δ — paper Fig. 3 lifted to §4.

Where the typed δ (``core.delta``) only needs integers, the untyped δ
relates heaps and *tagged* values.  Every rule follows the same recipe:

1. **Concrete fast path** — when every argument reifies to a concrete
   Racket value, the rule *delegates to the very primitives the concrete
   interpreter runs* (the registry's concrete callables): one
   implementation, two engines.  A ``PrimError`` raised there becomes
   blame at the application label.
2. **Tag split** — opaque arguments branch on their possible tags: one
   blame branch per way the precondition can fail (the untyped machine's
   new error source), one ok branch with the argument narrowed.  Under
   ``assume_well_typed`` (used when cross-checking against the typed §3
   backend on the contract-free corpus) the blame branches are
   suppressed and only the narrowing is kept.
3. **Integer refinement** — narrowed numeric arguments take the integer
   instantiation and results carry ``PEq`` refinements over heap terms,
   confining solver reasoning to LIA exactly as §5.3 prescribes.

Higher-order and inductive primitives (``map``, ``listof`` walks,
``even?``...) are not implemented directly: they *synthesise* checking
code out of simpler primitives (``OEval``), the same move the monitor
makes for compound contracts (§4.3) — "the semantics of contract
checking itself breaks down complex and higher-order contracts into
simple predicates".

The dispatch table is not written by hand.  It is generated from the
primitive registry (``repro.prims``): a declaration's custom ``rule``
or per-primitive ``synth`` (see ``repro.prims.rules``) is used
directly, its ``pred_tags`` become the generic run-time type test, its
``refine`` template selects one of the interpreters below (arith /
offset / divlike / slash / compare / swap / sign) parameterised by the
declaration's tag signature, and a bare ``sig.result`` falls to the
generic tag-split handler.  This module owns only the *generic*
machinery; everything per-primitive lives in the registry.

Known divergence (shared with ``core.delta`` and documented in the
corpus discipline): symbolic ``quotient``/``modulo`` constraints use the
solver's Euclidean ``div``/``mod``, which differs from Racket's
truncating/floor semantics on negative operands; concrete validation
filters any spurious model this admits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.heap import HConst, HLoc, HOp, HTerm, PEq, PLe, PLt, PNot, Pred, PZero
from ..core.proof import Verdict
from ..core.syntax import Loc
from ..lang.ast import Quote, UApp, UExpr, UIf, ULam, ULetrec, UVar
from ..lang.values import Pair, StructVal
from ..prims import REGISTRY, PrimError, UserError
from .heap import (
    NUMBER_TAGS,
    REAL_TAGS,
    TAG_BOOLEAN,
    TAG_INTEGER,
    UConc,
    UHeap,
    UOpq,
    UPair,
    UPrim,
    UStoreable,
    UStruct,
    datum_tag,
    storeable_tag,
    struct_tag,
)

__all__ = [
    "Outcome", "OValue", "OLoc", "OBlame", "OEval", "Rule", "delta_u",
    "datum_tag", "storeable_tag", "reify_concrete", "alloc_value",
]


# ---------------------------------------------------------------------------
# Outcomes — the codomain of δ
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    pass


@dataclass(frozen=True)
class OValue(Outcome):
    """Allocate ``storeable`` and continue with its location."""

    heap: UHeap
    storeable: UStoreable
    effort: int = 0


@dataclass(frozen=True)
class OLoc(Outcome):
    """Continue with an existing location (e.g. ``car`` of a pair)."""

    heap: UHeap
    loc: Loc
    effort: int = 0


@dataclass(frozen=True)
class OBlame(Outcome):
    """The primitive's precondition failed on this branch."""

    heap: UHeap
    party: str
    label: str
    description: str


@dataclass(frozen=True)
class OEval(Outcome):
    """Continue by evaluating synthesised code (§4.3-style expansion)."""

    heap: UHeap
    expr: UExpr
    env: object  # MEnv; untyped to avoid the machine ↔ delta import cycle
    effort: int = 0


def _is_exact_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


# ---------------------------------------------------------------------------
# Reification of concrete arguments (for delegation to the registry)
# ---------------------------------------------------------------------------

_UNREIFIABLE = object()


def reify_concrete(heap: UHeap, l: Loc, depth: int = 0) -> object:
    """The concrete Racket value at ``l``, or ``_UNREIFIABLE`` if any
    reachable part is symbolic or behaviourful."""
    if depth > 64:
        return _UNREIFIABLE
    _, s = heap.deref(l)
    if isinstance(s, UConc):
        if s.value is _LETREC_UNDEFINED():
            return _UNREIFIABLE
        return s.value
    if isinstance(s, UPair):
        car = reify_concrete(heap, s.car, depth + 1)
        cdr = reify_concrete(heap, s.cdr, depth + 1)
        if car is _UNREIFIABLE or cdr is _UNREIFIABLE:
            return _UNREIFIABLE
        return Pair(car, cdr)
    if isinstance(s, UStruct):
        fields = [reify_concrete(heap, f, depth + 1) for f in s.fields]
        if any(f is _UNREIFIABLE for f in fields):
            return _UNREIFIABLE
        return StructVal(s.type, tuple(fields))
    return _UNREIFIABLE


def _LETREC_UNDEFINED() -> object:
    from .machine import _UNDEFINED

    return _UNDEFINED


def alloc_value(heap: UHeap, v: object) -> tuple[Loc, UHeap]:
    """Allocate a concrete Racket value back into the symbolic heap."""
    if isinstance(v, Pair):
        car, heap = alloc_value(heap, v.car)
        cdr, heap = alloc_value(heap, v.cdr)
        return heap.alloc(UPair(car, cdr))
    if isinstance(v, StructVal):
        locs = []
        for f in v.values:
            l, heap = alloc_value(heap, f)
            locs.append(l)
        return heap.alloc(UStruct(v.type, tuple(locs)))
    return heap.alloc(UConc(v))


class _NoApplyCtx:
    """Delegation context: concrete fast paths never call back into an
    interpreter — a primitive that tries has been mis-routed."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def apply(self, fn, args):  # pragma: no cover - routing invariant
        raise RuntimeError("higher-order primitive reached the concrete "
                           "delegation path of scv.delta")


# ---------------------------------------------------------------------------
# The rule context
# ---------------------------------------------------------------------------


class Rule:
    """One δ-rule application: primitive + argument locations + label,
    with the branch-building helpers every handler shares.  This is the
    interface the registry's per-primitive rules program against
    (``repro.prims.rules``)."""

    #: Sentinel for values that cannot be reified (see :meth:`reify`).
    UNREIFIABLE = _UNREIFIABLE

    def __init__(self, machine, heap: UHeap, name: str,
                 args: tuple[Loc, ...], label: str) -> None:
        self.m = machine
        self.heap = heap
        self.name = name
        self.args = args
        self.label = label

    # -- basic lookups --------------------------------------------------

    def deref(self, l: Loc, heap: Optional[UHeap] = None):
        return (heap or self.heap).deref(l)

    def conc(self, l: Loc, heap: Optional[UHeap] = None) -> object:
        _, s = self.deref(l, heap)
        return s.value if isinstance(s, UConc) else _UNREIFIABLE

    def reify(self, l: Loc) -> object:
        return reify_concrete(self.heap, l)

    @property
    def typed(self) -> bool:
        return self.m.assume_well_typed

    # -- outcome constructors -------------------------------------------

    def blame(self, desc: str, heap: Optional[UHeap] = None) -> OBlame:
        return OBlame(heap or self.heap, "Λ", self.label,
                      f"{self.name}: {desc}")

    def value(self, s: UStoreable, heap: Optional[UHeap] = None,
              effort: int = 0) -> OValue:
        return OValue(heap or self.heap, s, effort)

    def at(self, l: Loc, heap: Optional[UHeap] = None,
           effort: int = 0) -> OLoc:
        return OLoc(heap or self.heap, l, effort)

    def boolean(self, b: bool, heap: Optional[UHeap] = None,
                effort: int = 0) -> OValue:
        return self.value(UConc(bool(b)), heap, effort)

    def run(self, expr: UExpr, heap: Optional[UHeap] = None,
            effort: int = 0) -> OEval:
        from .machine import MEnv

        return OEval(heap or self.heap, expr, MEnv({}), effort)

    # -- synthesis helpers ----------------------------------------------

    def prim(self, name: str) -> UExpr:
        """An expression denoting primitive ``name`` (allocated into the
        rule's heap; synthesised code refers to it by location, never by
        name, so user bindings cannot shadow it)."""
        from .machine import ULocE

        l, self.heap = self.heap.alloc(UPrim(name))
        return ULocE(l)

    def loc_expr(self, l: Loc) -> UExpr:
        from .machine import ULocE

        return ULocE(l)

    def app(self, fn: UExpr, *args: UExpr) -> UApp:
        from .machine import syn_label

        return UApp(fn, tuple(args), label=syn_label("dl"))

    def improper(self, what: str) -> UExpr:
        from .machine import UBlameE

        return UBlameE("Λ", f"{self.name}: expected proper list ({what})",
                       self.label)

    def spine(self, params: tuple[str, ...], body: UExpr,
              *call_args: UExpr) -> list[Outcome]:
        """``(letrec ([.go (λ params body)]) (.go call_args...))`` — the
        inductive list-walk skeleton every spine synthesis shares."""
        go = ULam(params, body, name=f"{self.name}-loop")
        return [self.run(ULetrec(((".go", go),),
                                 self.app(UVar(".go"), *call_args)))]

    # -- concrete delegation --------------------------------------------

    def all_concrete(self) -> Optional[list]:
        vals = [reify_concrete(self.heap, a) for a in self.args]
        if any(v is _UNREIFIABLE for v in vals):
            return None
        return vals

    def delegate(self, vals: list) -> list[Outcome]:
        try:
            out = REGISTRY[self.name].concrete(vals, _NoApplyCtx(self.label))
        except PrimError as pe:
            return [OBlame(self.heap, "Λ", self.label,
                           f"{pe.op}: {pe.message}")]
        except UserError as ue:
            return [OBlame(self.heap, "Λ", self.label, f"error: {ue.message}")]
        l, h = alloc_value(self.heap, out)
        return [OLoc(h, l)]

    # -- tag splitting ---------------------------------------------------

    def narrow_args(
        self, locs: tuple[Loc, ...], want: frozenset[str], desc: str
    ) -> tuple[list[tuple[UHeap, int]], list[Outcome]]:
        """Branch each opaque argument on ``want``.  Returns the ok
        branches (heaps with every argument narrowed into ``want``, plus
        accumulated effort) and the blame branches.  Under the typed
        discipline only narrowing happens — no blame branches unless an
        argument is *definitely* outside ``want``."""
        oks: list[tuple[UHeap, int]] = [(self.heap, 0)]
        blames: list[Outcome] = []
        for l in locs:
            next_oks: list[tuple[UHeap, int]] = []
            for heap, effort in oks:
                target, s = heap.deref(l)
                if not isinstance(s, UOpq):
                    tag = storeable_tag(s)
                    if tag in want:
                        next_oks.append((heap, effort))
                    else:
                        blames.append(self.blame(f"{desc}, got {s!r}", heap))
                    continue
                inter = s.possible & want
                if not inter:
                    blames.append(self.blame(f"{desc}, got {s!r}", heap))
                    continue
                if s.possible <= want:
                    next_oks.append((heap, effort))
                    continue
                next_oks.append((heap.narrow(target, want), effort + 1))
                if not self.typed:
                    bad = heap.narrow(target, s.possible - want)
                    blames.append(
                        self.blame(f"{desc}, got {self.deref(l, bad)[1]!r}",
                                   bad)
                    )
            oks = next_oks
        return oks, blames

    def int_narrow(self, heap: UHeap, l: Loc) -> tuple[UHeap, Optional[Loc]]:
        """Take the integer instantiation of a numeric argument: returns
        the (possibly narrowed) heap and the location to mention in heap
        terms, or None when the argument cannot be integer-sorted."""
        target, s = heap.deref(l)
        if isinstance(s, UConc):
            return heap, target if _is_exact_int(s.value) else None
        assert isinstance(s, UOpq)
        if TAG_INTEGER not in s.possible:
            return heap, None
        if s.possible != frozenset({TAG_INTEGER}):
            heap = heap.narrow(target, frozenset({TAG_INTEGER}))
        return heap, target


# ---------------------------------------------------------------------------
# Refinement-template interpreters: arithmetic
# ---------------------------------------------------------------------------


def _fold_term(op: str, terms: list[HTerm]) -> HTerm:
    out = terms[0]
    for t in terms[1:]:
        out = HOp(op, (out, t))
    return out


def _num_term(heap: UHeap, l: Loc) -> HTerm:
    _, s = heap.deref(l)
    if isinstance(s, UConc) and _is_exact_int(s.value):
        return HConst(s.value)
    target, _ = heap.deref(l)
    return HLoc(target)


def _h_arith(op: str) -> Callable[[Rule], list[Outcome]]:
    """n-ary +, -, * — fold into one heap term."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        if not r.args or (op == "-" and len(r.args) < 1):
            return [r.blame("needs at least 1 argument")]
        oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
        for heap, effort in oks:
            locs = []
            all_int = True
            for a in r.args:
                heap, il = r.int_narrow(heap, a)
                if il is None:
                    all_int = False
                locs.append(il)
            if not all_int:
                out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
                continue
            terms = [_num_term(heap, a) for a in r.args]
            if op == "-" and len(terms) == 1:
                terms = [HConst(0), terms[0]]
            term = _fold_term(op, terms)
            out.append(
                OValue(heap, UOpq(frozenset({TAG_INTEGER}), (PEq(term),)),
                       effort)
            )
        return out

    return handler


def _h_offset(op: str) -> Callable[[Rule], list[Outcome]]:
    """add1 / sub1 — the ``±1`` special case of ``_h_arith``."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
        for heap, effort in oks:
            heap, il = r.int_narrow(heap, r.args[0])
            if il is None:
                out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
                continue
            term = HOp(op, (_num_term(heap, r.args[0]), HConst(1)))
            out.append(
                OValue(heap, UOpq(frozenset({TAG_INTEGER}), (PEq(term),)),
                       effort)
            )
        return out

    return handler


def _h_divlike(op: str, constrain: bool) -> Callable[[Rule], list[Outcome]]:
    """quotient / modulo / remainder: exact-integer preconditions plus
    the canonical zero-divisor branch.  ``constrain`` attaches the
    Euclidean ``div``/``mod`` refinement; ``remainder`` (whose truncating
    semantics the solver cannot express) leaves the result opaque."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 2:
            return [r.blame(f"expected 2 arguments, got {len(r.args)}")]
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        oks, out = r.narrow_args(
            r.args, frozenset({TAG_INTEGER}), "expected exact integer"
        )
        for heap, effort in oks:
            num, den = r.args
            dv = r.conc(den, heap)
            if dv is not _UNREIFIABLE:
                if dv == 0:
                    out.append(r.blame("division by zero", heap))
                    continue
                out.append(_div_ok(r, heap, effort, op, constrain))
                continue
            dt, _ = heap.deref(den)
            verdict = r.m.proof.check(heap, dt, PZero())
            if verdict is Verdict.PROVED:
                out.append(r.blame("division by zero", heap))
                continue
            if verdict is Verdict.REFUTED:
                out.append(_div_ok(r, heap, effort, op, constrain))
                continue
            out.append(
                r.blame("division by zero", heap.refine(dt, PZero()))
            )
            out.append(
                _div_ok(r, heap.refine(dt, PNot(PZero())), effort + 1, op,
                        constrain)
            )
        return out

    return handler


def _div_ok(r: Rule, heap: UHeap, effort: int, op: str,
            constrain: bool) -> OValue:
    preds: tuple[Pred, ...] = ()
    if constrain:
        term = HOp(op, (_num_term(heap, r.args[0]), _num_term(heap, r.args[1])))
        preds = (PEq(term),)
    return OValue(heap, UOpq(frozenset({TAG_INTEGER}), preds), effort)


def _h_slash(r: Rule) -> list[Outcome]:
    """``/`` — zero check, but results leave the integer fragment."""
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    oks, out = r.narrow_args(r.args, NUMBER_TAGS, "expected number")
    for heap, effort in oks:
        den = r.args[-1]
        dv = r.conc(den, heap)
        if dv is not _UNREIFIABLE and dv == 0:
            out.append(r.blame("division by zero", heap))
            continue
        dt, ds = heap.deref(den)
        if isinstance(ds, UOpq):
            heap2, il = r.int_narrow(heap, den)
            if il is not None:
                out.append(r.blame("division by zero",
                                   heap2.refine(il, PZero())))
                heap = heap2.refine(il, PNot(PZero()))
                effort += 1
        out.append(OValue(heap, UOpq(NUMBER_TAGS), effort))
    return out


# ---------------------------------------------------------------------------
# Refinement-template interpreters: comparisons and sign predicates
# ---------------------------------------------------------------------------


def _flip_for_rhs(op: str, v1: int) -> Pred:
    if op == "=":
        return PEq(HConst(v1))
    if op == "<":
        return PNot(PLe(HConst(v1)))
    if op == "<=":
        return PNot(PLt(HConst(v1)))
    raise ValueError(op)


def _pred_for_lhs(op: str, heap: UHeap, l2: Loc) -> Pred:
    t = _num_term(heap, l2)
    if op == "=":
        return PEq(t)
    if op == "<":
        return PLt(t)
    if op == "<=":
        return PLe(t)
    raise ValueError(op)


def _h_compare(op: str) -> Callable[[Rule], list[Outcome]]:
    """Binary-normalised <, <=, = (>, >= arrive pre-swapped); n-ary uses
    chained synthesis."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        if len(r.args) < 2:
            return [r.blame("needs at least 2 arguments")]
        if len(r.args) > 2:
            parts = [
                r.app(r.prim(r.name), r.loc_expr(a), r.loc_expr(b))
                for a, b in zip(r.args, r.args[1:])
            ]
            chain: UExpr = Quote(True)
            for p in reversed(parts):
                chain = UIf(p, chain, Quote(False))
            return [r.run(chain)]
        want = NUMBER_TAGS if op == "=" else REAL_TAGS
        oks, out = r.narrow_args(
            r.args, want,
            "expected number" if op == "=" else "expected real",
        )
        norm_op = op
        l1, l2 = r.args
        for heap, effort in oks:
            heap, i1 = r.int_narrow(heap, l1)
            heap, i2 = r.int_narrow(heap, l2)
            if i1 is None or i2 is None:
                out.append(OValue(heap, UOpq(frozenset({TAG_BOOLEAN})),
                                  effort))
                continue
            v1, v2 = r.conc(l1, heap), r.conc(l2, heap)
            if v1 is not _UNREIFIABLE and v2 is not _UNREIFIABLE:
                out.append(r.boolean(_COMPARE_PY[norm_op](v1, v2), heap,
                                     effort))
                continue
            if v1 is _UNREIFIABLE:
                subject, pred = i1, _pred_for_lhs(norm_op, heap, l2)
            else:
                subject, pred = i2, _flip_for_rhs(norm_op, v1)
            verdict = r.m.proof.check(heap, subject, pred)
            if verdict is Verdict.PROVED:
                out.append(r.boolean(True, heap, effort))
            elif verdict is Verdict.REFUTED:
                out.append(r.boolean(False, heap, effort))
            else:
                out.append(
                    r.boolean(True, heap.refine(subject, pred), effort + 1)
                )
                out.append(
                    r.boolean(False, heap.refine(subject, PNot(pred)),
                              effort + 1)
                )
        return out

    return handler


_COMPARE_PY = {
    "=": lambda a, b: a == b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


def _h_swapped(swap_name: str) -> Callable[[Rule], list[Outcome]]:
    """>, >= — binary calls are normalised by swapping operands into the
    ``swap_name`` comparison; n-ary uses chained synthesis."""
    inner = _h_compare(swap_name)

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) == 2:
            rr = Rule(r.m, r.heap, swap_name, tuple(reversed(r.args)),
                      r.label)
            return inner(rr)
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        parts = [
            r.app(r.prim(r.name), r.loc_expr(a), r.loc_expr(b))
            for a, b in zip(r.args, r.args[1:])
        ]
        chain: UExpr = Quote(True)
        for p in reversed(parts):
            chain = UIf(p, chain, Quote(False))
        return [r.run(chain)]

    return handler


def _h_sign_pred(pred_of: Callable[[], Pred]) -> Callable[[Rule], list[Outcome]]:
    """zero? / positive? / negative? — *total* predicates: non-numbers
    answer #f, numbers branch three ways through the proof system."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        (l,) = r.args
        target, s = r.deref(l)
        if not isinstance(s, UOpq):
            return [r.boolean(False)]  # a symbolic pair/struct is not a number
        out: list[Outcome] = []
        if not (s.possible & NUMBER_TAGS):
            return [r.boolean(False)]
        if not (s.possible <= NUMBER_TAGS):
            out.append(
                r.boolean(False, r.heap.narrow(target,
                                               s.possible - NUMBER_TAGS), 1)
            )
            r = Rule(r.m, r.heap.narrow(target, NUMBER_TAGS), r.name, r.args,
                     r.label)
        heap, il = r.int_narrow(r.heap, l)
        if il is None:
            out.append(OValue(heap, UOpq(frozenset({TAG_BOOLEAN})), 1))
            return out
        p = pred_of()
        verdict = r.m.proof.check(heap, il, p)
        if verdict is Verdict.PROVED:
            out.append(r.boolean(True, heap))
        elif verdict is Verdict.REFUTED:
            out.append(r.boolean(False, heap))
        else:
            out.append(r.boolean(True, heap.refine(il, p), 1))
            out.append(r.boolean(False, heap.refine(il, PNot(p)), 1))
        return out

    return handler


# ---------------------------------------------------------------------------
# Generic handlers driven by the tag signature
# ---------------------------------------------------------------------------


def _h_tag_pred(
    tags: frozenset[str],
    materialize=None,
) -> Callable[[Rule], list[Outcome]]:
    """The generic run-time type test (§4.1): concrete subjects answer
    immediately, opaque subjects branch and *narrow*; ``materialize``
    turns a tag-narrowed opaque into its shape (§4.2) on the yes branch
    — once known to be a pair it *becomes* ``(cons • •)``."""

    def handler(r: Rule) -> list[Outcome]:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        (l,) = r.args
        target, s = r.deref(l)
        if not isinstance(s, UOpq):
            return [r.boolean((storeable_tag(s) or "") in tags)]
        inter = s.possible & tags
        if not inter:
            return [r.boolean(False)]
        if s.possible <= tags:
            return [r.boolean(True)]
        yes_heap = r.heap.narrow(target, inter)
        if materialize is not None:
            shape, yes_heap = materialize(r, yes_heap)
            yes_heap = yes_heap.set(target, shape)
        return [
            r.boolean(True, yes_heap, 1),
            r.boolean(False, r.heap.narrow(target, s.possible - tags), 1),
        ]

    return handler


def _h_generic(
    want: frozenset[str], result: frozenset[str], desc: str
) -> Callable[[Rule], list[Outcome]]:
    """Fallback for scalar primitives with a uniform precondition
    (strings, transcendental-ish numerics): delegate when concrete,
    tag-split and return an unconstrained result otherwise."""

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        oks, out = r.narrow_args(r.args, want, desc)
        for heap, effort in oks:
            out.append(OValue(heap, UOpq(result), effort))
        return out

    return handler


# ---------------------------------------------------------------------------
# Struct predicates and accessors (registered per program)
# ---------------------------------------------------------------------------


def _struct_rule(r: Rule, role: str, stype, index: int) -> list[Outcome]:
    if role == "pred":
        tags = frozenset({struct_tag(stype.name)})

        def mat(rule: Rule, heap: UHeap) -> tuple[UStoreable, UHeap]:
            fields = []
            for _ in stype.fields:
                fl, heap = heap.alloc(rule.m.fresh_opq())
                fields.append(fl)
            return UStruct(stype, tuple(fields)), heap

        return _h_tag_pred(tags, mat)(r)
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UStruct) and s.type == stype:
        return [OLoc(r.heap, s.fields[index])]
    tag = struct_tag(stype.name)
    if isinstance(s, UOpq) and tag in s.possible:
        out: list[Outcome] = []
        if s.possible != frozenset({tag}) and not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({tag}))
            out.append(r.blame(f"expected {stype.name}", bad))
        fields = []
        heap = r.heap
        for _ in stype.fields:
            fl, heap = heap.alloc(r.m.fresh_opq())
            fields.append(fl)
        heap = heap.set(target, UStruct(stype, tuple(fields)))
        out.append(OLoc(heap, fields[index], 1))
        return out
    return [r.blame(f"expected {stype.name}, got {s!r}")]


# ---------------------------------------------------------------------------
# Dispatch — generated from the registry
# ---------------------------------------------------------------------------


def _refine_handler(ref) -> Callable[[Rule], list[Outcome]]:
    """Instantiate the refinement-template interpreter a declaration
    names."""
    if ref.kind == "arith":
        return _h_arith(ref.op)
    if ref.kind == "offset":
        return _h_offset(ref.op)
    if ref.kind == "divlike":
        return _h_divlike(ref.op, constrain=ref.constrain)
    if ref.kind == "slash":
        return _h_slash
    if ref.kind == "compare":
        return _h_compare(ref.op)
    if ref.kind == "swap":
        return _h_swapped(ref.op)
    if ref.kind == "sign":
        return _h_sign_pred(ref.pred)
    raise ValueError(f"unknown refinement template {ref.kind!r}")


def _synth_handler(spec) -> Callable[[Rule], list[Outcome]]:
    """Wrap a synthesis rule with the concrete fast path (unless the
    declaration opted out — higher-order synthesis rules must not
    delegate: the δ context has no apply callback)."""
    if not spec.delegate_concrete:
        return spec.synth
    synth = spec.synth

    def handler(r: Rule) -> list[Outcome]:
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        return synth(r)

    return handler


def _arity_gate(arity, inner) -> Callable[[Rule], list[Outcome]]:
    def handler(r: Rule) -> list[Outcome]:
        msg = arity.blame(len(r.args))
        if msg is not None:
            return [r.blame(msg)]
        return inner(r)

    return handler


_DISPATCH: Optional[dict[str, Callable[[Rule], list[Outcome]]]] = None


def _dispatch() -> dict[str, Callable[[Rule], list[Outcome]]]:
    """name → handler, derived from every registry declaration.  Built
    lazily (and memoised): the registry package itself imports ``scv``
    siblings while initialising, so the table cannot be built at import
    time."""
    global _DISPATCH
    if _DISPATCH is None:
        from ..prims.rules import MATERIALIZERS

        table: dict[str, Callable[[Rule], list[Outcome]]] = {}
        for spec in REGISTRY.values():
            if spec.rule is not None:
                h = spec.rule  # custom rules manage their own delegation
            elif spec.pred_tags is not None:
                h = _h_tag_pred(spec.pred_tags,
                                MATERIALIZERS.get(spec.materialize))
            elif spec.synth is not None:
                h = _synth_handler(spec)
            elif spec.refine is not None:
                h = _refine_handler(spec.refine)
            elif spec.sig.result is not None:
                h = _h_generic(spec.sig.want, spec.sig.result, spec.sig.desc)
            else:
                continue  # pragma: no cover - lint enforces coverage
            if spec.check_arity:
                h = _arity_gate(spec.arity, h)
            table[spec.name] = h
        _DISPATCH = table
    return _DISPATCH


def delta_u(machine, heap: UHeap, name: str, args: tuple[Loc, ...],
            label: str) -> list[Outcome]:
    """All δ-branches for primitive ``name`` on ``args`` under ``heap``."""
    r = Rule(machine, heap, name, args, label)
    struct_entry = machine.struct_prims.get(name)
    if struct_entry is not None:
        role, stype, index = struct_entry
        if len(args) != 1:
            return [r.blame("expected 1 argument")]
        return _struct_rule(r, role, stype, index)
    handler = _dispatch().get(name)
    if handler is not None:
        return handler(r)
    if name in REGISTRY:  # pragma: no cover - every declaration has a handler
        vals = r.all_concrete()
        if vals is not None:
            return r.delegate(vals)
        # Unmodelled primitive on symbolic input: over-approximate the
        # value, under-approximate the errors (documented limitation).
        return [r.value(UOpq(machine.all_tags))]
    return [r.blame("unknown primitive")]

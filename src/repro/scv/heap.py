"""Symbolic heap for the untyped language (§4).

Extends the SPCF heap model to dynamic typing: an opaque value carries a
set of *possible type tags* which execution narrows through run-time
type tests (§4.1), plus the same numeric refinement predicates as SPCF
(reused from ``repro.core.heap``).  Data structures are refined
incrementally into shapes (§4.2): once an opaque is known to be a pair
it *becomes* ``UPair(•, •)`` with fresh opaque fields.

Tag lattice.  The primary tags are disjoint and exhaustive:

    integer | ratreal | nonreal | boolean | string | symbol | pair |
    null | procedure | box | void | struct:<name>

``ratreal`` covers non-integer reals (the exact-rational / float slice
of the tower) and ``nonreal`` covers complex numbers with a nonzero
imaginary part.  ``number?`` is ``{integer, ratreal, nonreal}``;
``real?`` is ``{integer, ratreal}`` — this split is what lets the
engine reproduce the paper's ``0+1i`` counterexamples while keeping SMT
reasoning confined to integers (the documented §5.3 boundary).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from fractions import Fraction

from ..core.heap import Pred, fresh_loc
from ..core.syntax import Loc
from ..lang.ast import ULam
from ..lang.sexp import Symbol
from ..lang.values import Nil, StructType, Void

# ---------------------------------------------------------------------------
# Tags
# ---------------------------------------------------------------------------

TAG_INTEGER = "integer"
TAG_RATREAL = "ratreal"
TAG_NONREAL = "nonreal"
TAG_BOOLEAN = "boolean"
TAG_STRING = "string"
TAG_SYMBOL = "symbol"
TAG_PAIR = "pair"
TAG_NULL = "null"
TAG_PROCEDURE = "procedure"
TAG_BOX = "box"
TAG_VOID = "void"
# Extension tag for the gated vector family.  Deliberately NOT in
# BASE_TAGS: the sorted tag set of an unrestricted opaque is embedded in
# committed report bytes, so the tag universe only grows per-program
# (``SMachine(extended_prims=True)``), never globally.
TAG_VECTOR = "vector"

BASE_TAGS = frozenset(
    {
        TAG_INTEGER,
        TAG_RATREAL,
        TAG_NONREAL,
        TAG_BOOLEAN,
        TAG_STRING,
        TAG_SYMBOL,
        TAG_PAIR,
        TAG_NULL,
        TAG_PROCEDURE,
        TAG_BOX,
        TAG_VOID,
    }
)

NUMBER_TAGS = frozenset({TAG_INTEGER, TAG_RATREAL, TAG_NONREAL})
REAL_TAGS = frozenset({TAG_INTEGER, TAG_RATREAL})
FIRST_ORDER_TAGS = frozenset(
    {TAG_INTEGER, TAG_RATREAL, TAG_NONREAL, TAG_BOOLEAN, TAG_STRING,
     TAG_SYMBOL, TAG_NULL, TAG_VOID}
)


def struct_tag(name: str) -> str:
    return f"struct:{name}"


# ---------------------------------------------------------------------------
# Extra refinement predicates for non-numeric scalars
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PEqDatum(Pred):
    """``λx. (equal? x datum)`` for scalar datums (symbols, strings,
    booleans) — lets ``case``/``equal?`` branches constrain opaque
    scalars without involving the arithmetic solver."""

    datum: object

    def __repr__(self) -> str:
        return f"(≡' {self.datum!r})"


# ---------------------------------------------------------------------------
# Storeables
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class UStoreable:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is UStoreable:
            raise TypeError("UStoreable is abstract")


@dataclass(frozen=True)
class UConc(UStoreable):
    """A concrete immediate: number, boolean, string, symbol, NIL, VOID."""

    value: object

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class UPair(UStoreable):
    car: Loc
    cdr: Loc

    def __repr__(self) -> str:
        return f"(cons {self.car.name} {self.cdr.name})"


@dataclass(frozen=True)
class UStruct(UStoreable):
    type: StructType
    fields: tuple[Loc, ...]

    def __repr__(self) -> str:
        inner = " ".join(f.name for f in self.fields)
        return f"({self.type.name} {inner})"


@dataclass(frozen=True)
class UBoxS(UStoreable):
    """A box; its content is a location (mutation = heap update)."""

    content: Loc

    def __repr__(self) -> str:
        return f"(box {self.content.name})"


@dataclass(frozen=True)
class UVectorS(UStoreable):
    """A vector; each field is a location (``vector-set!`` = heap
    update of a rebuilt field tuple)."""

    fields: tuple[Loc, ...]

    def __repr__(self) -> str:
        inner = " ".join(f.name for f in self.fields)
        return f"(vector{' ' if inner else ''}{inner})"


# Symbolic environments map variable names to locations; immutable.
SEnv = tuple[tuple[str, Loc], ...]


def senv_lookup(env: SEnv, name: str) -> Optional[Loc]:
    for n, l in reversed(env):
        if n == name:
            return l
    return None


def senv_extend(env: SEnv, *bindings: tuple[str, Loc]) -> SEnv:
    return env + tuple(bindings)


@dataclass(frozen=True)
class UClos(UStoreable):
    """A closure over a symbolic environment."""

    lam: ULam
    env: SEnv

    def __repr__(self) -> str:
        return f"#<procedure:{self.lam.name or 'λ'}>"


@dataclass(frozen=True)
class UPrim(UStoreable):
    name: str

    def __repr__(self) -> str:
        return f"#<prim:{self.name}>"


@dataclass(frozen=True)
class UStructCtor(UStoreable):
    type: StructType

    def __repr__(self) -> str:
        return f"#<ctor:{self.type.name}>"


@dataclass(frozen=True)
class UGuard(UStoreable):
    """A function value wrapped by a higher-order contract (Findler–
    Felleisen proxy); ``contract`` points at a contract storeable."""

    contract: Loc
    inner: Loc
    pos: str
    neg: str

    def __repr__(self) -> str:
        return f"#<guarded {self.inner.name}>"


@dataclass(frozen=True)
class UAlias(UStoreable):
    """Transparent indirection created by ``set!`` so that refinements
    of the target stay shared."""

    target: Loc

    def __repr__(self) -> str:
        return f"@{self.target.name}"


# -- contracts as storeables -------------------------------------------------


@dataclass(frozen=True)
class UCtc(UStoreable):
    """A contract value.  ``kind`` selects the combinator; ``parts`` are
    locations of sub-contracts or auxiliary values:

    ========  =======================================================
    kind      parts
    ========  =======================================================
    any       ()
    flat      (pred,)
    oneof     (datum-locs...)
    and/or    sub-contracts
    not       (sub,)
    cons      (car/c, cdr/c)
    listof    (elem/c,)
    list      elem contracts
    fun       (dom..., rng)
    dep       (dom..., rng-maker)
    struct    field contracts   (struct type in ``stype``)
    rec       (thunk,)
    ========  =======================================================
    """

    kind: str
    parts: tuple[Loc, ...] = ()
    stype: Optional[StructType] = None

    def __repr__(self) -> str:
        inner = " ".join(p.name for p in self.parts)
        return f"#<ctc:{self.kind} {inner}>"


# -- the unknowns -------------------------------------------------------------


@dataclass(frozen=True)
class UOpq(UStoreable):
    """An opaque value: possible tags plus refinement predicates."""

    possible: frozenset[str] = BASE_TAGS
    preds: tuple[Pred, ...] = ()

    def narrowed(self, tags: frozenset[str]) -> "UOpq":
        return UOpq(self.possible & tags, self.preds)

    def refined(self, p: Pred) -> "UOpq":
        if p in self.preds:
            return self
        return UOpq(self.possible, self.preds + (p,))

    @property
    def definitely(self) -> Optional[str]:
        """The single possible tag, if narrowed that far."""
        if len(self.possible) == 1:
            return next(iter(self.possible))
        return None

    def __repr__(self) -> str:
        tags = "|".join(sorted(self.possible)) if self.possible != BASE_TAGS else "any"
        preds = ", ".join(map(repr, self.preds))
        return f"•{{{tags}{'; ' + preds if preds else ''}}}"


@dataclass(frozen=True)
class UCase(UStoreable):
    """Memoising mapping for an opaque *function*: argument tuples to
    result locations (the untyped generalisation of SPCF's ``caseT``).
    ``arity`` fixes the accepted argument count once observed."""

    arity: int
    mapping: tuple[tuple[tuple[Loc, ...], Loc], ...] = ()

    def lookup(self, args: tuple[Loc, ...]) -> Optional[Loc]:
        for k, v in self.mapping:
            if k == args:
                return v
        return None

    def extended(self, args: tuple[Loc, ...], out: Loc) -> "UCase":
        return UCase(self.arity, self.mapping + ((args, out),))

    def __repr__(self) -> str:
        rows = " ".join(
            "[(" + " ".join(a.name for a in k) + f") ↦ {v.name}]"
            for k, v in self.mapping
        )
        return f"ucase/{self.arity} {rows}"


# ---------------------------------------------------------------------------
# Primary tags of concrete values and storeables
# ---------------------------------------------------------------------------


def datum_tag(v: object) -> Optional[str]:
    """Primary tag of a concrete immediate."""
    if isinstance(v, bool):
        return TAG_BOOLEAN
    if isinstance(v, int):
        return TAG_INTEGER
    if isinstance(v, Fraction):
        return TAG_INTEGER if v.denominator == 1 else TAG_RATREAL
    if isinstance(v, float):
        return TAG_RATREAL
    if isinstance(v, complex):
        return TAG_NONREAL
    if isinstance(v, str):
        return TAG_STRING
    if isinstance(v, Symbol):
        return TAG_SYMBOL
    if isinstance(v, Nil):
        return TAG_NULL
    if isinstance(v, Void):
        return TAG_VOID
    return None


def storeable_tag(s: UStoreable) -> Optional[str]:
    """Primary tag of a non-opaque storeable (None: no tag, e.g. a
    contract value — every type predicate answers ``#f`` on it)."""
    if isinstance(s, UConc):
        return datum_tag(s.value)
    if isinstance(s, UPair):
        return TAG_PAIR
    if isinstance(s, UStruct):
        return struct_tag(s.type.name)
    if isinstance(s, UBoxS):
        return TAG_BOX
    if isinstance(s, UVectorS):
        return TAG_VECTOR
    if isinstance(s, (UClos, UPrim, UGuard, UStructCtor, UCase)):
        return TAG_PROCEDURE
    return None


# ---------------------------------------------------------------------------
# The heap (same copy-on-write discipline as the SPCF heap)
# ---------------------------------------------------------------------------


class UHeap:
    """Immutable symbolic heap for the untyped machine.

    Two layers: a shared *base* (frozen once per program, holding the
    ~90 primitive bindings and other pre-state) and a copy-on-write
    *overlay*.  Functional updates copy only the overlay, so the cost of
    a ``set`` is proportional to the state the program has actually
    touched, not to the size of the primitive environment — the update
    discipline that makes BFS over thousands of states affordable.
    """

    __slots__ = ("_d", "_base", "_gdirty")

    def __init__(
        self,
        entries: Optional[dict[Loc, UStoreable]] = None,
        base: Optional[dict[Loc, UStoreable]] = None,
        gdirty: bool = False,
    ) -> None:
        self._d: dict[Loc, UStoreable] = entries if entries is not None else {}
        self._base: dict[Loc, UStoreable] = base if base is not None else {}
        # Has any post-freeze update shadowed a global ("g…") location?
        # Globals are treated as per-program constants by fingerprinting
        # (serialized by name alone); this flag is what revokes that
        # treatment when a path e.g. `set!`s a primitive name.
        self._gdirty = gdirty

    @staticmethod
    def empty() -> "UHeap":
        return UHeap()

    def frozen(self) -> "UHeap":
        """Push the overlay into the shared base layer.  Call once after
        building a program's initial heap; subsequent updates then copy
        an (initially empty) overlay."""
        return UHeap({}, {**self._base, **self._d})

    def get(self, l: Loc) -> UStoreable:
        s = self._d.get(l)
        if s is not None:
            return s
        s = self._base.get(l)
        if s is not None:
            return s
        raise KeyError(f"unallocated location {l.name}")

    def deref(self, l: Loc) -> tuple[Loc, UStoreable]:
        """Follow UAlias chains; returns (final loc, storeable)."""
        seen = set()
        while True:
            s = self.get(l)
            if not isinstance(s, UAlias):
                return l, s
            if l in seen:  # pragma: no cover - aliasing is acyclic by construction
                raise RuntimeError("alias cycle")
            seen.add(l)
            l = s.target

    def __contains__(self, l: Loc) -> bool:
        return l in self._d or l in self._base

    def in_overlay(self, l: Loc) -> bool:
        """Has ``l`` been written since the base layer was frozen?
        Fingerprinting relies on this: frozen-base globals serialize by
        name alone, but only while no path has shadowed them."""
        return l in self._d

    @property
    def has_global_writes(self) -> bool:
        """True when any overlay entry shadows a global ("g…") location
        — the O(1) guard fingerprinting consults before trusting its
        cached names-only globals-frame token."""
        return self._gdirty

    def set(self, l: Loc, s: UStoreable) -> "UHeap":
        d = dict(self._d)
        d[l] = s
        return UHeap(d, self._base,
                     self._gdirty or l.name.startswith("g"))

    def alloc(self, s: UStoreable, prefix: str = "u") -> tuple[Loc, "UHeap"]:
        l = fresh_loc(prefix)
        return l, self.set(l, s)

    def narrow(self, l: Loc, tags: frozenset[str]) -> "UHeap":
        l, s = self.deref(l)
        assert isinstance(s, UOpq), f"narrowing non-opaque {s!r}"
        return self.set(l, s.narrowed(tags))

    def refine(self, l: Loc, p: Pred) -> "UHeap":
        l, s = self.deref(l)
        if not isinstance(s, UOpq):
            return self  # concrete: refinement already decided
        return self.set(l, s.refined(p))

    def items(self) -> Iterator[tuple[Loc, UStoreable]]:
        """All live entries, overlay entries shadowing base ones."""
        for k, v in self._base.items():
            if k not in self._d:
                yield k, v
        yield from self._d.items()

    def __len__(self) -> int:
        return len(self._d) + sum(1 for k in self._base if k not in self._d)

    def __repr__(self) -> str:
        rows = ", ".join(f"{k.name} ↦ {v!r}" for k, v in self.items())
        return f"[{rows}]"

"""Symbolic CESK machine for the untyped language (§4).

A small-step machine with explicit continuations so the nondeterministic
transition system can be searched breadth-first.  All values live in the
symbolic heap (``scv.heap``); environments map names to locations.

Design notes mirroring the paper:

* **Contract monitoring is program synthesis** (§4.3): ``UMon`` on a
  compound contract expands into ordinary code — ``cons/c`` becomes a
  ``pair?`` test plus monitored ``car``/``cdr``, ``listof`` becomes a
  recursive loop — so "the semantics of contract checking itself breaks
  down complex and higher-order contracts into simple predicates".
* **Unknown application** generalises SPCF's AppOpq rules dynamically
  (§4.1): one branch memoises the application in a ``UCase`` mapping
  (covering constant and delayed-exploration behaviour, since the opaque
  result can itself be applied later), plus one *havoc* branch per
  function-like argument, in which the unknown context probes that
  argument with fresh opaques.
* **Errors from unknown code are ignored** (the approximation relation's
  Err-Opq rule): blame that faults an *opaque party* — a ``•``-prefixed
  unknown import or the synthesised demonic client — is the unknown
  context's business and does not count as a finding; the driver
  filters on ``Blame.known``.  Known parties are ``Λ`` (the program's
  own primitive applications) and module names (contract violations by
  known code).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from ..core.heap import PNot, current_loc_counter, set_loc_counter
from ..core.syntax import Loc
from ..lang.ast import (
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from ..lang.sexp import Symbol
from ..lang.values import NIL, StructType, VOID
from .heap import (
    BASE_TAGS,
    PEqDatum,
    TAG_BOOLEAN,
    TAG_PROCEDURE,
    UAlias,
    UCase,
    UClos,
    UConc,
    UCtc,
    UGuard,
    UHeap,
    UOpq,
    UPair,
    UPrim,
    UStoreable,
    UStruct,
    UStructCtor,
    struct_tag,
)

_syn_counter = 0


def syn_label(prefix: str = "syn") -> str:
    """A synthetic label — blame carrying it is *unknown-code* blame."""
    global _syn_counter
    label = f"{prefix}:{_syn_counter}"
    _syn_counter += 1
    return label


def reset_syn_labels() -> None:
    """Restart the synthetic-label counter.  Labels are only unique per
    program; the batch driver resets between programs so report rows
    do not depend on what else ran in the same worker process."""
    global _syn_counter
    _syn_counter = 0


def current_syn_counter() -> int:
    """The next number ``syn_label`` would mint.  States record this
    (``syn_base``) so ``SMachine.step`` can rewind the counter before
    stepping: machine-minted labels ('hv:N', 'mon:N', …) become a pure
    function of the path from the initial state, independent of the
    order in which the search interleaves sibling branches — the
    invariant that lets a sharded search report byte-identical blame
    labels to the sequential one."""
    return _syn_counter


def set_syn_counter(n: int) -> None:
    """Rewind/advance the synthetic-label counter to ``n`` (see
    :func:`current_syn_counter`)."""
    global _syn_counter
    _syn_counter = n


def is_known_label(label: str) -> bool:
    """Labels minted by the parser ('aN') are known-code sites; labels
    minted by the machine ('hv:', 'mon:', 'syn:') are not."""
    return bool(label) and ":" not in label


# ---------------------------------------------------------------------------
# Internal AST nodes (never produced by the parser)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ULocE(UExpr):
    """A heap location used as an expression."""

    loc: Loc

    def __repr__(self) -> str:
        return f"${self.loc.name}"


@dataclass(frozen=True)
class UBlameE(UExpr):
    party: str
    description: str
    label: str

    def __repr__(self) -> str:
        return f"(blame {self.party})"


@dataclass(frozen=True)
class UMon(UExpr):
    """Monitor ``value`` with (the value of) ``contract``."""

    contract: UExpr
    value: UExpr
    pos: str
    neg: str
    label: str

    def __repr__(self) -> str:
        return f"(mon {self.contract!r} {self.value!r} +{self.pos} -{self.neg})"


# ---------------------------------------------------------------------------
# Environments (persistent chain of frames)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MEnv:
    """Immutable environment node: a frame dict (never mutated after
    construction) and a parent."""

    frame: dict
    parent: Optional["MEnv"] = None

    def lookup(self, name: str) -> Optional[Loc]:
        env: Optional[MEnv] = self
        while env is not None:
            l = env.frame.get(name)
            if l is not None:
                return l
            env = env.parent
        return None

    def extend(self, bindings: dict) -> "MEnv":
        return MEnv(bindings, self)


# ---------------------------------------------------------------------------
# Continuations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Kont:
    pass


@dataclass(frozen=True)
class KIf(Kont):
    then: UExpr
    orelse: UExpr
    env: MEnv


@dataclass(frozen=True)
class KApp(Kont):
    done: tuple[Loc, ...]
    pending: tuple[UExpr, ...]
    env: MEnv
    label: str


@dataclass(frozen=True)
class KBegin(Kont):
    rest: tuple[UExpr, ...]
    env: MEnv


@dataclass(frozen=True)
class KLetrec(Kont):
    cells: tuple[Loc, ...]
    index: int
    bindings: tuple[tuple[str, UExpr], ...]
    body: UExpr
    env: MEnv


@dataclass(frozen=True)
class KSet(Kont):
    cell: Loc


@dataclass(frozen=True)
class KMonC(Kont):
    """Contract evaluated next; then the value."""

    value: UExpr
    env: MEnv
    pos: str
    neg: str
    label: str


@dataclass(frozen=True)
class KMonV(Kont):
    ctc: Loc
    pos: str
    neg: str
    label: str


KontStack = tuple[Kont, ...]  # innermost frame last


# ---------------------------------------------------------------------------
# States and answers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Blame:
    """An error answer: a party is blamed at a label."""

    party: str
    label: str
    description: str

    @property
    def known(self) -> bool:
        """Does this blame implicate *known* code?  Blame on an opaque
        party (``•``-prefixed: unknown imports, the demonic client) is
        the unknown context's business and never a finding, whatever
        label it lands on — the approximation relation's Err-Opq rule."""
        return not self.party.startswith("•")

    def __repr__(self) -> str:
        return f"blame({self.party} @ {self.label}: {self.description})"


Control = Union[UExpr, Loc, Blame]


@dataclass(frozen=True)
class SState:
    control: Control
    env: MEnv
    heap: UHeap
    kont: KontStack
    # Search-heuristic metadata (§5.3): how many opaque-expansion steps
    # this path has taken — "input generation effort".
    gen_effort: int = 0
    # Counter bases this state was created under: the machine rewinds
    # the global synthetic-label and location counters to these before
    # stepping, so minted names depend only on the path from the initial
    # state — never on search order.  Both are excluded from
    # fingerprints, like ``gen_effort``.
    syn_base: int = 0
    loc_base: int = 0

    @property
    def is_answer(self) -> bool:
        if isinstance(self.control, Blame):
            return True
        return isinstance(self.control, Loc) and not self.kont


class SMachine:
    """The step function.  Stateless apart from configuration; all
    execution state lives in :class:`SState`.

    Configuration:

    * ``proof`` — the untyped proof system (``scv.proof.UProofSystem``);
    * ``struct_types`` — the program's struct definitions; registering
      them widens the opaque tag universe (``all_tags``) so unknowns can
      *be* those structs, and populates ``struct_prims`` so δ can answer
      their predicates/accessors;
    * ``assume_well_typed`` — the cross-check discipline: when True, tag
      *uncertainty* on opaque values narrows silently instead of
      spawning blame branches (matching what the §3 typed backend rules
      out by typing), while definite tag violations and value-level
      errors (division by zero, contract blame) still branch.  Used by
      the driver when running the contract-free shared corpus so the
      two backends answer the same question.
    * ``extended_prims`` — enables the extended string/vector primitive
      family for this program: the base heap binds its globals and
      ``TAG_VECTOR`` joins the opaque tag universe.  Off by default so
      programs that never mention the family keep byte-identical heaps
      and reports (an unrestricted opaque's sorted tag set is embedded
      in committed report bytes).
    """

    def __init__(self, *, proof=None, struct_types=None,
                 assume_well_typed: bool = False,
                 extended_prims: bool = False) -> None:
        from .proof import UProofSystem

        self.proof = proof or UProofSystem()
        self.struct_types: dict[str, StructType] = dict(struct_types or {})
        self.assume_well_typed = assume_well_typed
        self.extended_prims = extended_prims
        self.all_tags = BASE_TAGS | {
            struct_tag(n) for n in self.struct_types
        }
        if extended_prims:
            from .heap import TAG_VECTOR

            self.all_tags = self.all_tags | {TAG_VECTOR}
        # prim name -> ("pred" | "accessor", StructType, field index)
        self.struct_prims: dict[str, tuple[str, StructType, int]] = {}
        for st in self.struct_types.values():
            self.struct_prims[f"{st.name}?"] = ("pred", st, 0)
            for i, f in enumerate(st.fields):
                self.struct_prims[f"{st.name}-{f}"] = ("accessor", st, i)

    def fresh_opq(self) -> UOpq:
        """An unconstrained unknown over this program's tag universe."""
        return UOpq(self.all_tags)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    def step(self, st: SState) -> Optional[list[SState]]:
        if st.is_answer:
            return None
        c = st.control
        if isinstance(c, Blame):  # pragma: no cover - answers caught above
            return None
        # Rewind the global counters to this state's bases so every name
        # minted while stepping depends only on the path, then stamp the
        # successors with the post-step values.
        set_syn_counter(st.syn_base)
        set_loc_counter(st.loc_base)
        if isinstance(c, Loc):
            succs = self._plug(c, st)
        else:
            succs = self._eval(c, st)
        syn, loc = current_syn_counter(), current_loc_counter()
        return [replace(s, syn_base=syn, loc_base=loc) for s in succs]

    # -- evaluation ------------------------------------------------------

    def _eval(self, e: UExpr, st: SState) -> list[SState]:
        env, heap, kont = st.env, st.heap, st.kont
        if isinstance(e, Quote):
            l, h = _alloc_datum(heap, e.datum)
            return [SState(l, env, h, kont, st.gen_effort)]
        if isinstance(e, ULocE):
            return [SState(e.loc, env, heap, kont, st.gen_effort)]
        if isinstance(e, UBlameE):
            return [
                SState(
                    Blame(e.party, e.label, e.description), env, heap, (),
                    st.gen_effort,
                )
            ]
        if isinstance(e, UVar):
            l = env.lookup(e.name)
            if l is None:
                return [
                    SState(
                        Blame("top", "", f"unbound variable {e.name}"),
                        env, heap, (), st.gen_effort,
                    )
                ]
            target, _ = heap.deref(l)
            return [SState(target, env, heap, kont, st.gen_effort)]
        if isinstance(e, ULam):
            l, h = heap.alloc(UClos(e, env))
            return [SState(l, env, h, kont, st.gen_effort)]
        if isinstance(e, UOpaque):
            l = Loc(f"o:{e.label}")
            h = heap if l in heap else heap.set(l, self.fresh_opq())
            return [SState(l, env, h, kont, st.gen_effort)]
        if isinstance(e, UIf):
            return [
                SState(e.test, env, heap, kont + (KIf(e.then, e.orelse, env),),
                       st.gen_effort)
            ]
        if isinstance(e, UBegin):
            first, rest = e.exprs[0], e.exprs[1:]
            k = kont + (KBegin(rest, env),) if rest else kont
            return [SState(first, env, heap, k, st.gen_effort)]
        if isinstance(e, ULetrec):
            h = heap
            frame = {}
            cells = []
            for name, _ in e.bindings:
                l, h = h.alloc(UConc(_UNDEFINED), prefix="cell")
                frame[name] = l
                cells.append(l)
            child = env.extend(frame)
            if not e.bindings:
                return [SState(e.body, child, h, kont, st.gen_effort)]
            k = kont + (
                KLetrec(tuple(cells), 0, e.bindings, e.body, child),
            )
            return [SState(e.bindings[0][1], child, h, k, st.gen_effort)]
        if isinstance(e, USet):
            l = env.lookup(e.name)
            if l is None:
                return [
                    SState(
                        Blame("top", "", f"set!: unbound {e.name}"),
                        env, heap, (), st.gen_effort,
                    )
                ]
            return [
                SState(e.value, env, heap, kont + (KSet(l),), st.gen_effort)
            ]
        if isinstance(e, UApp):
            return [
                SState(
                    e.fn, env, heap,
                    kont + (KApp((), e.args, env, e.label),),
                    st.gen_effort,
                )
            ]
        if isinstance(e, UMon):
            return [
                SState(
                    e.contract, env, heap,
                    kont + (KMonC(e.value, env, e.pos, e.neg, e.label),),
                    st.gen_effort,
                )
            ]
        raise TypeError(f"cannot evaluate {e!r}")

    # -- plugging a value into the continuation -----------------------------

    def _plug(self, l: Loc, st: SState) -> list[SState]:
        kont = st.kont
        assert kont, "answers are filtered before plugging"
        frame, rest = kont[-1], kont[:-1]
        if isinstance(frame, KIf):
            return self._branch_if(l, frame, rest, st)
        if isinstance(frame, KApp):
            done = frame.done + (l,)
            if frame.pending:
                nxt, remaining = frame.pending[0], frame.pending[1:]
                k = rest + (KApp(done, remaining, frame.env, frame.label),)
                return [SState(nxt, frame.env, st.heap, k, st.gen_effort)]
            return self.apply(
                done[0], done[1:], frame.label, st.heap, rest, st
            )
        if isinstance(frame, KBegin):
            first, remaining = frame.rest[0], frame.rest[1:]
            k = rest + (KBegin(remaining, frame.env),) if remaining else rest
            return [SState(first, frame.env, st.heap, k, st.gen_effort)]
        if isinstance(frame, KLetrec):
            h = st.heap.set(frame.cells[frame.index], UAlias(l))
            nxt = frame.index + 1
            if nxt < len(frame.bindings):
                k = rest + (
                    KLetrec(frame.cells, nxt, frame.bindings, frame.body, frame.env),
                )
                return [
                    SState(frame.bindings[nxt][1], frame.env, h, k, st.gen_effort)
                ]
            return [SState(frame.body, frame.env, h, rest, st.gen_effort)]
        if isinstance(frame, KSet):
            h = st.heap.set(frame.cell, UAlias(l))
            lv, h = h.alloc(UConc(VOID))
            return [SState(lv, st.env, h, rest, st.gen_effort)]
        if isinstance(frame, KMonC):
            k = rest + (KMonV(l, frame.pos, frame.neg, frame.label),)
            return [SState(frame.value, frame.env, st.heap, k, st.gen_effort)]
        if isinstance(frame, KMonV):
            return self._monitor(frame, l, st.heap, rest, st)
        raise TypeError(f"unknown frame {frame!r}")

    # -- conditionals ------------------------------------------------------

    def _branch_if(
        self, l: Loc, frame: KIf, rest: KontStack, st: SState
    ) -> list[SState]:
        target, s = st.heap.deref(l)
        if isinstance(s, UConc):
            taken = frame.orelse if s.value is False else frame.then
            return [SState(taken, frame.env, st.heap, rest, st.gen_effort)]
        if not isinstance(s, UOpq):
            return [SState(frame.then, frame.env, st.heap, rest, st.gen_effort)]
        if TAG_BOOLEAN not in s.possible:
            return [SState(frame.then, frame.env, st.heap, rest, st.gen_effort)]
        out = []
        # False branch: the opaque *is* #f (strong update).
        h_false = st.heap.set(target, UConc(False))
        out.append(
            SState(frame.orelse, frame.env, h_false, rest, st.gen_effort + 1)
        )
        # True branch: not #f.
        h_true = st.heap.refine(target, PNot(PEqDatum(False)))
        out.append(
            SState(frame.then, frame.env, h_true, rest, st.gen_effort + 1)
        )
        return out

    # -- application ---------------------------------------------------------

    def apply(
        self,
        fn: Loc,
        args: tuple[Loc, ...],
        label: str,
        heap: UHeap,
        kont: KontStack,
        st: SState,
    ) -> list[SState]:
        fn_t, s = heap.deref(fn)
        if isinstance(s, UClos):
            if len(args) != len(s.lam.params):
                return [
                    SState(
                        Blame(
                            "Λ", label,
                            f"arity: {s.lam.name or 'λ'} expects "
                            f"{len(s.lam.params)}, got {len(args)}",
                        ),
                        st.env, heap, (), st.gen_effort,
                    )
                ]
            frame = dict(zip(s.lam.params, args))
            return [
                SState(s.lam.body, s.env.extend(frame), heap, kont, st.gen_effort)
            ]
        if isinstance(s, UPrim):
            from .delta import delta_u

            outcomes = delta_u(self, heap, s.name, args, label)
            return self._run_outcomes(outcomes, st, kont)
        if isinstance(s, UStructCtor):
            if len(args) != len(s.type.fields):
                return [
                    SState(
                        Blame("Λ", label, f"{s.type.name}: wrong field count"),
                        st.env, heap, (), st.gen_effort,
                    )
                ]
            l, h = heap.alloc(UStruct(s.type, args))
            return [SState(l, st.env, h, kont, st.gen_effort)]
        if isinstance(s, UGuard):
            return self._apply_guarded(fn_t, s, args, label, heap, kont, st)
        if isinstance(s, (UOpq, UCase)):
            return self._apply_opaque(fn_t, s, args, label, heap, kont, st)
        return [
            SState(
                Blame("Λ", label, f"application of non-procedure {s!r}"),
                st.env, heap, (), st.gen_effort,
            )
        ]

    def _run_outcomes(self, outcomes, st: SState, kont: KontStack) -> list[SState]:
        from .delta import OBlame, OEval, OLoc, OValue

        out = []
        for o in outcomes:
            if isinstance(o, OValue):
                l, h = o.heap.alloc(o.storeable)
                out.append(SState(l, st.env, h, kont, st.gen_effort + o.effort))
            elif isinstance(o, OLoc):
                out.append(SState(o.loc, st.env, o.heap, kont, st.gen_effort + o.effort))
            elif isinstance(o, OBlame):
                out.append(
                    SState(
                        Blame(o.party, o.label, o.description),
                        st.env, o.heap, (), st.gen_effort,
                    )
                )
            elif isinstance(o, OEval):
                out.append(SState(o.expr, o.env, o.heap, kont, st.gen_effort + o.effort))
            else:  # pragma: no cover
                raise TypeError(f"bad outcome {o!r}")
        return out

    # -- guarded application (contract checking at the boundary) -------------

    def _apply_guarded(
        self, fn: Loc, g: UGuard, args, label, heap, kont, st
    ) -> list[SState]:
        _, ctc = heap.deref(g.contract)
        assert isinstance(ctc, UCtc) and ctc.kind in ("fun", "dep")
        doms, last = ctc.parts[:-1], ctc.parts[-1]
        if len(args) != len(doms):
            return [
                SState(
                    Blame(g.neg, label, f"arity: contract expects {len(doms)}"),
                    st.env, heap, (), st.gen_effort,
                )
            ]
        mon_args = tuple(
            UMon(ULocE(d), ULocE(a), g.neg, g.pos, syn_label("mon"))
            for d, a in zip(doms, args)
        )
        if ctc.kind == "fun":
            expr: UExpr = UMon(
                ULocE(last),
                UApp(ULocE(g.inner), mon_args, label=syn_label("mon")),
                g.pos, g.neg, label,
            )
        else:
            # Dependent range: bind checked args, apply the range maker.
            names = tuple(f".d{i}" for i in range(len(doms)))
            vars_ = tuple(UVar(n) for n in names)
            body = UMon(
                UApp(ULocE(last), vars_, label=syn_label("mon")),
                UApp(ULocE(g.inner), vars_, label=syn_label("mon")),
                g.pos, g.neg, label,
            )
            expr = UApp(ULam(names, body), mon_args, label=syn_label("mon"))
        return [SState(expr, st.env, heap, kont, st.gen_effort)]

    # -- opaque application (the demonic context, §4.1) -----------------------

    def _apply_opaque(
        self, fn: Loc, s: UStoreable, args, label, heap, kont, st
    ) -> list[SState]:
        out: list[SState] = []
        if isinstance(s, UOpq):
            if TAG_PROCEDURE not in s.possible:
                return [
                    SState(
                        Blame("Λ", label, "application of non-procedure opaque"),
                        st.env, heap, (), st.gen_effort,
                    )
                ]
            if s.possible != frozenset({TAG_PROCEDURE}):
                # Error branch: the opaque might not be a procedure at
                # all — suppressed under the typed discipline, where the
                # §3 type system rules this shape of error out.
                if not self.assume_well_typed:
                    h_bad = heap.set(
                        fn, UOpq(s.possible - {TAG_PROCEDURE}, s.preds)
                    )
                    out.append(
                        SState(
                            Blame("Λ", label, "application of non-procedure opaque"),
                            st.env, h_bad, (), st.gen_effort + 1,
                        )
                    )
                heap = heap.set(fn, UOpq(frozenset({TAG_PROCEDURE}), s.preds))
            # Branch A: memoise (covers constant and delayed behaviour —
            # the opaque result can itself be applied later).
            la, h = heap.alloc(self.fresh_opq())
            h = h.set(fn, UCase(len(args), ((tuple(args), la),)))
            out.append(SState(la, st.env, h, kont, st.gen_effort + 1))
            # Havoc branches: probe each function-like argument.
            out.extend(
                self._havoc_branches(fn, args, heap, kont, st)
            )
            return out
        assert isinstance(s, UCase)
        if len(args) != s.arity:
            # Unknown functions are applied at one arity per shape guess;
            # a mismatched arity yields an unmemoised fresh unknown.
            la, h = heap.alloc(self.fresh_opq())
            return [SState(la, st.env, h, kont, st.gen_effort + 1)]
        hit = s.lookup(tuple(args))
        if hit is not None:
            return [SState(hit, st.env, heap, kont, st.gen_effort)]
        la, h = heap.alloc(self.fresh_opq())
        h = h.set(fn, s.extended(tuple(args), la))
        return [SState(la, st.env, h, kont, st.gen_effort + 1)]

    def _havoc_branches(self, fn, args, heap, kont, st) -> list[SState]:
        """For each applicable argument, one branch in which the unknown
        context applies it to fresh opaques and feeds the result onward
        (the untyped AppHavoc)."""
        out = []
        for i, a in enumerate(args):
            _, sa = heap.deref(a)
            arity = _applicable_arity(heap, sa)
            if arity is None:
                continue
            h = heap
            probes = []
            for _ in range(arity):
                pl, h = h.alloc(self.fresh_opq())
                probes.append(pl)
            k_loc, h = h.alloc(UOpq(frozenset({TAG_PROCEDURE})))
            # Remember the shape guess on the unknown function itself so a
            # counterexample can be reconstructed (cf. AppHavoc's Σ[L↦V]).
            names = tuple(f".h{j}" for j in range(len(args)))
            body = UApp(
                ULocE(k_loc),
                (
                    UApp(
                        UVar(names[i]),
                        tuple(ULocE(p) for p in probes),
                        label=syn_label("hv"),
                    ),
                ),
                label=syn_label("hv"),
            )
            h = h.set(fn, UClos(ULam(names, body, name="havoc"), MEnv({})))
            expr = UApp(
                ULocE(k_loc),
                (
                    UApp(
                        ULocE(a),
                        tuple(ULocE(p) for p in probes),
                        label=syn_label("hv"),
                    ),
                ),
                label=syn_label("hv"),
            )
            out.append(SState(expr, st.env, h, kont, st.gen_effort + 2))
        return out

    # -- contract monitoring dispatch -----------------------------------------

    def _monitor(
        self, frame: KMonV, value: Loc, heap: UHeap, kont: KontStack, st: SState
    ) -> list[SState]:
        """Dispatch ``mon(ctc, value)`` by synthesising checking code."""
        pos, neg, label = frame.pos, frame.neg, frame.label
        _, ctc = heap.deref(frame.ctc)
        if not isinstance(ctc, UCtc):
            # A bare predicate value used as a contract.
            test = UApp(ULocE(frame.ctc), (ULocE(value),), label=syn_label("mon"))
            expr = UIf(test, ULocE(value), UBlameE(pos, "flat contract", label))
            return [SState(expr, st.env, heap, kont, st.gen_effort)]
        mk = _MonitorSynth(self, pos, neg, label)
        expr = mk.synth(ctc, frame.ctc, value, heap)
        if isinstance(expr, _Wrapped):
            l, h = expr.heap.alloc(expr.storeable)
            return [SState(l, st.env, h, kont, st.gen_effort)]
        return [SState(expr, st.env, heap, kont, st.gen_effort)]


class _Wrapped:
    """Signal from the synthesiser: allocate this storeable directly."""

    def __init__(self, storeable: UStoreable, heap: UHeap) -> None:
        self.storeable = storeable
        self.heap = heap


class _MonitorSynth:
    """Builds the checking expression for each contract combinator."""

    def __init__(self, machine: SMachine, pos: str, neg: str, label: str) -> None:
        self.m = machine
        self.pos = pos
        self.neg = neg
        self.label = label

    def _mon(self, ctc_loc: Loc, value_expr: UExpr) -> UMon:
        return UMon(ULocE(ctc_loc), value_expr, self.pos, self.neg, self.label)

    def _blame(self, desc: str) -> UBlameE:
        return UBlameE(self.pos, desc, self.label)

    def _app(self, fn: UExpr, *args: UExpr) -> UApp:
        return UApp(fn, tuple(args), label=syn_label("mon"))

    def synth(self, ctc: UCtc, ctc_loc: Loc, v: Loc, heap: UHeap):
        vE = ULocE(v)
        if ctc.kind == "any":
            return vE
        if ctc.kind == "flat":
            test = self._app(ULocE(ctc.parts[0]), vE)
            return UIf(test, vE, self._blame("flat contract"))
        if ctc.kind == "oneof":
            expr: UExpr = self._blame("one-of/c")
            for choice in reversed(ctc.parts):
                expr = UIf(
                    self._app(UVar("equal?"), vE, ULocE(choice)), vE, expr
                )
            return expr
        if ctc.kind == "and":
            expr = vE
            for part in ctc.parts:
                expr = self._mon(part, expr)
            return expr
        if ctc.kind == "or":
            return self._synth_or(ctc, v, heap)
        if ctc.kind == "not":
            # not/c of a flat contract: blame when the inner test passes.
            _, inner = heap.deref(ctc.parts[0])
            if isinstance(inner, UCtc) and inner.kind == "flat":
                test = self._app(ULocE(inner.parts[0]), vE)
            elif isinstance(inner, UCtc) and inner.kind == "oneof":
                test = Quote(False)
                for choice in inner.parts:
                    test = UIf(
                        self._app(UVar("equal?"), vE, ULocE(choice)),
                        Quote(True), test,
                    )
            else:
                test = self._app(ULocE(ctc.parts[0]), vE)
            return UIf(test, self._blame("not/c"), vE)
        if ctc.kind == "cons":
            car_c, cdr_c = ctc.parts
            return UIf(
                self._app(UVar("pair?"), vE),
                self._app(
                    UVar("cons"),
                    self._mon(car_c, self._app(UVar("car"), vE)),
                    self._mon(cdr_c, self._app(UVar("cdr"), vE)),
                ),
                self._blame("cons/c on non-pair"),
            )
        if ctc.kind == "listof":
            # (letrec ([go (λ (xs) (if (null? xs) xs
            #                (if (pair? xs)
            #                    (cons (mon elem (car xs)) (go (cdr xs)))
            #                    blame)))]) (go v))
            elem = ctc.parts[0]
            xs = UVar(".xs")
            go_body = ULam(
                (".xs",),
                UIf(
                    self._app(UVar("null?"), xs),
                    xs,
                    UIf(
                        self._app(UVar("pair?"), xs),
                        self._app(
                            UVar("cons"),
                            self._mon(elem, self._app(UVar("car"), xs)),
                            self._app(UVar(".go"), self._app(UVar("cdr"), xs)),
                        ),
                        self._blame("listof on non-list"),
                    ),
                ),
                name="listof-mon",
            )
            return ULetrec(
                ((".go", go_body),), self._app(UVar(".go"), ULocE(v))
            )
        if ctc.kind == "list":
            expr: UExpr = UIf(
                self._app(UVar("null?"), UVar(".v")),
                UVar(".nil-done"), self._blame("list/c: wrong length"),
            )
            # Build from the right: check pair, monitor car, recurse cdr.
            def build(parts: tuple[Loc, ...], value_expr: UExpr) -> UExpr:
                if not parts:
                    return UIf(
                        self._app(UVar("null?"), value_expr),
                        Quote([]),
                        self._blame("list/c: too long"),
                    )
                head, tail = parts[0], parts[1:]
                return UIf(
                    self._app(UVar("pair?"), value_expr),
                    self._app(
                        UVar("cons"),
                        self._mon(head, self._app(UVar("car"), value_expr)),
                        build(tail, self._app(UVar("cdr"), value_expr)),
                    ),
                    self._blame("list/c: too short"),
                )

            return build(ctc.parts, ULocE(v))
        if ctc.kind == "struct":
            assert ctc.stype is not None
            pred = UVar(f"{ctc.stype.name}?")
            ctor = UVar(ctc.stype.name)
            accessors = [
                UVar(f"{ctc.stype.name}-{f}") for f in ctc.stype.fields
            ]
            fields = tuple(
                self._mon(c, self._app(acc, ULocE(v)))
                for c, acc in zip(ctc.parts, accessors)
            )
            return UIf(
                self._app(pred, ULocE(v)),
                UApp(ctor, fields, label=syn_label("mon")),
                self._blame(f"struct/c: not a {ctc.stype.name}"),
            )
        if ctc.kind == "rec":
            thunk = ctc.parts[0]
            return UMon(
                self._app(ULocE(thunk)), ULocE(v), self.pos, self.neg, self.label
            )
        if ctc.kind in ("fun", "dep"):
            return self._synth_fun(ctc, ctc_loc, v, heap)
        raise TypeError(f"unknown contract kind {ctc.kind}")

    def _synth_or(self, ctc: UCtc, v: Loc, heap: UHeap) -> UExpr:
        """or/c: try flat disjuncts first (their predicate tests refine
        the value), fall through to a single higher-order disjunct."""
        vE = ULocE(v)
        higher: list[Loc] = []
        flats: list[tuple[str, Loc]] = []
        for part in ctc.parts:
            _, p = heap.deref(part)
            if isinstance(p, UCtc) and p.kind in ("fun", "dep"):
                higher.append(part)
            else:
                flats.append(("mon", part))
        if higher:
            tail: UExpr = self._mon(higher[0], vE)
        else:
            tail = self._blame("or/c: no disjunct applies")
        expr = tail
        for _, part in reversed(flats):
            _, p = heap.deref(part)
            if isinstance(p, UCtc) and p.kind == "flat":
                test = self._app(ULocE(p.parts[0]), vE)
                expr = UIf(test, vE, expr)
            elif isinstance(p, UCtc) and p.kind == "oneof":
                inner: UExpr = expr
                for choice in reversed(p.parts):
                    inner = UIf(
                        self._app(UVar("equal?"), vE, ULocE(choice)), vE, inner
                    )
                expr = inner
            elif isinstance(p, UCtc) and p.kind == "any":
                expr = vE
            else:
                # Structural disjunct (cons/c etc.): no cheap test; rely
                # on monitoring it directly in a dedicated branch.
                expr = self._mon(part, vE)
        return expr

    def _synth_fun(self, ctc: UCtc, ctc_loc: Loc, v: Loc, heap: UHeap):
        _, sv = heap.deref(v)
        vE = ULocE(v)
        wrap = _Wrapped(UGuard(ctc_loc, v, self.pos, self.neg), heap)
        if isinstance(sv, (UClos, UPrim, UGuard, UStructCtor, UCase)):
            return wrap
        if isinstance(sv, UOpq):
            if TAG_PROCEDURE not in sv.possible:
                return self._blame("->: not a procedure")
            if sv.possible == frozenset({TAG_PROCEDURE}):
                return wrap
            # Branch through procedure?: the test narrows the opaque.
            return UIf(
                self._app(UVar("procedure?"), vE),
                UMon(ULocE(ctc_loc), vE, self.pos, self.neg, self.label),
                self._blame("->: not a procedure"),
            )
        return self._blame("->: not a procedure")


_UNDEFINED = object()


def _applicable_arity(heap: UHeap, s: UStoreable) -> Optional[int]:
    """Arity of a function-like storeable, for havoc probing."""
    if isinstance(s, UClos):
        return len(s.lam.params)
    if isinstance(s, UGuard):
        _, ctc = heap.deref(s.contract)
        if isinstance(ctc, UCtc) and ctc.kind in ("fun", "dep"):
            return len(ctc.parts) - 1
        return None
    if isinstance(s, UCase):
        return s.arity
    if isinstance(s, UPrim):
        return 1
    return None


def _alloc_datum(heap: UHeap, d: object) -> tuple[Loc, UHeap]:
    """Allocate a quoted datum (lists become pair chains)."""
    if isinstance(d, list):
        locs = []
        h = heap
        for item in d:
            l, h = _alloc_datum(h, item)
            locs.append(l)
        tail, h = h.alloc(UConc(NIL))
        for l in reversed(locs):
            tail, h = h.alloc(UPair(l, tail))
        return tail, h
    if isinstance(d, Symbol) and d.name == "void":
        return heap.alloc(UConc(VOID))
    return heap.alloc(UConc(d))

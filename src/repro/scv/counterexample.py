"""Counterexample construction for the untyped machine — §3.5 for §4.

At a blame state the heap records everything the path assumed about the
program's unknowns: tag narrowings, numeric refinements, materialised
shapes, and ``UCase`` memo tables for unknown functions.  A model of the
integer fragment (``scv.proof.translate_uheap``) pins the base values;
the rest is read off the heap structurally:

* opaque scalars take their model value (or a representative of their
  narrowed tag — ``0+1i`` for a provably-nonreal number, the paper's
  favourite witness);
* ``UCase`` tables become nested-``if`` lambdas over ``equal?`` tests;
* materialised pairs/boxes/structs are rebuilt with constructors;
* havoc wrapper closures are concretised by substituting their heap
  locations.

Validation re-runs the *surface* program under ``conc.interp`` with the
reconstructed bindings and demands blame at the same source label.  For
module programs the erring context is the synthesised demonic client;
``repro.synth`` reconstructs it from the same heap and model (the
``UCase`` argument-pattern tables and havoc closures at the client
location), and validation re-runs modules + synthesized client call,
so module findings are concretely confirmed too — no more
``validated=None`` for ordinary module counterexamples.  The closed
program text is kept on the counterexample (``client``/
``closed_program``) for the report and ``--emit-cex-client``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..conc.interp import (
    ContractBlame,
    Interp,
    InterpTimeout,
    PrimBlame,
    RuntimeFault,
    UserAbort,
)
from ..core.heap import PNot
from ..core.syntax import Loc
from ..lang.ast import (
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
    subexprs_u,
)
from ..lang.prims import base_primitives
from ..lang.sexp import Symbol, write_datum
from ..smt import get_model, mk_var
from .engine import CLIENT_LABEL
from .heap import (
    PEqDatum,
    TAG_BOOLEAN,
    TAG_INTEGER,
    TAG_NONREAL,
    TAG_NULL,
    TAG_PAIR,
    TAG_PROCEDURE,
    TAG_RATREAL,
    TAG_STRING,
    TAG_SYMBOL,
    TAG_VECTOR,
    UBoxS,
    UCase,
    UClos,
    UConc,
    UCtc,
    UGuard,
    UHeap,
    UOpq,
    UPair,
    UPrim,
    UStruct,
    UVectorS,
)
from .machine import Blame, SState, ULocE
from .proof import translate_uheap


class UReconstructionError(Exception):
    """The heap value cannot be concretised (cycle, or a behaviourful
    value with no surface counterpart)."""


# ---------------------------------------------------------------------------
# Canonical rendering — the cross-backend normal form
# ---------------------------------------------------------------------------
#
# The typed backend renders counterexamples through ``core.pretty.pp``
# and canonicalises error operations through
# ``core.counterexample.canonical_op`` (``div`` → ``quotient``).  The
# renderers below put this backend's counterexamples in the same normal
# form — scalars render bare (``0``, ``#t``, ``0+1i``), not as quoted
# data (``'0``), and blame is reduced to its operation name — so the
# report's agreement section can compare the two backends' findings
# field by field.


#: Names δ blames under — the only description heads that denote an
#: operation rather than the start of free-form prose.
_PRIM_OP_NAMES = frozenset(base_primitives())


def canonical_blame_op(blame: Blame) -> str:
    """The canonical operation behind a blame: primitive blame carries
    ``"<op>: <message>"`` descriptions and reduces to the (surface) op
    name — matching ``core.counterexample.canonical_op`` output for the
    same fault.  Contract blame (and any description whose head is not
    actually a primitive) has no single operation and keeps its full
    description."""
    head, sep, _ = blame.description.partition(":")
    if sep and head in _PRIM_OP_NAMES:
        return head
    return blame.description


def render_datum(datum: object) -> str:
    """A scalar datum in canonical surface form.  Quoted forms (symbols,
    lists) take their reader prefix; everything else — including string
    escaping and the paper's ``0+1i`` complex layout — is
    ``lang.sexp.write_datum``'s source rendering."""
    if isinstance(datum, Symbol):
        return f"'{datum.name}"
    if isinstance(datum, list):
        return "'" + write_datum(datum)
    return write_datum(datum)


def render_value(e: UExpr) -> str:
    """A reconstructed counterexample value in canonical surface form."""
    if isinstance(e, Quote):
        return render_datum(e.datum)
    if isinstance(e, UVar):
        return e.name
    if isinstance(e, ULam):
        return f"(λ ({' '.join(e.params)}) {render_value(e.body)})"
    if isinstance(e, UApp):
        parts = [render_value(e.fn), *(render_value(a) for a in e.args)]
        return "(" + " ".join(parts) + ")"
    if isinstance(e, UIf):
        return (
            f"(if {render_value(e.test)} {render_value(e.then)} "
            f"{render_value(e.orelse)})"
        )
    return repr(e)


def render_bindings(cex: "UCounterexample") -> dict[str, str]:
    """Counterexample bindings in the canonical normal form."""
    return {label: render_value(v) for label, v in cex.bindings.items()}


@dataclass
class UCounterexample:
    """Concrete bindings for every program unknown, plus the blame they
    provoke — and, for module programs, the synthesized demonic client
    that provokes it."""

    bindings: dict[str, UExpr]  # opaque label / import name -> surface expr
    blame: Blame
    validated: Optional[bool] = None  # None = surface re-run skipped
    client: Optional["SynthesizedClient"] = None  # module programs only

    def closed_program(self, program: Program) -> str:
        """The counterexample as one closed, runnable surface program."""
        from ..synth import closed_program_text

        return closed_program_text(program, self.bindings, self.client)

    def __repr__(self) -> str:
        rows = ", ".join(f"•^{k} = {v!r}" for k, v in self.bindings.items())
        return f"UCounterexample({rows}; {self.blame!r})"


def opaque_labels(program: Program) -> list[str]:
    """Every unknown the program binds: top-level/definition ``•``
    labels plus module opaque-import names."""
    labels: list[str] = []
    exprs: list[UExpr] = []
    if program.main is not None:
        exprs.append(program.main)
    for m in program.modules:
        exprs.extend(e for _, e in m.definitions)
        labels.extend(name for name, _ in m.opaques)
    for e in exprs:
        for sub in subexprs_u(e):
            if isinstance(sub, UOpaque):
                labels.append(sub.label)
    return labels


class UReconstructor:
    """Concretises heap locations under a first-order model."""

    def __init__(self, heap: UHeap, model) -> None:
        self.heap = heap
        self.model = model
        self._memo: dict[Loc, UExpr] = {}
        self._in_progress: set[Loc] = set()

    def loc_value(self, l: Loc) -> UExpr:
        target, _ = self.heap.deref(l)
        if target in self._memo:
            return self._memo[target]
        if target in self._in_progress:
            raise UReconstructionError(f"cyclic heap reference at {target.name}")
        self._in_progress.add(target)
        try:
            out = self._build(target)
        finally:
            self._in_progress.discard(target)
        self._memo[target] = out
        return out

    def _build(self, l: Loc) -> UExpr:
        s = self.heap.get(l)
        if isinstance(s, UConc):
            return Quote(s.value)
        if isinstance(s, UPair):
            return _capp("cons", self.loc_value(s.car), self.loc_value(s.cdr))
        if isinstance(s, UStruct):
            return _capp(s.type.name, *(self.loc_value(f) for f in s.fields))
        if isinstance(s, UBoxS):
            return _capp("box", self.loc_value(s.content))
        if isinstance(s, UVectorS):
            return _capp("vector", *(self.loc_value(f) for f in s.fields))
        if isinstance(s, UOpq):
            return self._build_opq(l, s)
        if isinstance(s, UCase):
            return self._build_case(s)
        if isinstance(s, UClos):
            if s.env.frame:  # pragma: no cover - roots never close over state
                raise UReconstructionError("closure over non-empty environment")
            return self._concretize(s.lam)
        if isinstance(s, (UGuard, UPrim, UCtc)):
            raise UReconstructionError(f"no surface form for {s!r}")
        raise UReconstructionError(f"cannot reconstruct {s!r}")

    def _build_opq(self, l: Loc, s: UOpq) -> UExpr:
        for p in s.preds:
            if isinstance(p, PEqDatum):
                return Quote(p.datum)
        if TAG_INTEGER in s.possible:
            return Quote(self.model[mk_var(l.name)])
        if TAG_BOOLEAN in s.possible:
            if PNot(PEqDatum(False)) in s.preds:
                return Quote(True)
            return Quote(False)
        if TAG_NULL in s.possible:
            return Quote([])
        if TAG_RATREAL in s.possible:
            return Quote(0.5)
        if TAG_NONREAL in s.possible:
            # The paper's 0+1i: passes number?, fails every comparison.
            return Quote(complex(0, 1))
        if TAG_STRING in s.possible:
            return Quote("")
        if TAG_SYMBOL in s.possible:
            return Quote(Symbol("sym"))
        if TAG_PROCEDURE in s.possible:
            return ULam((".z",), Quote(0))
        if TAG_PAIR in s.possible:
            return _capp("cons", Quote(0), Quote([]))
        if TAG_VECTOR in s.possible:
            return _capp("vector", Quote(0))
        raise UReconstructionError(f"no representative for {s!r}")

    def _build_case(self, s: UCase) -> UExpr:
        params = tuple(f".x{i}" for i in range(s.arity))
        entries: list[tuple[tuple[UExpr, ...], UExpr]] = []
        for key, out in s.mapping:
            try:
                keys = tuple(self.loc_value(k) for k in key)
                entries.append((keys, self.loc_value(out)))
            except UReconstructionError:
                continue  # unmodelable entry: subsumed by the default
        default: UExpr = entries[0][1] if entries else Quote(0)
        body = default
        for keys, out in reversed(entries):
            test: UExpr = Quote(True)
            for p, k in reversed(list(zip(params, keys))):
                test = UIf(_capp("equal?", UVar(p), k), test, Quote(False))
            body = UIf(test, out, body)
        return ULam(params, body)

    def _concretize(self, e: UExpr) -> UExpr:
        """Substitute heap locations inside a (havoc-synthesised)
        expression by their concrete values."""
        if isinstance(e, ULocE):
            return self.loc_value(e.loc)
        if isinstance(e, (Quote, UVar, UOpaque)):
            return e
        if isinstance(e, ULam):
            return ULam(e.params, self._concretize(e.body), e.name)
        if isinstance(e, UApp):
            return UApp(
                self._concretize(e.fn),
                tuple(self._concretize(a) for a in e.args),
                e.label,
            )
        if isinstance(e, UIf):
            return UIf(
                self._concretize(e.test),
                self._concretize(e.then),
                self._concretize(e.orelse),
            )
        if isinstance(e, UBegin):
            return UBegin(tuple(self._concretize(x) for x in e.exprs))
        if isinstance(e, ULetrec):
            return ULetrec(
                tuple((n, self._concretize(x)) for n, x in e.bindings),
                self._concretize(e.body),
            )
        if isinstance(e, USet):
            return USet(e.name, self._concretize(e.value))
        raise UReconstructionError(f"cannot concretise {e!r}")


def _capp(prim: str, *args: UExpr) -> UApp:
    return UApp(UVar(prim), tuple(args), label="cex")


def construct_u(
    program: Program,
    state: SState,
    *,
    validate: bool = True,
    fuel: int = 200_000,
    client_of: Optional[str] = None,
) -> Optional[UCounterexample]:
    """Build (and, for module-free programs, validate) a counterexample
    from a known-blame state.  Returns None when the heap's integer
    fragment has no model (a spurious path)."""
    blame = state.control
    assert isinstance(blame, Blame)
    model = get_model(translate_uheap(state.heap))
    if model is None:
        return None
    recon = UReconstructor(state.heap, model)
    bindings: dict[str, UExpr] = {}
    for label in opaque_labels(program):
        if label == CLIENT_LABEL:
            continue
        root = Loc(f"o:{label}")
        if root in state.heap:
            try:
                bindings[label] = recon.loc_value(root)
            except UReconstructionError:
                bindings[label] = Quote(0)
        else:
            bindings[label] = Quote(0)  # irrelevant to this error
    cex = UCounterexample(bindings, blame)
    if validate:
        if program.modules:
            # Imported lazily: repro.synth imports this module.
            from ..synth import check_client, synthesize_client

            cex.client = synthesize_client(
                program, state.heap, recon, client_of=client_of
            )
            if cex.client is not None:
                cex.validated = check_client(
                    cex.client, blame, bindings, fuel=fuel
                )
        else:
            cex.validated = check_u(program, cex, fuel=fuel)
    return cex


def check_u(program: Program, cex: UCounterexample, *, fuel: int = 200_000) -> bool:
    """Re-run the instantiated surface program concretely and confirm
    blame lands at the same source site."""
    interp = Interp(fuel=fuel)
    try:
        interp.run_program(program, opaque_exprs=cex.bindings)
    except PrimBlame as b:
        return b.label == cex.blame.label
    except UserAbort as b:
        return b.label == cex.blame.label
    except ContractBlame as b:
        return b.party == cex.blame.party or b.label == cex.blame.label
    except (RuntimeFault, InterpTimeout, RecursionError):
        return False
    return False

"""``python -m repro`` — forwards to the driver CLI."""

from .driver.__main__ import main

if __name__ == "__main__":
    raise SystemExit(main())

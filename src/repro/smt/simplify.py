"""Formula normalisation: simplification and negation normal form.

The CNF transform (``smt.cnf``) expects NNF input: all negations pushed to
atoms, no Implies/Iff.  Negated atoms over the integers are rewritten into
positive inequalities where possible (``not (a <= b)`` becomes ``b < a``),
so the only literal ever left carrying an explicit negation is a
disequality ``not (a = b)``, which the theory layer handles by splitting.
"""

from __future__ import annotations

from .terms import (
    And,
    BoolConst,
    Eq,
    Formula,
    Iff,
    Implies,
    Le,
    Lt,
    Not,
    Or,
    mk_and,
    mk_eq,
    mk_iff,
    mk_implies,
    mk_le,
    mk_lt,
    mk_not,
    mk_or,
)


def simplify(f: Formula) -> Formula:
    """Bottom-up constant folding through the builder functions."""
    if isinstance(f, BoolConst):
        return f
    if isinstance(f, Eq):
        return mk_eq(f.lhs, f.rhs)
    if isinstance(f, Le):
        return mk_le(f.lhs, f.rhs)
    if isinstance(f, Lt):
        return mk_lt(f.lhs, f.rhs)
    if isinstance(f, Not):
        return mk_not(simplify(f.arg))
    if isinstance(f, And):
        return mk_and(*(simplify(a) for a in f.args))
    if isinstance(f, Or):
        return mk_or(*(simplify(a) for a in f.args))
    if isinstance(f, Implies):
        return mk_implies(simplify(f.lhs), simplify(f.rhs))
    if isinstance(f, Iff):
        return mk_iff(simplify(f.lhs), simplify(f.rhs))
    raise TypeError(f"cannot simplify {f!r}")


def to_nnf(f: Formula, *, negate: bool = False) -> Formula:
    """Negation normal form.

    With ``negate=True`` computes the NNF of ``not f``.  Inequality atoms
    absorb negation (over the integers ``not (a <= b)`` is ``b+1 <= a``,
    expressed here as ``b < a``); equalities keep a single ``Not`` wrapper.
    """
    if isinstance(f, BoolConst):
        return BoolConst(f.value != negate)
    if isinstance(f, Le):
        return mk_lt(f.rhs, f.lhs) if negate else f
    if isinstance(f, Lt):
        return mk_le(f.rhs, f.lhs) if negate else f
    if isinstance(f, Eq):
        return mk_not(f) if negate else f
    if isinstance(f, Not):
        return to_nnf(f.arg, negate=not negate)
    if isinstance(f, And):
        parts = tuple(to_nnf(a, negate=negate) for a in f.args)
        return mk_or(*parts) if negate else mk_and(*parts)
    if isinstance(f, Or):
        parts = tuple(to_nnf(a, negate=negate) for a in f.args)
        return mk_and(*parts) if negate else mk_or(*parts)
    if isinstance(f, Implies):
        if negate:
            return mk_and(to_nnf(f.lhs), to_nnf(f.rhs, negate=True))
        return mk_or(to_nnf(f.lhs, negate=True), to_nnf(f.rhs))
    if isinstance(f, Iff):
        # (a iff b)      = (a and b) or (~a and ~b)
        # not (a iff b)  = (a and ~b) or (~a and b)
        a, b = f.lhs, f.rhs
        if negate:
            return mk_or(
                mk_and(to_nnf(a), to_nnf(b, negate=True)),
                mk_and(to_nnf(a, negate=True), to_nnf(b)),
            )
        return mk_or(
            mk_and(to_nnf(a), to_nnf(b)),
            mk_and(to_nnf(a, negate=True), to_nnf(b, negate=True)),
        )
    raise TypeError(f"cannot convert {f!r} to NNF")

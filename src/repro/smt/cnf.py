"""Tseitin/Plaisted–Greenbaum CNF transform.

Input must be in NNF (see ``smt.simplify.to_nnf``).  Theory atoms are
mapped to positive SAT variables through an :class:`AtomMap`; boolean
structure gets fresh definition variables.  Because the input is NNF we
use the polarity-optimised Plaisted–Greenbaum encoding (one implication
per definition), which preserves satisfiability and the assignments of
the theory atoms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .terms import (
    And,
    BoolConst,
    Eq,
    Formula,
    Le,
    Lt,
    Not,
    Or,
)

# A SAT literal is a nonzero int: +v for the variable, -v for its negation.
Lit = int
Clause = list[Lit]


@dataclass
class AtomMap:
    """Bidirectional map between theory atoms and SAT variables.

    Only *positive* atoms (Eq/Le/Lt) are mapped; a negated atom is the
    negative literal of its positive counterpart.
    """

    atom_to_var: dict[Formula, int] = field(default_factory=dict)
    var_to_atom: dict[int, Formula] = field(default_factory=dict)
    _next_var: int = 1

    def fresh_var(self) -> int:
        """Allocate a fresh SAT variable with no theory meaning."""
        v = self._next_var
        self._next_var += 1
        return v

    def var_for(self, atom: Formula) -> int:
        """The SAT variable of a theory atom, allocating if new."""
        v = self.atom_to_var.get(atom)
        if v is None:
            v = self.fresh_var()
            self.atom_to_var[atom] = v
            self.var_to_atom[v] = atom
        return v

    @property
    def num_vars(self) -> int:
        return self._next_var - 1

    def theory_lits(self, assignment: dict[int, bool]) -> list[tuple[Formula, bool]]:
        """Project a SAT assignment onto theory atoms as (atom, polarity)."""
        out = []
        for var, atom in self.var_to_atom.items():
            if var in assignment:
                out.append((atom, assignment[var]))
        return out


def literal_of(f: Formula, atoms: AtomMap) -> Lit | None:
    """If ``f`` is a literal (atom or negated atom), return its SAT literal."""
    if isinstance(f, (Eq, Le, Lt)):
        return atoms.var_for(f)
    if isinstance(f, Not) and isinstance(f.arg, (Eq, Le, Lt)):
        return -atoms.var_for(f.arg)
    return None


def to_cnf(f: Formula, atoms: AtomMap) -> list[Clause]:
    """Translate an NNF formula to CNF clauses over ``atoms``.

    Returns the clause list; the formula is asserted (its root holds).
    ``BoolConst`` leaves are handled: a FALSE root yields the empty clause.
    """
    clauses: list[Clause] = []

    def encode(g: Formula) -> Lit | None:
        """Return a literal equisatisfiable with ``g`` (PG encoding), or
        None for TRUE (no constraint) — FALSE returns a var forced false."""
        lit = literal_of(g, atoms)
        if lit is not None:
            return lit
        if isinstance(g, BoolConst):
            if g.value:
                return None
            v = atoms.fresh_var()
            clauses.append([-v])
            return v
        if isinstance(g, And):
            sub = [encode(a) for a in g.args]
            sub = [s for s in sub if s is not None]
            if not sub:
                return None
            p = atoms.fresh_var()
            for s in sub:
                clauses.append([-p, s])
            return p
        if isinstance(g, Or):
            sub = [encode(a) for a in g.args]
            if any(s is None for s in sub):  # a TRUE disjunct
                return None
            p = atoms.fresh_var()
            clauses.append([-p] + [s for s in sub if s is not None])
            return p
        raise TypeError(f"formula not in NNF for CNF transform: {g!r}")

    # Assert the root, flattening a top-level conjunction into unit roots
    # and a top-level disjunction into a single clause.
    def assert_top(g: Formula) -> None:
        if isinstance(g, And):
            for a in g.args:
                assert_top(a)
            return
        if isinstance(g, BoolConst):
            if not g.value:
                clauses.append([])
            return
        if isinstance(g, Or):
            lits = []
            for a in g.args:
                lit = literal_of(a, atoms)
                if lit is None:
                    lit = encode(a)
                    if lit is None:  # TRUE disjunct
                        return
                lits.append(lit)
            clauses.append(lits)
            return
        lit = encode(g)
        if lit is not None:
            clauses.append([lit])

    assert_top(f)
    return clauses

"""Canonicalizing LRU cache over solver results.

Symbolic execution re-asks the solver the same question constantly: the
proof relation translates a whole heap per query, sibling branches share
most of their heaps, and location *names* — the only thing that varies
between isomorphic heaps — are an artefact of the global allocation
counter.  This module makes those repeats free:

* :func:`canonicalize` alpha-renames a formula's variables and
  uninterpreted function symbols to their first-occurrence index in a
  deterministic structural traversal.  Two queries differing only in
  location naming collapse to one key — the query-level mirror of the
  state fingerprints in ``search.fingerprint``.
* :class:`SolverCache` maps canonical keys to ``(Result, model)``
  pairs, LRU-bounded.  Models are stored in canonical names and
  rehydrated through the inverse renaming of whichever query hits, so a
  cached model is exactly as usable as a fresh one.

Satisfiability is a pure function of the formula, so the cache is safe
to share across programs in a long-lived batch worker; hit/miss
counters can be snapshotted per program run (``snapshot``/``hits_since``)
for reporting.  The cache deliberately solves the *canonical* formula
rather than the original, so model choice is identical however a query
is named — cached and uncached runs cannot drift apart.

Model determinism is a correctness property downstream, not just a
reporting nicety: ``get_model`` feeds counterexample construction and
the client synthesis of :mod:`repro.synth`, so a cache that returned
differently-named (or differently-chosen) models on hits would make
reported witnesses — and the emitted client programs — depend on what
else ran in the worker process.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .errors import Result, SolverError
from .terms import (
    Add,
    App,
    BoolConst,
    And,
    Div,
    Eq,
    Formula,
    FuncDecl,
    Iff,
    Implies,
    IntConst,
    Le,
    Lt,
    Mod,
    Mul,
    Not,
    Or,
    Term,
    Var,
)


class _Canonicalizer:
    """First-occurrence alpha-renaming of variables and function symbols."""

    def __init__(self) -> None:
        self.vars: list[Var] = []  # canonical index -> original
        self.funcs: list[FuncDecl] = []
        self._vmap: dict[Var, Var] = {}
        self._fmap: dict[FuncDecl, FuncDecl] = {}

    def var(self, v: Var) -> Var:
        c = self._vmap.get(v)
        if c is None:
            c = Var(f"${len(self.vars)}")
            self._vmap[v] = c
            self.vars.append(v)
        return c

    def func(self, f: FuncDecl) -> FuncDecl:
        c = self._fmap.get(f)
        if c is None:
            c = FuncDecl(f"$f{len(self.funcs)}", f.arity)
            self._fmap[f] = c
            self.funcs.append(f)
        return c

    def term(self, t: Term) -> Term:
        if isinstance(t, Var):
            return self.var(t)
        if isinstance(t, IntConst):
            return t
        if isinstance(t, Add):
            return Add(tuple(self.term(a) for a in t.args))
        if isinstance(t, Mul):
            return Mul(tuple(self.term(a) for a in t.args))
        if isinstance(t, Div):
            return Div(self.term(t.num), self.term(t.den))
        if isinstance(t, Mod):
            return Mod(self.term(t.num), self.term(t.den))
        if isinstance(t, App):
            return App(self.func(t.func), tuple(self.term(a) for a in t.args))
        raise SolverError(f"cannot canonicalize term {t!r}")

    def formula(self, f: Formula) -> Formula:
        if isinstance(f, BoolConst):
            return f
        if isinstance(f, Eq):
            return Eq(self.term(f.lhs), self.term(f.rhs))
        if isinstance(f, Le):
            return Le(self.term(f.lhs), self.term(f.rhs))
        if isinstance(f, Lt):
            return Lt(self.term(f.lhs), self.term(f.rhs))
        if isinstance(f, Not):
            return Not(self.formula(f.arg))
        if isinstance(f, And):
            return And(tuple(self.formula(a) for a in f.args))
        if isinstance(f, Or):
            return Or(tuple(self.formula(a) for a in f.args))
        if isinstance(f, Implies):
            return Implies(self.formula(f.lhs), self.formula(f.rhs))
        if isinstance(f, Iff):
            return Iff(self.formula(f.lhs), self.formula(f.rhs))
        raise SolverError(f"cannot canonicalize formula {f!r}")


def canonicalize(phi: Formula) -> tuple[Formula, list[Var], list[FuncDecl]]:
    """Rename ``phi`` canonically.  Returns the renamed formula plus the
    original variables/function symbols indexed by canonical id (the
    inverse renaming, used to rehydrate cached models)."""
    c = _Canonicalizer()
    renamed = c.formula(phi)
    return renamed, c.vars, c.funcs


#: Stored model form: canonical-id -> value, canonical func id -> table.
_CachedModel = tuple[
    tuple[tuple[int, int], ...],
    tuple[tuple[int, tuple[tuple[tuple[int, ...], int], ...]], ...],
]


class SolverCache:
    """LRU table: canonical formula -> (Result, canonical model or None,
    model_known).

    Two populations share the table.  One-shot queries store *full*
    entries: the canonical formula was solved and, when SAT, its model
    kept (``model_known=True``).  The incremental path (``smt.
    incremental``) answers checks on a per-path solver context whose
    model choice depends on context history, so it stores *result-only*
    entries (``model_known=False``): the verdict is reusable, the model
    deliberately is not.  A later ``get_model`` on such an entry misses
    (``need_model=True``), solves the canonical formula and upgrades the
    entry — so reported models remain a deterministic function of the
    canonical formula regardless of which path asked first.  This is how
    the canonicalizing cache and incremental contexts compose instead of
    fighting.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        #: Optional persistent tier (``repro.store.solver.SolverStore``
        #: or anything with its ``lookup``/``store`` methods).  Probed on
        #: in-memory misses and notified of fresh solves; attached by the
        #: driver's store layer, never constructed here — the smt package
        #: stays storage-agnostic.
        self.backing = None
        self._table: OrderedDict[
            Formula, tuple[Result, Optional[_CachedModel], bool]
        ]
        self._table = OrderedDict()

    # -- bookkeeping -----------------------------------------------------

    def snapshot(self) -> tuple[int, int]:
        return self.hits, self.misses

    def hits_since(self, snap: tuple[int, int]) -> int:
        return self.hits - snap[0]

    def clear(self) -> None:
        """Drop the table AND zero the hit/miss counters, atomically from
        the caller's point of view: a batch worker that clears between
        programs cannot bleed one row's counter into the next, whatever
        snapshots are taken relative to the clear."""
        self._table.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._table)

    # -- access ----------------------------------------------------------

    def get(
        self, key: Formula, *, need_model: bool = False
    ) -> Optional[tuple[Result, Optional[_CachedModel], bool]]:
        """Look up an entry; with ``need_model`` a result-only SAT entry
        counts as a miss (the caller will solve and upgrade it).  On an
        in-memory miss the persistent backing (when attached) is probed
        and a hit promoted into the table — entries are pure functions
        of the canonical formula, so a disk hit is exactly as good as a
        fresh solve."""
        entry = self._table.get(key)
        if entry is None and self.backing is not None:
            entry = self.backing.lookup(key)
            if entry is not None:
                self._table[key] = entry
                while len(self._table) > self.maxsize:
                    self._table.popitem(last=False)
        if entry is None or (
            need_model and entry[0] is Result.SAT and not entry[2]
        ):
            self.misses += 1
            return None
        self.hits += 1
        if key in self._table:
            self._table.move_to_end(key)
        return entry

    def put(
        self,
        key: Formula,
        result: Result,
        model: Optional[_CachedModel] = None,
        *,
        model_known: bool = True,
    ) -> None:
        old = self._table.get(key)
        if old is not None:
            if result is Result.UNKNOWN and old[0] is not Result.UNKNOWN:
                # Never downgrade a decisive verdict to UNKNOWN (a cold
                # re-solve for a model can give up where the warm context
                # that stored the entry did not); cached verdicts must
                # not flip mid-run.
                return
            if old[2] and not model_known:
                # Never downgrade a full entry to result-only.
                model, model_known = old[1], True
        self._table[key] = (result, model, model_known)
        self._table.move_to_end(key)
        while len(self._table) > self.maxsize:
            self._table.popitem(last=False)
        if self.backing is not None and result is not Result.UNKNOWN:
            # Decisive verdicts persist; UNKNOWN is budget-relative and
            # another run (or machine) may well do better.
            self.backing.store(key, result, model, model_known)


#: The process-wide cache used by ``solver.check_sat``/``get_model``.
GLOBAL_CACHE = SolverCache()

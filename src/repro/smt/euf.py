"""Congruence closure for ground equalities over uninterpreted functions.

Used as a fast path for equality reasoning and by tests as an oracle for
the Ackermannisation performed in ``smt.solver``.  The implementation is
the classic union-find + congruence-table algorithm (Nelson–Oppen style):
terms are interned into nodes; merging two classes re-checks every parent
application whose argument classes changed.
"""

from __future__ import annotations

from typing import Optional

from .terms import App, IntConst, Term


class CongruenceClosure:
    """Incremental congruence closure over ground terms.

    Supports :meth:`merge` for asserting equalities, :meth:`are_equal`
    for queries, and :meth:`check_disequalities` to detect a conflict with
    asserted disequalities.  Terms other than Var/IntConst/App are treated
    as opaque constants (interned by structural equality).
    """

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}
        self._rank: dict[Term, int] = {}
        # Parents in the term-DAG sense: applications that mention a term.
        self._use: dict[Term, list[App]] = {}
        # Signature table: (func, arg-classes) -> representative app.
        self._sig: dict[tuple, App] = {}
        self._diseqs: list[tuple[Term, Term]] = []

    # -- union-find ----------------------------------------------------

    def _intern(self, t: Term) -> Term:
        if t in self._parent:
            return t
        self._parent[t] = t
        self._rank[t] = 0
        self._use[t] = []
        if isinstance(t, App):
            for a in t.args:
                self._intern(a)
                self._use[self.find(a)].append(t)
            self._update_sig(t)
        return t

    def find(self, t: Term) -> Term:
        self._intern(t)
        root = t
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[t] != root:  # path compression
            self._parent[t], t = root, self._parent[t]
        return root

    def _update_sig(self, app: App) -> Optional[tuple[Term, Term]]:
        """(Re)insert an application into the signature table; returns a
        pair of terms to merge if a congruent application exists."""
        sig = (app.func, tuple(self.find(a) for a in app.args))
        other = self._sig.get(sig)
        if other is not None and self.find(other) != self.find(app):
            return (app, other)
        self._sig[sig] = app
        return None

    # -- public API ----------------------------------------------------

    def merge(self, a: Term, b: Term) -> None:
        """Assert ``a = b`` and propagate congruences."""
        pending = [(a, b)]
        while pending:
            x, y = pending.pop()
            rx, ry = self.find(x), self.find(y)
            if rx == ry:
                continue
            # Two distinct integer constants can never be equal; record the
            # conflict by merging anyway and letting is_consistent notice.
            if self._rank[rx] < self._rank[ry]:
                rx, ry = ry, rx
            self._parent[ry] = rx
            if self._rank[rx] == self._rank[ry]:
                self._rank[rx] += 1
            self._use.setdefault(rx, []).extend(self._use.get(ry, []))
            for app in list(self._use.get(ry, [])):
                hit = self._update_sig(app)
                if hit is not None:
                    pending.append(hit)

    def are_equal(self, a: Term, b: Term) -> bool:
        return self.find(a) == self.find(b)

    def assert_distinct(self, a: Term, b: Term) -> None:
        self._intern(a)
        self._intern(b)
        self._diseqs.append((a, b))

    def is_consistent(self) -> bool:
        """False if two distinct integer literals were merged or an
        asserted disequality collapsed."""
        reps: dict[Term, int] = {}
        for t in self._parent:
            if isinstance(t, IntConst):
                r = self.find(t)
                if r in reps and reps[r] != t.value:
                    return False
                reps[r] = t.value
        for a, b in self._diseqs:
            if self.are_equal(a, b):
                return False
        return True

    def classes(self) -> dict[Term, list[Term]]:
        """Representative -> members, for inspection and model building."""
        out: dict[Term, list[Term]] = {}
        for t in self._parent:
            out.setdefault(self.find(t), []).append(t)
        return out

"""The solver facade: a lazy DPLL(T) loop over the CDCL core and the LIA
conjunction solver.

This module is the reproduction's stand-in for Z3 (see DESIGN.md).  The
public surface mimics the slice of the z3py API the paper's tool needs:

* :class:`Solver` with ``add``, ``push``/``pop``, ``check`` and ``model``
  — *really* incremental since schema v5: scopes are selector-guarded
  assertion levels over one persistent CDCL core, ``check(*extra)``
  treats the extras as transient assumptions, learned lemmas survive
  ``pop`` (see the class docstring), and ``SOLVE_STATS`` meters the
  reuse economy;
* :class:`Model` mapping variables to integers and uninterpreted functions
  to finite tables;
* module-level helpers :func:`check_sat`, :func:`is_valid`.

Preprocessing eliminates the two term forms the LIA core does not handle
natively:

* ``div``/``mod`` terms are axiomatised with fresh quotient/remainder
  variables (Euclidean semantics; a zero divisor makes the axiom
  unsatisfiable, which matches the tool's usage where every division is
  guarded by a nonzero refinement);
* uninterpreted applications are Ackermannised: each syntactically
  distinct application becomes a fresh variable, with functional
  consistency clauses between applications of the same symbol.  This is
  the solver-side mirror of the paper's ``case``-mapping translation
  (Fig. 4), where "equal inputs imply equal outputs" is exactly the
  instantiated consistency axiom.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .cache import GLOBAL_CACHE, canonicalize
from .cnf import AtomMap, to_cnf
from .errors import Result, SolverError
from .lia import EQ, LE, NE, Constraint, LiaSolver, normalize
from .linearize import linearize
from .sat import SatSolver
from .simplify import simplify, to_nnf
from .terms import (
    Add,
    App,
    BoolConst,
    Div,
    Eq,
    FALSE,
    Formula,
    FuncDecl,
    IntConst,
    Le,
    Lt,
    Mod,
    Mul,
    Not,
    Term,
    TRUE,
    Var,
    eval_formula,
    free_vars,
    mk_and,
    mk_eq,
    mk_ge,
    mk_implies,
    mk_le,
    mk_mul,
    mk_not,
    mk_or,
    mk_sub,
)

__all__ = [
    "Solver",
    "Model",
    "SolveStats",
    "SOLVE_STATS",
    "check_sat",
    "is_valid",
    "get_model",
    "solver_cache",
]

#: The process-wide canonicalizing result cache behind the one-shot
#: helpers below.  ``solver_cache.enabled = False`` restores uncached
#: behaviour; ``snapshot``/``hits_since`` meter a region of work.
solver_cache = GLOBAL_CACHE


@dataclass
class Model:
    """A first-order model: integers for variables, finite tables for
    uninterpreted functions (default output 0 off-table)."""

    env: dict[Var, int] = field(default_factory=dict)
    funcs: dict[FuncDecl, dict[tuple[int, ...], int]] = field(default_factory=dict)

    def __getitem__(self, v: Var | str) -> int:
        if isinstance(v, str):
            v = Var(v)
        return self.env.get(v, 0)

    def __contains__(self, v: Var | str) -> bool:
        if isinstance(v, str):
            v = Var(v)
        return v in self.env

    def eval_term(self, t: Term) -> int:
        from .terms import eval_term

        return eval_term(t, self.env, self.funcs)

    def eval(self, f: Formula) -> bool:
        return eval_formula(f, self.env, self.funcs)

    def func_table(self, f: FuncDecl) -> dict[tuple[int, ...], int]:
        return dict(self.funcs.get(f, {}))

    def __repr__(self) -> str:
        parts = [f"{v.name} = {val}" for v, val in sorted(
            self.env.items(), key=lambda kv: kv[0].name)]
        for f, table in self.funcs.items():
            for args, out in sorted(table.items()):
                parts.append(f"{f.name}{args} = {out}")
        return "[" + ", ".join(parts) + "]"


class _Preprocessed:
    """Persistent term-level preprocessing state: rewrites formulas free
    of Div/Mod/App plus bookkeeping to reconstruct models.

    Incremental use adds a *journal*: every cache entry (fresh
    quotient/remainder pair, Ackermann application variable) records its
    creation, and ``undo_to`` retires entries created after a mark.  This
    is the scope discipline that keeps popped auxiliary variables from
    leaking into later scopes: a Div/App term re-encountered after its
    scope was popped gets *fresh* auxiliaries with freshly re-emitted
    axioms/consistency clauses, instead of silently reusing a variable
    whose defining clauses are retired.
    """

    def __init__(self) -> None:
        self.defs: list[Formula] = []
        self.div_cache: dict[Term, Var] = {}
        self.app_cache: dict[App, Var] = {}
        self.apps_by_func: dict[FuncDecl, list[tuple[App, Var]]] = {}
        self.journal: list[tuple] = []  # ("div", div_key, mod_key) | ("app", key)
        self._fresh = itertools.count()

    def fresh(self, prefix: str) -> Var:
        return Var(f".{prefix}{next(self._fresh)}")

    # -- scope discipline --------------------------------------------------

    def mark(self) -> int:
        return len(self.journal)

    def undo_to(self, mark: int) -> None:
        """Retire every cache entry created after ``mark`` (LIFO)."""
        while len(self.journal) > mark:
            entry = self.journal.pop()
            if entry[0] == "div":
                _, div_key, mod_key = entry
                self.div_cache.pop(div_key, None)
                self.div_cache.pop(mod_key, None)
            else:
                key = entry[1]
                self.app_cache.pop(key, None)
                apps = self.apps_by_func.get(key.func)
                if apps:
                    apps.pop()  # chronological list: the retired entry is last
                    if not apps:
                        del self.apps_by_func[key.func]

    # -- term rewriting --------------------------------------------------

    def rewrite_term(self, t: Term) -> Term:
        if isinstance(t, (Var, IntConst)):
            return t
        if isinstance(t, Add):
            return Add(tuple(self.rewrite_term(a) for a in t.args))
        if isinstance(t, Mul):
            return Mul(tuple(self.rewrite_term(a) for a in t.args))
        if isinstance(t, Div):
            return self._rewrite_divmod(t, want_mod=False)
        if isinstance(t, Mod):
            return self._rewrite_divmod(t, want_mod=True)
        if isinstance(t, App):
            return self._rewrite_app(t)
        raise SolverError(f"unsupported term {t!r}")

    def _rewrite_divmod(self, t: Div | Mod, *, want_mod: bool) -> Term:
        key_div = Div(t.num, t.den)
        if key_div not in self.div_cache:
            num = self.rewrite_term(t.num)
            den = self.rewrite_term(t.den)
            q = self.fresh("q")
            r = self.fresh("r")
            key_mod = Mod(t.num, t.den)
            self.div_cache[key_div] = q
            self.div_cache[key_mod] = r
            self.journal.append(("div", key_div, key_mod))
            # num = den*q + r, 0 <= r < |den|  (Euclidean).  den = 0 makes
            # both guarded disjuncts false, i.e. the axiom is unsat.
            self.defs.append(mk_eq(num, Add((mk_mul(den, q), r))))
            self.defs.append(mk_ge(r, 0))
            self.defs.append(
                mk_or(
                    mk_and(mk_ge(den, 1), mk_le(r, mk_sub(den, 1))),
                    mk_and(
                        mk_le(den, -1),
                        mk_le(r, mk_sub(mk_mul(-1, den), 1)),
                    ),
                )
            )
        key = Mod(t.num, t.den) if want_mod else key_div
        return self.div_cache[key]

    def _rewrite_app(self, t: App) -> Term:
        if t in self.app_cache:
            return self.app_cache[t]
        args = tuple(self.rewrite_term(a) for a in t.args)
        v = self.fresh(f"f.{t.func.name}.")
        self.app_cache[t] = v
        self.journal.append(("app", t))
        rewritten = App(t.func, args)
        # Functional consistency with every previous application of func.
        for prev_app, prev_v in self.apps_by_func.get(t.func, []):
            agree = mk_and(
                *(
                    mk_eq(a, b)
                    for a, b in zip(rewritten.args, prev_app.args)
                )
            )
            self.defs.append(mk_implies(agree, mk_eq(v, prev_v)))
        self.apps_by_func.setdefault(t.func, []).append((rewritten, v))
        return v

    # -- formula rewriting ------------------------------------------------

    def rewrite(self, f: Formula) -> Formula:
        if isinstance(f, BoolConst):
            return f
        if isinstance(f, Eq):
            return Eq(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Le):
            return Le(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Lt):
            return Lt(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Not):
            return Not(self.rewrite(f.arg))
        from .terms import And, Iff, Implies, Or

        if isinstance(f, And):
            return And(tuple(self.rewrite(a) for a in f.args))
        if isinstance(f, Or):
            return Or(tuple(self.rewrite(a) for a in f.args))
        if isinstance(f, Implies):
            return Implies(self.rewrite(f.lhs), self.rewrite(f.rhs))
        if isinstance(f, Iff):
            return Iff(self.rewrite(f.lhs), self.rewrite(f.rhs))
        raise SolverError(f"unsupported formula {f!r}")


def _atom_constraints(atom: Formula, positive: bool) -> Constraint:
    """Translate a theory atom (with polarity) to a LIA constraint."""
    if isinstance(atom, Eq):
        diff = linearize(atom.lhs).sub(linearize(atom.rhs))
        return normalize(diff, EQ if positive else NE)
    if isinstance(atom, Le):
        if positive:
            diff = linearize(atom.lhs).sub(linearize(atom.rhs))
            return normalize(diff, LE)
        diff = linearize(atom.rhs).sub(linearize(atom.lhs))
        return normalize(diff, LE, strict=True)
    if isinstance(atom, Lt):
        if positive:
            diff = linearize(atom.lhs).sub(linearize(atom.rhs))
            return normalize(diff, LE, strict=True)
        diff = linearize(atom.rhs).sub(linearize(atom.lhs))
        return normalize(diff, LE)
    raise SolverError(f"not a theory atom: {atom!r}")


@dataclass
class SolveStats:
    """Process-wide incremental-solving economy counters.

    ``fresh_solves`` counts the *first* check of each :class:`Solver`
    instance — a from-scratch context build (one-shot cached queries,
    path-context rebuilds).  Every later check on the same instance is an
    ``incremental_queries`` tick: it reuses the asserted scopes, the
    preprocessor caches, the atom map and every retained lemma.
    ``clauses_reused`` sums, over incremental checks, the lemma and
    CDCL-learned clauses already present when the check started.  Like
    the solver cache, the counters are monotone; ``begin_window`` /
    ``window`` meter one verification (verifications never interleave
    within a worker process).
    """

    fresh_solves: int = 0
    incremental_queries: int = 0
    clauses_reused: int = 0
    scope_pushes: int = 0
    scope_pops: int = 0
    context_rebuilds: int = 0  # path contexts discarded and rebuilt
    path_switches: int = 0  # search-kernel notifications (see search.kernel)
    window_max_depth: int = 0  # deepest scope stack since begin_window

    def begin_window(self) -> tuple[int, int, int]:
        self.window_max_depth = 0
        return (self.fresh_solves, self.incremental_queries, self.clauses_reused)

    def window(self, snap: tuple[int, int, int]) -> dict:
        return {
            "solver_fresh_solves": self.fresh_solves - snap[0],
            "solver_incremental": self.incremental_queries - snap[1],
            "solver_clauses_reused": self.clauses_reused - snap[2],
            "solver_scope_depth": self.window_max_depth,
        }


#: The process-wide incremental-solving counters (reported per bench row).
SOLVE_STATS = SolveStats()


@dataclass
class _Scope:
    """One assertion level: its activation selector (None for the base
    level), the formulas asserted into it, and what they mention."""

    selector: Optional[int]
    pre_mark: int = 0
    formulas: list[Formula] = field(default_factory=list)
    free_vars: set[Var] = field(default_factory=set)
    theory_vars: set[int] = field(default_factory=set)


class Solver:
    """Incremental first-order solver with a z3py-like surface.

    Example::

        s = Solver()
        x, y = mk_var("x"), mk_var("y")
        s.add(mk_eq(mk_add(x, y), 10), mk_lt(x, y))
        assert s.check() is Result.SAT
        m = s.model()
        assert m[x] + m[y] == 10 and m[x] < m[y]

    Incrementality is real, not replay: the CDCL core, the atom map and
    the preprocessing caches persist across ``check`` calls.  Each
    ``push`` opens a scope guarded by a fresh *selector* literal; the
    scope's clauses carry ``¬selector`` and a check assumes every live
    selector (plus a per-check selector for ``extra`` formulas, which is
    how the paired ``φ ⊢ ψ`` / ``φ ⊢ ¬ψ`` proof queries share one
    context).  ``pop`` retires the selector with a permanent unit clause
    instead of deleting clauses, so CDCL lemmas over surviving atoms are
    kept — a learned clause that depended on the popped scope contains
    its negated selector and is satisfied, hence harmless.  Theory
    lemmas (LIA unsat cores) are unconditionally valid and persist
    unguarded.  Preprocessing state is journaled per scope (see
    :class:`_Preprocessed`): popped quotient/remainder and Ackermann
    auxiliaries are retired so they cannot leak constraints into later
    scopes.
    """

    def __init__(
        self,
        *,
        max_theory_rounds: int = 4000,
        lia: Optional[LiaSolver] = None,
    ) -> None:
        self._scopes: list[_Scope] = [_Scope(selector=None)]
        self._model: Optional[Model] = None
        self._max_rounds = max_theory_rounds
        self._lia = lia or LiaSolver()
        self._atoms = AtomMap()
        self._sat = SatSolver()
        self._pre = _Preprocessed()
        self._defs_done = 0  # prefix of _pre.defs already asserted
        self._constraint_memo: dict[tuple[Formula, bool], Constraint] = {}
        self._lemmas = 0  # permanent theory lemmas added so far
        self._checks = 0
        #: Retired selectors (pops + per-check assumption selectors): the
        #: dead weight a long-lived context accumulates; path contexts
        #: rebuild when it crosses their threshold.
        self.retired = 0

    # -- assertion management ----------------------------------------------

    def add(self, *formulas: Formula) -> None:
        self._model = None
        scope = self._scopes[-1]
        self._sat.reset_trail()
        for f in formulas:
            scope.formulas.append(f)
            self._assert_formula(f, scope)

    def push(self) -> None:
        sel = self._atoms.fresh_var()
        self._sat.ensure_vars(sel)
        self._scopes.append(_Scope(selector=sel, pre_mark=self._pre.mark()))
        SOLVE_STATS.scope_pushes += 1
        depth = len(self._scopes) - 1
        if depth > SOLVE_STATS.window_max_depth:
            SOLVE_STATS.window_max_depth = depth

    def pop(self) -> None:
        if len(self._scopes) == 1:
            raise SolverError("pop without matching push")
        scope = self._scopes.pop()
        self._model = None
        self._sat.reset_trail()
        self._sat.add_clause([-scope.selector])  # retire the scope for good
        self._pre.undo_to(scope.pre_mark)
        self.retired += 1
        SOLVE_STATS.scope_pops += 1

    def assertions(self) -> list[Formula]:
        return [f for scope in self._scopes for f in scope.formulas]

    def scope_depth(self) -> int:
        return len(self._scopes) - 1

    # -- assertion translation ---------------------------------------------

    def _assert_formula(self, f: Formula, scope: _Scope) -> None:
        """Simplify, preprocess, CNF and load one formula into the CDCL
        core, guarded by the scope's selector."""
        g = simplify(f)
        if g == TRUE:
            return
        g = self._pre.rewrite(g)
        new_defs = self._pre.defs[self._defs_done:]
        self._defs_done = len(self._pre.defs)
        for h in (g, *new_defs):
            h = simplify(h)
            if h == TRUE:
                continue
            nnf = to_nnf(h)
            scope.free_vars |= free_vars(nnf)
            clauses = to_cnf(nnf, self._atoms)
            self._collect_theory_vars(nnf, scope.theory_vars)
            self._sat.ensure_vars(self._atoms.num_vars)
            for cl in clauses:
                if scope.selector is not None:
                    cl = cl + [-scope.selector]
                self._sat.add_clause(cl)

    def _collect_theory_vars(self, nnf: Formula, out: set[int]) -> None:
        if isinstance(nnf, (Eq, Le, Lt)):
            out.add(self._atoms.var_for(nnf))
        elif isinstance(nnf, Not):
            self._collect_theory_vars(nnf.arg, out)
        else:
            from .terms import And, Or

            if isinstance(nnf, (And, Or)):
                for a in nnf.args:
                    self._collect_theory_vars(a, out)

    def _constraint(self, atom: Formula, positive: bool) -> Constraint:
        """Atom-to-LIA translation, memoized per solver: across checks
        only the *delta* — atoms never seen before — is re-normalized."""
        key = (atom, positive)
        c = self._constraint_memo.get(key)
        if c is None:
            c = _atom_constraints(atom, positive)
            self._constraint_memo[key] = c
        return c

    # -- solving -----------------------------------------------------------

    def check(self, *extra: Formula) -> Result:
        """Decide the conjunction of all assertions (plus ``extra``).

        ``extra`` formulas are transient assumptions: they are asserted
        under a per-check selector that is retired afterwards, so the
        persistent context is untouched and a paired follow-up check
        (e.g. with the negated formula) reuses everything."""
        self._model = None
        if self._checks == 0:
            SOLVE_STATS.fresh_solves += 1
        else:
            SOLVE_STATS.incremental_queries += 1
            SOLVE_STATS.clauses_reused += self._lemmas + self._sat.learned_count
            # Warm check: keep the clauses, drop the heuristic state (see
            # SatSolver.reset_heuristics for why).
            self._sat.reset_heuristics()
        self._checks += 1
        depth = len(self._scopes) - 1
        if depth > SOLVE_STATS.window_max_depth:
            SOLVE_STATS.window_max_depth = depth

        assumptions = [s.selector for s in self._scopes[1:]]
        temp = _Scope(selector=None, pre_mark=self._pre.mark())
        if extra:
            temp.selector = self._atoms.fresh_var()
            self._sat.ensure_vars(temp.selector)
            self._sat.reset_trail()
            for f in extra:
                self._assert_formula(f, temp)
            assumptions.append(temp.selector)
        guards: list[int] = []
        try:
            return self._run(assumptions, temp, guards)
        finally:
            self._sat.reset_trail()
            for sel in ([temp.selector] if temp.selector is not None else []) + guards:
                self._sat.add_clause([-sel])
                self.retired += 1
            self._pre.undo_to(temp.pre_mark)

    def _run(
        self, assumptions: list[int], temp: _Scope, guards: list[int]
    ) -> Result:
        """The DPLL(T) loop over the persistent CDCL core.

        LIA unsat cores become permanent lemmas; blocks for UNKNOWN
        theory answers (not valid lemmas — the conjunction may be SAT)
        are guarded by a per-check selector collected in ``guards`` and
        retired by the caller."""
        active_theory: set[int] = set(temp.theory_vars)
        for s in self._scopes:
            active_theory |= s.theory_vars
        unknown_seen = False
        for _ in range(self._max_rounds):
            verdict = self._sat.solve(assumptions)
            if verdict is None:
                return Result.UNKNOWN
            if verdict is False:
                return Result.UNKNOWN if unknown_seen else Result.UNSAT
            assignment = self._sat.model_assignment()
            lits = [
                (a, pol)
                for a, pol in self._atoms.theory_lits(assignment)
                if self._atoms.atom_to_var[a] in active_theory
            ]
            constraints = [self._constraint(a, pol) for a, pol in lits]
            res = self._lia.solve(constraints)
            if res.status is Result.SAT:
                assert res.model is not None
                self._model = self._build_model(res.model, temp)
                return Result.SAT
            core = lits
            if res.status is Result.UNKNOWN:
                unknown_seen = True
            else:
                core = self._shrink_core(lits)
            blocking = [
                (-self._atoms.var_for(a)) if pol else self._atoms.var_for(a)
                for a, pol in core
            ]
            if res.status is Result.UNKNOWN:
                # Not a valid lemma: guard it so it dies with this check.
                if not guards:
                    g = self._atoms.fresh_var()
                    self._sat.ensure_vars(g)
                    guards.append(g)
                    assumptions = assumptions + [g]
                blocking = blocking + [-guards[0]]
            else:
                self._lemmas += 1
            if not self._sat.block_and_continue(blocking):
                return Result.UNKNOWN if unknown_seen else Result.UNSAT
        return Result.UNKNOWN

    def _shrink_core(
        self, lits: list[tuple[Formula, bool]]
    ) -> list[tuple[Formula, bool]]:
        """Deletion-based unsat-core shrinking (keeps lemmas strong)."""
        if len(lits) > 40:
            return lits
        core = list(lits)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1 :]
            constraints = [self._constraint(a, pol) for a, pol in trial]
            if self._lia.solve(constraints).status is Result.UNSAT:
                core = trial
            else:
                i += 1
        return core

    def _build_model(self, env: dict, temp: _Scope) -> Model:
        full_env: dict[Var, int] = {}
        for scope in self._scopes:
            for v in scope.free_vars:
                full_env[v] = env.get(v, 0)
        for v in temp.free_vars:
            full_env[v] = env.get(v, 0)
        for v, val in env.items():
            if isinstance(v, Var):
                full_env[v] = val
        funcs: dict[FuncDecl, dict[tuple[int, ...], int]] = {}
        from .terms import subterms

        for apps in self._pre.apps_by_func.values():
            for app, _ in apps:
                # An argument variable the theory never constrained (a
                # single application, no consistency atoms) defaults to 0
                # so its table entry is kept; with two or more
                # applications the consistency atoms put the argument
                # variables in the LIA model, so no collision can arise.
                for a in app.args:
                    for t in subterms(a):
                        if isinstance(t, Var) and t not in full_env:
                            full_env[t] = 0
        for func, apps in self._pre.apps_by_func.items():
            table: dict[tuple[int, ...], int] = {}
            for app, var in apps:
                try:
                    args = tuple(
                        _eval_int(a, full_env) for a in app.args
                    )
                except KeyError:  # pragma: no cover - defensive
                    continue
                table[args] = full_env.get(var, 0)
            funcs[func] = table
        # Drop internal auxiliary variables from the reported model.
        public_env = {
            v: val for v, val in full_env.items() if not v.name.startswith(".")
        }
        return Model(public_env, funcs)

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model() called without a preceding SAT check")
        return self._model


def _eval_int(t: Term, env: dict[Var, int]) -> int:
    from .terms import eval_term

    return eval_term(t, env)


# ---------------------------------------------------------------------------
# Convenience helpers — cached behind canonicalized queries
# ---------------------------------------------------------------------------


def _encode_model(m: Model):
    """Canonical-name model -> compact hashless storage form.  The
    canonical renaming maps variables to ``$<i>`` and function symbols
    to ``$f<i>``; only those survive into the cache entry."""
    env = tuple(
        sorted(
            (int(v.name[1:]), val)
            for v, val in m.env.items()
            if v.name.startswith("$") and not v.name.startswith("$f")
        )
    )
    funcs = tuple(
        sorted(
            (int(f.name[2:]), tuple(sorted(table.items())))
            for f, table in m.funcs.items()
            if f.name.startswith("$f")
        )
    )
    return env, funcs


def _decode_model(cached, orig_vars, orig_funcs) -> Model:
    env_t, funcs_t = cached
    env = {orig_vars[i]: val for i, val in env_t if i < len(orig_vars)}
    funcs = {
        orig_funcs[i]: dict(table)
        for i, table in funcs_t
        if i < len(orig_funcs)
    }
    return Model(env, funcs)


def _cached_check(
    phi: Formula, *, need_model: bool = False
) -> tuple[Result, Optional[Model]]:
    """Decide ``phi`` through the canonicalizing cache.

    The *canonical* formula is what gets solved, so the verdict and the
    model are functions of the query's structure alone — however its
    locations happened to be numbered, and whether or not the entry was
    already cached.  Entries written by the incremental path are
    *result-only* (see ``smt.cache``); when a model is needed for one,
    the canonical formula is solved here and the entry upgraded, so
    model choice stays a deterministic function of the canonical formula
    no matter which path populated the cache first.
    """
    canon, orig_vars, orig_funcs = canonicalize(phi)
    entry = GLOBAL_CACHE.get(canon, need_model=need_model)
    if entry is None:
        s = Solver()
        s.add(canon)
        res = s.check()
        stored = _encode_model(s.model()) if res is Result.SAT else None
        GLOBAL_CACHE.put(canon, res, stored)
    else:
        res, stored, _ = entry
    if stored is None:
        return res, None
    return res, _decode_model(stored, orig_vars, orig_funcs)


def check_sat(*formulas: Formula, solver: Optional[Solver] = None) -> Result:
    """One-shot satisfiability check of a conjunction (cached); with an
    explicit ``solver`` the check runs on its incremental state,
    uncached."""
    if solver is not None:
        solver.add(*formulas)
        return solver.check()
    phi = simplify(mk_and(*formulas))
    if phi == TRUE:
        return Result.SAT
    if phi == FALSE:
        return Result.UNSAT
    if not GLOBAL_CACHE.enabled:
        s = Solver()
        s.add(phi)
        return s.check()
    return _cached_check(phi)[0]


def get_model(*formulas: Formula) -> Optional[Model]:
    """One-shot model extraction; None unless definitely SAT."""
    phi = simplify(mk_and(*formulas))
    if phi == FALSE:
        return None
    if phi == TRUE:
        return Model()
    if not GLOBAL_CACHE.enabled:
        s = Solver()
        s.add(phi)
        if s.check() is Result.SAT:
            return s.model()
        return None
    res, model = _cached_check(phi, need_model=True)
    return model if res is Result.SAT else None


def is_valid(phi: Formula, *axioms: Formula) -> Optional[bool]:
    """Validity of ``axioms => phi``.

    Returns True (valid), False (invalid — a countermodel exists) or None
    (inconclusive).  Implemented as unsatisfiability of
    ``axioms and not phi``.
    """
    res = check_sat(mk_and(*axioms), mk_not(phi))
    if res is Result.UNSAT:
        return True
    if res is Result.SAT:
        return False
    return None

"""The solver facade: a lazy DPLL(T) loop over the CDCL core and the LIA
conjunction solver.

This module is the reproduction's stand-in for Z3 (see DESIGN.md).  The
public surface mimics the slice of the z3py API the paper's tool needs:

* :class:`Solver` with ``add``, ``push``/``pop``, ``check`` and ``model``;
* :class:`Model` mapping variables to integers and uninterpreted functions
  to finite tables;
* module-level helpers :func:`check_sat`, :func:`is_valid`.

Preprocessing eliminates the two term forms the LIA core does not handle
natively:

* ``div``/``mod`` terms are axiomatised with fresh quotient/remainder
  variables (Euclidean semantics; a zero divisor makes the axiom
  unsatisfiable, which matches the tool's usage where every division is
  guarded by a nonzero refinement);
* uninterpreted applications are Ackermannised: each syntactically
  distinct application becomes a fresh variable, with functional
  consistency clauses between applications of the same symbol.  This is
  the solver-side mirror of the paper's ``case``-mapping translation
  (Fig. 4), where "equal inputs imply equal outputs" is exactly the
  instantiated consistency axiom.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from .cache import GLOBAL_CACHE, canonicalize
from .cnf import AtomMap, to_cnf
from .errors import Result, SolverError
from .lia import EQ, LE, NE, Constraint, LiaSolver, normalize
from .linearize import linearize
from .sat import SatSolver
from .simplify import simplify, to_nnf
from .terms import (
    Add,
    App,
    BoolConst,
    Div,
    Eq,
    FALSE,
    Formula,
    FuncDecl,
    IntConst,
    Le,
    Lt,
    Mod,
    Mul,
    Not,
    Term,
    TRUE,
    Var,
    eval_formula,
    free_vars,
    mk_and,
    mk_eq,
    mk_ge,
    mk_implies,
    mk_le,
    mk_mul,
    mk_not,
    mk_or,
    mk_sub,
)

__all__ = [
    "Solver",
    "Model",
    "check_sat",
    "is_valid",
    "get_model",
    "solver_cache",
]

#: The process-wide canonicalizing result cache behind the one-shot
#: helpers below.  ``solver_cache.enabled = False`` restores uncached
#: behaviour; ``snapshot``/``hits_since`` meter a region of work.
solver_cache = GLOBAL_CACHE


@dataclass
class Model:
    """A first-order model: integers for variables, finite tables for
    uninterpreted functions (default output 0 off-table)."""

    env: dict[Var, int] = field(default_factory=dict)
    funcs: dict[FuncDecl, dict[tuple[int, ...], int]] = field(default_factory=dict)

    def __getitem__(self, v: Var | str) -> int:
        if isinstance(v, str):
            v = Var(v)
        return self.env.get(v, 0)

    def __contains__(self, v: Var | str) -> bool:
        if isinstance(v, str):
            v = Var(v)
        return v in self.env

    def eval_term(self, t: Term) -> int:
        from .terms import eval_term

        return eval_term(t, self.env, self.funcs)

    def eval(self, f: Formula) -> bool:
        return eval_formula(f, self.env, self.funcs)

    def func_table(self, f: FuncDecl) -> dict[tuple[int, ...], int]:
        return dict(self.funcs.get(f, {}))

    def __repr__(self) -> str:
        parts = [f"{v.name} = {val}" for v, val in sorted(
            self.env.items(), key=lambda kv: kv[0].name)]
        for f, table in self.funcs.items():
            for args, out in sorted(table.items()):
                parts.append(f"{f.name}{args} = {out}")
        return "[" + ", ".join(parts) + "]"


class _Preprocessed:
    """Result of term-level preprocessing: a formula free of Div/Mod/App
    plus bookkeeping to reconstruct models."""

    def __init__(self) -> None:
        self.defs: list[Formula] = []
        self.div_cache: dict[Term, Var] = {}
        self.app_cache: dict[App, Var] = {}
        self.apps_by_func: dict[FuncDecl, list[tuple[App, Var]]] = {}
        self._fresh = itertools.count()

    def fresh(self, prefix: str) -> Var:
        return Var(f".{prefix}{next(self._fresh)}")

    # -- term rewriting --------------------------------------------------

    def rewrite_term(self, t: Term) -> Term:
        if isinstance(t, (Var, IntConst)):
            return t
        if isinstance(t, Add):
            return Add(tuple(self.rewrite_term(a) for a in t.args))
        if isinstance(t, Mul):
            return Mul(tuple(self.rewrite_term(a) for a in t.args))
        if isinstance(t, Div):
            return self._rewrite_divmod(t, want_mod=False)
        if isinstance(t, Mod):
            return self._rewrite_divmod(t, want_mod=True)
        if isinstance(t, App):
            return self._rewrite_app(t)
        raise SolverError(f"unsupported term {t!r}")

    def _rewrite_divmod(self, t: Div | Mod, *, want_mod: bool) -> Term:
        key_div = Div(t.num, t.den)
        if key_div not in self.div_cache:
            num = self.rewrite_term(t.num)
            den = self.rewrite_term(t.den)
            q = self.fresh("q")
            r = self.fresh("r")
            self.div_cache[key_div] = q
            self.div_cache[Mod(t.num, t.den)] = r
            # num = den*q + r, 0 <= r < |den|  (Euclidean).  den = 0 makes
            # both guarded disjuncts false, i.e. the axiom is unsat.
            self.defs.append(mk_eq(num, Add((mk_mul(den, q), r))))
            self.defs.append(mk_ge(r, 0))
            self.defs.append(
                mk_or(
                    mk_and(mk_ge(den, 1), mk_le(r, mk_sub(den, 1))),
                    mk_and(
                        mk_le(den, -1),
                        mk_le(r, mk_sub(mk_mul(-1, den), 1)),
                    ),
                )
            )
        key = Mod(t.num, t.den) if want_mod else key_div
        return self.div_cache[key]

    def _rewrite_app(self, t: App) -> Term:
        if t in self.app_cache:
            return self.app_cache[t]
        args = tuple(self.rewrite_term(a) for a in t.args)
        v = self.fresh(f"f.{t.func.name}.")
        self.app_cache[t] = v
        rewritten = App(t.func, args)
        # Functional consistency with every previous application of func.
        for prev_app, prev_v in self.apps_by_func.get(t.func, []):
            agree = mk_and(
                *(
                    mk_eq(a, b)
                    for a, b in zip(rewritten.args, prev_app.args)
                )
            )
            self.defs.append(mk_implies(agree, mk_eq(v, prev_v)))
        self.apps_by_func.setdefault(t.func, []).append((rewritten, v))
        return v

    # -- formula rewriting ------------------------------------------------

    def rewrite(self, f: Formula) -> Formula:
        if isinstance(f, BoolConst):
            return f
        if isinstance(f, Eq):
            return Eq(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Le):
            return Le(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Lt):
            return Lt(self.rewrite_term(f.lhs), self.rewrite_term(f.rhs))
        if isinstance(f, Not):
            return Not(self.rewrite(f.arg))
        from .terms import And, Iff, Implies, Or

        if isinstance(f, And):
            return And(tuple(self.rewrite(a) for a in f.args))
        if isinstance(f, Or):
            return Or(tuple(self.rewrite(a) for a in f.args))
        if isinstance(f, Implies):
            return Implies(self.rewrite(f.lhs), self.rewrite(f.rhs))
        if isinstance(f, Iff):
            return Iff(self.rewrite(f.lhs), self.rewrite(f.rhs))
        raise SolverError(f"unsupported formula {f!r}")


def _atom_constraints(atom: Formula, positive: bool) -> Constraint:
    """Translate a theory atom (with polarity) to a LIA constraint."""
    if isinstance(atom, Eq):
        diff = linearize(atom.lhs).sub(linearize(atom.rhs))
        return normalize(diff, EQ if positive else NE)
    if isinstance(atom, Le):
        if positive:
            diff = linearize(atom.lhs).sub(linearize(atom.rhs))
            return normalize(diff, LE)
        diff = linearize(atom.rhs).sub(linearize(atom.lhs))
        return normalize(diff, LE, strict=True)
    if isinstance(atom, Lt):
        if positive:
            diff = linearize(atom.lhs).sub(linearize(atom.rhs))
            return normalize(diff, LE, strict=True)
        diff = linearize(atom.rhs).sub(linearize(atom.lhs))
        return normalize(diff, LE)
    raise SolverError(f"not a theory atom: {atom!r}")


class Solver:
    """Incremental first-order solver with a z3py-like surface.

    Example::

        s = Solver()
        x, y = mk_var("x"), mk_var("y")
        s.add(mk_eq(mk_add(x, y), 10), mk_lt(x, y))
        assert s.check() is Result.SAT
        m = s.model()
        assert m[x] + m[y] == 10 and m[x] < m[y]
    """

    def __init__(
        self,
        *,
        max_theory_rounds: int = 4000,
        lia: Optional[LiaSolver] = None,
    ) -> None:
        self._stack: list[list[Formula]] = [[]]
        self._model: Optional[Model] = None
        self._max_rounds = max_theory_rounds
        self._lia = lia or LiaSolver()

    # -- assertion management ----------------------------------------------

    def add(self, *formulas: Formula) -> None:
        self._stack[-1].extend(formulas)
        self._model = None

    def push(self) -> None:
        self._stack.append([])

    def pop(self) -> None:
        if len(self._stack) == 1:
            raise SolverError("pop without matching push")
        self._stack.pop()
        self._model = None

    def assertions(self) -> list[Formula]:
        return [f for frame in self._stack for f in frame]

    # -- solving -----------------------------------------------------------

    def check(self, *extra: Formula) -> Result:
        """Decide the conjunction of all assertions (plus ``extra``)."""
        self._model = None
        phi = simplify(mk_and(*self.assertions(), *extra))
        if phi == TRUE:
            self._model = Model()
            return Result.SAT
        if phi == FALSE:
            return Result.UNSAT

        pre = _Preprocessed()
        phi = pre.rewrite(phi)
        # Definitions may themselves introduce div/app-free terms only.
        full = simplify(mk_and(phi, *pre.defs))
        if full == TRUE:
            self._model = Model()
            return Result.SAT
        if full == FALSE:
            return Result.UNSAT

        nnf = to_nnf(full)
        atoms = AtomMap()
        clauses = to_cnf(nnf, atoms)
        sat = SatSolver()
        sat.ensure_vars(atoms.num_vars)
        for cl in clauses:
            if not sat.add_clause(cl):
                return Result.UNSAT

        unknown_seen = False
        for _ in range(self._max_rounds):
            verdict = sat.solve()
            if verdict is None:
                return Result.UNKNOWN
            if verdict is False:
                return Result.UNKNOWN if unknown_seen else Result.UNSAT
            assignment = sat.model_assignment()
            lits = atoms.theory_lits(assignment)
            constraints = [_atom_constraints(a, pol) for a, pol in lits]
            res = self._lia.solve(constraints)
            if res.status is Result.SAT:
                assert res.model is not None
                self._model = self._build_model(res.model, full, pre)
                return Result.SAT
            core = lits
            if res.status is Result.UNKNOWN:
                unknown_seen = True
            else:
                core = self._shrink_core(lits)
            blocking = [
                (-atoms.var_for(a)) if pol else atoms.var_for(a)
                for a, pol in core
            ]
            if not sat.block_and_continue(blocking):
                return Result.UNKNOWN if unknown_seen else Result.UNSAT
        return Result.UNKNOWN

    def _shrink_core(
        self, lits: list[tuple[Formula, bool]]
    ) -> list[tuple[Formula, bool]]:
        """Deletion-based unsat-core shrinking (keeps lemmas strong)."""
        if len(lits) > 40:
            return lits
        core = list(lits)
        i = 0
        while i < len(core):
            trial = core[:i] + core[i + 1 :]
            constraints = [_atom_constraints(a, pol) for a, pol in trial]
            if self._lia.solve(constraints).status is Result.UNSAT:
                core = trial
            else:
                i += 1
        return core

    def _build_model(
        self, env: dict, phi: Formula, pre: _Preprocessed
    ) -> Model:
        full_env: dict[Var, int] = {}
        for v in free_vars(phi):
            full_env[v] = env.get(v, 0)
        for v, val in env.items():
            if isinstance(v, Var):
                full_env[v] = val
        funcs: dict[FuncDecl, dict[tuple[int, ...], int]] = {}
        for func, apps in pre.apps_by_func.items():
            table: dict[tuple[int, ...], int] = {}
            for app, var in apps:
                try:
                    args = tuple(
                        _eval_int(a, full_env) for a in app.args
                    )
                except KeyError:
                    continue
                table[args] = full_env.get(var, 0)
            funcs[func] = table
        # Drop internal auxiliary variables from the reported model.
        public_env = {
            v: val for v, val in full_env.items() if not v.name.startswith(".")
        }
        return Model(public_env, funcs)

    def model(self) -> Model:
        if self._model is None:
            raise SolverError("model() called without a preceding SAT check")
        return self._model


def _eval_int(t: Term, env: dict[Var, int]) -> int:
    from .terms import eval_term

    return eval_term(t, env)


# ---------------------------------------------------------------------------
# Convenience helpers — cached behind canonicalized queries
# ---------------------------------------------------------------------------


def _encode_model(m: Model):
    """Canonical-name model -> compact hashless storage form.  The
    canonical renaming maps variables to ``$<i>`` and function symbols
    to ``$f<i>``; only those survive into the cache entry."""
    env = tuple(
        sorted(
            (int(v.name[1:]), val)
            for v, val in m.env.items()
            if v.name.startswith("$") and not v.name.startswith("$f")
        )
    )
    funcs = tuple(
        sorted(
            (int(f.name[2:]), tuple(sorted(table.items())))
            for f, table in m.funcs.items()
            if f.name.startswith("$f")
        )
    )
    return env, funcs


def _decode_model(cached, orig_vars, orig_funcs) -> Model:
    env_t, funcs_t = cached
    env = {orig_vars[i]: val for i, val in env_t if i < len(orig_vars)}
    funcs = {
        orig_funcs[i]: dict(table)
        for i, table in funcs_t
        if i < len(orig_funcs)
    }
    return Model(env, funcs)


def _cached_check(phi: Formula) -> tuple[Result, Optional[Model]]:
    """Decide ``phi`` through the canonicalizing cache.

    The *canonical* formula is what gets solved, so the verdict and the
    model are functions of the query's structure alone — however its
    locations happened to be numbered, and whether or not the entry was
    already cached.
    """
    canon, orig_vars, orig_funcs = canonicalize(phi)
    entry = GLOBAL_CACHE.get(canon)
    if entry is None:
        s = Solver()
        s.add(canon)
        res = s.check()
        stored = _encode_model(s.model()) if res is Result.SAT else None
        GLOBAL_CACHE.put(canon, res, stored)
    else:
        res, stored = entry
    if stored is None:
        return res, None
    return res, _decode_model(stored, orig_vars, orig_funcs)


def check_sat(*formulas: Formula, solver: Optional[Solver] = None) -> Result:
    """One-shot satisfiability check of a conjunction (cached); with an
    explicit ``solver`` the check runs on its incremental state,
    uncached."""
    if solver is not None:
        solver.add(*formulas)
        return solver.check()
    phi = simplify(mk_and(*formulas))
    if phi == TRUE:
        return Result.SAT
    if phi == FALSE:
        return Result.UNSAT
    if not GLOBAL_CACHE.enabled:
        s = Solver()
        s.add(phi)
        return s.check()
    return _cached_check(phi)[0]


def get_model(*formulas: Formula) -> Optional[Model]:
    """One-shot model extraction; None unless definitely SAT."""
    phi = simplify(mk_and(*formulas))
    if phi == FALSE:
        return None
    if phi == TRUE:
        return Model()
    if not GLOBAL_CACHE.enabled:
        s = Solver()
        s.add(phi)
        if s.check() is Result.SAT:
            return s.model()
        return None
    res, model = _cached_check(phi)
    return model if res is Result.SAT else None


def is_valid(phi: Formula, *axioms: Formula) -> Optional[bool]:
    """Validity of ``axioms => phi``.

    Returns True (valid), False (invalid — a countermodel exists) or None
    (inconclusive).  Implemented as unsatisfiability of
    ``axioms and not phi``.
    """
    res = check_sat(mk_and(*axioms), mk_not(phi))
    if res is Result.UNSAT:
        return True
    if res is Result.SAT:
        return False
    return None

"""Per-path incremental solver contexts.

The proof relation asks the solver about a path condition ``φ`` that
grows monotonically along a symbolic path — each ``⊢`` query adds one
literal ``ψ`` on top of the heap's conjuncts.  Re-solving ``φ ∧ ψ``
from scratch per query (the pre-incremental behaviour) costs
O(path-length) per query; a :class:`PathContext` makes it O(delta):

* the context owns one scoped :class:`~repro.smt.solver.Solver` and a
  *trail* — the heap conjuncts currently asserted, one scope per
  conjunct;
* ``sync`` diffs the target conjunct sequence against the trail: the
  longest common prefix is kept (its clauses, preprocessing state and
  learned lemmas are reused verbatim), everything past it is popped,
  and the new suffix is pushed.  Sibling branches share their prefix up
  to the branch point, so jumping between them — which a breadth-first
  search does constantly — is exactly a scope *fork*: pop to the shared
  ancestor, push the other branch's facts;
* the paired ``φ ⊢ ψ`` / ``φ ⊢ ¬ψ`` queries run as two assumption
  checks (``Solver.check(ψ)``) on the synced context, sharing one
  context and every lemma the first check learned;
* retiring scopes by selector leaves dead clauses and variables behind
  (see ``smt.solver``); once the accumulated garbage crosses
  ``rebuild_after`` the context is discarded and rebuilt from the
  current trail.  Rebuilds are counted in ``SOLVE_STATS.
  context_rebuilds`` and show up as fresh solves — they are the only
  from-scratch work left on the hot path.

Composition with the canonicalizing result cache (``smt.cache``) is by
*result-only entries*: ``check_under`` consults the cache first (a hit
answers without touching the context — sibling paths with isomorphic
heaps still collapse), and decisive incremental answers are stored
without a model, so ``get_model`` later re-solves canonically rather
than exposing a context-history-dependent model.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .cache import GLOBAL_CACHE, canonicalize
from .errors import Result
from .simplify import simplify
from .solver import SOLVE_STATS, Solver
from .terms import FALSE, Formula, TRUE, mk_and

__all__ = ["PathContext"]


class PathContext:
    """An incremental solver context that follows the search through the
    execution graph, forking its assertion scope at branch points."""

    def __init__(self, *, rebuild_after: int = 256) -> None:
        self.rebuild_after = rebuild_after
        self._solver = Solver()
        self._trail: list[Formula] = []
        # Heap-translation memo: within one macro state the proof system
        # issues several queries against the *same* (immutable) heap
        # object; keying on identity (with a strong reference, so the id
        # cannot be recycled) skips re-translation entirely.
        self._last_heap: Optional[object] = None
        self._last_parts: Optional[tuple[Formula, ...]] = None

    # -- search-kernel hook ---------------------------------------------

    def note_switch(self) -> None:
        """The search kernel popped a (possibly different) path's state:
        drop the heap-translation memo so the dead heap is not pinned,
        and count the switch.  Scope forking itself happens lazily at the
        next query's ``sync``."""
        SOLVE_STATS.path_switches += 1
        self._last_heap = None
        self._last_parts = None

    def parts_for(
        self, heap: object, translate: Callable[[object], Sequence[Formula]]
    ) -> tuple[Formula, ...]:
        """Memoized heap translation (identity-keyed; heaps are
        immutable values)."""
        if heap is self._last_heap:
            assert self._last_parts is not None
            return self._last_parts
        parts = tuple(translate(heap))
        self._last_heap = heap
        self._last_parts = parts
        return parts

    # -- scope management -------------------------------------------------

    def sync(self, parts: Sequence[Formula]) -> None:
        """Make the solver's assertion stack equal ``parts``, reusing the
        longest common prefix of the current trail."""
        trail = self._trail
        n = 0
        lim = min(len(trail), len(parts))
        while n < lim and trail[n] == parts[n]:
            n += 1
        if self._solver.retired + (len(trail) - n) > self.rebuild_after:
            self._rebuild(parts)
            return
        for _ in range(len(trail) - n):
            self._solver.pop()
            trail.pop()
        for c in parts[n:]:
            self._solver.push()
            self._solver.add(c)
            trail.append(c)

    def _rebuild(self, parts: Sequence[Formula]) -> None:
        """Discard the garbage-laden context and re-assert the target
        trail into a fresh solver (the bounded from-scratch fallback)."""
        SOLVE_STATS.context_rebuilds += 1
        self._solver = Solver()
        self._trail = []
        for c in parts:
            self._solver.push()
            self._solver.add(c)
            self._trail.append(c)

    @property
    def scope_depth(self) -> int:
        return len(self._trail)

    # -- queries ----------------------------------------------------------

    def check(self, parts: Sequence[Formula], *assumption: Formula) -> Result:
        """Satisfiability of ``AND(parts) ∧ AND(assumption)`` on the
        incremental context (uncached)."""
        self.sync(parts)
        return self._solver.check(*assumption)

    def check_under(self, parts: Sequence[Formula], psi: Formula) -> Result:
        """Satisfiability of ``AND(parts) ∧ psi`` through the
        canonicalizing result cache, solved incrementally on a miss.

        The cache key is the same canonical conjunction the one-shot
        ``check_sat`` would use, so entries are shared across the two
        paths; incremental answers are stored result-only (UNKNOWNs not
        at all — they can be budget artefacts of context history)."""
        full = simplify(mk_and(*parts, psi))
        if full == TRUE:
            return Result.SAT
        if full == FALSE:
            return Result.UNSAT
        if not GLOBAL_CACHE.enabled:
            return self.check(parts, psi)
        canon, _, _ = canonicalize(full)
        entry = GLOBAL_CACHE.get(canon)
        if entry is not None:
            return entry[0]
        res = self.check(parts, psi)
        if res is not Result.UNKNOWN:
            GLOBAL_CACHE.put(canon, res, None, model_known=False)
        return res

"""Terms, atoms and formulas of the solver's first-order language.

The language is quantifier-free integer arithmetic with uninterpreted
functions (QF_UFLIA, plus nonlinear multiplication and Euclidean div/mod
handled best-effort).  This is exactly the fragment the heap translation of
the paper (Fig. 4) targets: the path condition of symbolic execution is
always a first-order formula over base values, even when the program inputs
are higher-order.

All node classes are immutable and hashable; construct them through the
builder functions at the bottom of the module (``mk_add``, ``mk_eq``, ...)
which perform light normalisation (constant folding, flattening) so that
structurally equal constraints compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Union


# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------


class Sort:
    """A first-order sort.  Only INT and BOOL exist; functions are handled
    through :class:`FuncDecl` arities rather than arrow sorts."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


INT = Sort("Int")
BOOL = Sort("Bool")


# ---------------------------------------------------------------------------
# Terms (integer-sorted)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """Base class of integer-sorted terms."""

    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Term:
            raise TypeError("Term is abstract")


@dataclass(frozen=True)
class Var(Term):
    """An integer variable, identified by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntConst(Term):
    """An integer literal."""

    value: int

    def __repr__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Add(Term):
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return "(+ " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Mul(Term):
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return "(* " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Div(Term):
    """Euclidean division (result rounds toward -inf for positive divisors,
    matching Racket's ``quotient`` on naturals; see ``smt.lia`` for the
    axiomatisation used)."""

    num: Term
    den: Term

    def __repr__(self) -> str:
        return f"(div {self.num!r} {self.den!r})"


@dataclass(frozen=True)
class Mod(Term):
    num: Term
    den: Term

    def __repr__(self) -> str:
        return f"(mod {self.num!r} {self.den!r})"


@dataclass(frozen=True)
class FuncDecl:
    """An uninterpreted function symbol of a fixed arity.

    Used by the heap translation for ``case`` mappings: an unknown
    first-order function becomes an uninterpreted symbol, so "equal inputs
    imply equal outputs" is exactly functional consistency.
    """

    name: str
    arity: int

    def __call__(self, *args: Term) -> "App":
        return mk_app(self, *args)

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class App(Term):
    """Application of an uninterpreted function to integer terms."""

    func: FuncDecl
    args: tuple[Term, ...]

    def __repr__(self) -> str:
        return f"({self.func.name} " + " ".join(map(repr, self.args)) + ")"


# ---------------------------------------------------------------------------
# Formulas (boolean-sorted)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """Base class of boolean-sorted formulas."""

    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Formula:
            raise TypeError("Formula is abstract")


@dataclass(frozen=True)
class BoolConst(Formula):
    value: bool

    def __repr__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Eq(Formula):
    lhs: Term
    rhs: Term

    def __repr__(self) -> str:
        return f"(= {self.lhs!r} {self.rhs!r})"


@dataclass(frozen=True)
class Le(Formula):
    lhs: Term
    rhs: Term

    def __repr__(self) -> str:
        return f"(<= {self.lhs!r} {self.rhs!r})"


@dataclass(frozen=True)
class Lt(Formula):
    lhs: Term
    rhs: Term

    def __repr__(self) -> str:
        return f"(< {self.lhs!r} {self.rhs!r})"


@dataclass(frozen=True)
class Not(Formula):
    arg: Formula

    def __repr__(self) -> str:
        return f"(not {self.arg!r})"


@dataclass(frozen=True)
class And(Formula):
    args: tuple[Formula, ...]

    def __repr__(self) -> str:
        return "(and " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    args: tuple[Formula, ...]

    def __repr__(self) -> str:
        return "(or " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class Implies(Formula):
    lhs: Formula
    rhs: Formula

    def __repr__(self) -> str:
        return f"(=> {self.lhs!r} {self.rhs!r})"


@dataclass(frozen=True)
class Iff(Formula):
    lhs: Formula
    rhs: Formula

    def __repr__(self) -> str:
        return f"(iff {self.lhs!r} {self.rhs!r})"


Atom = Union[Eq, Le, Lt]
ATOM_TYPES = (Eq, Le, Lt)


# ---------------------------------------------------------------------------
# Builders with light normalisation
# ---------------------------------------------------------------------------


def mk_int(value: int) -> IntConst:
    """Build an integer literal."""
    return IntConst(int(value))


def mk_var(name: str) -> Var:
    """Build an integer variable."""
    return Var(name)


def _coerce(t: Union[Term, int]) -> Term:
    if isinstance(t, int):
        return IntConst(t)
    if not isinstance(t, Term):
        raise TypeError(f"expected Term or int, got {t!r}")
    return t


def mk_add(*args: Union[Term, int]) -> Term:
    """n-ary sum; flattens nested sums and folds constants."""
    flat: list[Term] = []
    const = 0
    for a in map(_coerce, args):
        if isinstance(a, Add):
            items: Iterable[Term] = a.args
        else:
            items = (a,)
        for item in items:
            if isinstance(item, IntConst):
                const += item.value
            else:
                flat.append(item)
    if const != 0 or not flat:
        flat.append(IntConst(const))
    if len(flat) == 1:
        return flat[0]
    return Add(tuple(flat))


def mk_neg(t: Union[Term, int]) -> Term:
    """Unary negation, as multiplication by -1."""
    return mk_mul(-1, t)


def mk_sub(a: Union[Term, int], b: Union[Term, int]) -> Term:
    """Binary subtraction ``a - b``."""
    return mk_add(a, mk_neg(b))


def mk_mul(*args: Union[Term, int]) -> Term:
    """n-ary product; flattens, folds constants, and short-circuits zero."""
    flat: list[Term] = []
    const = 1
    for a in map(_coerce, args):
        if isinstance(a, Mul):
            items: Iterable[Term] = a.args
        else:
            items = (a,)
        for item in items:
            if isinstance(item, IntConst):
                const *= item.value
            else:
                flat.append(item)
    if const == 0:
        return IntConst(0)
    if not flat:
        return IntConst(const)
    if const != 1:
        flat.insert(0, IntConst(const))
    if len(flat) == 1:
        return flat[0]
    return Mul(tuple(flat))


def mk_div(num: Union[Term, int], den: Union[Term, int]) -> Term:
    """Euclidean quotient; folds when both sides are constant and the
    divisor is nonzero."""
    num, den = _coerce(num), _coerce(den)
    if isinstance(num, IntConst) and isinstance(den, IntConst) and den.value != 0:
        # Euclidean: remainder is always nonnegative.
        q, r = divmod(num.value, den.value)
        if r < 0:  # pragma: no cover - Python divmod already floors
            q += 1 if den.value < 0 else -1
        return IntConst(q)
    return Div(num, den)


def mk_mod(num: Union[Term, int], den: Union[Term, int]) -> Term:
    """Euclidean remainder; folds constants."""
    num, den = _coerce(num), _coerce(den)
    if isinstance(num, IntConst) and isinstance(den, IntConst) and den.value != 0:
        return IntConst(num.value % abs(den.value))
    return Mod(num, den)


def mk_app(func: FuncDecl, *args: Union[Term, int]) -> App:
    """Apply an uninterpreted function symbol."""
    coerced = tuple(map(_coerce, args))
    if len(coerced) != func.arity:
        raise ValueError(
            f"{func.name} has arity {func.arity}, applied to {len(coerced)} args"
        )
    return App(func, coerced)


def mk_eq(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    a, b = _coerce(a), _coerce(b)
    if a == b:
        return TRUE
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return BoolConst(a.value == b.value)
    return Eq(a, b)


def mk_distinct(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    return mk_not(mk_eq(a, b))


def mk_le(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    a, b = _coerce(a), _coerce(b)
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return BoolConst(a.value <= b.value)
    return Le(a, b)


def mk_lt(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    a, b = _coerce(a), _coerce(b)
    if isinstance(a, IntConst) and isinstance(b, IntConst):
        return BoolConst(a.value < b.value)
    return Lt(a, b)


def mk_ge(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    return mk_le(b, a)


def mk_gt(a: Union[Term, int], b: Union[Term, int]) -> Formula:
    return mk_lt(b, a)


def mk_not(f: Formula) -> Formula:
    if isinstance(f, BoolConst):
        return BoolConst(not f.value)
    if isinstance(f, Not):
        return f.arg
    return Not(f)


def mk_and(*args: Formula) -> Formula:
    flat: list[Formula] = []
    for a in args:
        if isinstance(a, And):
            items: Iterable[Formula] = a.args
        else:
            items = (a,)
        for item in items:
            if item == FALSE:
                return FALSE
            if item != TRUE:
                flat.append(item)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def mk_or(*args: Formula) -> Formula:
    flat: list[Formula] = []
    for a in args:
        if isinstance(a, Or):
            items: Iterable[Formula] = a.args
        else:
            items = (a,)
        for item in items:
            if item == TRUE:
                return TRUE
            if item != FALSE:
                flat.append(item)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def mk_implies(a: Formula, b: Formula) -> Formula:
    if a == FALSE or b == TRUE:
        return TRUE
    if a == TRUE:
        return b
    if b == FALSE:
        return mk_not(a)
    return Implies(a, b)


def mk_iff(a: Formula, b: Formula) -> Formula:
    if a == b:
        return TRUE
    if a == TRUE:
        return b
    if b == TRUE:
        return a
    if a == FALSE:
        return mk_not(b)
    if b == FALSE:
        return mk_not(a)
    return Iff(a, b)


# ---------------------------------------------------------------------------
# Traversals
# ---------------------------------------------------------------------------


def subterms(t: Term) -> Iterator[Term]:
    """Yield every subterm of ``t`` (including ``t`` itself), pre-order."""
    yield t
    if isinstance(t, (Add, Mul)):
        for a in t.args:
            yield from subterms(a)
    elif isinstance(t, (Div, Mod)):
        yield from subterms(t.num)
        yield from subterms(t.den)
    elif isinstance(t, App):
        for a in t.args:
            yield from subterms(a)


def formula_terms(f: Formula) -> Iterator[Term]:
    """Yield every term occurring in ``f``, pre-order."""
    if isinstance(f, (Eq, Le, Lt)):
        yield from subterms(f.lhs)
        yield from subterms(f.rhs)
    elif isinstance(f, Not):
        yield from formula_terms(f.arg)
    elif isinstance(f, (And, Or)):
        for a in f.args:
            yield from formula_terms(a)
    elif isinstance(f, (Implies, Iff)):
        yield from formula_terms(f.lhs)
        yield from formula_terms(f.rhs)


def free_vars(f: Formula) -> set[Var]:
    """The set of integer variables occurring in ``f``."""
    return {t for t in formula_terms(f) if isinstance(t, Var)}


def func_decls(f: Formula) -> set[FuncDecl]:
    """The set of uninterpreted function symbols occurring in ``f``."""
    return {t.func for t in formula_terms(f) if isinstance(t, App)}


def eval_term(t: Term, env: dict[Var, int], funcs=None) -> int:
    """Evaluate a term under an integer assignment.

    ``funcs`` maps :class:`FuncDecl` to ``dict[tuple[int, ...], int]`` tables
    (with a default of 0 for unlisted argument tuples), as produced by the
    solver's model construction.
    """
    if isinstance(t, IntConst):
        return t.value
    if isinstance(t, Var):
        if t not in env:
            raise KeyError(f"variable {t.name} not assigned")
        return env[t]
    if isinstance(t, Add):
        return sum(eval_term(a, env, funcs) for a in t.args)
    if isinstance(t, Mul):
        prod = 1
        for a in t.args:
            prod *= eval_term(a, env, funcs)
        return prod
    if isinstance(t, Div):
        num = eval_term(t.num, env, funcs)
        den = eval_term(t.den, env, funcs)
        if den == 0:
            raise ZeroDivisionError("div by zero in model evaluation")
        q, r = divmod(num, den)
        return q
    if isinstance(t, Mod):
        num = eval_term(t.num, env, funcs)
        den = eval_term(t.den, env, funcs)
        if den == 0:
            raise ZeroDivisionError("mod by zero in model evaluation")
        return num % abs(den)
    if isinstance(t, App):
        argv = tuple(eval_term(a, env, funcs) for a in t.args)
        if funcs is None or t.func not in funcs:
            return 0
        return funcs[t.func].get(argv, 0)
    raise TypeError(f"cannot evaluate {t!r}")


def eval_formula(f: Formula, env: dict[Var, int], funcs=None) -> bool:
    """Evaluate a formula under an integer assignment."""
    if isinstance(f, BoolConst):
        return f.value
    if isinstance(f, Eq):
        return eval_term(f.lhs, env, funcs) == eval_term(f.rhs, env, funcs)
    if isinstance(f, Le):
        return eval_term(f.lhs, env, funcs) <= eval_term(f.rhs, env, funcs)
    if isinstance(f, Lt):
        return eval_term(f.lhs, env, funcs) < eval_term(f.rhs, env, funcs)
    if isinstance(f, Not):
        return not eval_formula(f.arg, env, funcs)
    if isinstance(f, And):
        return all(eval_formula(a, env, funcs) for a in f.args)
    if isinstance(f, Or):
        return any(eval_formula(a, env, funcs) for a in f.args)
    if isinstance(f, Implies):
        return (not eval_formula(f.lhs, env, funcs)) or eval_formula(f.rhs, env, funcs)
    if isinstance(f, Iff):
        return eval_formula(f.lhs, env, funcs) == eval_formula(f.rhs, env, funcs)
    raise TypeError(f"cannot evaluate {f!r}")

"""CDCL SAT solver.

A conflict-driven clause-learning solver with the standard modern kernel:

* two-watched-literal propagation,
* first-UIP conflict analysis with clause minimisation,
* VSIDS-style exponential variable activities,
* Luby-sequence restarts with phase saving,
* incremental solving under assumptions (used by the DPLL(T) loop to add
  theory lemmas between calls, and by the scoped :class:`~repro.smt.solver.
  Solver` to activate assertion levels through selector literals).

Assumptions are decided first, each at its own decision level, before any
free decision — the MiniSat discipline.  A ``solve(assumptions)`` call
that returns False therefore means *unsat under these assumptions*; the
solver state (clauses, learned clauses, phase saving, activities) stays
intact and the next call may assume a different set.  Learned clauses
are always implied by the clause database alone — assumption literals
enter conflict analysis as decisions and end up negated *inside* the
learned clause — so clauses learned under one assumption set remain
sound under every other, which is what makes scope-popping by
selector-retirement (see ``smt.solver``) keep its lemmas for free.

Literals are nonzero ints (+v / -v), variables are 1-based; clause
storage is plain Python lists, which is plenty for the formula sizes the
paper's heap translation produces (tens to hundreds of atoms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

Lit = int


def _luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


@dataclass
class _ClauseRef:
    lits: list[Lit]
    learned: bool = False
    activity: float = 0.0


class SatSolver:
    """CDCL solver over integer literals.

    Typical use::

        s = SatSolver()
        s.ensure_vars(n)
        s.add_clause([1, -2])
        if s.solve():
            model = s.model_assignment()   # dict var -> bool
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: list[_ClauseRef] = []
        self.watches: dict[Lit, list[_ClauseRef]] = {}
        self.assign: dict[int, bool] = {}
        self.level: dict[int, int] = {}
        self.reason: dict[int, Optional[_ClauseRef]] = {}
        self.trail: list[Lit] = []
        self.trail_lim: list[int] = []
        self.prop_head = 0
        self.activity: dict[int, float] = {}
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.saved_phase: dict[int, bool] = {}
        self.ok = True  # False once an empty clause is added
        self.conflicts = 0
        self.learned_count = 0  # non-unit learned clauses currently stored

    # -- construction ------------------------------------------------------

    def ensure_vars(self, n: int) -> None:
        """Make variables 1..n available."""
        for v in range(self.num_vars + 1, n + 1):
            self.activity[v] = 0.0
            self.watches.setdefault(v, [])
            self.watches.setdefault(-v, [])
        self.num_vars = max(self.num_vars, n)

    def new_var(self) -> int:
        self.ensure_vars(self.num_vars + 1)
        return self.num_vars

    def add_clause(self, lits: Iterable[Lit]) -> bool:
        """Add a clause at decision level 0.  Returns False if the solver
        becomes trivially UNSAT."""
        assert not self.trail_lim, "add_clause only at decision level 0"
        seen: set[Lit] = set()
        out: list[Lit] = []
        for l in lits:
            self.ensure_vars(abs(l))
            if -l in seen:
                return True  # tautology
            if l in seen:
                continue
            val = self._value(l)
            if val is True:
                return True  # satisfied at level 0
            if val is False:
                continue  # falsified at level 0: drop literal
            seen.add(l)
            out.append(l)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        ref = _ClauseRef(out)
        self.clauses.append(ref)
        self._watch(ref)
        return True

    def _watch(self, ref: _ClauseRef) -> None:
        self.watches.setdefault(ref.lits[0], []).append(ref)
        self.watches.setdefault(ref.lits[1], []).append(ref)

    # -- assignment --------------------------------------------------------

    def _value(self, lit: Lit) -> Optional[bool]:
        v = self.assign.get(abs(lit))
        if v is None:
            return None
        return v if lit > 0 else not v

    def _enqueue(self, lit: Lit, reason: Optional[_ClauseRef]) -> bool:
        val = self._value(lit)
        if val is not None:
            return val
        var = abs(lit)
        self.assign[var] = lit > 0
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> Optional[_ClauseRef]:
        """Unit propagation; returns a conflicting clause or None."""
        while self.prop_head < len(self.trail):
            lit = self.trail[self.prop_head]
            self.prop_head += 1
            falsified = -lit
            watchers = self.watches.get(falsified, [])
            i = 0
            while i < len(watchers):
                ref = watchers[i]
                lits = ref.lits
                # Normalise: watched literals are lits[0] and lits[1].
                if lits[0] == falsified:
                    lits[0], lits[1] = lits[1], lits[0]
                # lits[1] == falsified now.
                if self._value(lits[0]) is True:
                    i += 1
                    continue
                # Look for a new literal to watch.
                moved = False
                for j in range(2, len(lits)):
                    if self._value(lits[j]) is not False:
                        lits[1], lits[j] = lits[j], lits[1]
                        self.watches.setdefault(lits[1], []).append(ref)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                if self._value(lits[0]) is False:
                    return ref  # conflict
                self._enqueue(lits[0], ref)
                i += 1
        return None

    # -- conflict analysis -------------------------------------------------

    def _bump_var(self, v: int) -> None:
        self.activity[v] = self.activity.get(v, 0.0) + self.var_inc
        if self.activity[v] > 1e100:
            for u in self.activity:
                self.activity[u] *= 1e-100
            self.var_inc *= 1e-100

    def _analyze(self, conflict: _ClauseRef) -> tuple[list[Lit], int]:
        """First-UIP analysis.  Returns (learned clause, backjump level).
        The asserting literal is placed first in the learned clause."""
        cur_level = len(self.trail_lim)
        seen: set[int] = set()
        learned: list[Lit] = []
        counter = 0
        p: Optional[Lit] = None
        reason_lits = list(conflict.lits)
        idx = len(self.trail) - 1

        while True:
            for q in reason_lits:
                if p is not None and q == p:
                    continue
                v = abs(q)
                if v in seen or self.level.get(v, 0) == 0:
                    continue
                seen.add(v)
                self._bump_var(v)
                if self.level[v] == cur_level:
                    counter += 1
                else:
                    learned.append(q)
            # Find next literal to resolve on (most recent seen on trail).
            while True:
                p = self.trail[idx]
                idx -= 1
                if abs(p) in seen:
                    break
            counter -= 1
            seen.discard(abs(p))
            if counter == 0:
                break
            ref = self.reason[abs(p)]
            assert ref is not None, "UIP literal must have a reason"
            reason_lits = [l for l in ref.lits if l != p]

        learned = [-p] + self._minimize(learned, seen)
        if len(learned) == 1:
            return learned, 0
        # Backjump level: max level among the non-asserting literals.
        bj = max(self.level[abs(l)] for l in learned[1:])
        # Put a literal of the backjump level second (watch invariant).
        for k in range(1, len(learned)):
            if self.level[abs(learned[k])] == bj:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, bj

    def _minimize(self, learned: list[Lit], seen: set[int]) -> list[Lit]:
        """Cheap recursive clause minimisation: drop literals whose reason
        is entirely within the learned clause's variables."""
        marked = {abs(l) for l in learned}
        out = []
        for l in learned:
            ref = self.reason.get(abs(l))
            if ref is None:
                out.append(l)
                continue
            if all(
                abs(q) in marked or self.level.get(abs(q), 0) == 0
                for q in ref.lits
                if q != -l
            ):
                continue  # redundant
            out.append(l)
        return out

    def reset_trail(self) -> None:
        """Backtrack to decision level 0 (e.g. before ``add_clause`` on a
        solver that has already run a check).  Level-0 propagations —
        learned units included — survive."""
        self._backtrack(0)

    def reset_heuristics(self) -> None:
        """Zero the VSIDS activities and drop saved phases.

        A long-lived solver answering a *sequence* of scoped queries
        calls this between queries: phases and activities saved from the
        previous query steer the search toward its last model, which for
        a different assumption set tends to walk a longer chain of
        theory-blocked assignments than a cold start — and makes the
        boolean enumeration order (hence DPLL(T) round counts and
        UNKNOWN edge cases) drift from a from-scratch solver's.  Clauses
        and learned lemmas are the context's value; the heuristic state
        is not, so it is reset to keep warm checks behaving like cold
        ones, just with more lemmas."""
        self.saved_phase.clear()
        for v in self.activity:
            self.activity[v] = 0.0
        self.var_inc = 1.0

    def _backtrack(self, level: int) -> None:
        if len(self.trail_lim) <= level:
            return
        limit = self.trail_lim[level]
        for lit in reversed(self.trail[limit:]):
            v = abs(lit)
            self.saved_phase[v] = self.assign[v]
            del self.assign[v]
            del self.level[v]
            self.reason.pop(v, None)
        del self.trail[limit:]
        del self.trail_lim[level:]
        self.prop_head = min(self.prop_head, len(self.trail))

    # -- decisions ---------------------------------------------------------

    def _decide(self) -> Optional[Lit]:
        best_v, best_a = 0, -1.0
        for v in range(1, self.num_vars + 1):
            if v not in self.assign:
                a = self.activity.get(v, 0.0)
                if a > best_a:
                    best_v, best_a = v, a
        if best_v == 0:
            return None
        phase = self.saved_phase.get(best_v, False)
        return best_v if phase else -best_v

    # -- main loop ---------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        *,
        conflict_budget: int | None = None,
    ) -> Optional[bool]:
        """Run the CDCL loop, optionally under assumption literals.

        Returns True (SAT), False (UNSAT — globally if ``assumptions`` is
        empty, otherwise possibly only under the assumptions) or None if
        ``conflict_budget`` was exhausted.  A False under assumptions
        leaves the solver reusable: only ``self.ok`` going False marks
        the clause database itself contradictory.
        """
        if not self.ok:
            return False
        self._backtrack(0)  # discard stale decisions from a previous call
        restart_count = 1
        restart_limit = 32 * _luby(restart_count)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if conflict_budget is not None and conflicts_here > conflict_budget:
                    return None
                if not self.trail_lim:
                    self.ok = False
                    return False
                learned, bj = self._analyze(conflict)
                self._backtrack(bj)
                if len(learned) == 1:
                    if not self._enqueue(learned[0], None):
                        self.ok = False
                        return False
                else:
                    ref = _ClauseRef(learned, learned=True)
                    self.clauses.append(ref)
                    self.learned_count += 1
                    self._watch(ref)
                    self._enqueue(learned[0], ref)
                self.var_inc /= self.var_decay
                restart_limit -= 1
                if restart_limit <= 0:
                    restart_count += 1
                    restart_limit = 32 * _luby(restart_count)
                    self._backtrack(0)
                continue
            lit = None
            for a in assumptions:
                val = self._value(a)
                if val is False:
                    # An assumption is falsified by the database (plus the
                    # assumptions already decided): unsat under assumptions.
                    return False
                if val is None:
                    lit = a
                    break
            if lit is None:
                lit = self._decide()
                if lit is None:
                    return True  # full assignment, no conflict
            self.trail_lim.append(len(self.trail))
            self._enqueue(lit, None)

    # -- results -----------------------------------------------------------

    def model_assignment(self) -> dict[int, bool]:
        """The satisfying assignment after a True ``solve()``."""
        return dict(self.assign)

    def block_and_continue(self, lits: list[Lit]) -> bool:
        """Backtrack to level 0 and add a blocking/lemma clause.

        Used by the DPLL(T) driver to reject theory-inconsistent boolean
        models.  Returns False if the formula became UNSAT.
        """
        self._backtrack(0)
        return self.add_clause(lits)

"""Conjunction-level linear integer arithmetic.

Decides conjunctions of literals of the forms ``e = 0``, ``e <= 0`` and
``e != 0`` where ``e`` is a :class:`~repro.smt.linearize.LinExpr` over
integer-valued atoms, and produces integer models.

Algorithm
---------
1. *Constant propagation* pins atoms forced to a single value and folds
   nonlinear product atoms whose factors become known.
2. Remaining *nonlinear* atoms (products of two or more variables) are
   handled by a fair bounded enumeration of their variables, seeded with
   the constants appearing in the problem; each assignment reduces the
   system to the linear case.  Exhausting the enumeration budget yields
   UNKNOWN — this is the solver's documented incompleteness boundary
   (mirroring the paper's reliance on Z3's nonlinear heuristics, §5.3).
3. The *linear* core is solved by Gaussian elimination of equalities,
   Fourier–Motzkin elimination of inequalities over the rationals with
   back-substitution model construction, then branch-and-bound to repair
   fractional values, and splitting to repair violated disequalities.

Everything is exact (``fractions.Fraction``); no floating point.
"""

from __future__ import annotations

import itertools
import math
from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Sequence

from .errors import BudgetExhausted, Result
from .linearize import LinAtom, LinExpr
from .terms import Div, IntConst, Mod, Mul, Term, Var

# Constraint kinds after normalisation.
EQ = "eq"  # expr  = 0
LE = "le"  # expr <= 0
NE = "ne"  # expr != 0


@dataclass(frozen=True)
class Constraint:
    """A normalised arithmetic literal ``expr (kind) 0``."""

    expr: LinExpr
    kind: str

    def __repr__(self) -> str:
        sym = {EQ: "=", LE: "<=", NE: "!="}[self.kind]
        return f"{self.expr!r} {sym} 0"


def normalize(expr: LinExpr, kind: str, *, strict: bool = False) -> Constraint:
    """Normalise to integer coefficients; fold strictness into the constant.

    For integer-valued atoms, ``e < 0`` is ``e + 1 <= 0`` once ``e`` has
    integer coefficients, and ``a_i x_i <= b`` tightens to
    ``(a_i/g) x_i <= floor(b/g)`` for ``g = gcd(a_i)``.
    """
    denoms = [c.denominator for _, c in expr.coeffs] + [expr.const.denominator]
    scale = math.lcm(*denoms) if denoms else 1
    e = expr.scale(scale)
    if strict:
        if kind != LE:
            raise ValueError("strictness only applies to inequalities")
        e = e.add(LinExpr.constant(1))
    coeffs = [int(c) for _, c in e.coeffs]
    if kind == LE and coeffs:
        g = math.gcd(*(abs(c) for c in coeffs))
        if g > 1:
            const = Fraction(math.floor(Fraction(e.const) / g))
            e = LinExpr.from_dict(
                {a: c / g for a, c in e.coeffs}, const
            )
    elif kind in (EQ, NE) and coeffs:
        g = math.gcd(*(abs(c) for c in coeffs))
        if g > 1:
            if e.const % g != 0:
                # gcd does not divide the constant: eq is UNSAT, ne is valid.
                # Encode with a constant-only expr the caller will resolve.
                return Constraint(LinExpr.constant(0 if kind == NE else 1), kind)
            e = e.scale(Fraction(1, g))
    return Constraint(e, kind)


@dataclass
class LiaResult:
    """Outcome of a conjunction solve."""

    status: Result
    model: Optional[dict[LinAtom, int]] = None


class LiaSolver:
    """Decision procedure for conjunctions of integer linear literals.

    Parameters
    ----------
    branch_budget:
        Maximum number of branch-and-bound / disequality splits explored.
    enum_budget:
        Maximum number of assignments tried for nonlinear variables.
    enum_range:
        Half-width of the base enumeration window for nonlinear variables.
    memo_size:
        LRU bound on the conjunction-solve memo.  Incremental checking
        re-asks the conjunction solver near-identical literal sets (the
        paired ``ψ`` / ``¬ψ`` proof queries, DPLL(T) re-rounds after a
        restart); keying on the constraint *set* makes exact repeats
        free, and all budgets are deterministic so a memoized answer is
        identical to a recomputed one.
    """

    def __init__(
        self,
        branch_budget: int = 2000,
        enum_budget: int = 20000,
        enum_range: int = 12,
        memo_size: int = 2048,
    ) -> None:
        self.branch_budget = branch_budget
        self.enum_budget = enum_budget
        self.enum_range = enum_range
        self.memo_size = memo_size
        self._memo: OrderedDict[frozenset[Constraint], LiaResult] = OrderedDict()

    # -- public entry --------------------------------------------------

    def solve(self, constraints: Sequence[Constraint]) -> LiaResult:
        """Decide a conjunction; model covers every atom mentioned.

        Results are memoized by constraint set; callers must not mutate
        a returned model."""
        key = frozenset(constraints)
        hit = self._memo.get(key)
        if hit is not None:
            self._memo.move_to_end(key)
            return hit
        try:
            model = self._solve_nonlinear(list(constraints))
        except BudgetExhausted:
            result = LiaResult(Result.UNKNOWN)
        else:
            if model is None:
                result = LiaResult(Result.UNSAT)
            else:
                result = LiaResult(Result.SAT, model)
        self._memo[key] = result
        while len(self._memo) > self.memo_size:
            self._memo.popitem(last=False)
        return result

    # -- nonlinear layer -------------------------------------------------

    def _solve_nonlinear(
        self, constraints: list[Constraint]
    ) -> Optional[dict[LinAtom, int]]:
        constraints, pinned = _propagate_constants(constraints)
        if constraints is None:
            return None
        nonlin_vars = _nonlinear_vars(constraints)
        if not nonlin_vars:
            model = self._solve_linear(constraints, self.branch_budget)
            if model is None:
                return None
            model.update(pinned)
            return _complete_products(model)

        # Bounded fair enumeration over the nonlinear variables.
        ordered = sorted(nonlin_vars, key=lambda v: v.name)
        seeds = _seed_values(constraints, self.enum_range)
        tried = 0
        for values in itertools.product(seeds, repeat=len(ordered)):
            tried += 1
            if tried > self.enum_budget:
                raise BudgetExhausted("nonlinear enumeration budget")
            subst = dict(zip(ordered, values))
            reduced = _substitute_all(constraints, subst)
            reduced, more_pinned = _propagate_constants(reduced)
            if reduced is None:
                continue
            if _nonlinear_vars(reduced):
                continue  # substitution did not fully linearise; try next
            model = self._solve_linear(reduced, max(self.branch_budget // 10, 50))
            if model is not None:
                model.update(pinned)
                model.update(more_pinned)
                for v, val in subst.items():
                    model[v] = val
                return _complete_products(model)
        raise BudgetExhausted("nonlinear enumeration exhausted")

    # -- linear layer ------------------------------------------------------

    def _solve_linear(
        self, constraints: list[Constraint], budget: int
    ) -> Optional[dict[LinAtom, int]]:
        """Branch-and-bound around the rational relaxation."""
        stack: list[list[Constraint]] = [constraints]
        spent = 0
        while stack:
            cons = stack.pop()
            spent += 1
            if spent > budget:
                raise BudgetExhausted("branch-and-bound budget")
            rat = _solve_rational(cons)
            if rat is None:
                continue
            # Repair a fractional assignment first.
            frac = next(
                (a for a, v in rat.items() if v.denominator != 1), None
            )
            if frac is not None:
                v = rat[frac]
                below = LinExpr.atom(frac).add(
                    LinExpr.constant(-math.floor(v))
                )
                above = LinExpr.atom(frac, -1).add(
                    LinExpr.constant(math.ceil(v))
                )
                stack.append(cons + [normalize(below, LE)])
                stack.append(cons + [normalize(above, LE)])
                continue
            int_model = {a: int(v) for a, v in rat.items()}
            # Repair a violated disequality.
            bad = next(
                (
                    c
                    for c in cons
                    if c.kind == NE and _eval_lin(c.expr, int_model) == 0
                ),
                None,
            )
            if bad is not None:
                lo = bad.expr.add(LinExpr.constant(1))  # expr <= -1
                hi = bad.expr.scale(-1).add(LinExpr.constant(1))  # expr >= 1
                stack.append(cons + [normalize(lo, LE)])
                stack.append(cons + [normalize(hi, LE)])
                continue
            return int_model
        return None


# ---------------------------------------------------------------------------
# Rational relaxation: Gaussian elimination + Fourier–Motzkin
# ---------------------------------------------------------------------------


def _solve_rational(
    constraints: list[Constraint],
) -> Optional[dict[LinAtom, Fraction]]:
    """Satisfy the eq/le constraints over the rationals, ignoring ne
    (handled by splitting in the caller).  Returns an assignment for every
    atom mentioned, or None if infeasible."""
    eqs = [c.expr for c in constraints if c.kind == EQ]
    les = [c.expr for c in constraints if c.kind == LE]
    all_atoms: set[LinAtom] = set()
    for c in constraints:
        all_atoms |= c.expr.atoms()

    # Gaussian elimination of equalities.
    substitutions: list[tuple[LinAtom, LinExpr]] = []
    while eqs:
        e = eqs.pop()
        if e.is_constant:
            if e.const != 0:
                return None
            continue
        atom, coeff = e.coeffs[0]
        # atom = -(e - coeff*atom)/coeff
        rest = e.substitute(atom, LinExpr.constant(0))
        repl = rest.scale(Fraction(-1, 1) / coeff)
        substitutions.append((atom, repl))
        eqs = [x.substitute(atom, repl) for x in eqs]
        les = [x.substitute(atom, repl) for x in les]

    # Fourier–Motzkin elimination with recorded stages.
    les = [e for e in les if not (e.is_constant and e.const <= 0)]
    for e in les:
        if e.is_constant and e.const > 0:
            return None
    stages: list[tuple[LinAtom, list[LinExpr], list[LinExpr]]] = []
    remaining = [e for e in les if not e.is_constant]

    def pick_var(exprs: list[LinExpr]) -> LinAtom:
        counts: dict[LinAtom, tuple[int, int]] = {}
        for e in exprs:
            for a, c in e.coeffs:
                lo, hi = counts.get(a, (0, 0))
                if c < 0:
                    counts[a] = (lo + 1, hi)
                else:
                    counts[a] = (lo, hi + 1)
        # Minimise the number of generated combinations (lo*hi).
        return min(counts, key=lambda a: counts[a][0] * counts[a][1])

    while remaining:
        x = pick_var(remaining)
        lowers: list[LinExpr] = []  # x >= expr
        uppers: list[LinExpr] = []  # x <= expr
        others: list[LinExpr] = []
        for e in remaining:
            c = e.coeff_of(x)
            if c == 0:
                others.append(e)
                continue
            rest = e.substitute(x, LinExpr.constant(0)).scale(Fraction(-1) / c)
            if c > 0:
                uppers.append(rest)  # c*x + rest' <= 0  =>  x <= rest
            else:
                lowers.append(rest)
        stages.append((x, lowers, uppers))
        for lo in lowers:
            for up in uppers:
                combo = lo.sub(up)  # lo <= x <= up  =>  lo - up <= 0
                if combo.is_constant:
                    if combo.const > 0:
                        return None
                else:
                    others.append(combo)
        remaining = others

    # Back-substitution: assign eliminated variables innermost-first.
    assignment: dict[LinAtom, Fraction] = {}
    for x, lowers, uppers in reversed(stages):
        lb = max(
            (_eval_lin_frac(e, assignment) for e in lowers), default=None
        )
        ub = min(
            (_eval_lin_frac(e, assignment) for e in uppers), default=None
        )
        assignment[x] = _pick_value(lb, ub)

    # Any atom not touched by inequalities is free: pick 0.
    for a in all_atoms:
        if a not in assignment and not any(a == s for s, _ in substitutions):
            assignment[a] = Fraction(0)

    # Unwind equality substitutions.
    for atom, repl in reversed(substitutions):
        assignment[atom] = _eval_lin_frac(repl, assignment)

    return assignment


def _pick_value(lb: Optional[Fraction], ub: Optional[Fraction]) -> Fraction:
    """A value in [lb, ub], preferring integers, preferring small ones."""
    if lb is None and ub is None:
        return Fraction(0)
    if lb is None:
        assert ub is not None
        return Fraction(min(0, math.floor(ub)))
    if ub is None:
        return Fraction(max(0, math.ceil(lb)))
    if lb > ub:  # pragma: no cover - FM guarantees feasibility
        raise AssertionError("FM produced an empty interval")
    if lb <= 0 <= ub:
        return Fraction(0)
    candidate = Fraction(math.ceil(lb))
    if candidate <= ub:
        return candidate
    return (lb + ub) / 2  # no integer inside: fractional, B&B will repair


# ---------------------------------------------------------------------------
# Helpers: evaluation, constant propagation, nonlinear support
# ---------------------------------------------------------------------------


def _eval_lin_frac(e: LinExpr, env: dict[LinAtom, Fraction]) -> Fraction:
    total = Fraction(e.const)
    for a, c in e.coeffs:
        total += c * env.get(a, Fraction(0))
    return total


def _eval_lin(e: LinExpr, env: dict[LinAtom, int]) -> Fraction:
    total = Fraction(e.const)
    for a, c in e.coeffs:
        total += c * env.get(a, 0)
    return total


def _propagate_constants(
    constraints: list[Constraint],
) -> tuple[Optional[list[Constraint]], dict[LinAtom, int]]:
    """Repeatedly pin *variables* forced to a constant by a unary equality
    and fold nonlinear product atoms whose factors become known.

    Only plain variables are ever pinned: pinning a product atom would
    silently decouple it from its factors and make SAT answers unsound.

    Returns (constraints', pinned) where constraints' is None on direct
    contradiction.
    """
    pinned: dict[LinAtom, int] = {}
    cons = list(constraints)
    for _round in range(len(constraints) + 8):
        progress = False
        out: list[Constraint] = []
        for c in cons:
            e = c.expr
            if e.is_constant:
                v = e.const
                ok = (
                    (c.kind == EQ and v == 0)
                    or (c.kind == LE and v <= 0)
                    or (c.kind == NE and v != 0)
                )
                if not ok:
                    return None, pinned
                progress = True
                continue
            if c.kind == EQ and len(e.coeffs) == 1:
                atom, coeff = e.coeffs[0]
                value = -e.const / coeff
                if value.denominator != 1:
                    return None, pinned
                if isinstance(atom, Var):
                    prev = pinned.get(atom)
                    if prev is not None and prev != int(value):
                        return None, pinned
                    pinned[atom] = int(value)
                    progress = True
                    continue
            out.append(c)
        if not progress:
            return out, pinned
        cons = []
        for c in out:
            e = c.expr
            for atom, val in pinned.items():
                e = e.substitute(atom, LinExpr.constant(val))
            e = _fold_products(e, pinned)
            cons.append(Constraint(e, c.kind))
    return cons, pinned


def _fold_products(e: LinExpr, pinned: dict[LinAtom, int]) -> LinExpr:
    """Linearise product atoms whose factors are (now) known."""
    result = e
    for atom in list(e.atoms()):
        if not isinstance(atom, Mul):
            continue
        const = 1
        unknown: list[Term] = []
        for factor in atom.args:
            if isinstance(factor, IntConst):
                const *= factor.value
            elif factor in pinned:
                const *= pinned[factor]
            else:
                unknown.append(factor)
        if len(unknown) == 0:
            result = result.substitute(atom, LinExpr.constant(const))
        elif len(unknown) == 1:
            result = result.substitute(
                atom, LinExpr.atom(unknown[0], const)
            )
    return result


def _nonlinear_vars(constraints: list[Constraint]) -> set[Var]:
    """Variables occurring inside product atoms."""
    out: set[Var] = set()
    for c in constraints:
        for a in c.expr.atoms():
            if isinstance(a, Mul):
                for f in a.args:
                    if isinstance(f, Var):
                        out.add(f)
                    elif isinstance(f, (Div, Mod)):  # pragma: no cover
                        raise AssertionError(
                            "div/mod must be axiomatised before LIA"
                        )
    return out


def _substitute_all(
    constraints: list[Constraint], subst: dict[Var, int]
) -> list[Constraint]:
    out = []
    for c in constraints:
        e = c.expr
        for v, val in subst.items():
            e = e.substitute(v, LinExpr.constant(val))
        e = _fold_products(e, dict(subst))
        out.append(Constraint(e, c.kind))
    return out


def _seed_values(constraints: list[Constraint], half_width: int) -> list[int]:
    """Fair enumeration order for nonlinear variables: small magnitudes
    first, then constants (and neighbours) appearing in the problem."""
    base: list[int] = [0]
    for k in range(1, half_width + 1):
        base.extend((k, -k))
    extra: set[int] = set()
    for c in constraints:
        k = c.expr.const
        if k.denominator == 1:
            for delta in (-1, 0, 1):
                extra.add(int(k) + delta)
                extra.add(-int(k) + delta)
    ordered = base + sorted(v for v in extra if abs(v) > half_width)
    seen: set[int] = set()
    out: list[int] = []
    for v in ordered:
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out


def _complete_products(model: dict[LinAtom, int]) -> dict[LinAtom, int]:
    """Strip non-variable atoms from the model, keeping the pure variable
    assignment.  Product atoms are fully determined by their factors at
    this point (they were either folded away or their variables enumerated),
    so dropping them loses no information."""
    return {a: v for a, v in model.items() if isinstance(a, Var)}

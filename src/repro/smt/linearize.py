"""Linear-form extraction.

Converts integer terms into :class:`LinExpr` — a sparse linear combination
of *atoms* (variables and irreducible opaque subterms such as uninterpreted
applications, divisions, and nonlinear products) plus a rational constant.
The LIA theory solver works over LinExprs; whatever cannot be expressed
linearly is kept as an opaque atom and resolved by constant propagation or
bounded search (see ``smt.lia``).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Union

from .terms import Add, App, Div, IntConst, Mod, Mul, Term, Var

# Atoms of a linear expression: variables, or opaque irreducible terms.
LinAtom = Term


@dataclass(frozen=True)
class LinExpr:
    """``const + sum(coeffs[a] * a)`` with rational coefficients.

    Immutable; arithmetic helpers return new instances.  Coefficient maps
    never contain zero entries.
    """

    coeffs: tuple[tuple[LinAtom, Fraction], ...]
    const: Fraction

    # -- construction ------------------------------------------------------

    @staticmethod
    def constant(value: Union[int, Fraction]) -> "LinExpr":
        return LinExpr((), Fraction(value))

    @staticmethod
    def atom(a: LinAtom, coeff: Union[int, Fraction] = 1) -> "LinExpr":
        c = Fraction(coeff)
        if c == 0:
            return LinExpr.constant(0)
        return LinExpr(((a, c),), Fraction(0))

    @staticmethod
    def from_dict(coeffs: dict[LinAtom, Fraction], const: Fraction) -> "LinExpr":
        items = tuple(
            sorted(
                ((a, c) for a, c in coeffs.items() if c != 0),
                key=lambda ac: repr(ac[0]),
            )
        )
        return LinExpr(items, const)

    # -- queries -----------------------------------------------------------

    def as_dict(self) -> dict[LinAtom, Fraction]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def atoms(self) -> set[LinAtom]:
        return {a for a, _ in self.coeffs}

    def coeff_of(self, a: LinAtom) -> Fraction:
        for atom, c in self.coeffs:
            if atom == a:
                return c
        return Fraction(0)

    # -- arithmetic --------------------------------------------------------

    def add(self, other: "LinExpr") -> "LinExpr":
        d = self.as_dict()
        for a, c in other.coeffs:
            d[a] = d.get(a, Fraction(0)) + c
        return LinExpr.from_dict(d, self.const + other.const)

    def scale(self, k: Union[int, Fraction]) -> "LinExpr":
        k = Fraction(k)
        if k == 0:
            return LinExpr.constant(0)
        return LinExpr.from_dict(
            {a: c * k for a, c in self.coeffs}, self.const * k
        )

    def sub(self, other: "LinExpr") -> "LinExpr":
        return self.add(other.scale(-1))

    def substitute(self, a: LinAtom, repl: "LinExpr") -> "LinExpr":
        """Replace atom ``a`` with expression ``repl``."""
        c = self.coeff_of(a)
        if c == 0:
            return self
        d = self.as_dict()
        del d[a]
        return LinExpr.from_dict(d, self.const).add(repl.scale(c))

    def __repr__(self) -> str:
        parts = [f"{c}*{a!r}" for a, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


def linearize(t: Term) -> LinExpr:
    """Extract the linear form of ``t``.

    Products with at most one non-constant factor distribute; products of
    two or more non-constant factors, and div/mod/App terms, become opaque
    atoms (the nonlinear residue handled downstream).
    """
    if isinstance(t, IntConst):
        return LinExpr.constant(t.value)
    if isinstance(t, Var):
        return LinExpr.atom(t)
    if isinstance(t, Add):
        acc = LinExpr.constant(0)
        for a in t.args:
            acc = acc.add(linearize(a))
        return acc
    if isinstance(t, Mul):
        linear_parts = [linearize(a) for a in t.args]
        const_factor = Fraction(1)
        non_const: list[LinExpr] = []
        for le in linear_parts:
            if le.is_constant:
                const_factor *= le.const
            else:
                non_const.append(le)
        if const_factor == 0:
            return LinExpr.constant(0)
        if not non_const:
            return LinExpr.constant(const_factor)
        if len(non_const) == 1:
            return non_const[0].scale(const_factor)
        # Genuinely nonlinear: keep the original product as an opaque atom.
        return LinExpr.atom(t, const_factor) if const_factor != 1 else LinExpr.atom(t)
    if isinstance(t, (Div, Mod, App)):
        return LinExpr.atom(t)
    raise TypeError(f"cannot linearize {t!r}")


def is_nonlinear_atom(a: LinAtom) -> bool:
    """True for atoms that are not plain variables (products, div/mod, apps)."""
    return not isinstance(a, Var)

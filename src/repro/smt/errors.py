"""Exception hierarchy and result kinds for the first-order solver.

The solver is the substitute for Z3 in this reproduction (see DESIGN.md):
the paper's method is *relatively* complete with respect to a first-order
solver, so the solver's ``UNKNOWN`` outcome is the precise boundary of the
reproduction's completeness, exactly as Z3's incompleteness was for the
original tool (paper §5.3).
"""

from __future__ import annotations

import enum


class SolverError(Exception):
    """Base class for all solver-raised errors."""


class SortError(SolverError):
    """A term was built or used at the wrong sort."""


class UnsupportedTermError(SolverError):
    """A term falls outside the fragment the solver understands."""


class BudgetExhausted(SolverError):
    """An internal search (branch-and-bound, nonlinear enumeration) hit
    its configured budget.  Callers normally convert this to UNKNOWN."""


class Result(enum.Enum):
    """Three-valued satisfiability verdict."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "Result is three-valued; compare against Result.SAT/UNSAT/UNKNOWN "
            "explicitly instead of using truthiness"
        )

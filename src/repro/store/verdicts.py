"""The disk-backed verdict store and the store-aware verification path.

One verification *unit* — a program (or module slice) on one backend
under one semantic configuration — maps to one JSON file under
``<store>/verdicts/``, named by the SHA-256 of its
:class:`StoreKey`.  The entry holds the full
:class:`~repro.driver.report.ProgramResult` row (verdict,
counterexample, synthesized client, every counter) plus the unit's
source text and configuration, so a warm run replays the row byte-for-
byte (only wall clock and the store counters are re-measured) and
``repro store verify`` can re-run any entry from the entry alone.

Module granularity: ``verify_with_store`` decomposes a multi-module scv
program into units via :func:`repro.store.fingerprint.module_slices` —
one unit per module (its dependency slice, demonic client narrowed to
its provides) plus one for the top-level expression.  Units are keyed
by their *slice* digest, so editing one module invalidates exactly the
units whose slices contain it; untouched modules replay from the store.
The per-program row is the deterministic combination of the unit rows
(first counterexample in module order wins; counters are summed), and
it is the same combination cold and warm — which is what makes the
warm/cold differential in CI a byte-identity check.

Crash-safety mirrors the solver shards: entries are written to a temp
file and published with ``os.replace``; concurrent writers racing on
the same key write identical bytes (results are deterministic per
key), so last-rename-wins is harmless.  An unreadable or corrupt entry
is a miss — the unit re-verifies and the entry is rewritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, replace
from typing import Optional

from ..driver.report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_ERROR,
    STATUS_NO_MODEL,
    STATUS_TIMEOUT,
    STATUS_TRUNCATED,
    STATUS_UNSUPPORTED,
    ProgramResult,
    result_from_row,
)
from ..lang.parser import ParseError, parse_program
from ..lang.pretty import pp_program
from ..lang.sexp import ReadError
from ..smt import solver_cache
from .fingerprint import (
    CLIENT_ALL,
    STORE_VERSION,
    _SEMANTIC_CONFIG_FIELDS,
    DigestError,
    config_digest,
    module_slices,
    program_digest,
)
from .solver import SolverStore

#: Default store directory (CLI ``--store`` with no value, and the
#: ``REPRO_STORE`` environment variable's fallback).
DEFAULT_STORE_DIR = ".repro-store"


@dataclass(frozen=True)
class StoreKey:
    """What a stored verdict is a verdict *of*."""

    program: str  # canonical digest of the unit's (slice) program
    backend: str
    config: str  # semantic-config digest (repro.store.fingerprint)
    client: str  # "all" | "main" | "mod:<name>"

    def path_name(self) -> str:
        h = hashlib.sha256(
            "|".join((self.program, self.backend, self.config, self.client))
            .encode("utf-8")
        ).hexdigest()
        return h

    def as_dict(self) -> dict:
        return asdict(self)


def _row_to_json(row: ProgramResult) -> dict:
    return asdict(row)


def _row_from_json(d: dict) -> ProgramResult:
    return result_from_row(d)


class VerdictStore:
    """One store directory: ``verdicts/`` entry files + ``solver/``
    shards."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.verdict_dir = os.path.join(root, "verdicts")
        self.index_path = os.path.join(root, "verdicts.index.jsonl")
        self.solver = SolverStore(os.path.join(root, "solver"))

    # -- entries ---------------------------------------------------------

    def _entry_path(self, key: StoreKey) -> str:
        name = key.path_name()
        return os.path.join(self.verdict_dir, name[:2], name + ".json")

    def lookup(self, key: StoreKey) -> Optional[dict]:
        """The stored entry for ``key``, or None (missing, unreadable,
        corrupt, or written by an incompatible store version — all of
        which degrade to recomputation)."""
        path = self._entry_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != STORE_VERSION
            or entry.get("key") != key.as_dict()
            or not isinstance(entry.get("result"), dict)
        ):
            return None
        return entry

    def put(
        self,
        key: StoreKey,
        *,
        name: str,
        kind: str,
        source: str,
        config: dict,
        row: ProgramResult,
    ) -> None:
        entry = {
            "version": STORE_VERSION,
            "key": key.as_dict(),
            "name": name,
            "kind": kind,
            "source": source,
            "config": config,
            "result": _row_to_json(row),
            "created": time.time(),
        }
        path = self._entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=1, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
        self._index_append(key)

    # -- digest index ----------------------------------------------------
    #
    # ``verdicts.index.jsonl`` maps program digests to entry files so a
    # by-digest lookup (``repro serve``'s GET /v1/results/<digest>)
    # opens only the matching entries instead of every file in the
    # store.  It is a *sidecar*: append-only, best-effort, and rebuilt
    # from the entry files — which stay the source of truth — whenever
    # it is missing, unreadable, or stale (a referenced entry vanished,
    # e.g. after gc).

    def _index_append(self, key: StoreKey) -> None:
        line = json.dumps(
            {"program": key.program, "entry": key.path_name()},
            sort_keys=True,
        )
        try:
            with open(self.index_path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
        except OSError:
            pass  # the index is advisory; lookups rebuild it

    def _index_read(self) -> Optional[dict[str, str]]:
        """entry-hash -> program digest, or None when the sidecar is
        missing or corrupt (any unparsable or mis-shaped line)."""
        try:
            with open(self.index_path, encoding="utf-8") as fh:
                text = fh.read()
        except OSError:
            return None
        out: dict[str, str] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                program, entry = rec["program"], rec["entry"]
            except (json.JSONDecodeError, KeyError, TypeError):
                return None
            if not isinstance(program, str) or not isinstance(entry, str):
                return None
            out[entry] = program
        return out

    def rebuild_index(self) -> dict[str, str]:
        """Regenerate the sidecar from the entry files."""
        out: dict[str, str] = {}
        for path in self.entry_paths():
            try:
                with open(path, encoding="utf-8") as fh:
                    program = json.load(fh)["key"]["program"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
            if isinstance(program, str):
                out[os.path.basename(path)[: -len(".json")]] = program
        tmp = f"{self.index_path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                for entry in sorted(out):
                    fh.write(json.dumps(
                        {"program": out[entry], "entry": entry},
                        sort_keys=True,
                    ) + "\n")
            os.replace(tmp, self.index_path)
        except OSError:
            pass
        return out

    def paths_for_digest(self, digest: str) -> list[str]:
        """Entry files whose program digest — or entry-hash file name —
        starts with ``digest``, via the sidecar index.  Stale mappings
        (entry gc'd since the line was written) trigger one rebuild."""
        index = self._index_read()
        if index is None:
            index = self.rebuild_index()
        for _attempt in range(2):
            matches = [
                entry for entry, program in sorted(index.items())
                if entry.startswith(digest) or program.startswith(digest)
            ]
            paths = [
                os.path.join(self.verdict_dir, entry[:2], entry + ".json")
                for entry in matches
            ]
            missing = [p for p in paths if not os.path.exists(p)]
            if not missing:
                return paths
            index = self.rebuild_index()
        return [p for p in paths if os.path.exists(p)]

    def entry_paths(self) -> list[str]:
        out = []
        for dirpath, _dirnames, filenames in os.walk(self.verdict_dir):
            for fn in sorted(filenames):
                if fn.endswith(".json"):
                    out.append(os.path.join(dirpath, fn))
        return sorted(out)

    # -- maintenance -----------------------------------------------------

    def stats(self) -> dict:
        paths = self.entry_paths()
        backends: dict[str, int] = {}
        statuses: dict[str, int] = {}
        unreadable = 0
        for p in paths:
            try:
                with open(p, encoding="utf-8") as fh:
                    e = json.load(fh)
                backend = e["key"]["backend"]
                status = e["result"]["status"]
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                unreadable += 1
                continue
            backends[backend] = backends.get(backend, 0) + 1
            statuses[status] = statuses.get(status, 0) + 1
        verdict_bytes = sum(_size(p) for p in paths)
        solver = self.solver.stats()
        return {
            "root": self.root,
            "verdicts": len(paths),
            "verdicts_by_backend": dict(sorted(backends.items())),
            "verdicts_by_status": dict(sorted(statuses.items())),
            "verdict_bytes": verdict_bytes,
            "unreadable_entries": unreadable,
            "solver_entries": solver["entries"],
            "solver_shards": solver["shards"],
            "solver_bytes": solver["bytes"],
            "total_bytes": verdict_bytes + solver["bytes"],
        }

    def gc(self, max_bytes: Optional[int] = None) -> dict:
        """Compact the solver shards, then (with a bound) evict oldest
        verdict entries — and, as a last resort, the compacted solver
        shard — until the store fits in ``max_bytes``."""
        compacted = self.solver.compact()
        evicted = 0
        if max_bytes is not None:
            by_age = sorted(
                self.entry_paths(), key=lambda p: (_mtime(p), p)
            )
            total = sum(_size(p) for p in by_age) + self.solver.stats()["bytes"]
            while by_age and total > max_bytes:
                victim = by_age.pop(0)
                total -= _size(victim)
                evicted += _unlink(victim)
            if total > max_bytes:
                for p in self.solver._shard_paths():
                    total -= _size(p)
                    evicted += _unlink(p)
                    self.solver._index = None
                    if total <= max_bytes:
                        break
        return {
            "solver_entries": compacted["entries"],
            "solver_shards_removed": compacted["shards_removed"],
            "entries_evicted": evicted,
            "bytes": self.stats()["total_bytes"],
        }


def _size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _mtime(path: str) -> float:
    try:
        return os.path.getmtime(path)
    except OSError:
        return 0.0


def _unlink(path: str) -> int:
    try:
        os.unlink(path)
        return 1
    except OSError:
        return 0


#: Per-process store handles (workers reuse one index per directory).
_STORES: dict[str, VerdictStore] = {}


def get_store(root: str) -> VerdictStore:
    store = _STORES.get(root)
    if store is None:
        store = _STORES[root] = VerdictStore(root)
    return store


# ---------------------------------------------------------------------------
# The store-aware verification path
# ---------------------------------------------------------------------------

#: Deterministic status precedence for combining unit rows (after the
#: first-counterexample rule): a driver error outranks everything, then
#: the inconclusive statuses, then safe.
_COMBINE_ORDER = (
    STATUS_ERROR,
    STATUS_UNSUPPORTED,
    STATUS_TIMEOUT,
    STATUS_TRUNCATED,
    STATUS_NO_MODEL,
)

_SUMMED_FIELDS = (
    "states_explored", "proof_queries", "solver_queries", "pruned_states",
    "solver_cache_hits", "chained_steps", "solver_fresh_solves",
    "solver_incremental", "solver_clauses_reused", "errors_found",
    "cex_attempts", "compiled_units", "compile_ms", "dispatch_steps",
)


def _combine_units(
    name: str, kind: str, backend: str,
    units: list[tuple[str, ProgramResult]],
) -> ProgramResult:
    """Fold unit rows into one per-program row, deterministically: the
    first unit (in module order) with a validated counterexample decides
    the verdict; otherwise the worst status by ``_COMBINE_ORDER``; all
    work counters are summed (scope depth takes the max)."""
    chosen_marker, chosen = None, None
    for marker, row in units:
        if row.status == STATUS_COUNTEREXAMPLE:
            chosen_marker, chosen = marker, row
            break
    if chosen is None:
        for status in _COMBINE_ORDER:
            for marker, row in units:
                if row.status == status:
                    chosen_marker, chosen = marker, row
                    break
            if chosen is not None:
                break
    if chosen is None:  # every unit is safe
        chosen_marker, chosen = units[0]
    detail = chosen.detail
    if detail and chosen_marker != CLIENT_ALL:
        detail = f"[{chosen_marker}] {detail}"
    sums = {
        f: sum(getattr(r, f) for _, r in units) for f in _SUMMED_FIELDS
    }
    return ProgramResult(
        name=name,
        kind=kind,
        status=chosen.status,
        wall_ms=sum(r.wall_ms for _, r in units),
        backend=backend,
        solver_scope_depth=max(r.solver_scope_depth for _, r in units),
        deadline_enforced=all(r.deadline_enforced for _, r in units),
        counterexample=chosen.counterexample,
        detail=detail,
        **sums,
    )


def _semantic_config(config) -> dict:
    fields = asdict(config)
    return {k: fields[k] for k in sorted(_SEMANTIC_CONFIG_FIELDS)}


def _plan_units(program, source: str, backend: str):
    """The verification units of a program: ``(client_marker,
    slice_program, client_of, unit_source)`` tuples, one per unit."""
    units = module_slices(program) if backend == "scv" else None
    if units is None:
        return [(CLIENT_ALL, program, None, source)]
    return [
        (marker, slice_prog, client_of, pp_program(slice_prog))
        for marker, slice_prog, client_of in units
    ]


def _store_verify(
    source: str,
    *,
    name: str,
    kind: str,
    config,
    backend: str,
    replay_only: bool,
) -> Optional[ProgramResult]:
    from ..driver.backends import get_backend

    cfg = config
    assert cfg is not None and cfg.store_dir, "store path requires store_dir"
    engine = get_backend(backend)
    store = get_store(cfg.store_dir)
    t0 = time.perf_counter()
    try:
        program = parse_program(source)
        cfg_digest = config_digest(asdict(cfg))
        work = _plan_units(program, source, backend)
    except (ParseError, ReadError, DigestError):
        # Outside the canonicalizable subset: verify directly, uncached
        # (a replay-only caller cannot answer it from the store at all).
        if replay_only:
            return None
        return engine.verify(source, name=name, kind=kind, config=cfg)

    keyed = [
        (
            StoreKey(
                program=program_digest(slice_prog),
                backend=backend,
                config=cfg_digest,
                client=marker,
            ),
            marker,
            client_of,
            unit_source,
        )
        for marker, slice_prog, client_of, unit_source in work
    ]

    hits = misses = 0
    rows: list[tuple[str, ProgramResult]] = []

    if replay_only:
        # The warm synchronous path: every unit must replay, or the
        # caller falls back to a queued job.  No engine, no solver
        # backing — a pure read of the store.
        for key, marker, _client_of, _unit_source in keyed:
            entry = store.lookup(key)
            if entry is None:
                return None
            try:
                row = _row_from_json(entry["result"])
            except TypeError:
                return None  # schema drift inside the row: recompute
            hits += 1
            rows.append((marker, row))
    else:
        prev_backing = solver_cache.backing
        solver_cache.backing = store.solver
        try:
            for key, marker, client_of, unit_source in keyed:
                entry = store.lookup(key)
                if entry is not None:
                    try:
                        row = _row_from_json(entry["result"])
                    except TypeError:
                        entry = None  # schema drift in the row: recompute
                    else:
                        hits += 1
                        rows.append((marker, row))
                        continue
                unit_name = (
                    name if marker == CLIENT_ALL else f"{name}::{marker}"
                )
                row = engine.verify(
                    unit_source,
                    name=unit_name,
                    kind=kind,
                    # Unit runs drop store_dir (no nested store lookups)
                    # but keep the store's compiled-unit cache, so the
                    # lowered bytecode for a program digest is shared
                    # across units and across warm restarts.
                    config=replace(
                        cfg, client_of=client_of, store_dir=None,
                        compile_cache_dir=os.path.join(
                            store.root, "compiled"),
                    ),
                )
                misses += 1
                if row.status != STATUS_ERROR:
                    # Driver errors are bugs: never immortalize them.
                    store.put(
                        key,
                        name=unit_name,
                        kind=kind,
                        source=unit_source,
                        config={
                            **_semantic_config(cfg), "client_of": client_of,
                        },
                        row=row,
                    )
                rows.append((marker, row))
        finally:
            store.solver.flush()
            solver_cache.backing = prev_backing

    if len(rows) == 1:
        combined = replace(rows[0][1], name=name, kind=kind)
    else:
        combined = _combine_units(name, kind, backend, rows)
    return replace(
        combined,
        wall_ms=(
            combined.wall_ms if misses else
            (time.perf_counter() - t0) * 1000
        ),
        store_hits=hits,
        store_misses=misses,
        modules_reverified=misses,
    )


def verify_with_store(
    source: str,
    *,
    name: str = "<input>",
    kind: str = "?",
    config=None,
    backend: str = "core",
) -> ProgramResult:
    """``runner.verify_source`` with the persistent store in the loop.

    Parses the program, decomposes it into units (multi-module scv
    programs only), replays stored unit rows and re-verifies the rest,
    then combines.  The returned row carries the store economy counters:
    ``store_hits``/``store_misses`` (unit lookups) and
    ``modules_reverified`` (units actually recomputed)."""
    row = _store_verify(
        source, name=name, kind=kind, config=config, backend=backend,
        replay_only=False,
    )
    assert row is not None  # replay_only=False always produces a row
    return row


def try_replay(
    source: str,
    *,
    name: str = "<input>",
    kind: str = "?",
    config=None,
    backend: str = "core",
) -> Optional[ProgramResult]:
    """Answer a verification request purely from the store, or ``None``.

    The warm synchronous path of ``repro serve``: when *every* unit of
    the program is already stored, the combined row — identical to what
    ``verify_with_store`` would return, with ``store_misses == 0`` — is
    assembled without running an engine or touching a solver.  Any unit
    miss (or an unparseable/undigestable program) returns ``None`` and
    the caller schedules real work instead."""
    return _store_verify(
        source, name=name, kind=kind, config=config, backend=backend,
        replay_only=True,
    )


# ---------------------------------------------------------------------------
# ``repro store verify`` — spot-check stored verdicts against fresh runs
# ---------------------------------------------------------------------------


def _stable_row(d: dict) -> dict:
    from ..driver.report import VOLATILE_ROW_FIELDS

    return {k: v for k, v in d.items() if k not in VOLATILE_ROW_FIELDS}


def check_entries(store: VerdictStore, *, sample: Optional[int] = None
                  ) -> dict:
    """Re-verify a deterministic sample of stored entries from their own
    recorded source + config and compare the stable row fields.

    Returns ``{"checked", "matched", "skipped", "mismatches"}`` where
    each mismatch names the entry and the differing fields.  Entries
    whose config digest no longer matches the current store/schema
    version are *stale* (skipped: a fresh run would use different code),
    as are timeout rows (budget-relative by definition)."""
    from ..driver.backends import RunConfig, get_backend

    paths = store.entry_paths()
    if sample is not None and 0 < sample < len(paths):
        # Evenly spaced over the sorted (hash-ordered, i.e. unbiased)
        # entry list — deterministic, so CI runs are reproducible.
        step = len(paths) / sample
        paths = [paths[int(i * step)] for i in range(sample)]
    checked = matched = skipped = 0
    mismatches = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            key = StoreKey(**entry["key"])
            stored = entry["result"]
            cfg_fields = dict(entry["config"])
            client_of = cfg_fields.pop("client_of", None)
            cfg = replace(
                RunConfig(**cfg_fields), client_of=client_of
            )
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            skipped += 1
            mismatches.append({
                "entry": os.path.basename(path),
                "error": f"unreadable: {type(exc).__name__}: {exc}",
            })
            continue
        if (
            entry.get("version") != STORE_VERSION
            or key.config != config_digest(asdict(cfg))
            or stored.get("status") == STATUS_TIMEOUT
        ):
            skipped += 1
            continue
        fresh = get_backend(key.backend).verify(
            entry["source"], name=entry["name"], kind=entry["kind"],
            config=cfg,
        )
        checked += 1
        want = _stable_row(stored)
        got = _stable_row(_row_to_json(fresh))
        if want == got:
            matched += 1
        else:
            diff = sorted(
                k for k in set(want) | set(got) if want.get(k) != got.get(k)
            )
            mismatches.append({
                "entry": os.path.basename(path),
                "name": entry["name"],
                "backend": key.backend,
                "fields": diff,
                "stored": {k: want.get(k) for k in diff},
                "fresh": {k: got.get(k) for k in diff},
            })
    return {
        "checked": checked,
        "matched": matched,
        "skipped": skipped,
        "mismatches": mismatches,
    }

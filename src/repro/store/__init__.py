"""Content-addressed persistent verification store.

Two tiers under one ``--store`` directory:

* :mod:`repro.store.verdicts` — per-unit verification results, keyed by
  canonical program fingerprint × backend × semantic-config digest ×
  client marker, with per-module granularity for multi-module scv
  programs (:func:`repro.store.fingerprint.module_slices`);
* :mod:`repro.store.solver` — the persistent tier behind the
  canonicalizing in-memory solver cache, append-only JSONL shards
  published by atomic rename.

Warm runs replay stored rows byte-for-byte (timing and the store
counters aside), which the warm/cold differential in CI enforces.
"""

from .fingerprint import (
    CLIENT_ALL,
    CLIENT_MAIN,
    CLIENT_MODULE,
    STORE_VERSION,
    DigestError,
    config_digest,
    module_dependencies,
    module_slices,
    program_digest,
    serialize_program,
)
from .solver import SolverStore, flush_all_stores, formula_key
from .verdicts import (
    DEFAULT_STORE_DIR,
    StoreKey,
    VerdictStore,
    get_store,
    try_replay,
    verify_with_store,
)

__all__ = [
    "CLIENT_ALL",
    "CLIENT_MAIN",
    "CLIENT_MODULE",
    "DEFAULT_STORE_DIR",
    "DigestError",
    "STORE_VERSION",
    "SolverStore",
    "StoreKey",
    "VerdictStore",
    "config_digest",
    "flush_all_stores",
    "formula_key",
    "get_store",
    "module_dependencies",
    "module_slices",
    "program_digest",
    "serialize_program",
    "try_replay",
    "verify_with_store",
]

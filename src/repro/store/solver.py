"""Persistent, cross-process shard store for solver results.

The in-memory :class:`~repro.smt.cache.SolverCache` already collapses
isomorphic queries to one canonical formula and caches ``(result,
model)`` per canonical key — but it dies with the process.  This module
gives it a disk tier:

* **serialization** — canonical formulas contain only canonical names
  (``$i`` variables, ``$fi/arity`` function symbols), so a deterministic
  structural writer (:func:`formula_key`) is a faithful key; models are
  already stored canonically as nested int tuples and round-trip through
  JSON.
* **shards** — new entries accumulate in an in-process buffer and are
  published as immutable ``shard-*.jsonl`` files via write-to-temp +
  :func:`os.replace` (atomic on POSIX), so any number of batch-runner
  workers can publish concurrently without locks and readers never see
  a half-written shard under its final name.
* **index** — readers build the key→entry index by scanning every
  shard once, newest last (later entries win, and full entries are
  never downgraded by result-only ones).  Corrupt or truncated lines —
  a crash mid-``write`` before the rename, bit rot, a torn final line —
  are skipped individually: the store degrades to recomputation, never
  to a wrong answer.
* **compaction** — ``repro store gc`` folds all shards into one (the
  on-disk index), dropping duplicates.

The cache consults the store through the ``backing`` protocol
(:meth:`lookup`/:meth:`store`): on an in-memory miss the backing is
probed, on a fresh solve the entry is buffered for the next flush.
Results are pure functions of the canonical formula, so sharing entries
across programs, processes and runs can never change a verdict — only
how fast it is reached.
"""

from __future__ import annotations

import json
import os
import uuid
import weakref
from typing import Optional

from ..smt.cache import _CachedModel  # noqa: F401  (documented entry shape)
from ..smt.errors import Result, SolverError
from ..smt.terms import (
    Add,
    And,
    App,
    BoolConst,
    Div,
    Eq,
    Formula,
    Iff,
    Implies,
    IntConst,
    Le,
    Lt,
    Mod,
    Mul,
    Not,
    Or,
    Term,
    Var,
)

#: Entry shape stored per line: [key, result, model-or-null, model_known]
_SHARD_PREFIX = "shard-"
_RESULTS = {r.value: r for r in Result}

#: Every live SolverStore in this process, for teardown flushing: a
#: worker that buffered entries but dies before its normal end-of-run
#: flush (SIGTERM mid-verify, an atexit path, a drained serve worker)
#: publishes them via :func:`flush_all_stores` instead of losing them.
_LIVE_STORES: "weakref.WeakSet[SolverStore]" = weakref.WeakSet()


def flush_all_stores() -> int:
    """Publish the buffered entries of every live store (no-op for
    empty buffers).  Returns the number of shards written.  Safe to call
    from ``atexit`` hooks and signal handlers: flushing is a plain
    write-to-temp + atomic rename, and an already-flushed store simply
    has nothing to do."""
    written = 0
    for store in list(_LIVE_STORES):
        try:
            if store.flush() is not None:
                written += 1
        except OSError:
            continue  # a dead tempdir at interpreter exit: nothing to save
    return written


def _term_key(t: Term) -> str:
    if isinstance(t, Var):
        return t.name  # canonical "$i"
    if isinstance(t, IntConst):
        return str(t.value)
    if isinstance(t, Add):
        return "(+ " + " ".join(_term_key(a) for a in t.args) + ")"
    if isinstance(t, Mul):
        return "(* " + " ".join(_term_key(a) for a in t.args) + ")"
    if isinstance(t, Div):
        return f"(/ {_term_key(t.num)} {_term_key(t.den)})"
    if isinstance(t, Mod):
        return f"(% {_term_key(t.num)} {_term_key(t.den)})"
    if isinstance(t, App):
        args = " ".join(_term_key(a) for a in t.args)
        return f"({t.func.name}/{t.func.arity} {args})"
    raise SolverError(f"cannot serialize term {t!r}")


def formula_key(f: Formula) -> str:
    """Deterministic textual key for a *canonical* formula."""
    if isinstance(f, BoolConst):
        return "#t" if f.value else "#f"
    if isinstance(f, Eq):
        return f"(= {_term_key(f.lhs)} {_term_key(f.rhs)})"
    if isinstance(f, Le):
        return f"(<= {_term_key(f.lhs)} {_term_key(f.rhs)})"
    if isinstance(f, Lt):
        return f"(< {_term_key(f.lhs)} {_term_key(f.rhs)})"
    if isinstance(f, Not):
        return f"(! {formula_key(f.arg)})"
    if isinstance(f, And):
        return "(& " + " ".join(formula_key(a) for a in f.args) + ")"
    if isinstance(f, Or):
        return "(| " + " ".join(formula_key(a) for a in f.args) + ")"
    if isinstance(f, Implies):
        return f"(=> {formula_key(f.lhs)} {formula_key(f.rhs)})"
    if isinstance(f, Iff):
        return f"(<=> {formula_key(f.lhs)} {formula_key(f.rhs)})"
    raise SolverError(f"cannot serialize formula {f!r}")


def _freeze_model(m) -> Optional[tuple]:
    """JSON lists back to the nested-tuple ``_CachedModel`` shape."""
    if m is None:
        return None
    env, funcs = m
    return (
        tuple((int(i), int(v)) for i, v in env),
        tuple(
            (int(i), tuple((tuple(int(a) for a in args), int(v))
                           for args, v in table))
            for i, table in funcs
        ),
    )


def _valid_entry(row) -> bool:
    return (
        isinstance(row, list)
        and len(row) == 4
        and isinstance(row[0], str)
        and row[1] in _RESULTS
        and isinstance(row[3], bool)
    )


class SolverStore:
    """One directory of append-only solver-result shards."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._index: Optional[dict[str, tuple[Result, Optional[tuple], bool]]]
        self._index = None
        self._buffer: dict[str, tuple[Result, Optional[tuple], bool]] = {}
        self.loaded_shards = 0
        self.skipped_lines = 0
        _LIVE_STORES.add(self)

    # -- loading ---------------------------------------------------------

    def _shard_paths(self) -> list[str]:
        try:
            names = sorted(
                n for n in os.listdir(self.root)
                if n.startswith(_SHARD_PREFIX) and n.endswith(".jsonl")
            )
        except OSError:
            return []
        return [os.path.join(self.root, n) for n in names]

    def index(self) -> dict[str, tuple[Result, Optional[tuple], bool]]:
        """The key→entry map, built lazily from every shard on disk."""
        if self._index is not None:
            return self._index
        idx: dict[str, tuple[Result, Optional[tuple], bool]] = {}
        for path in self._shard_paths():
            try:
                with open(path, encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            row = json.loads(line)
                        except json.JSONDecodeError:
                            self.skipped_lines += 1
                            continue  # torn or corrupt line: recompute
                        if not _valid_entry(row):
                            self.skipped_lines += 1
                            continue
                        key, res, model, known = row
                        try:
                            entry = (_RESULTS[res], _freeze_model(model),
                                     bool(known))
                        except (TypeError, ValueError):
                            self.skipped_lines += 1
                            continue
                        old = idx.get(key)
                        if old is not None and old[2] and not entry[2]:
                            continue  # never shadow a full entry
                        idx[key] = entry
                self.loaded_shards += 1
            except OSError:
                continue  # unreadable shard: behave as if absent
        self._index = idx
        return idx

    # -- the SolverCache ``backing`` protocol ----------------------------

    def lookup(self, canon: Formula):
        """Entry for a canonical formula, or None."""
        try:
            key = formula_key(canon)
        except SolverError:
            return None
        entry = self._buffer.get(key)
        if entry is None:
            entry = self.index().get(key)
        return entry

    def store(self, canon: Formula, result: Result, model, model_known: bool
              ) -> None:
        """Buffer a freshly solved entry for the next flush (no-op when
        the store already holds it at least as completely)."""
        try:
            key = formula_key(canon)
        except SolverError:
            return
        old = self._buffer.get(key) or self.index().get(key)
        if old is not None and (old[2] or not model_known):
            return
        self._buffer[key] = (result, model, model_known)

    def refresh(self) -> None:
        """Drop the cached index so the next lookup rescans the shard
        directory.  Long-lived readers sharing a directory with live
        writers — the sharded search's workers between frontier levels —
        call this to pick up sibling shards published since the index
        was built; buffered (unflushed) entries are unaffected."""
        self._index = None

    # -- publishing ------------------------------------------------------

    def flush(self) -> Optional[str]:
        """Publish buffered entries as one new immutable shard
        (write-to-temp + atomic rename); returns the shard path."""
        if not self._buffer:
            return None
        os.makedirs(self.root, exist_ok=True)
        rows = [
            json.dumps([k, r.value, m, known], sort_keys=True)
            for k, (r, m, known) in sorted(self._buffer.items())
        ]
        name = f"{_SHARD_PREFIX}{uuid.uuid4().hex}-{os.getpid()}.jsonl"
        tmp = os.path.join(self.root, f".tmp-{name}")
        final = os.path.join(self.root, name)
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write("\n".join(rows) + "\n")
        os.replace(tmp, final)
        if self._index is not None:
            self._index.update(self._buffer)
        self._buffer.clear()
        return final

    # -- maintenance -----------------------------------------------------

    def stats(self) -> dict:
        paths = self._shard_paths()
        return {
            "entries": len(self.index()),
            "shards": len(paths),
            "bytes": sum(_size(p) for p in paths),
            "skipped_lines": self.skipped_lines,
        }

    def compact(self) -> dict:
        """Fold every shard into a single deduplicated one (the on-disk
        index).  Safe against concurrent writers: only the shards that
        existed when compaction started are removed."""
        before = self._shard_paths()
        self._index = None  # re-read everything, including new shards
        idx = self.index()
        if not idx:
            for p in before:
                _unlink(p)
            return {"entries": 0, "shards_removed": len(before)}
        self._buffer = dict(idx)
        self._index = {}
        merged = self.flush()
        removed = 0
        for p in before:
            if merged is not None and os.path.basename(p) == \
                    os.path.basename(merged):
                continue
            removed += _unlink(p)
        self._index = idx
        return {"entries": len(idx), "shards_removed": removed}


def _size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _unlink(path: str) -> int:
    try:
        os.unlink(path)
        return 1
    except OSError:
        return 0

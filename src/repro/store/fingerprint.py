"""Content-addressed identities for programs, module slices and configs.

The persistent verdict store (:mod:`repro.store.verdicts`) keys results
by *what was verified*, not by file name or source bytes.  Three layers
of canonicalization make the keys stable:

* **format invariance** — digests are computed over the parsed AST, so
  whitespace, comments and surface sugar (``let``/``cond``/``define``)
  never perturb the key;
* **rename invariance** — every locally bound variable (lambda
  parameters, ``letrec``/``define`` bindings *inside* expressions) is
  serialized as a positional ``(b i)`` token, the expression-level twin
  of the state fingerprints in :mod:`repro.search.fingerprint`.
  Module-level names (definitions, opaque imports, provides, struct
  fields) are part of the observable interface — they appear in blame
  messages and monitored rebinding — and keep their names;
* **metadata erasure** — parse-minted blame labels and display names
  (``lang.pretty.strip_metadata``) are excluded, so re-parsing the same
  text in a different label-counter state yields the same digest.

``module_slices`` is the granularity story: for a multi-module program
it computes, per module, the ordered subset of *earlier* modules the
module's code can actually reach (free variables resolving to earlier
provides or struct bindings — the module-boundary structure of
``scv.engine.assemble``, where each module's ``letrec`` wraps everything
after it).  A module's verification unit is keyed by the digest of its
slice, so editing one module re-verifies only the units whose slices
contain it.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Optional

from ..lang.ast import (
    Module,
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from ..lang.sexp import Symbol

#: Bumped whenever the serialization below (or the stored entry format)
#: changes incompatibly; part of every config digest, so an old store
#: directory degrades to a cold cache instead of replaying stale shapes.
STORE_VERSION = 1


class DigestError(Exception):
    """The program contains a node the canonical serializer cannot walk
    (store keys must never silently collapse distinct programs)."""


# ---------------------------------------------------------------------------
# Canonical serialization of surface programs
# ---------------------------------------------------------------------------


def _datum(d: object) -> str:
    """A type-disambiguated token for a quoted datum (bool before int:
    bool is an int subclass)."""
    if isinstance(d, bool):
        return f"#bool:{d}"
    if isinstance(d, (int, float, complex, str)):
        return f"#{type(d).__name__}:{d!r}"
    if isinstance(d, Fraction):
        return f"#frac:{d.numerator}/{d.denominator}"
    if isinstance(d, Symbol):
        return f"#sym:{d.name}"
    if isinstance(d, (list, tuple)):
        return "#list(" + " ".join(_datum(x) for x in d) + ")"
    return f"#datum:{d!r}"


class _Serializer:
    """Alpha-invariant serialization: bound variables become positional
    ``(b i)`` tokens, free variables keep their names under a distinct
    ``(f name)`` tag — the two can never collide however a program names
    its locals."""

    def __init__(self) -> None:
        self._depth = 0

    def expr(self, e: UExpr, env: dict[str, int]) -> str:
        if isinstance(e, Quote):
            return f"(q {_datum(e.datum)})"
        if isinstance(e, UVar):
            idx = env.get(e.name)
            return f"(b {idx})" if idx is not None else f"(f {e.name})"
        if isinstance(e, UOpaque):
            return "(opq)"
        if isinstance(e, ULam):
            inner = dict(env)
            for p in e.params:
                inner[p] = self._depth
                self._depth += 1
            return f"(lam {len(e.params)} {self.expr(e.body, inner)})"
        if isinstance(e, ULetrec):
            inner = dict(env)
            for n, _ in e.bindings:
                inner[n] = self._depth
                self._depth += 1
            bs = " ".join(self.expr(x, inner) for _, x in e.bindings)
            return f"(lr ({bs}) {self.expr(e.body, inner)})"
        if isinstance(e, UApp):
            args = " ".join(self.expr(a, env) for a in e.args)
            return f"(app {self.expr(e.fn, env)} {args})"
        if isinstance(e, UIf):
            return (f"(if {self.expr(e.test, env)} {self.expr(e.then, env)} "
                    f"{self.expr(e.orelse, env)})")
        if isinstance(e, UBegin):
            return "(beg " + " ".join(self.expr(x, env) for x in e.exprs) + ")"
        if isinstance(e, USet):
            idx = env.get(e.name)
            tgt = f"(b {idx})" if idx is not None else f"(f {e.name})"
            return f"(set {tgt} {self.expr(e.value, env)})"
        raise DigestError(f"cannot serialize expression {e!r}")

    def module(self, m: Module) -> str:
        # Module-level names are interface, not alpha-renameable: they
        # name blame parties, monitored rebindings and struct bindings.
        parts = [f"(mod {m.name}"]
        for sd in m.structs:
            parts.append(f"(st {sd.name} ({' '.join(sd.fields)}))")
        for oname, ctc in m.opaques:
            c = "-" if ctc is None else self.expr(ctc, {})
            parts.append(f"(imp {oname} {c})")
        for name, e in m.definitions:
            parts.append(f"(def {name} {self.expr(e, {})})")
        for p in m.provides:
            c = "-" if p.contract is None else self.expr(p.contract, {})
            parts.append(f"(prov {p.name} {c})")
        return " ".join(parts) + ")"


def serialize_program(program: Program) -> str:
    """The canonical, rename-invariant serialization the digests hash."""
    s = _Serializer()
    parts = [s.module(m) for m in program.modules]
    if program.main is not None:
        parts.append(f"(main {s.expr(program.main, {})})")
    return "\n".join(parts)


def program_digest(program: Program) -> str:
    """A stable hex identity for a parsed program."""
    return hashlib.sha256(
        serialize_program(program).encode("utf-8")
    ).hexdigest()


def config_digest(fields: dict) -> str:
    """A stable hex identity for everything about a run configuration
    that can change a verification *result* (budgets, translation mode,
    strategy, memoisation, incrementality) plus the store and report
    schema versions — so format changes invalidate instead of corrupt.
    Worker count and store location are deliberately excluded: they
    change how a result is computed, never what it is."""
    from ..driver.report import SCHEMA

    payload = {
        "store": STORE_VERSION,
        "schema": SCHEMA,
        **{k: fields[k] for k in sorted(_SEMANTIC_CONFIG_FIELDS)},
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


#: RunConfig fields that participate in the config digest.
_SEMANTIC_CONFIG_FIELDS = frozenset({
    "max_states", "fuel", "timeout_s", "max_cex_attempts",
    "mode", "strategy", "memo", "incremental",
})


# ---------------------------------------------------------------------------
# Free variables and module slices
# ---------------------------------------------------------------------------


def free_vars(e: UExpr, bound: frozenset[str] = frozenset()) -> set[str]:
    """Variable names ``e`` references without binding them locally."""
    if isinstance(e, UVar):
        return set() if e.name in bound else {e.name}
    if isinstance(e, (Quote, UOpaque)):
        return set()
    if isinstance(e, ULam):
        return free_vars(e.body, bound | frozenset(e.params))
    if isinstance(e, ULetrec):
        inner = bound | frozenset(n for n, _ in e.bindings)
        out: set[str] = set()
        for _, x in e.bindings:
            out |= free_vars(x, inner)
        return out | free_vars(e.body, inner)
    if isinstance(e, UApp):
        out = free_vars(e.fn, bound)
        for a in e.args:
            out |= free_vars(a, bound)
        return out
    if isinstance(e, UIf):
        return (free_vars(e.test, bound) | free_vars(e.then, bound)
                | free_vars(e.orelse, bound))
    if isinstance(e, UBegin):
        out = set()
        for x in e.exprs:
            out |= free_vars(x, bound)
        return out
    if isinstance(e, USet):
        target = set() if e.name in bound else {e.name}
        return target | free_vars(e.value, bound)
    raise DigestError(f"cannot take free variables of {e!r}")


def _module_exports(m: Module) -> set[str]:
    """Names module ``m`` makes visible downstream: its provides (the
    monitored rebindings of ``scv.engine._wrap_module``), its definitions
    and opaque imports (plain ``letrec`` scope reaches later modules
    too), and its struct bindings (bound in the global base heap)."""
    names = {p.name for p in m.provides}
    names |= {n for n, _ in m.definitions}
    names |= {n for n, _ in m.opaques}
    for sd in m.structs:
        names.add(sd.name)
        names.add(f"{sd.name}?")
        names |= {f"{sd.name}-{f}" for f in sd.fields}
    return names


def _module_refs(m: Module) -> set[str]:
    """Free variables of everything module ``m`` evaluates."""
    local = _module_exports(m)
    out: set[str] = set()
    for _, ctc in m.opaques:
        if ctc is not None:
            out |= free_vars(ctc)
    for _, e in m.definitions:
        out |= free_vars(e)
    for p in m.provides:
        if p.contract is not None:
            out |= free_vars(p.contract)
    return out - local


def module_dependencies(program: Program) -> list[set[int]]:
    """For each module index, the indices of *earlier* modules it
    (transitively) references.  Later modules are out of scope by the
    ``letrec`` nesting of ``scv.engine.assemble``, so only backward
    edges exist."""
    exports = [_module_exports(m) for m in program.modules]
    direct: list[set[int]] = []
    for i, m in enumerate(program.modules):
        refs = _module_refs(m)
        direct.append({j for j in range(i) if refs & exports[j]})
    closed: list[set[int]] = []
    for i in range(len(program.modules)):
        acc = set(direct[i])
        work = list(direct[i])
        while work:
            j = work.pop()
            for k in direct[j] - acc:
                acc.add(k)
                work.append(k)
        closed.append(acc)
    return closed


#: Unit client markers (the ``client`` component of a store key).
CLIENT_ALL = "all"  # whole program, demonic client over every provide
CLIENT_MAIN = "main"  # top-level expression only, no demonic client
CLIENT_MODULE = "mod:"  # + module name: client over that module's provides


def module_slices(
    program: Program,
) -> Optional[list[tuple[str, Program, Optional[str]]]]:
    """Decompose a program into independently verifiable units, or
    ``None`` when it is a single unit (≤1 module and no separable main).

    Each unit is ``(client_marker, slice_program, client_of)`` where the
    slice contains exactly the modules the unit's code can reach and
    ``client_of`` is the value for ``RunConfig.client_of``: a module
    name (demonic client over that module's provides only), or ``""``
    for the main unit (no demonic client).  The union of the units'
    findings covers the whole program: every module is loaded and
    havocked in its own unit, and inter-module misuse is already
    blamed on the (ignored) client party by the monitored rebinding in
    ``scv.engine._wrap_module``."""
    mods = program.modules
    n_units = len(mods) + (1 if program.main is not None else 0)
    if n_units <= 1:
        return None
    deps = module_dependencies(program)
    units: list[tuple[str, Program, Optional[str]]] = []
    for i, m in enumerate(mods):
        keep = sorted(deps[i] | {i})
        slice_prog = Program(tuple(mods[j] for j in keep), None)
        units.append((CLIENT_MODULE + m.name, slice_prog, m.name))
    if program.main is not None:
        exports = [_module_exports(m) for m in mods]
        refs = free_vars(program.main)
        direct = {j for j in range(len(mods)) if refs & exports[j]}
        acc = set(direct)
        work = list(direct)
        while work:
            j = work.pop()
            for k in deps[j] - acc:
                acc.add(k)
                work.append(k)
        keep = sorted(acc)
        units.append(
            (CLIENT_MAIN, Program(tuple(mods[j] for j in keep),
                                  program.main), "")
        )
    return units

"""Error types raised by concrete primitive implementations.

These live in the registry package (the single source of truth for
primitives) and are re-exported by ``lang.prims`` for compatibility;
every engine converts them into blame at the application label.
"""

from __future__ import annotations


class PrimError(Exception):
    """A primitive's precondition was violated."""

    def __init__(self, op: str, message: str) -> None:
        super().__init__(f"{op}: {message}")
        self.op = op
        self.message = message


class UserError(Exception):
    """The program called ``(error ...)`` deliberately."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message

"""Every primitive of the language, declared once.

The first half of this module is the concrete implementations — Python
callables ``fn(args, ctx) -> value`` where ``ctx`` provides
``apply(fn, args)`` (to call back into the interpreter, e.g. for
higher-order list primitives) and ``label`` (the application's blame
label).  Precondition violations raise :class:`PrimError`, which every
engine converts into blame at the application site — exactly the
"partial primitive" error sources of the paper (§3.1).

The second half is *the table*: one ``prim(...)`` registration per
primitive, in the exact order the global frame allocates them
(``scv.engine.build_base_heap`` iterates the registry, and the resulting
``g``-location names leak into deterministic reports — never reorder
committed declarations; append).  Each registration attaches the
metadata the symbolic layers consume: arity, tag signature, refinement
template (``core.delta`` + ``scv.delta``), synthesis rule or custom
untyped rule (``scv.delta``), and the ``core_op`` name under which the
typed machine knows the primitive.

Adding a primitive family is a handful of declarations here (plus
concrete impls, plus — only if it introduces a new heap shape — a tag
and storeable in ``scv.heap``); see the string/vector block at the end
and ARCHITECTURE.md "Primitive registry".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from ..core.heap import HConst, PLe, PLt, PNot, PZero
from ..lang.sexp import Symbol
from ..lang.values import (
    AndContract,
    Box,
    ConsContract,
    Contract,
    DepFuncContract,
    FlatContract,
    FuncContract,
    ListContract,
    ListofContract,
    NIL,
    Nil,
    NotContract,
    OneOfContract,
    OrContract,
    Pair,
    RecContract,
    StructContract,
    StructType,
    VOID,
    Vector,
    from_pylist,
    is_exact,
    is_integer,
    is_number,
    is_real,
    is_truthy,
    racket_equal,
    to_pylist,
)
from ..scv.heap import (
    NUMBER_TAGS,
    REAL_TAGS,
    TAG_BOOLEAN,
    TAG_BOX,
    TAG_INTEGER,
    TAG_NULL,
    TAG_PAIR,
    TAG_PROCEDURE,
    TAG_RATREAL,
    TAG_STRING,
    TAG_SYMBOL,
    TAG_VECTOR,
)
from .errors import PrimError, UserError
from .registry import Refinement, TagSig, alias, at_least, between, exactly, prim
from .rules import (
    ctc_nary_rule,
    cmp_ctc_rule,
    equal_rule,
    pair_sel_rule,
    rule_arrow,
    rule_arrow_d,
    rule_box,
    rule_cons,
    rule_error,
    rule_flat_ctc_p,
    rule_list,
    rule_nonneg_int,
    rule_not,
    rule_one_of,
    rule_rec_ctc,
    rule_set_box,
    rule_struct_ctc,
    rule_substring,
    rule_unbox,
    rule_vector,
    rule_vector_length,
    rule_vector_ref,
    rule_vector_set,
    rule_void,
    syn_abs,
    syn_andmap,
    syn_append,
    syn_filter,
    syn_foldl,
    syn_foldr,
    syn_length,
    syn_list_p,
    syn_map,
    syn_member,
    syn_minmax,
    syn_ormap,
    syn_parity,
    syn_reverse,
)

_INT = frozenset({TAG_INTEGER})
_STR = frozenset({TAG_STRING})
_VEC = frozenset({TAG_VECTOR})


def _want_numbers(op: str, args: list) -> None:
    for a in args:
        if not is_number(a):
            raise PrimError(op, f"expected number, got {a!r}")


def _want_reals(op: str, args: list) -> None:
    for a in args:
        if not is_real(a):
            raise PrimError(op, f"expected real, got {a!r}")


def _want_integers(op: str, args: list) -> None:
    for a in args:
        if not (is_integer(a) and is_exact(a)):
            raise PrimError(op, f"expected exact integer, got {a!r}")


def _norm(v):
    """Normalise exact rationals with denominator 1 to ints."""
    if isinstance(v, Fraction) and v.denominator == 1:
        return int(v)
    return v


def _arity(op: str, args: list, n: int) -> None:
    if len(args) != n:
        raise PrimError(op, f"expected {n} arguments, got {len(args)}")


# ---------------------------------------------------------------------------
# Numbers
# ---------------------------------------------------------------------------


def _prim_add(args, ctx):
    _want_numbers("+", args)
    out = 0
    for a in args:
        out = out + a
    return _norm(out)


def _prim_sub(args, ctx):
    _want_numbers("-", args)
    if not args:
        raise PrimError("-", "needs at least 1 argument")
    if len(args) == 1:
        return _norm(-args[0])
    out = args[0]
    for a in args[1:]:
        out = out - a
    return _norm(out)


def _prim_mul(args, ctx):
    _want_numbers("*", args)
    out = 1
    for a in args:
        out = out * a
    return _norm(out)


def _prim_div(args, ctx):
    _want_numbers("/", args)
    if not args:
        raise PrimError("/", "needs at least 1 argument")
    vals = args if len(args) > 1 else [1] + list(args)
    out = vals[0]
    for a in vals[1:]:
        if a == 0:
            raise PrimError("/", "division by zero")
        if is_exact(out) and is_exact(a):
            out = Fraction(out) / Fraction(a)
        else:
            out = out / a
    return _norm(out)


def _prim_quotient(args, ctx):
    _arity("quotient", args, 2)
    _want_integers("quotient", args)
    if args[1] == 0:
        raise PrimError("quotient", "division by zero")
    a, b = int(args[0]), int(args[1])
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q  # truncating, like Racket


def _prim_remainder(args, ctx):
    _arity("remainder", args, 2)
    _want_integers("remainder", args)
    if args[1] == 0:
        raise PrimError("remainder", "division by zero")
    a, b = int(args[0]), int(args[1])
    return a - b * (abs(a) // abs(b)) * (1 if (a >= 0) == (b >= 0) else -1)


def _prim_modulo(args, ctx):
    _arity("modulo", args, 2)
    _want_integers("modulo", args)
    if args[1] == 0:
        raise PrimError("modulo", "division by zero")
    return int(args[0]) % int(args[1])


def _prim_add1(args, ctx):
    _arity("add1", args, 1)
    _want_numbers("add1", args)
    return _norm(args[0] + 1)


def _prim_sub1(args, ctx):
    _arity("sub1", args, 1)
    _want_numbers("sub1", args)
    return _norm(args[0] - 1)


def _prim_abs(args, ctx):
    _arity("abs", args, 1)
    _want_reals("abs", args)
    return _norm(abs(args[0]))


def _prim_min(args, ctx):
    _want_reals("min", args)
    if not args:
        raise PrimError("min", "needs at least 1 argument")
    return _norm(min(args))


def _prim_max(args, ctx):
    _want_reals("max", args)
    if not args:
        raise PrimError("max", "needs at least 1 argument")
    return _norm(max(args))


def _compare(op: str, py) -> Callable:
    def fn(args, ctx):
        # Comparisons are partial: they require *real* arguments.  This
        # is the precondition the paper's argmin counterexample violates
        # with 0+1i (§5.2).
        if len(args) < 2:
            raise PrimError(op, "needs at least 2 arguments")
        _want_reals(op, args)
        return all(py(args[i], args[i + 1]) for i in range(len(args) - 1))

    return fn


def _prim_num_eq(args, ctx):
    if len(args) < 2:
        raise PrimError("=", "needs at least 2 arguments")
    _want_numbers("=", args)
    return all(args[i] == args[i + 1] for i in range(len(args) - 1))


def _pred(name: str, test) -> Callable:
    def fn(args, ctx):
        _arity(name, args, 1)
        return bool(test(args[0]))

    return fn


def _prim_exact_to_inexact(args, ctx):
    _arity("exact->inexact", args, 1)
    _want_numbers("exact->inexact", args)
    v = args[0]
    if isinstance(v, complex):
        return v
    return float(v)


def _prim_expt(args, ctx):
    _arity("expt", args, 2)
    _want_numbers("expt", args)
    base, power = args
    if is_exact(base) and is_integer(power) and is_exact(power):
        p = int(power)
        if p >= 0:
            return _norm(Fraction(base) ** p)
        if base == 0:
            raise PrimError("expt", "0 to a negative power")
        return _norm(Fraction(base) ** p)
    return base**power


def _prim_sqrt(args, ctx):
    _arity("sqrt", args, 1)
    _want_numbers("sqrt", args)
    v = args[0]
    if is_real(v) and v >= 0:
        if is_exact(v):
            r = int(v) if is_integer(v) else None
            if r is not None:
                s = int(r**0.5)
                for cand in (s - 1, s, s + 1):
                    if cand >= 0 and cand * cand == r:
                        return cand
        return float(v) ** 0.5
    # Negative or complex input: complex result (the numeric tower!).
    return complex(v) ** 0.5


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------


def _prim_cons(args, ctx):
    _arity("cons", args, 2)
    return Pair(args[0], args[1])


def _prim_car(args, ctx):
    _arity("car", args, 1)
    if not isinstance(args[0], Pair):
        raise PrimError("car", f"expected pair, got {args[0]!r}")
    return args[0].car


def _prim_cdr(args, ctx):
    _arity("cdr", args, 1)
    if not isinstance(args[0], Pair):
        raise PrimError("cdr", f"expected pair, got {args[0]!r}")
    return args[0].cdr


def _prim_list(args, ctx):
    return from_pylist(list(args))


def _prim_length(args, ctx):
    _arity("length", args, 1)
    items = to_pylist(args[0])
    if items is None:
        raise PrimError("length", f"expected proper list, got {args[0]!r}")
    return len(items)


def _prim_append(args, ctx):
    lists = []
    for a in args:
        items = to_pylist(a)
        if items is None:
            raise PrimError("append", f"expected proper list, got {a!r}")
        lists.append(items)
    flat = [x for lst in lists for x in lst]
    return from_pylist(flat)


def _prim_reverse(args, ctx):
    _arity("reverse", args, 1)
    items = to_pylist(args[0])
    if items is None:
        raise PrimError("reverse", f"expected proper list, got {args[0]!r}")
    return from_pylist(list(reversed(items)))


def _prim_list_p(args, ctx):
    _arity("list?", args, 1)
    return to_pylist(args[0]) is not None


def _prim_member(args, ctx):
    _arity("member", args, 2)
    v, lst = args
    while isinstance(lst, Pair):
        if racket_equal(v, lst.car):
            return lst
        lst = lst.cdr
    return False


# ---------------------------------------------------------------------------
# Higher-order list primitives (call back into the interpreter)
# ---------------------------------------------------------------------------


def _prim_map(args, ctx):
    if len(args) < 2:
        raise PrimError("map", "needs a function and at least one list")
    f = args[0]
    lists = []
    for a in args[1:]:
        items = to_pylist(a)
        if items is None:
            raise PrimError("map", f"expected proper list, got {a!r}")
        lists.append(items)
    if len({len(l) for l in lists}) > 1:
        raise PrimError("map", "lists differ in length")
    out = [ctx.apply(f, list(row)) for row in zip(*lists)]
    return from_pylist(out)


def _prim_filter(args, ctx):
    _arity("filter", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("filter", f"expected proper list, got {lst!r}")
    return from_pylist([x for x in items if is_truthy(ctx.apply(f, [x]))])


def _prim_foldl(args, ctx):
    _arity("foldl", args, 3)
    f, init, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("foldl", f"expected proper list, got {lst!r}")
    acc = init
    for x in items:
        acc = ctx.apply(f, [x, acc])
    return acc


def _prim_foldr(args, ctx):
    _arity("foldr", args, 3)
    f, init, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("foldr", f"expected proper list, got {lst!r}")
    acc = init
    for x in reversed(items):
        acc = ctx.apply(f, [x, acc])
    return acc


def _prim_andmap(args, ctx):
    _arity("andmap", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("andmap", f"expected proper list, got {lst!r}")
    out = True
    for x in items:
        out = ctx.apply(f, [x])
        if not is_truthy(out):
            return False
    return out


def _prim_ormap(args, ctx):
    _arity("ormap", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("ormap", f"expected proper list, got {lst!r}")
    for x in items:
        out = ctx.apply(f, [x])
        if is_truthy(out):
            return out
    return False


# ---------------------------------------------------------------------------
# Equality, booleans, misc
# ---------------------------------------------------------------------------


def _prim_not(args, ctx):
    _arity("not", args, 1)
    return args[0] is False


def _prim_equal(args, ctx):
    _arity("equal?", args, 2)
    return racket_equal(args[0], args[1])


def _prim_eqv(args, ctx):
    _arity("eqv?", args, 2)
    a, b = args
    if is_number(a) and is_number(b):
        return is_exact(a) == is_exact(b) and a == b
    return a is b or a == b if isinstance(a, (Symbol, str, Nil)) else a is b


def _prim_void(args, ctx):
    return VOID


def _prim_error(args, ctx):
    msg = " ".join(str(a) for a in args) if args else "error"
    raise UserError(msg)


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


def _prim_string_length(args, ctx):
    _arity("string-length", args, 1)
    if not isinstance(args[0], str):
        raise PrimError("string-length", f"expected string, got {args[0]!r}")
    return len(args[0])


def _prim_string_append(args, ctx):
    for a in args:
        if not isinstance(a, str):
            raise PrimError("string-append", f"expected string, got {a!r}")
    return "".join(args)


def _prim_string_eq(args, ctx):
    if len(args) < 2:
        raise PrimError("string=?", "needs at least 2 arguments")
    for a in args:
        if not isinstance(a, str):
            raise PrimError("string=?", f"expected string, got {a!r}")
    return all(args[i] == args[i + 1] for i in range(len(args) - 1))


def _prim_substring(args, ctx):
    if not 2 <= len(args) <= 3:
        raise PrimError(
            "substring", f"expected 2 to 3 arguments, got {len(args)}"
        )
    s = args[0]
    if not isinstance(s, str):
        raise PrimError("substring", f"expected string, got {s!r}")
    _want_integers("substring", list(args[1:]))
    start = int(args[1])
    end = int(args[2]) if len(args) == 3 else len(s)
    if not (0 <= start <= len(s) and 0 <= end <= len(s) and start <= end):
        raise PrimError("substring", "index out of range")
    return s[start:end]


# ---------------------------------------------------------------------------
# Boxes
# ---------------------------------------------------------------------------


def _prim_box(args, ctx):
    _arity("box", args, 1)
    return Box(args[0])


def _prim_unbox(args, ctx):
    _arity("unbox", args, 1)
    if not isinstance(args[0], Box):
        raise PrimError("unbox", f"expected box, got {args[0]!r}")
    return args[0].content


def _prim_set_box(args, ctx):
    _arity("set-box!", args, 2)
    if not isinstance(args[0], Box):
        raise PrimError("set-box!", f"expected box, got {args[0]!r}")
    args[0].content = args[1]
    return VOID


# ---------------------------------------------------------------------------
# Vectors
# ---------------------------------------------------------------------------


def _prim_vector(args, ctx):
    return Vector(list(args))


def _prim_vector_ref(args, ctx):
    _arity("vector-ref", args, 2)
    v, i = args
    if not isinstance(v, Vector):
        raise PrimError("vector-ref", f"expected vector, got {v!r}")
    _want_integers("vector-ref", [i])
    i = int(i)
    if not 0 <= i < len(v.items):
        raise PrimError("vector-ref", "index out of range")
    return v.items[i]


def _prim_vector_set(args, ctx):
    _arity("vector-set!", args, 3)
    v, i, x = args
    if not isinstance(v, Vector):
        raise PrimError("vector-set!", f"expected vector, got {v!r}")
    _want_integers("vector-set!", [i])
    i = int(i)
    if not 0 <= i < len(v.items):
        raise PrimError("vector-set!", "index out of range")
    v.items[i] = x
    return VOID


def _prim_vector_length(args, ctx):
    _arity("vector-length", args, 1)
    if not isinstance(args[0], Vector):
        raise PrimError("vector-length", f"expected vector, got {args[0]!r}")
    return len(args[0].items)


# ---------------------------------------------------------------------------
# Contract constructors
# ---------------------------------------------------------------------------


def _as_contract(v: object) -> Contract:
    """Coerce a value to a contract: contracts pass through, applicable
    values become flat contracts, literals become equality contracts."""
    if isinstance(v, Contract):
        return v
    if callable(getattr(v, "__call__", None)) or _looks_applicable(v):
        return FlatContract(v, name=getattr(v, "name", "flat"))
    # Literal datum: equality contract (Racket coerces these too).
    return OneOfContract((v,))


def _looks_applicable(v: object) -> bool:
    return (
        type(v).__name__ in ("Closure", "Prim", "Guarded", "StructCtor")
        or isinstance(v, StructType)
    )


def _prim_arrow(args, ctx):
    if not args:
        raise PrimError("->", "needs at least a range contract")
    parts = [_as_contract(a) for a in args]
    return FuncContract(tuple(parts[:-1]), parts[-1])


def _prim_make_arrow_d(args, ctx):
    if len(args) < 1:
        raise PrimError("->d", "needs domains and a range maker")
    doms = tuple(_as_contract(a) for a in args[:-1])
    return DepFuncContract(doms, args[-1])


def _prim_and_c(args, ctx):
    return AndContract(tuple(_as_contract(a) for a in args))


def _prim_or_c(args, ctx):
    return OrContract(tuple(_as_contract(a) for a in args))


def _prim_not_c(args, ctx):
    _arity("not/c", args, 1)
    return NotContract(_as_contract(args[0]))


def _prim_cons_c(args, ctx):
    _arity("cons/c", args, 2)
    return ConsContract(_as_contract(args[0]), _as_contract(args[1]))


def _prim_listof(args, ctx):
    _arity("listof", args, 1)
    return ListofContract(_as_contract(args[0]))


def _prim_list_c(args, ctx):
    return ListContract(tuple(_as_contract(a) for a in args))


def _prim_one_of_c(args, ctx):
    return OneOfContract(tuple(args))


def _prim_comparison_c(name: str, op: str) -> Callable:
    def fn(args, ctx):
        _arity(name, args, 1)
        bound = args[0]
        _want_reals(name, [bound])

        def check(vals, inner_ctx):
            v = vals[0]
            if not is_real(v):
                return False
            if op == "=":
                return v == bound
            if op == "<":
                return v < bound
            if op == ">":
                return v > bound
            if op == "<=":
                return v <= bound
            return v >= bound

        from ..lang.runtime import Prim

        return FlatContract(Prim(f"{name}:{bound}", check), name=f"({name} {bound})")

    return fn


def _prim_make_rec_contract(args, ctx):
    _arity("make-rec-contract", args, 1)
    return RecContract(args[0])


def _prim_struct_c(args, ctx):
    if not args:
        raise PrimError("struct/c", "needs a struct constructor")
    ctor = args[0]
    stype = getattr(ctor, "struct_type", None)
    if stype is None:
        raise PrimError("struct/c", f"expected struct constructor, got {ctor!r}")
    fields = tuple(_as_contract(a) for a in args[1:])
    if len(fields) != len(stype.fields):
        raise PrimError(
            "struct/c", f"{stype.name} has {len(stype.fields)} fields"
        )
    return StructContract(stype, fields)


def _prim_flat_contract_p(args, ctx):
    _arity("flat-contract?", args, 1)
    return isinstance(args[0], (FlatContract, OneOfContract))


# ===========================================================================
# The table.  Declaration order is the global-frame allocation order —
# append, never reorder.
# ===========================================================================

_NUM = TagSig(NUMBER_TAGS, "expected number")
_REAL = TagSig(REAL_TAGS, "expected real")
_ANY = TagSig()

prim("+", arity=at_least(0), sig=_NUM, family="arith", core_op="+",
     refine=Refinement("arith", op="+", py=lambda a, b: a + b))(_prim_add)
prim("-", arity=at_least(1), sig=_NUM, family="arith", core_op="-",
     refine=Refinement("arith", op="-", py=lambda a, b: a - b))(_prim_sub)
prim("*", arity=at_least(0), sig=_NUM, family="arith", core_op="*",
     refine=Refinement("arith", op="*", py=lambda a, b: a * b))(_prim_mul)
prim("/", arity=at_least(1), sig=_NUM, family="arith",
     refine=Refinement("slash"))(_prim_div)
prim("quotient", arity=exactly(2),
     sig=TagSig(_INT, "expected exact integer"), family="arith",
     core_op="div",
     refine=Refinement("divlike", op="div", py=lambda a, b: a // b))(
         _prim_quotient)
prim("remainder", arity=exactly(2),
     sig=TagSig(_INT, "expected exact integer"), family="arith",
     refine=Refinement("divlike", op="mod", constrain=False))(_prim_remainder)
prim("modulo", arity=exactly(2),
     sig=TagSig(_INT, "expected exact integer"), family="arith",
     core_op="mod",
     refine=Refinement("divlike", op="mod", py=lambda a, b: a % abs(b)))(
         _prim_modulo)
prim("add1", arity=exactly(1), sig=_NUM, family="arith", core_op="add1",
     refine=Refinement("offset", op="+"))(_prim_add1)
prim("sub1", arity=exactly(1), sig=_NUM, family="arith", core_op="sub1",
     refine=Refinement("offset", op="-"))(_prim_sub1)
prim("abs", arity=exactly(1), sig=_REAL, family="arith",
     synth=syn_abs)(_prim_abs)
prim("min", arity=at_least(1), sig=_REAL, family="arith",
     synth=syn_minmax("min"))(_prim_min)
prim("max", arity=at_least(1), sig=_REAL, family="arith",
     synth=syn_minmax("max"))(_prim_max)
prim("expt", arity=exactly(2),
     sig=TagSig(NUMBER_TAGS, "expected number", result=NUMBER_TAGS),
     family="arith")(_prim_expt)
prim("sqrt", arity=exactly(1),
     sig=TagSig(NUMBER_TAGS, "expected number", result=NUMBER_TAGS),
     family="arith")(_prim_sqrt)
prim("exact->inexact", arity=exactly(1),
     sig=TagSig(NUMBER_TAGS, "expected number", result=NUMBER_TAGS),
     family="arith")(_prim_exact_to_inexact)
prim("=", arity=at_least(2), sig=_NUM, family="compare", core_op="=?",
     refine=Refinement("compare", op="=", py=lambda a, b: a == b))(
         _prim_num_eq)
prim("<", arity=at_least(2), sig=_REAL, family="compare", core_op="<?",
     refine=Refinement("compare", op="<", py=lambda a, b: a < b))(
         _compare("<", lambda a, b: a < b))
prim(">", arity=at_least(2), sig=_REAL, family="compare",
     refine=Refinement("swap", op="<"))(_compare(">", lambda a, b: a > b))
prim("<=", arity=at_least(2), sig=_REAL, family="compare", core_op="<=?",
     refine=Refinement("compare", op="<=", py=lambda a, b: a <= b))(
         _compare("<=", lambda a, b: a <= b))
prim(">=", arity=at_least(2), sig=_REAL, family="compare",
     refine=Refinement("swap", op="<="))(_compare(">=", lambda a, b: a >= b))
prim("zero?", arity=exactly(1), sig=_ANY, family="pred", core_op="zero?",
     refine=Refinement("sign", pred=lambda: PZero()))(
         _pred("zero?", lambda v: is_number(v) and v == 0))
prim("positive?", arity=exactly(1), sig=_ANY, family="pred",
     refine=Refinement("sign", pred=lambda: PNot(PLe(HConst(0)))))(
         _pred("positive?", lambda v: is_real(v) and v > 0))
prim("negative?", arity=exactly(1), sig=_ANY, family="pred",
     refine=Refinement("sign", pred=lambda: PLt(HConst(0))))(
         _pred("negative?", lambda v: is_real(v) and v < 0))
prim("even?", arity=exactly(1), sig=_ANY, family="pred",
     synth=syn_parity(True))(
         _pred("even?", lambda v: is_integer(v) and int(v) % 2 == 0))
prim("odd?", arity=exactly(1), sig=_ANY, family="pred",
     synth=syn_parity(False))(
         _pred("odd?", lambda v: is_integer(v) and int(v) % 2 == 1))
prim("number?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=NUMBER_TAGS)(_pred("number?", is_number))
prim("real?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=REAL_TAGS)(_pred("real?", is_real))
prim("integer?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=_INT)(_pred("integer?", is_integer))
prim("exact-integer?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=_INT)(
         _pred("exact-integer?", lambda v: is_integer(v) and is_exact(v)))
prim("exact-nonnegative-integer?", arity=exactly(1), sig=_ANY,
     family="pred", rule=rule_nonneg_int)(
         _pred("exact-nonnegative-integer?",
               lambda v: is_integer(v) and is_exact(v) and v >= 0))
prim("rational?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=REAL_TAGS)(_pred("rational?", is_real))
prim("exact?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_INTEGER, TAG_RATREAL}))(
         _pred("exact?", is_exact))
prim("boolean?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_BOOLEAN}))(
         _pred("boolean?", lambda v: isinstance(v, bool)))
prim("symbol?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_SYMBOL}))(
         _pred("symbol?", lambda v: isinstance(v, Symbol)))
prim("string?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=_STR)(_pred("string?", lambda v: isinstance(v, str)))
prim("pair?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_PAIR}), materialize="pair")(
         _pred("pair?", lambda v: isinstance(v, Pair)))
prim("null?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_NULL}), materialize="null")(
         _pred("null?", lambda v: v is NIL))
prim("empty?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_NULL}), materialize="null")(
         _pred("empty?", lambda v: v is NIL))
prim("box?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_BOX}), materialize="box")(
         _pred("box?", lambda v: isinstance(v, Box)))
prim("not", arity=exactly(1), sig=_ANY, family="logic",
     rule=rule_not)(_prim_not)
prim("equal?", arity=exactly(2), sig=_ANY, family="equality",
     rule=equal_rule(identity_structured=False))(_prim_equal)
prim("eqv?", arity=exactly(2), sig=_ANY, family="equality",
     rule=equal_rule(identity_structured=True))(_prim_eqv)
alias("eq?", of="eqv?")
prim("void", arity=at_least(0), sig=_ANY, family="misc",
     rule=rule_void)(_prim_void)
prim("error", arity=at_least(0), sig=_ANY, family="misc",
     rule=rule_error)(_prim_error)
prim("cons", arity=exactly(2), sig=_ANY, family="list",
     rule=rule_cons)(_prim_cons)
prim("car", arity=exactly(1),
     sig=TagSig(frozenset({TAG_PAIR}), "expected pair"), family="list",
     rule=pair_sel_rule("car"))(_prim_car)
prim("cdr", arity=exactly(1),
     sig=TagSig(frozenset({TAG_PAIR}), "expected pair"), family="list",
     rule=pair_sel_rule("cdr"))(_prim_cdr)
alias("first", of="car")
alias("rest", of="cdr")
prim("list", arity=at_least(0), sig=_ANY, family="list",
     rule=rule_list)(_prim_list)
prim("length", arity=exactly(1), sig=_ANY, family="list",
     synth=syn_length)(_prim_length)
prim("append", arity=at_least(0), sig=_ANY, family="list",
     synth=syn_append)(_prim_append)
prim("reverse", arity=exactly(1), sig=_ANY, family="list",
     synth=syn_reverse)(_prim_reverse)
prim("list?", arity=exactly(1), sig=_ANY, family="list",
     synth=syn_list_p)(_prim_list_p)
prim("member", arity=exactly(2), sig=_ANY, family="list",
     synth=syn_member)(_prim_member)
prim("map", arity=at_least(2), sig=_ANY, family="higher-order",
     synth=syn_map, delegate_concrete=False)(_prim_map)
prim("filter", arity=exactly(2), sig=_ANY, family="higher-order",
     synth=syn_filter, delegate_concrete=False)(_prim_filter)
prim("foldl", arity=exactly(3), sig=_ANY, family="higher-order",
     synth=syn_foldl, delegate_concrete=False)(_prim_foldl)
prim("foldr", arity=exactly(3), sig=_ANY, family="higher-order",
     synth=syn_foldr, delegate_concrete=False)(_prim_foldr)
prim("andmap", arity=exactly(2), sig=_ANY, family="higher-order",
     synth=syn_andmap, delegate_concrete=False)(_prim_andmap)
prim("ormap", arity=exactly(2), sig=_ANY, family="higher-order",
     synth=syn_ormap, delegate_concrete=False)(_prim_ormap)
prim("string-length", arity=exactly(1),
     sig=TagSig(_STR, "expected string", result=_INT),
     family="string")(_prim_string_length)
prim("string-append", arity=at_least(0),
     sig=TagSig(_STR, "expected string", result=_STR),
     family="string")(_prim_string_append)
prim("string=?", arity=at_least(2),
     sig=TagSig(_STR, "expected string", result=frozenset({TAG_BOOLEAN})),
     family="string")(_prim_string_eq)
prim("box", arity=exactly(1), sig=_ANY, family="box",
     rule=rule_box)(_prim_box)
prim("unbox", arity=exactly(1),
     sig=TagSig(frozenset({TAG_BOX}), "expected box"), family="box",
     rule=rule_unbox)(_prim_unbox)
prim("set-box!", arity=exactly(2),
     sig=TagSig((frozenset({TAG_BOX}), None), ("expected box", "")),
     family="box", rule=rule_set_box)(_prim_set_box)
prim("->", arity=at_least(1), sig=_ANY, family="contract",
     rule=rule_arrow)(_prim_arrow)
prim("make->d", arity=at_least(1), sig=_ANY, family="contract",
     rule=rule_arrow_d)(_prim_make_arrow_d)
prim("and/c", arity=at_least(0), sig=_ANY, family="contract",
     rule=ctc_nary_rule("and"))(_prim_and_c)
prim("or/c", arity=at_least(0), sig=_ANY, family="contract",
     rule=ctc_nary_rule("or"))(_prim_or_c)
prim("not/c", arity=exactly(1), sig=_ANY, family="contract",
     rule=ctc_nary_rule("not"))(_prim_not_c)
prim("cons/c", arity=exactly(2), sig=_ANY, family="contract",
     rule=ctc_nary_rule("cons"))(_prim_cons_c)
prim("listof", arity=exactly(1), sig=_ANY, family="contract",
     rule=ctc_nary_rule("listof"))(_prim_listof)
prim("list/c", arity=at_least(0), sig=_ANY, family="contract",
     rule=ctc_nary_rule("list"))(_prim_list_c)
prim("one-of/c", arity=at_least(0), sig=_ANY, family="contract",
     rule=rule_one_of)(_prim_one_of_c)
prim("=/c", arity=exactly(1), sig=_ANY, family="contract",
     rule=cmp_ctc_rule("="))(_prim_comparison_c("=/c", "="))
prim("</c", arity=exactly(1), sig=_ANY, family="contract",
     rule=cmp_ctc_rule("<"))(_prim_comparison_c("</c", "<"))
prim(">/c", arity=exactly(1), sig=_ANY, family="contract",
     rule=cmp_ctc_rule(">"))(_prim_comparison_c(">/c", ">"))
prim("<=/c", arity=exactly(1), sig=_ANY, family="contract",
     rule=cmp_ctc_rule("<="))(_prim_comparison_c("<=/c", "<="))
prim(">=/c", arity=exactly(1), sig=_ANY, family="contract",
     rule=cmp_ctc_rule(">="))(_prim_comparison_c(">=/c", ">="))
prim("make-rec-contract", arity=exactly(1), sig=_ANY, family="contract",
     rule=rule_rec_ctc)(_prim_make_rec_contract)
prim("struct/c", arity=at_least(1), sig=_ANY, family="contract",
     rule=rule_struct_ctc)(_prim_struct_c)
prim("flat-contract?", arity=exactly(1), sig=_ANY, family="contract",
     rule=rule_flat_ctc_p)(_prim_flat_contract_p)
prim("procedure?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=frozenset({TAG_PROCEDURE}))(
         _pred("procedure?",
               lambda v: type(v).__name__
               in ("Closure", "Prim", "Guarded", "StructCtor")))

# --- extended string/vector family (PR 10) ---------------------------------
#
# These are gated in the symbolic global frame: ``scv.engine`` binds
# them (and ``SMachine(extended_prims=True)`` admits ``TAG_VECTOR``
# into the opaque tag universe) only for programs that mention them,
# so committed reports for the older corpus keep byte-identical heap
# allocation orders.

prim("substring", arity=between(2, 3),
     sig=TagSig((_STR, _INT), ("expected string", "expected exact integer"),
                result=_STR),
     family="string", rule=rule_substring, check_arity=True)(_prim_substring)
prim("vector", arity=at_least(0), sig=_ANY, family="vector",
     rule=rule_vector, delegate_concrete=False)(_prim_vector)
prim("vector-ref", arity=exactly(2),
     sig=TagSig((_VEC, _INT), ("expected vector", "expected exact integer")),
     family="vector", rule=rule_vector_ref, delegate_concrete=False,
     check_arity=True)(_prim_vector_ref)
prim("vector-set!", arity=exactly(3),
     sig=TagSig((_VEC, _INT, None),
                ("expected vector", "expected exact integer", "")),
     family="vector", rule=rule_vector_set, delegate_concrete=False,
     check_arity=True)(_prim_vector_set)
prim("vector-length", arity=exactly(1),
     sig=TagSig(_VEC, "expected vector"), family="vector",
     rule=rule_vector_length, delegate_concrete=False,
     check_arity=True)(_prim_vector_length)
prim("vector?", arity=exactly(1), sig=_ANY, family="pred",
     pred_tags=_VEC)(_pred("vector?", lambda v: isinstance(v, Vector)))

#: The gated family: bound in the symbolic global frame only when the
#: program mentions one of them (``scv.engine.uses_extended_prims``).
EXTENDED_PRIMS = frozenset({
    "substring", "vector", "vector-ref", "vector-set!", "vector-length",
    "vector?",
})

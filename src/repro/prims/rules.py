"""Synthesis rules and custom untyped δ-rules for registered primitives.

Everything here is *per-primitive* behaviour referenced by the
declarations in ``repro.prims.declarations``; the *generic* machinery
that interprets tag signatures and refinement templates lives in
``scv.delta``.  Each function takes the rule context ``r`` (a
``scv.delta.Rule``) and returns δ-outcomes via its helpers, so this
module never imports ``scv.delta`` — the dependency points the other
way (``scv.delta`` → declarations → here).

Two shapes appear:

* **synthesis rules** (§4.3): the primitive expands into checking code
  over simpler primitives via ``r.run``/``r.spine`` — inductive list
  walks, parity tests, ``min``/``max`` as comparison towers;
* **custom rules**: shape-touching primitives (pairs, boxes, vectors,
  structs-as-contracts) that read or update the heap directly,
  including their ``assume_well_typed`` blame suppression.
"""

from __future__ import annotations

from ..core.heap import HConst, HLoc, PEq, PLe, PLt, PNot
from ..core.proof import Verdict
from ..core.syntax import Loc
from ..lang.ast import Quote, UExpr, UIf, ULam, UVar
from ..lang.values import NIL, VOID, racket_equal
from ..scv.heap import (
    PEqDatum,
    TAG_BOX,
    TAG_INTEGER,
    TAG_PAIR,
    TAG_STRING,
    TAG_VECTOR,
    UBoxS,
    UCase,
    UClos,
    UConc,
    UCtc,
    UGuard,
    UHeap,
    UOpq,
    UPair,
    UPrim,
    UStoreable,
    UStruct,
    UStructCtor,
    UVectorS,
    datum_tag,
    storeable_tag,
)

_INT = frozenset({TAG_INTEGER})


def _is_exact_int(v: object) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


# ---------------------------------------------------------------------------
# Numeric synthesis rules
# ---------------------------------------------------------------------------


def syn_abs(r) -> list:
    x = r.loc_expr(r.args[0])
    return [r.run(UIf(r.app(r.prim("<"), x, Quote(0)),
                      r.app(r.prim("-"), Quote(0), x), x))]


def syn_minmax(op: str):
    """min/max as an ordinary comparison tower: unary forces the
    realness check, binary picks through ``<``, n-ary folds right."""

    def synth(r) -> list:
        if not r.args:
            return [r.blame("needs at least 1 argument")]
        a = r.loc_expr(r.args[0])
        if len(r.args) == 1:
            # (< a a) is always #f but forces the realness check.
            return [r.run(UIf(r.app(r.prim("<"), a, a), a, a))]
        b = (r.loc_expr(r.args[1]) if len(r.args) == 2
             else r.app(r.prim(r.name), *[r.loc_expr(x) for x in r.args[1:]]))
        pick = ULam(
            (".a", ".b"),
            UIf(r.app(r.prim("<"), UVar(".a"), UVar(".b")),
                UVar(".a") if op == "min" else UVar(".b"),
                UVar(".b") if op == "min" else UVar(".a")),
        )
        return [r.run(r.app(pick, a, b))]

    return synth


def syn_parity(test_zero: bool):
    """even? / odd? via synthesis: ``(if (integer? x) ⟨mod test⟩ #f)``."""

    def synth(r) -> list:
        (l,) = r.args
        x = r.loc_expr(l)
        mod2 = r.app(r.prim("modulo"), x, Quote(2))
        test = r.app(r.prim("zero?"), mod2)
        inner = test if test_zero else r.app(r.prim("not"), test)
        return [r.run(UIf(r.app(r.prim("integer?"), x), inner, Quote(False)))]

    return synth


def rule_nonneg_int(r) -> list:
    """exact-nonnegative-integer? — a tag test plus a sign refinement."""
    if len(r.args) != 1:
        return [r.blame("expected 1 argument")]
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    (l,) = r.args
    target, s = r.deref(l)
    if not isinstance(s, UOpq):
        return [r.boolean(False)]
    out: list = []
    if TAG_INTEGER not in s.possible:
        return [r.boolean(False)]
    if s.possible != _INT:
        out.append(
            r.boolean(False, r.heap.narrow(target, s.possible - _INT), 1)
        )
    heap = r.heap.narrow(target, _INT)
    p = PLt(HConst(0))
    verdict = r.m.proof.check(heap, target, p)
    if verdict is Verdict.PROVED:
        out.append(r.boolean(False, heap))
    elif verdict is Verdict.REFUTED:
        out.append(r.boolean(True, heap))
    else:
        out.append(r.boolean(False, heap.refine(target, p), 1))
        out.append(r.boolean(True, heap.refine(target, PNot(p)), 1))
    return out


# ---------------------------------------------------------------------------
# Booleans and equality
# ---------------------------------------------------------------------------


def rule_not(r) -> list:
    if len(r.args) != 1:
        return [r.blame("expected 1 argument")]
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UConc):
        return [r.boolean(s.value is False)]
    if not isinstance(s, UOpq):
        return [r.boolean(False)]
    if "boolean" not in s.possible:
        return [r.boolean(False)]
    if PEqDatum(False) in s.preds:
        return [r.boolean(True)]
    if PNot(PEqDatum(False)) in s.preds:
        return [r.boolean(False)]
    return [
        r.boolean(True, r.heap.set(target, UConc(False)), 1),
        r.boolean(False, r.heap.refine(target, PNot(PEqDatum(False))), 1),
    ]


def equal_rule(identity_structured: bool):
    """equal? (structural) and eqv?/eq? (identity on structured data)."""

    def handler(r) -> list:
        if len(r.args) != 2:
            return [r.blame(f"expected 2 arguments, got {len(r.args)}")]
        a, b = r.args
        ta, sa = r.deref(a)
        tb, sb = r.deref(b)
        if ta == tb:
            return [r.boolean(True)]
        if isinstance(sa, UConc) and isinstance(sb, UConc):
            return [r.boolean(racket_equal(sa.value, sb.value))]
        for structured, other_loc, other in ((sa, tb, sb), (sb, ta, sa)):
            if isinstance(structured, (UPair, UStruct)):
                if identity_structured:
                    if isinstance(other, UOpq):
                        break  # fall through to the generic branch
                    return [r.boolean(False)]
                return _equal_structural(r, structured,
                                         a if structured is sa else b,
                                         b if structured is sa else a)
        # Opaque vs concrete scalar: three-way on the recorded equality.
        for opq_loc, opq, conc_loc, conc in ((ta, sa, tb, sb), (tb, sb, ta, sa)):
            if isinstance(opq, UOpq) and isinstance(conc, UConc):
                return _equal_datum(r, opq_loc, conc.value)
        if isinstance(sa, UOpq) and isinstance(sb, UOpq):
            return _equal_opq(r, ta, sa, tb, sb)
        # Procedures / contracts vs anything else: identity already
        # failed above.
        if isinstance(sa, UOpq) or isinstance(sb, UOpq):
            return [r.boolean(True, effort=1), r.boolean(False, effort=1)]
        return [r.boolean(False)]

    return handler


def _equal_structural(r, s, al: Loc, bl: Loc) -> list:
    bE = r.loc_expr(bl)
    if isinstance(s, UPair):
        test = r.app(r.prim("pair?"), bE)
        same = UIf(
            r.app(r.prim("equal?"), r.loc_expr(s.car),
                  r.app(r.prim("car"), bE)),
            r.app(r.prim("equal?"), r.loc_expr(s.cdr),
                  r.app(r.prim("cdr"), bE)),
            Quote(False),
        )
        return [r.run(UIf(test, same, Quote(False)))]
    assert isinstance(s, UStruct)
    pred = f"{s.type.name}?"
    if pred not in r.m.struct_prims:
        return [r.boolean(False)]
    same: UExpr = Quote(True)
    for i, f in reversed(list(enumerate(s.fields))):
        acc = r.app(r.prim(f"{s.type.name}-{s.type.fields[i]}"), bE)
        same = UIf(r.app(r.prim("equal?"), r.loc_expr(f), acc), same,
                   Quote(False))
    return [r.run(UIf(r.app(r.prim(pred), bE), same, Quote(False)))]


def _equal_datum(r, l: Loc, d: object) -> list:
    verdict = r.m.proof.check(r.heap, l, PEqDatum(d))
    if verdict is Verdict.PROVED:
        return [r.boolean(True)]
    if verdict is Verdict.REFUTED:
        return [r.boolean(False)]
    dt = datum_tag(d)
    if dt is None:
        return [r.boolean(False)]
    return [
        r.boolean(True, r.heap.set(l, UConc(d)), 1),
        r.boolean(False, r.heap.refine(l, PNot(PEqDatum(d))), 1),
    ]


def _equal_opq(r, ta: Loc, sa: UOpq, tb: Loc, sb: UOpq) -> list:
    if not (sa.possible & sb.possible):
        return [r.boolean(False)]
    both_int = (sa.possible == _INT and sb.possible == _INT)
    if both_int:
        p = PEq(HLoc(tb))
        verdict = r.m.proof.check(r.heap, ta, p)
        if verdict is Verdict.PROVED:
            return [r.boolean(True)]
        if verdict is Verdict.REFUTED:
            return [r.boolean(False)]
        return [
            r.boolean(True, r.heap.refine(ta, p), 1),
            r.boolean(False, r.heap.refine(ta, PNot(p)), 1),
        ]
    return [r.boolean(True, effort=1), r.boolean(False, effort=1)]


# ---------------------------------------------------------------------------
# Shape materializers (§4.2: a tag-narrowed opaque *becomes* its shape)
# ---------------------------------------------------------------------------


def mat_pair(r, heap: UHeap) -> tuple[UStoreable, UHeap]:
    car, heap = heap.alloc(r.m.fresh_opq())
    cdr, heap = heap.alloc(r.m.fresh_opq())
    return UPair(car, cdr), heap


def mat_null(r, heap: UHeap) -> tuple[UStoreable, UHeap]:
    return UConc(NIL), heap


def mat_box(r, heap: UHeap) -> tuple[UStoreable, UHeap]:
    content, heap = heap.alloc(r.m.fresh_opq())
    return UBoxS(content), heap


#: sig/pred declarations name their materializer; vectors have none —
#: an opaque vector's *length* is unknown, so it never becomes a shape.
MATERIALIZERS = {"pair": mat_pair, "null": mat_null, "box": mat_box}


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------


def rule_cons(r) -> list:
    return [r.value(UPair(r.args[0], r.args[1]))]


def pair_sel_rule(field: str):
    def handler(r) -> list:
        if len(r.args) != 1:
            return [r.blame("expected 1 argument")]
        (l,) = r.args
        target, s = r.deref(l)
        if isinstance(s, UPair):
            return [r.at(s.car if field == "car" else s.cdr)]
        if isinstance(s, UOpq) and TAG_PAIR in s.possible:
            out: list = []
            if s.possible != frozenset({TAG_PAIR}) and not r.typed:
                bad = r.heap.narrow(target, s.possible - frozenset({TAG_PAIR}))
                out.append(r.blame("expected pair", bad))
            shape, heap = mat_pair(r, r.heap)
            heap = heap.set(target, shape)
            assert isinstance(shape, UPair)
            out.append(
                r.at(shape.car if field == "car" else shape.cdr, heap, 1)
            )
            return out
        return [r.blame(f"expected pair, got {s!r}")]

    return handler


def rule_list(r) -> list:
    heap = r.heap
    tail, heap = heap.alloc(UConc(NIL))
    for l in reversed(r.args):
        tail, heap = heap.alloc(UPair(l, tail))
    return [r.at(tail, heap)]


def syn_length(r) -> list:
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".n"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.prim("add1"), UVar(".n"))),
            r.improper("length"),
        ),
    )
    return r.spine((".xs", ".n"), body, r.loc_expr(r.args[0]), Quote(0))


def syn_reverse(r) -> list:
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".acc"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                        UVar(".acc"))),
            r.improper("reverse"),
        ),
    )
    return r.spine((".xs", ".acc"), body, r.loc_expr(r.args[0]), Quote([]))


def syn_append(r) -> list:
    if not r.args:
        return [r.value(UConc(NIL))]
    if len(r.args) == 1:
        return [r.at(r.args[0])]
    if len(r.args) > 2:
        rest = r.app(r.prim("append"),
                     *[r.loc_expr(a) for a in r.args[1:]])
        return [r.run(r.app(r.prim("append"), r.loc_expr(r.args[0]), rest))]
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        r.loc_expr(r.args[1]),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("append"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(r.args[0]))


def syn_list_p(r) -> list:
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(True),
        UIf(r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
            Quote(False)),
    )
    return r.spine((".xs",), body, r.loc_expr(r.args[0]))


def syn_member(r) -> list:
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("pair?"), xs),
        UIf(
            r.app(r.prim("equal?"), r.loc_expr(r.args[0]),
                  r.app(r.prim("car"), xs)),
            xs,
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
        ),
        Quote(False),
    )
    return r.spine((".xs",), body, r.loc_expr(r.args[1]))


def syn_map(r) -> list:
    if len(r.args) != 2:
        return [r.blame("multi-list map is outside the symbolic subset")]
    f, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote([]),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.prim("cons"),
                  r.app(r.loc_expr(f), r.app(r.prim("car"), xs)),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("map"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(xs_loc))


def syn_filter(r) -> list:
    f, xs_loc = r.args
    xs = UVar(".xs")
    keep = r.app(r.prim("cons"), r.app(r.prim("car"), xs),
                 r.app(UVar(".go"), r.app(r.prim("cdr"), xs)))
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote([]),
        UIf(
            r.app(r.prim("pair?"), xs),
            UIf(r.app(r.loc_expr(f), r.app(r.prim("car"), xs)), keep,
                r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("filter"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(xs_loc))


def syn_foldl(r) -> list:
    f, init, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        UVar(".acc"),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs),
                  r.app(r.loc_expr(f), r.app(r.prim("car"), xs),
                        UVar(".acc"))),
            r.improper("foldl"),
        ),
    )
    return r.spine((".xs", ".acc"), body, r.loc_expr(xs_loc),
                   r.loc_expr(init))


def syn_foldr(r) -> list:
    f, init, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        r.loc_expr(init),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(r.loc_expr(f), r.app(r.prim("car"), xs),
                  r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
            r.improper("foldr"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(xs_loc))


def syn_andmap(r) -> list:
    f, xs_loc = r.args
    xs = UVar(".xs")
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(True),
        UIf(
            r.app(r.prim("pair?"), xs),
            UIf(r.app(r.loc_expr(f), r.app(r.prim("car"), xs)),
                r.app(UVar(".go"), r.app(r.prim("cdr"), xs)),
                Quote(False)),
            r.improper("andmap"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(xs_loc))


def syn_ormap(r) -> list:
    f, xs_loc = r.args
    xs = UVar(".xs")
    hit = ULam(
        (".t",),
        UIf(UVar(".t"), UVar(".t"),
            r.app(UVar(".go"), r.app(r.prim("cdr"), xs))),
    )
    body = UIf(
        r.app(r.prim("null?"), xs),
        Quote(False),
        UIf(
            r.app(r.prim("pair?"), xs),
            r.app(hit, r.app(r.loc_expr(f), r.app(r.prim("car"), xs))),
            r.improper("ormap"),
        ),
    )
    return r.spine((".xs",), body, r.loc_expr(xs_loc))


# ---------------------------------------------------------------------------
# Boxes
# ---------------------------------------------------------------------------


def rule_box(r) -> list:
    return [r.value(UBoxS(r.args[0]))]


def rule_unbox(r) -> list:
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UBoxS):
        return [r.at(s.content)]
    if isinstance(s, UOpq) and TAG_BOX in s.possible:
        out: list = []
        if s.possible != frozenset({TAG_BOX}) and not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({TAG_BOX}))
            out.append(r.blame("expected box", bad))
        shape, heap = mat_box(r, r.heap)
        heap = heap.set(target, shape)
        assert isinstance(shape, UBoxS)
        out.append(r.at(shape.content, heap, 1))
        return out
    return [r.blame(f"expected box, got {s!r}")]


def rule_set_box(r) -> list:
    l, v = r.args
    target, s = r.deref(l)
    if isinstance(s, UBoxS) or (
        isinstance(s, UOpq) and s.possible == frozenset({TAG_BOX})
    ):
        return [r.value(UConc(VOID), r.heap.set(target, UBoxS(v)))]
    if isinstance(s, UOpq) and TAG_BOX in s.possible:
        out: list = []
        if not r.typed:
            bad = r.heap.narrow(target, s.possible - frozenset({TAG_BOX}))
            out.append(r.blame("expected box", bad))
        out.append(r.value(UConc(VOID), r.heap.set(target, UBoxS(v)), 1))
        return out
    return [r.blame(f"expected box, got {s!r}")]


# ---------------------------------------------------------------------------
# Vectors (fixed-length mutable sequences; TAG_VECTOR is enabled per
# program — see ``scv.engine.uses_extended_prims``)
# ---------------------------------------------------------------------------

_VEC = frozenset({TAG_VECTOR})


def _narrow_one(r, heap: UHeap, l: Loc, want: frozenset, desc: str, out: list,
                effort: int):
    """Narrow a single argument into ``want`` with the standard blame /
    suppression discipline.  Returns (heap, effort, alive)."""
    target, s = heap.deref(l)
    if not isinstance(s, UOpq):
        if (storeable_tag(s) or "") in want:
            return heap, effort, True
        out.append(r.blame(f"{desc}, got {s!r}", heap))
        return heap, effort, False
    inter = s.possible & want
    if not inter:
        out.append(r.blame(f"{desc}, got {s!r}", heap))
        return heap, effort, False
    if s.possible <= want:
        return heap, effort, True
    if not r.typed:
        bad = heap.narrow(target, s.possible - want)
        out.append(r.blame(f"{desc}, got {bad.deref(l)[1]!r}", bad))
    return heap.narrow(target, want), effort + 1, True


def _index_branches(r, heap: UHeap, il: Loc, upper: int, out: list,
                    effort: int):
    """Bounds-check an integer-narrowed index against ``[0, upper]``
    with the canonical three-way proof branches.  Returns
    ``(heap, effort, alive, concrete_value)``."""
    it, s = heap.deref(il)
    if isinstance(s, UConc):
        v = s.value
        if 0 <= v <= upper:
            return heap, effort, True, v
        out.append(r.blame("index out of range", heap))
        return heap, effort, False, None
    lo = PLt(HConst(0))
    v_lo = r.m.proof.check(heap, it, lo)
    if v_lo is Verdict.PROVED:
        out.append(r.blame("index out of range", heap))
        return heap, effort, False, None
    if v_lo is not Verdict.REFUTED:
        out.append(r.blame("index out of range", heap.refine(it, lo)))
        heap = heap.refine(it, PNot(lo))
        effort += 1
    hi = PNot(PLe(HConst(upper)))
    v_hi = r.m.proof.check(heap, it, hi)
    if v_hi is Verdict.PROVED:
        out.append(r.blame("index out of range", heap))
        return heap, effort, False, None
    if v_hi is not Verdict.REFUTED:
        out.append(r.blame("index out of range", heap.refine(it, hi)))
        heap = heap.refine(it, PNot(hi))
        effort += 1
    return heap, effort, True, None


def rule_vector(r) -> list:
    return [r.value(UVectorS(tuple(r.args)))]


def rule_vector_length(r) -> list:
    (l,) = r.args
    target, s = r.deref(l)
    if isinstance(s, UVectorS):
        return [r.value(UConc(len(s.fields)))]
    if isinstance(s, UOpq) and TAG_VECTOR in s.possible:
        out: list = []
        heap, effort, alive = _narrow_one(
            r, r.heap, l, _VEC, "expected vector", out, 0)
        if alive:
            # Length of an unmaterialised vector: unknown but ≥ 0.
            out.append(r.value(
                UOpq(_INT, (PNot(PLt(HConst(0))),)), heap, effort + 1))
        return out
    return [r.blame(f"expected vector, got {s!r}")]


def rule_vector_ref(r) -> list:
    vl, il = r.args
    out: list = []
    heap, effort, alive = _narrow_one(
        r, r.heap, vl, _VEC, "expected vector", out, 0)
    if not alive:
        return out
    heap, effort, alive = _narrow_one(
        r, heap, il, _INT, "expected exact integer", out, effort)
    if not alive:
        return out
    vt, vs = heap.deref(vl)
    if not isinstance(vs, UVectorS):
        # Opaque vector: the element is a fresh unknown (the vector's
        # shape — and hence its extent — is never materialised).
        el, heap = heap.alloc(r.m.fresh_opq())
        out.append(r.at(el, heap, effort + 1))
        return out
    n = len(vs.fields)
    if n == 0:
        out.append(r.blame("index out of range", heap))
        return out
    heap, effort, alive, iv = _index_branches(r, heap, il, n - 1, out, effort)
    if not alive:
        return out
    if iv is not None:
        out.append(r.at(vs.fields[iv], heap, effort))
        return out
    if n == 1:
        out.append(r.at(vs.fields[0], heap, effort))
        return out
    it, _ = heap.deref(il)
    for i, fl in enumerate(vs.fields):
        p = PEq(HConst(i))
        verdict = r.m.proof.check(heap, it, p)
        if verdict is Verdict.PROVED:
            out.append(r.at(fl, heap, effort))
            return out
        if verdict is Verdict.REFUTED:
            continue
        out.append(r.at(fl, heap.refine(it, p), effort + 1))
    return out


def rule_vector_set(r) -> list:
    vl, il, xl = r.args
    out: list = []
    heap, effort, alive = _narrow_one(
        r, r.heap, vl, _VEC, "expected vector", out, 0)
    if not alive:
        return out
    heap, effort, alive = _narrow_one(
        r, heap, il, _INT, "expected exact integer", out, effort)
    if not alive:
        return out
    vt, vs = heap.deref(vl)
    if not isinstance(vs, UVectorS):
        # Opaque vector: accept the write but drop it (the unknown's
        # fields are unknowable anyway — documented over-approximation).
        out.append(r.value(UConc(VOID), heap, effort + 1))
        return out
    n = len(vs.fields)
    if n == 0:
        out.append(r.blame("index out of range", heap))
        return out
    heap, effort, alive, iv = _index_branches(r, heap, il, n - 1, out, effort)
    if not alive:
        return out

    def updated(i: int) -> UVectorS:
        return UVectorS(vs.fields[:i] + (xl,) + vs.fields[i + 1:])

    if iv is not None:
        out.append(r.value(UConc(VOID), heap.set(vt, updated(iv)), effort))
        return out
    if n == 1:
        out.append(r.value(UConc(VOID), heap.set(vt, updated(0)), effort))
        return out
    it, _ = heap.deref(il)
    for i in range(n):
        p = PEq(HConst(i))
        verdict = r.m.proof.check(heap, it, p)
        if verdict is Verdict.PROVED:
            out.append(r.value(UConc(VOID), heap.set(vt, updated(i)), effort))
            return out
        if verdict is Verdict.REFUTED:
            continue
        out.append(r.value(UConc(VOID),
                           heap.refine(it, p).set(vt, updated(i)),
                           effort + 1))
    return out


def rule_substring(r) -> list:
    vals = r.all_concrete()
    if vals is not None:
        return r.delegate(vals)
    sl = r.args[0]
    idxs = r.args[1:]
    out: list = []
    heap, effort, alive = _narrow_one(
        r, r.heap, sl, frozenset({TAG_STRING}), "expected string", out, 0)
    if not alive:
        return out
    for il in idxs:
        heap, effort, alive = _narrow_one(
            r, heap, il, _INT, "expected exact integer", out, effort)
        if not alive:
            return out
    sv = r.conc(sl, heap)
    if isinstance(sv, str):
        # Known string: indices are bounds-checked against its length.
        # (start ≤ end with *both* symbolic is not cross-checked — an
        # under-approximated error source, like the module docstring's
        # other unmodelled preconditions.)
        for il in idxs:
            heap, effort, alive, _ = _index_branches(
                r, heap, il, len(sv), out, effort)
            if not alive:
                return out
    out.append(r.value(UOpq(frozenset({TAG_STRING})), heap, effort))
    return out


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------


def rule_void(r) -> list:
    return [r.value(UConc(VOID))]


def rule_error(r) -> list:
    parts = []
    for a in r.args:
        v = r.reify(a)
        parts.append("..." if v is r.UNREIFIABLE else str(v))
    msg = " ".join(parts) if parts else "error"
    return [r.blame(msg)]


# ---------------------------------------------------------------------------
# Contract constructors (values of kind UCtc, §4.3)
# ---------------------------------------------------------------------------


def _empty_env():
    from ..scv.machine import MEnv

    return MEnv({})


def _as_ctc_loc(r, heap: UHeap, l: Loc) -> tuple[Loc, UHeap]:
    """Coerce a value location to a contract location, mirroring the
    concrete ``_as_contract``: contracts pass through, applicable values
    become flat contracts, literals become equality contracts."""
    target, s = heap.deref(l)
    if isinstance(s, UCtc):
        return target, heap
    if isinstance(s, (UClos, UPrim, UGuard, UStructCtor, UCase, UOpq)):
        return heap.alloc(UCtc("flat", (target,)))
    return heap.alloc(UCtc("oneof", (target,)))


def _ctc_parts(r, locs: tuple[Loc, ...]) -> tuple[tuple[Loc, ...], UHeap]:
    heap = r.heap
    parts = []
    for l in locs:
        p, heap = _as_ctc_loc(r, heap, l)
        parts.append(p)
    return tuple(parts), heap


def rule_arrow(r) -> list:
    if not r.args:
        return [r.blame("needs at least a range contract")]
    parts, heap = _ctc_parts(r, r.args)
    return [r.value(UCtc("fun", parts), heap)]


def rule_arrow_d(r) -> list:
    if not r.args:
        return [r.blame("needs domains and a range maker")]
    doms, heap = _ctc_parts(r, r.args[:-1])
    target, _ = heap.deref(r.args[-1])
    return [r.value(UCtc("dep", doms + (target,)), heap)]


def ctc_nary_rule(kind: str):
    def handler(r) -> list:
        parts, heap = _ctc_parts(r, r.args)
        return [r.value(UCtc(kind, parts), heap)]

    return handler


def rule_one_of(r) -> list:
    return [r.value(UCtc("oneof", r.args))]


def rule_rec_ctc(r) -> list:
    target, _ = r.deref(r.args[0])
    return [r.value(UCtc("rec", (target,)))]


def cmp_ctc_rule(op: str):
    """``(=/c n)`` etc. — a flat contract whose predicate is synthesised
    as ``(λ (x) (if (real? x) (op x n) #f))`` over primitive locations,
    so the untyped machine can branch through it like any predicate."""

    def handler(r) -> list:
        bound, _ = r.deref(r.args[0])
        body = UIf(
            r.app(r.prim("real?"), UVar(".x")),
            r.app(r.prim(op), UVar(".x"), r.loc_expr(bound)),
            Quote(False),
        )
        heap = r.heap
        pred, heap = heap.alloc(
            UClos(ULam((".x",), body, name=f"{op}/c"), _empty_env())
        )
        return [r.value(UCtc("flat", (pred,)), heap)]

    return handler


def rule_struct_ctc(r) -> list:
    if not r.args:
        return [r.blame("needs a struct constructor")]
    _, ctor = r.deref(r.args[0])
    if not isinstance(ctor, UStructCtor):
        return [r.blame(f"expected struct constructor, got {ctor!r}")]
    if len(r.args) - 1 != len(ctor.type.fields):
        return [r.blame(f"{ctor.type.name} has {len(ctor.type.fields)} fields")]
    parts, heap = _ctc_parts(r, r.args[1:])
    return [r.value(UCtc("struct", parts, stype=ctor.type), heap)]


def rule_flat_ctc_p(r) -> list:
    _, s = r.deref(r.args[0])
    return [r.boolean(isinstance(s, UCtc) and s.kind in ("flat", "oneof"))]

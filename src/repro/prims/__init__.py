"""The primitive registry package: δ declared once, consumed four times.

``repro.prims`` is the single source of truth for the language's
primitives.  Each primitive is declared exactly once (in
``declarations``) with its concrete implementation, arity, tag
signature, integer-refinement template, synthesis rule or custom
untyped rule, and typed-core operator name.  Four layers consume the
table:

* ``lang.prims`` — a thin view: ``base_primitives()`` maps surface
  names to the registry's concrete callables;
* ``core.delta`` — derives the typed machine's handlers from the
  refinement templates;
* ``scv.delta`` — generates the untyped tag-split/blame/narrowing
  recipe from the signatures, templates and rules;
* ``compile.executor`` — sources its inline-dispatch name set and
  arity metadata from the registry.

Import-order note: ``errors`` must bind before ``declarations`` runs —
``lang.prims`` re-imports :class:`PrimError`/:class:`UserError` from
here while this package is still mid-initialisation (the declarations
pull in ``scv.heap``, whose value types come from ``lang``).
"""

from .errors import PrimError, UserError
from .registry import (
    ANY_TAGS,
    Arity,
    PrimSpec,
    REGISTRY,
    Refinement,
    TagSig,
    all_specs,
    at_least,
    between,
    exactly,
    names,
    spec,
)
from . import declarations as _declarations  # noqa: E402  (fills REGISTRY)
from .declarations import EXTENDED_PRIMS

__all__ = [
    "ANY_TAGS",
    "Arity",
    "EXTENDED_PRIMS",
    "PrimError",
    "PrimSpec",
    "REGISTRY",
    "Refinement",
    "TagSig",
    "UserError",
    "all_specs",
    "at_least",
    "between",
    "exactly",
    "names",
    "spec",
]

del _declarations

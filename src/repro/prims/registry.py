"""The primitive registry: one declaration per primitive, four consumers.

The paper's δ is a single specification, but the system needs it in four
shapes: the concrete interpreter (``lang.prims`` view), the typed
symbolic machine (``core.delta``), the untyped symbolic machine
(``scv.delta``) and the bytecode executor's inline fast path
(``compile.executor``).  Each :class:`PrimSpec` carries everything all
four need:

* ``name`` / ``aliases`` — the surface names bound in the global frame
  (declaration order **is** the global-heap allocation order, so it must
  never be reshuffled once committed — location names leak into
  deterministic reports);
* ``arity`` — fixed or variadic argument count;
* ``sig`` — the per-argument *tag signature*: which tag sets each
  argument must fall into, the blame description when it does not, and
  (for generic scalar primitives) the result tag set.  ``scv.delta``
  generates the tag-split/blame-branch/narrowing recipe from this,
  including the ``assume_well_typed`` suppression path;
* ``refine`` — the *integer-refinement template* (arith / offset /
  divlike / slash / compare / swap / sign) interpreted by both
  ``core.delta`` (via ``core_op`` + the template's ``py`` integer
  semantics) and ``scv.delta`` (heap-term ``PEq`` refinements);
* ``synth`` — a *synthesis rule*: the primitive expands into checking
  code over simpler primitives (``OEval``), the §4.3 move;
* ``rule`` — a fully custom untyped δ-rule for shape-touching
  primitives (pairs, boxes, vectors, contract constructors);
* ``concrete`` — the one concrete implementation every engine delegates
  to.

``@prim(...)`` registers the decorated concrete implementation;
``alias(...)`` registers an extra surface name sharing a previous
declaration's semantics.  Declarations live in
``repro.prims.declarations``; this module is dependency-free so every
layer can import it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

ANY_TAGS = None  # sig placeholder: the argument may be any value

Want = Optional[object]  # frozenset[str] | tuple[frozenset[str], ...] | None


@dataclass(frozen=True)
class Arity:
    """Accepted argument counts: ``max`` None means variadic."""

    min: int
    max: Optional[int]

    def blame(self, n: int) -> Optional[str]:
        """The arity-violation description for ``n`` arguments, phrased
        like ``lang.prims`` phrases it, or None when ``n`` is fine."""
        if n < self.min and self.max is None:
            s = "" if self.min == 1 else "s"
            return f"needs at least {self.min} argument{s}"
        if self.max is not None and not (self.min <= n <= self.max):
            if self.min == self.max:
                return f"expected {self.min} arguments, got {n}"
            return f"expected {self.min} to {self.max} arguments, got {n}"
        return None


def exactly(n: int) -> Arity:
    return Arity(n, n)


def at_least(n: int) -> Arity:
    return Arity(n, None)


def between(lo: int, hi: int) -> Arity:
    return Arity(lo, hi)


@dataclass(frozen=True)
class TagSig:
    """Per-argument tag signature.

    ``want`` is a single tag set applied to every argument, a tuple of
    per-argument tag sets (the last entry repeats for variadic tails),
    or :data:`ANY_TAGS` when the primitive accepts anything.  ``desc``
    mirrors the same shape and is the blame description used when an
    argument definitely falls outside its set.  ``result``, when given,
    is the tag set of the (otherwise unconstrained) opaque result — it
    makes a declaration usable by the *generic* untyped handler with no
    hand-written rule at all.
    """

    want: Want = ANY_TAGS
    desc: object = ""
    result: Optional[frozenset] = None

    def per_arg(self, n: int) -> tuple[tuple, tuple]:
        """``(wants, descs)`` padded/truncated to ``n`` arguments."""
        if isinstance(self.want, tuple):
            wants = tuple(self.want[min(i, len(self.want) - 1)]
                          for i in range(n))
        else:
            wants = (self.want,) * n
        if isinstance(self.desc, tuple):
            descs = tuple(self.desc[min(i, len(self.desc) - 1)]
                          for i in range(n))
        else:
            descs = (self.desc,) * n
        return wants, descs


@dataclass(frozen=True)
class Refinement:
    """Integer-refinement template shared by the typed and untyped δ.

    ``kind`` selects the interpreter: ``arith`` (n-ary fold into one
    heap term), ``offset`` (``±1``), ``divlike`` (zero-divisor branch,
    Euclidean ``div``/``mod`` term when ``constrain``), ``slash``
    (zero check only, result leaves the integer fragment), ``compare``
    (three-way proof branch), ``swap`` (binary comparison normalised by
    operand swap to ``op``), ``sign`` (total sign predicate over
    ``pred``).  ``py`` is the *typed core's* integer semantics — for
    ``divlike`` deliberately Euclidean, diverging from Racket's
    truncating ``quotient`` exactly as the module docstrings document.
    """

    kind: str
    op: str = ""
    py: Optional[Callable] = None
    constrain: bool = True
    pred: Optional[Callable] = None


@dataclass(frozen=True)
class PrimSpec:
    name: str
    concrete: Callable
    arity: Arity
    sig: TagSig
    family: str = "misc"
    refine: Optional[Refinement] = None
    synth: Optional[Callable] = None
    rule: Optional[Callable] = None
    pred_tags: Optional[frozenset] = None
    materialize: Optional[str] = None
    core_op: Optional[str] = None
    # Does the synth/sig handler delegate to the concrete implementation
    # when every argument reifies?  Higher-order synthesis rules (map,
    # filter, ...) must not — their delegation would need an apply
    # callback the δ context deliberately lacks.
    delegate_concrete: bool = True
    # Enforce `arity` on symbolic arguments in the generic handler (new
    # declarations only; legacy ones keep their historical lenience so
    # committed reports stay byte-identical).
    check_arity: bool = False
    alias_of: Optional[str] = None
    aliases: tuple[str, ...] = field(default=(), compare=False)


#: name -> PrimSpec, in declaration order.  Iteration order is the
#: global-frame allocation order (see ``scv.engine.build_base_heap``).
REGISTRY: dict[str, PrimSpec] = {}


def prim(name: str, *, arity: Arity, sig: TagSig, family: str = "misc",
         refine: Optional[Refinement] = None,
         synth: Optional[Callable] = None,
         rule: Optional[Callable] = None,
         pred_tags: Optional[frozenset] = None,
         materialize: Optional[str] = None,
         core_op: Optional[str] = None,
         delegate_concrete: bool = True,
         check_arity: bool = False) -> Callable:
    """Register the decorated callable as primitive ``name``."""

    def register(fn: Callable) -> Callable:
        if name in REGISTRY:
            raise ValueError(f"duplicate primitive declaration {name!r}")
        REGISTRY[name] = PrimSpec(
            name=name, concrete=fn, arity=arity, sig=sig, family=family,
            refine=refine, synth=synth, rule=rule, pred_tags=pred_tags,
            materialize=materialize, core_op=core_op,
            delegate_concrete=delegate_concrete, check_arity=check_arity,
        )
        return fn

    return register


def alias(name: str, of: str) -> None:
    """Register ``name`` as an alias sharing ``of``'s declaration.  The
    alias is a full registry row (it gets its own global binding, in
    declaration order) whose semantic fields are cloned; untyped blame
    messages still use the *invoked* name."""
    target = REGISTRY[of]
    if name in REGISTRY:
        raise ValueError(f"duplicate primitive declaration {name!r}")
    REGISTRY[name] = replace(target, name=name, core_op=None,
                             alias_of=of)
    REGISTRY[of] = replace(target, aliases=target.aliases + (name,))


def spec(name: str) -> Optional[PrimSpec]:
    return REGISTRY.get(name)


def all_specs() -> list[PrimSpec]:
    return list(REGISTRY.values())


def names() -> tuple[str, ...]:
    return tuple(REGISTRY.keys())

"""The shared search kernel.

Both machines — the typed SPCF reduction machine (``core.machine``) and
the untyped CESK machine (``scv.machine``) — present the same shape to a
search: a ``step`` function from a state to successor states (``None``
for answers) over an immutable state space.  This kernel owns everything
above that interface:

* **strategy** — the frontier discipline: ``bfs`` (the paper's §5.3
  default, and the only one the batch driver uses for reports), ``dfs``
  (LIFO), or ``depth`` (deepest-first priority queue — a greedy dive
  with global backtracking, useful for reaching deep errors under tight
  budgets);
* **memoisation** — a seen-set over canonical state fingerprints
  (``search.fingerprint``): a state whose fingerprint was already
  enqueued is pruned at enqueue time, so diamond-shaped regions of the
  execution graph are explored once instead of once per path, and
  cyclic regions (unproductive loops) terminate instead of consuming
  the whole state budget;
* **chain compression** — the dominant cost in both machines is
  *administrative*: context decomposition, allocation and
  value-plugging steps with exactly one successor (87–93% of all
  transitions on the benchmark corpus).  The memoised kernel runs such
  deterministic chains to their next choice point in place; only branch
  points, answers and chain-cap boundaries become frontier states.
  ``states_explored`` then counts *macro* states — the tree the search
  actually deliberates over — which is also what the frontier, the
  seen-set and the fingerprint bill are proportional to.  An infinite
  deterministic chain cannot evade the budget: chains are capped at
  ``chain_limit`` micro-steps, and cap-boundary states are fingerprinted
  like any other, so unproductive loops are recognised within one loop
  length;
* **subsumption** — an optional strengthening of the seen-set: a state
  is also pruned when an already-enqueued state has the *same shape*
  (fingerprint with opaque refinements erased) and pointwise *weaker*
  refinements.  The weaker state branches everywhere the stronger one
  would, so every answer control reachable from the pruned state is
  reachable from its subsumer; counterexample models are re-validated
  concretely downstream, which keeps verdicts identical (the
  memo-on/off property test in ``tests/test_search_kernel.py`` pins
  this).

The kernel counts exactly like the loops it replaces: every state popped
and stepped increments ``states_explored``; pruned states are counted in
``pruned`` and never stepped.  The ``max_states`` budget applies to
stepped states, and ``truncated`` is set when the budget expires with
work remaining.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Optional

STRATEGIES = ("bfs", "dfs", "depth")


@dataclass(frozen=True)
class Fingerprint:
    """A canonical state identity.

    ``shape`` is the hash-consed structure of the state with opaque
    refinement sets erased; ``refs`` holds one frozenset of refinement
    tokens per opaque value, in shape-traversal order.  Exact identity is
    ``(shape, refs)``; subsumption compares ``refs`` pointwise under a
    shared ``shape``.
    """

    shape: Hashable
    refs: tuple[frozenset, ...]

    def subsumed_by(self, other: "Fingerprint") -> bool:
        """Is this state covered by ``other`` (same shape, weaker
        refinements)?  ``other.refs[i] ⊆ self.refs[i]`` pointwise means
        every branch this state can take, ``other`` could take too."""
        if len(self.refs) != len(other.refs):
            return False
        return all(o <= s for o, s in zip(other.refs, self.refs))


@dataclass
class KernelStats:
    """Default stats sink; any object with these attributes works."""

    states_explored: int = 0
    answers: int = 0
    pruned: int = 0
    chained: int = 0  # micro-steps folded into macro states
    truncated: bool = False


class SearchKernel:
    """Strategy-pluggable exploration of a nondeterministic transition
    system with optional fingerprint memoisation.

    Parameters:

    * ``step`` — successor function; ``None`` marks an answer state;
    * ``strategy`` — ``bfs`` | ``dfs`` | ``depth``;
    * ``fingerprint`` — canonicaliser ``state -> Fingerprint`` (or
      ``None`` for a state the caller wants exempted); pass ``None`` to
      disable memoisation entirely (every state is explored, exactly the
      pre-kernel behaviour);
    * ``subsume`` — also prune refinement-subsumed states (ignored
      without a fingerprinter);
    * ``expander`` — optional fused expansion function
      ``(state, chain_limit) -> (final_state, successors, chained)``
      replacing the step-at-a-time ``_expand`` loop.  This is how the
      bytecode executors (``repro.compile``) plug in: they run the
      deterministic chain in a dispatch loop over compiled instructions,
      materialising a full machine state only at the observable points —
      the returned ``final_state`` and ``successors`` — with exactly the
      step machine's semantics (the contract the differential oracle in
      ``tests/test_differential.py`` enforces).  ``chained`` is the
      number of single-successor micro-steps folded in, counted exactly
      like the default loop; a ``chain_limit`` of 0 means "no chaining"
      (one step), which is what a memo-less kernel passes;
    * ``enter`` — optional callback invoked with every state the kernel
      pops for expansion, before it is stepped.  This is how a path-
      aware layer below the step function — the proof systems' per-path
      incremental solver contexts (``smt.incremental``) — observes the
      search jumping between paths: the callback marks the context's
      path-local memo stale, and the solver scope forks to the new
      path's assertion trail at the next query.  The kernel itself
      carries no solver state; it only announces path switches;
    * ``stats`` — mutated in place so callers that abandon the iterator
      mid-run (the driver stops at the first validated counterexample)
      still observe exact counts.
    """

    def __init__(
        self,
        step: Callable,
        *,
        strategy: str = "bfs",
        fingerprint: Optional[Callable] = None,
        subsume: bool = True,
        compress: Optional[bool] = None,
        chain_limit: int = 128,
        max_states: int = 50_000,
        expander: Optional[Callable] = None,
        enter: Optional[Callable] = None,
        stats=None,
    ) -> None:
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r} (have: {', '.join(STRATEGIES)})"
            )
        self.step = step
        self.strategy = strategy
        self.fingerprint = fingerprint
        self.subsume = subsume and fingerprint is not None
        # Chain compression needs the seen-set for loop detection, so it
        # defaults to (and requires) memoisation being on; without a
        # fingerprinter the kernel is the paper-faithful micro-step loop.
        self.compress = (fingerprint is not None) if compress is None \
            else (compress and fingerprint is not None)
        self.chain_limit = chain_limit
        self.max_states = max_states
        self.expander = expander
        self.enter = enter
        self.stats = stats if stats is not None else KernelStats()
        self._seen: set[Fingerprint] = set()
        self._by_shape: dict[Hashable, list[Fingerprint]] = {}

    # -- memoisation -----------------------------------------------------

    def _admit(self, state) -> bool:
        """Record ``state``'s fingerprint; False when it is redundant."""
        if self.fingerprint is None:
            return True
        fp = self.fingerprint(state)
        return self._admit_fp(fp)

    def _admit_fp(self, fp: Optional[Fingerprint]) -> bool:
        """Admit by fingerprint alone (the sharded engine routes states
        between workers by fingerprint, so admission must not need the
        state).  ``None`` means the caller exempted the state."""
        if fp is None:
            return True
        if fp in self._seen:
            self.stats.pruned += 1
            return False
        if self.subsume:
            shelf = self._by_shape.setdefault(fp.shape, [])
            if any(fp.subsumed_by(old) for old in shelf):
                self.stats.pruned += 1
                return False
            shelf.append(fp)
        self._seen.add(fp)
        return True

    # -- the loop --------------------------------------------------------

    def _expand(self, state):
        """Step ``state``, running any deterministic chain to its next
        choice point.  Returns ``(final_state, successors)`` where
        ``successors`` is ``None`` when ``final_state`` is an answer."""
        if self.expander is not None:
            limit = self.chain_limit if self.compress else 0
            state, succs, chained = self.expander(state, limit)
            if chained and hasattr(self.stats, "chained"):
                self.stats.chained += chained
            return state, succs
        succs = self.step(state)
        if not self.compress:
            return state, succs
        chained = 0
        while succs is not None and len(succs) == 1 and chained < self.chain_limit:
            state = succs[0]
            chained += 1
            succs = self.step(state)
        if chained and hasattr(self.stats, "chained"):
            self.stats.chained += chained
        return state, succs

    def run(self, init) -> Iterator:
        """Explore from ``init``, yielding answer states."""
        st = self.stats
        strategy = self.strategy
        if strategy == "depth":
            seq = 0
            heap: list[tuple[int, int, object]] = []
            if self._admit(init):
                heapq.heappush(heap, (0, seq, init))
            while heap:
                if st.states_explored >= self.max_states:
                    st.truncated = True
                    return
                negdepth, _, state = heapq.heappop(heap)
                st.states_explored += 1
                if self.enter is not None:
                    self.enter(state)
                state, succs = self._expand(state)
                if succs is None:
                    st.answers += 1
                    yield state
                    continue
                for s in succs:
                    if self._admit(s):
                        seq += 1
                        heapq.heappush(heap, (negdepth - 1, seq, s))
            return

        frontier: deque = deque()
        if self._admit(init):
            frontier.append(init)
        pop = frontier.popleft if strategy == "bfs" else frontier.pop
        while frontier:
            if st.states_explored >= self.max_states:
                st.truncated = True
                return
            state = pop()
            st.states_explored += 1
            if self.enter is not None:
                self.enter(state)
            state, succs = self._expand(state)
            if succs is None:
                st.answers += 1
                yield state
                continue
            frontier.extend(s for s in succs if self._admit(s))

"""Hash-consed interning of fingerprint structure.

State fingerprints (``search.fingerprint``) are deep nested tuples, and
equivalent states produce *equal* tuples along every path that reaches
them.  Interning maps every structurally-equal tuple to one canonical
object, so

* the seen-set stores each distinct subtree once (memory stays
  proportional to the number of distinct states, not to the number of
  fingerprint tokens), and
* repeated equality checks inside the seen-set dict shortcut on object
  identity for shared subtrees instead of re-walking them.

The table is scoped to one :class:`Interner` — one per search run — so
nothing leaks between programs in a long-lived batch worker.
"""

from __future__ import annotations

from typing import Hashable


class Interner:
    """Hash-consing table for immutable fingerprint values.

    ``intern`` recursively canonicalises tuples and frozensets; scalars
    (ints, strings, ...) pass through untouched — Python already interns
    the small ones, and they are cheap to hash.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[Hashable, Hashable] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, value: Hashable) -> Hashable:
        if isinstance(value, tuple):
            value = tuple(self.intern(v) for v in value)
        elif isinstance(value, frozenset):
            value = frozenset(self.intern(v) for v in value)
        else:
            return value
        hit = self._table.get(value)
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        self._table[value] = value
        return value

    def __len__(self) -> int:
        return len(self._table)

"""Canonical state fingerprints for both machines.

Two states are behaviourally interchangeable when they differ only in
the *names* of path-allocated heap locations (the global ``fresh_loc``
counter names every branch's allocations differently) and in unreachable
heap garbage.  A fingerprint erases exactly those differences:

* serialization is reachability-driven — it starts from the control
  expression (plus environment, continuation stack for the CESK
  machine) and only visits heap cells a location reference leads to;
* path-allocated locations (``L…``, ``u…``, ``cell…``) are renamed to
  their first-visit index; sharing and cycles serialize as back
  references;
* *identity-bearing* locations keep their names: ``o:<label>`` locations
  are derived from source labels and re-used by the Opq/UOpaque rules
  (two states holding the same structure at an ``o:`` loc vs. a fresh
  loc are **not** interchangeable — a later evaluation of the same
  ``•^label`` occurrence rejoins the former but not the latter), and the
  scv machine's frozen-base globals (``g…``) are per-program constants
  that serialize by name alone — unless a path has shadowed them in the
  overlay, in which case their content is serialized like any other
  cell.

The result is a :class:`~repro.search.kernel.Fingerprint`: a hash-consed
``shape`` with opaque refinement sets erased, plus one frozenset of
refinement tokens per opaque (in traversal order) for the kernel's
subsumption check.  Answer states fold their refinements into the shape
— they are deduplicated exactly, never subsumption-pruned, because a
counterexample model is read off the answer heap's refinements and a
weaker answer is not a substitute for a stronger one.

Refinement predicates may mention locations nothing else reaches; those
serialize *inside* the refinement token (shapes stay refinement-blind)
and are processed after the main traversal so shape-level canonical
indices never depend on refinements.

The exact-dedup rule for answers matters beyond pruning correctness:
an answer heap's refinements (and its ``UCase`` argument-pattern
tables) are precisely what counterexample construction *and* the
demonic-client synthesis of :mod:`repro.synth` read back — pruning a
stronger answer in favour of a weaker one would change which concrete
witness (and which synthesized client) the tool reports.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Hashable, Optional

from ..core import heap as core_heap
from ..core import machine as core_machine
from ..core import syntax as core_syntax
from ..core.heap import (
    HConst,
    HLoc,
    HOp,
    HTerm,
    PEq,
    PLe,
    PLt,
    PNot,
    Pred,
    PZero,
)
from ..core.syntax import Loc
from ..lang import ast as uast
from ..lang.sexp import Symbol
from .intern import Interner
from .kernel import Fingerprint


def _datum_token(datum: object) -> Hashable:
    """A hashable, type-disambiguated token for a quoted datum / concrete
    immediate (bool before int: bool is an int subclass)."""
    if isinstance(datum, bool):
        return ("bool", datum)
    if isinstance(datum, (int, float, complex, Fraction, str)):
        return (type(datum).__name__, datum)
    if isinstance(datum, Symbol):
        return ("sym", datum.name)
    if isinstance(datum, (list, tuple)):
        return ("list", tuple(_datum_token(d) for d in datum))
    # NIL, VOID, the letrec undefined sentinel, ... — singletons with
    # stable reprs.
    return ("datum", repr(datum))


class _Base:
    """Shared traversal state for one fingerprint computation."""

    def __init__(self, interner: Interner) -> None:
        self._intern = interner
        self.canon: dict[Loc, int] = {}
        self.refs: list[Optional[frozenset]] = []
        # (refs slot, predicate tuple) — serialized after the shape
        # traversal so shape indices never depend on refinements.
        self.pending: list[tuple[int, tuple[Pred, ...]]] = []

    # -- refinement bookkeeping -----------------------------------------

    def opq_slot(self, preds: tuple[Pred, ...]) -> int:
        slot = len(self.refs)
        self.refs.append(None)
        self.pending.append((slot, preds))
        return slot

    def drain_pending(self) -> None:
        # Serializing a predicate can reach an opaque nothing else
        # reached, queueing more work — hence a worklist, not a loop
        # over a snapshot.
        i = 0
        while i < len(self.pending):
            slot, preds = self.pending[i]
            self.refs[slot] = frozenset(self._pred(p) for p in preds)
            i += 1

    def finish(self, shape: Hashable, *, exact_only: bool) -> Fingerprint:
        self.drain_pending()
        refs = tuple(self.refs)
        if exact_only:
            # Fold refinements into the shape: exact dedup still works,
            # pointwise-subset subsumption can never fire.
            shape = (shape, refs)
            refs = ()
        return Fingerprint(self._intern.intern(shape), self._intern.intern(refs))

    # -- predicates and heap terms --------------------------------------

    def _pred(self, p: Pred) -> Hashable:
        if isinstance(p, PZero):
            return ("zero?",)
        if isinstance(p, PEq):
            return ("=", self._hterm(p.term))
        if isinstance(p, PLt):
            return ("<", self._hterm(p.term))
        if isinstance(p, PLe):
            return ("<=", self._hterm(p.term))
        if isinstance(p, PNot):
            return ("not", self._pred(p.arg))
        # PEqDatum (scv) and any future predicate with a datum payload.
        datum = getattr(p, "datum", None)
        if datum is not None or hasattr(p, "datum"):
            return ("='", _datum_token(datum))
        raise TypeError(f"cannot fingerprint predicate {p!r}")

    def _hterm(self, t: HTerm) -> Hashable:
        if isinstance(t, HConst):
            return ("c", t.value)
        if isinstance(t, HLoc):
            return self.loc(t.loc)
        if isinstance(t, HOp):
            return (t.op, tuple(self._hterm(a) for a in t.args))
        raise TypeError(f"cannot fingerprint heap term {t!r}")

    def loc(self, l: Loc) -> Hashable:  # pragma: no cover - overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Typed core machine (``core.State``)
# ---------------------------------------------------------------------------


class _CoreRun(_Base):
    def __init__(self, interner: Interner, heap: core_heap.Heap) -> None:
        super().__init__(interner)
        self.heap = heap

    def loc(self, l: Loc) -> Hashable:
        idx = self.canon.get(l)
        if idx is not None:
            return ("@", idx)
        idx = len(self.canon)
        self.canon[l] = idx
        name = l.name if l.name.startswith("o:") else ""
        return ("#", idx, name, self._store(self.heap.get(l)))

    def _store(self, s: core_heap.Storeable) -> Hashable:
        if isinstance(s, core_heap.SNum):
            return ("n", s.value)
        if isinstance(s, core_heap.SLam):
            return ("sl", self.expr(s.lam))
        if isinstance(s, core_heap.SOpq):
            return ("opq", self.opq_slot(s.refinements), s.type)
        if isinstance(s, core_heap.SCase):
            return (
                "case",
                s.out_type,
                tuple((self.loc(k), self.loc(v)) for k, v in s.mapping),
            )
        raise TypeError(f"cannot fingerprint storeable {s!r}")

    def expr(self, e: core_syntax.Expr) -> Hashable:
        if isinstance(e, Loc):
            return self.loc(e)
        if isinstance(e, (core_syntax.Num, core_syntax.Ref,
                          core_syntax.Opq, core_syntax.Err)):
            return e  # frozen, loc-free: the node is its own token
        if isinstance(e, core_syntax.Lam):
            return ("lam", e.var, e.var_type, self.expr(e.body))
        if isinstance(e, core_syntax.Fix):
            return ("fix", e.var, e.var_type, self.expr(e.body))
        if isinstance(e, core_syntax.App):
            return ("app", self.expr(e.fn), self.expr(e.arg))
        if isinstance(e, core_syntax.If):
            return ("if", self.expr(e.test), self.expr(e.then),
                    self.expr(e.orelse))
        if isinstance(e, core_syntax.PrimApp):
            return ("prim", e.op, e.label,
                    tuple(self.expr(a) for a in e.args))
        raise TypeError(f"cannot fingerprint expression {e!r}")


class CoreFingerprinter:
    """``core.State -> Fingerprint`` with a per-search interning table."""

    def __init__(self) -> None:
        self._interner = Interner()

    def __call__(self, state: core_machine.State) -> Fingerprint:
        run = _CoreRun(self._interner, state.heap)
        shape = ("core", run.expr(state.control))
        return run.finish(shape, exact_only=state.is_answer)


# ---------------------------------------------------------------------------
# Untyped CESK machine (``scv.SState``)
# ---------------------------------------------------------------------------


class _ScvRun(_Base):
    def __init__(self, interner: Interner, heap, genv_cache: dict) -> None:
        super().__init__(interner)
        self.heap = heap
        self._genv_cache = genv_cache

    def loc(self, l: Loc) -> Hashable:
        name = l.name
        if name.startswith("g") and not self.heap.in_overlay(l):
            return ("g", name)  # frozen-base global: a per-program constant
        idx = self.canon.get(l)
        if idx is not None:
            return ("@", idx)
        idx = len(self.canon)
        self.canon[l] = idx
        ident = name if name.startswith("o:") else ""
        return ("#", idx, ident, self._store(self.heap.get(l)))

    def _store(self, s) -> Hashable:
        from ..scv import heap as sheap

        if isinstance(s, sheap.UConc):
            return ("c", _datum_token(s.value))
        if isinstance(s, sheap.UPair):
            return ("pair", self.loc(s.car), self.loc(s.cdr))
        if isinstance(s, sheap.UStruct):
            return ("struct", s.type.name,
                    tuple(self.loc(f) for f in s.fields))
        if isinstance(s, sheap.UBoxS):
            return ("box", self.loc(s.content))
        if isinstance(s, sheap.UVectorS):
            return ("vec", tuple(self.loc(f) for f in s.fields))
        if isinstance(s, sheap.UAlias):
            return ("alias", self.loc(s.target))
        if isinstance(s, sheap.UClos):
            # UClos declares an SEnv (name/loc tuple) but the machine
            # stores MEnv chains; accept either.
            env_tok = (
                self.menv(s.env)
                if hasattr(s.env, "frame")
                else tuple((n, self.loc(l)) for n, l in s.env)
            )
            return ("clos", self.uexpr(s.lam), env_tok)
        if isinstance(s, sheap.UPrim):
            return ("uprim", s.name)
        if isinstance(s, sheap.UStructCtor):
            return ("ctor", s.type.name)
        if isinstance(s, sheap.UGuard):
            return ("guard", self.loc(s.contract), self.loc(s.inner),
                    s.pos, s.neg)
        if isinstance(s, sheap.UCtc):
            return ("ctc", s.kind,
                    s.stype.name if s.stype is not None else "",
                    tuple(self.loc(p) for p in s.parts))
        if isinstance(s, sheap.UOpq):
            return ("opq", self.opq_slot(s.preds),
                    tuple(sorted(s.possible)))
        if isinstance(s, sheap.UCase):
            return ("ucase", s.arity,
                    tuple((tuple(self.loc(k) for k in key), self.loc(v))
                          for key, v in s.mapping))
        raise TypeError(f"cannot fingerprint storeable {s!r}")

    def menv(self, env) -> Hashable:
        """A machine environment chain, innermost frame first.

        The globals-only base frame is per-program constant, so its
        names-only token is cached across states — but only while no
        path has shadowed a global in the heap overlay
        (``has_global_writes``); a ``set!`` on a primitive name revokes
        the shortcut and the frame serializes through ``loc`` like any
        other, picking up the overlaid value.  Cache entries pin the
        environment object so an ``id`` can never be recycled onto a
        different frame."""
        globals_clean = not self.heap.has_global_writes
        frames = []
        while env is not None:
            if globals_clean:
                cached = self._genv_cache.get(id(env))
                if cached is not None and cached[0] is env:
                    frames.append(cached[1])
                    break  # globals-only frames never chain further
            items = tuple(sorted(env.frame.items()))
            if (
                globals_clean
                and env.parent is None
                and items
                and all(l.name.startswith("g") for _, l in items)
            ):
                token = ("genv", tuple((n, l.name) for n, l in items))
                self._genv_cache[id(env)] = (env, token)
                frames.append(token)
                break
            frames.append(tuple((n, self.loc(l)) for n, l in items))
            env = env.parent
        return tuple(frames)

    def uexpr(self, e: uast.UExpr) -> Hashable:
        from ..scv import machine as smach

        if isinstance(e, smach.ULocE):
            return self.loc(e.loc)
        if isinstance(e, uast.Quote):
            return ("q", _datum_token(e.datum))
        if isinstance(e, (uast.UVar, uast.UOpaque)):
            return e
        if isinstance(e, smach.UBlameE):
            return e
        if isinstance(e, uast.ULam):
            return ("ulam", e.params, self.uexpr(e.body))
        if isinstance(e, uast.UApp):
            return ("uapp", self.uexpr(e.fn),
                    tuple(self.uexpr(a) for a in e.args), e.label)
        if isinstance(e, uast.UIf):
            return ("uif", self.uexpr(e.test), self.uexpr(e.then),
                    self.uexpr(e.orelse))
        if isinstance(e, uast.UBegin):
            return ("ubegin", tuple(self.uexpr(x) for x in e.exprs))
        if isinstance(e, uast.ULetrec):
            return ("ulr",
                    tuple((n, self.uexpr(x)) for n, x in e.bindings),
                    self.uexpr(e.body))
        if isinstance(e, uast.USet):
            return ("uset", e.name, self.uexpr(e.value))
        if isinstance(e, smach.UMon):
            return ("umon", self.uexpr(e.contract), self.uexpr(e.value),
                    e.pos, e.neg, e.label)
        raise TypeError(f"cannot fingerprint expression {e!r}")

    def kont(self, stack) -> Hashable:
        from ..scv import machine as smach

        out = []
        for k in stack:
            if isinstance(k, smach.KIf):
                out.append(("kif", self.uexpr(k.then), self.uexpr(k.orelse),
                            self.menv(k.env)))
            elif isinstance(k, smach.KApp):
                out.append(("kapp", tuple(self.loc(l) for l in k.done),
                            tuple(self.uexpr(a) for a in k.pending),
                            self.menv(k.env), k.label))
            elif isinstance(k, smach.KBegin):
                out.append(("kbegin",
                            tuple(self.uexpr(x) for x in k.rest),
                            self.menv(k.env)))
            elif isinstance(k, smach.KLetrec):
                out.append(("klr", tuple(self.loc(c) for c in k.cells),
                            k.index,
                            tuple((n, self.uexpr(x)) for n, x in k.bindings),
                            self.uexpr(k.body), self.menv(k.env)))
            elif isinstance(k, smach.KSet):
                out.append(("kset", self.loc(k.cell)))
            elif isinstance(k, smach.KMonC):
                out.append(("kmonc", self.uexpr(k.value), self.menv(k.env),
                            k.pos, k.neg, k.label))
            elif isinstance(k, smach.KMonV):
                out.append(("kmonv", self.loc(k.ctc), k.pos, k.neg, k.label))
            else:
                raise TypeError(f"cannot fingerprint continuation {k!r}")
        return tuple(out)


class ScvFingerprinter:
    """``scv.SState -> Fingerprint``; caches the globals-only base
    environment frame across states (it is per-program constant)."""

    def __init__(self) -> None:
        self._interner = Interner()
        self._genv_cache: dict[int, tuple] = {}

    def __call__(self, state) -> Fingerprint:
        from ..scv.machine import Blame

        run = _ScvRun(self._interner, state.heap, self._genv_cache)
        c = state.control
        # The control kind is part of the state's identity: a ULocE
        # *expression* steps to the bare Loc control (value-plugging
        # mode), and both would otherwise serialize to the same token —
        # colliding a state with its own parent.
        if isinstance(c, Blame):
            kind, ctrl = "b", (c.party, c.label, c.description)
        elif isinstance(c, Loc):
            kind, ctrl = "v", run.loc(c)
        else:
            kind, ctrl = "e", run.uexpr(c)
        # gen_effort is deliberately excluded: it is search-heuristic
        # metadata, not machine state.
        shape = ("scv", kind, ctrl, run.menv(state.env), run.kont(state.kont))
        return run.finish(shape, exact_only=state.is_answer)

"""The sharded frontier engine: one symbolic search, many processes.

:class:`ShardedSearch` explores the same transition system as
:class:`~repro.search.kernel.SearchKernel` (bfs strategy, memoisation
on) with the frontier partitioned across N forked worker processes —
and produces *byte-identical* output: the same answers in the same
order, with the same non-volatile statistics.  Parallelism must be
invisible because the driver's verdicts and counterexamples are the
product (Theorem 1), not a best-effort approximation.

How the determinism argument goes:

* **Level-synchronised BFS.**  The search proceeds level by level.
  Within a level, states are identified by their *path* — the tuple of
  successor indices from the root — and sequential BFS pops exactly the
  states of level d in lexicographic path order before any state of
  level d+1.  The parent replays that order when it accounts results,
  so budget cut-offs, truncation and answer order land exactly where
  the sequential kernel would put them.

* **Sharded admission.**  Dedup and subsumption are *shape-local*: the
  kernel's seen-set is exact identity on fingerprints and its
  subsumption shelf only ever compares fingerprints with the same
  ``shape``.  Routing every candidate to the worker that owns
  ``hash(shape) % N`` therefore keeps both checks exact — all
  same-shape candidates meet in one worker, in one per-level batch,
  sorted by path, which is precisely the order the sequential kernel
  admits them in.  (Fork inheritance makes ``hash`` of the interned
  shape tuples consistent across the run's processes: children share
  the parent's string-hash seed.)

* **Path-determined states.**  The machines thread their global
  counters through the states (``loc_base`` / ``syn_base``), so a
  state's contents — heap location names, machine-minted blame labels —
  are a pure function of its path, never of which worker stepped it or
  when.  Identical paths yield identical pickled states in any
  schedule.

* **Chain compression stays whole.**  Deterministic chains are run to
  their next choice point *inside the expanding worker*, exactly as the
  sequential kernel does in ``_expand``; a chain is never cut at a
  shard boundary, so ``states_explored`` counts the same macro states
  under any partitioning.

* **Prefix accounting.**  Workers report, per expanded state, the
  deterministic deltas (chained micro-steps, proof-counter increments)
  and the parent folds them in global BFS order, updating the caller's
  stats *at each yield* to the exact value the sequential kernel would
  show there.  A consumer that abandons the iterator mid-run (the
  driver stops at the first validated counterexample) still observes
  sequential-identical counters.  Genuinely schedule-dependent counts —
  ``stolen_tasks``, ``frontier_exchanges``, per-shard state counts, the
  solver-economy numbers — are reported via fields the bench report
  declares volatile.

* **Shared solver tier.**  Workers point the process-global
  ``smt.cache.solver_cache`` at a per-run
  :class:`~repro.store.solver.SolverStore` directory (unless a
  persistent store is already attached): each worker flushes its fresh
  decisive results after every expansion chunk and re-reads sibling
  shards at the next level barrier, so one shard's solve is every
  shard's cache hit.  UNKNOWN results are never published (the cache's
  ``put`` guard), and entries are pure functions of the canonical
  formula, so sharing can change speed but never answers.

Work distribution is parent-brokered: expansion tasks are dispatched in
path-ordered chunks, preferentially to the worker that admitted them
(their home shard); when a worker runs dry it *steals* the tail chunk
of the largest remaining home queue.  A seeded jitter hook randomises
dispatch and steal order — the determinism stress test runs the same
search under twenty schedules and expects one answer stream.

When forking is unavailable — a non-POSIX platform, or the current
process is itself a daemonic pool worker (the batch runner's workers
cannot fork children) — the engine falls back to the sequential kernel,
which by the argument above changes nothing but the wall clock.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import shutil
import tempfile
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from .kernel import KernelStats, SearchKernel


@dataclass
class ShardStats(KernelStats):
    """KernelStats plus the sharding-specific (volatile) counters."""

    shards: int = 1
    stolen_tasks: int = 0
    frontier_exchanges: int = 0
    shard_states: tuple = ()


_STAT_EXTRAS = ("shards", "stolen_tasks", "frontier_exchanges", "shard_states")


def _set_extras(stats, shards, stolen, exchanges, per_shard) -> None:
    values = (shards, stolen, exchanges, tuple(per_shard))
    for name, value in zip(_STAT_EXTRAS, values):
        if hasattr(stats, name):
            setattr(stats, name, value)


def fork_available() -> bool:
    """Can this process host a sharded search?  Requires the ``fork``
    start method (workers must inherit the machine, the fingerprint
    interner and the string-hash seed) and a non-daemonic parent
    (daemonic pool workers may not have children)."""
    if "fork" not in mp.get_all_start_methods():
        return False
    return not mp.current_process().daemon


class _WorkerFailure(Exception):
    """Re-raised parent-side with the original exception's name, so the
    driver's ``detail`` strings match the sequential run's."""


def _rebuild_exception(type_name: str, message: str) -> BaseException:
    exc_type = type(type_name, (RuntimeError,), {})
    return exc_type(message)


@dataclass
class _Record:
    """One expanded state, as reported by a worker."""

    path: tuple
    wid: int
    chained: int = 0
    deltas: tuple = ()
    answer: object = None
    is_answer: bool = False
    succs: list = field(default_factory=list)  # [(path, fp, home, state)]
    error: Optional[tuple[str, str]] = None  # (type name, message)


class ShardedSearch:
    """Drop-in replacement for ``SearchKernel`` (bfs + memo) that
    partitions the frontier across ``shards`` forked workers.

    Parameters mirror the kernel's; the additions are:

    * ``counter_probe`` — zero-arg callable run *in the worker* after
      each expansion, returning a tuple of cumulative deterministic
      counters (the proof system's ``queries``/``solver_queries``);
    * ``counter_sink`` — callable run *in the parent* with the
      prefix-summed counter tuple at every yield (and at exhaustion),
      so the caller's proof object shows sequential-identical counts;
    * ``jitter`` — optional seed for the scheduling-jitter hook: chunk
      dispatch and steal order are shuffled pseudo-randomly.  Output
      must not change; the stress test pins that.
    """

    def __init__(
        self,
        step: Callable,
        *,
        shards: int,
        fingerprint: Callable,
        subsume: bool = True,
        chain_limit: int = 128,
        max_states: int = 50_000,
        expander: Optional[Callable] = None,
        enter: Optional[Callable] = None,
        stats=None,
        counter_probe: Optional[Callable] = None,
        counter_sink: Optional[Callable] = None,
        jitter: Optional[int] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if fingerprint is None:
            raise ValueError("sharded search requires a fingerprinter "
                             "(states are routed by fingerprint shape)")
        self.step = step
        self.shards = shards
        self.fingerprint = fingerprint
        self.subsume = subsume
        self.chain_limit = chain_limit
        self.max_states = max_states
        # Fused expansion (the bytecode executors); forked workers
        # inherit it with the machine, so compiled and sharded compose.
        self.expander = expander
        self.enter = enter
        self.stats = stats if stats is not None else ShardStats()
        self.counter_probe = counter_probe
        self.counter_sink = counter_sink
        self._jitter = random.Random(jitter) if jitter is not None else None
        self._chunk_size = chunk_size

    # -- public ----------------------------------------------------------

    def run(self, init) -> Iterator:
        """Explore from ``init``, yielding answer states in exact
        sequential BFS order."""
        if self.shards <= 1 or not fork_available():
            yield from self._run_sequential(init)
            return
        yield from self._run_sharded(init)

    # -- fallback --------------------------------------------------------

    def _run_sequential(self, init) -> Iterator:
        kernel = SearchKernel(
            self.step,
            strategy="bfs",
            fingerprint=self.fingerprint,
            subsume=self.subsume,
            chain_limit=self.chain_limit,
            max_states=self.max_states,
            expander=self.expander,
            enter=self.enter,
            stats=self.stats,
        )
        _set_extras(self.stats, 1, 0, 0, ())
        yield from kernel.run(init)

    # -- the sharded engine ---------------------------------------------

    def _run_sharded(self, init) -> Iterator:
        st = self.stats
        n = self.shards
        ctx = mp.get_context("fork")
        out_q = ctx.Queue()
        in_qs = [ctx.Queue() for _ in range(n)]

        # Per-run solver tier: workers attach the process-global cache's
        # backing to this directory post-fork, unless the driver already
        # attached a persistent store (then they share that instead).
        from ..smt import solver_cache

        own_store = solver_cache.backing is None
        store_dir = tempfile.mkdtemp(prefix="repro-shards-") if own_store \
            else None

        workers = [
            ctx.Process(
                target=self._worker_main,
                args=(wid, in_qs[wid], out_q, store_dir),
                daemon=True,
            )
            for wid in range(n)
        ]
        for w in workers:
            w.start()

        stolen = 0
        exchanges = 0
        per_shard = [0] * n
        cum: Optional[tuple] = None  # prefix-summed counter tuple
        try:
            fp = self.fingerprint(init)
            # Admit the root at its home shard (so later states equal to
            # it are pruned there), then run the level loop.
            root_home = 0
            if fp is not None:
                root_home = hash(fp.shape) % n
                in_qs[root_home].put(("admit", [((), fp)]))
                msg = out_q.get()
                if msg[0] == "crashed":
                    raise _WorkerFailure(
                        f"shard worker {msg[1]} crashed:\n{msg[2]}"
                    )
                assert msg[0] == "admitted" and msg[2] == [()]
            # Level entries: (path, state, home shard).
            level: list[tuple[tuple, object, int]] = [((), init, root_home)]

            while level:
                allowed = self.max_states - st.states_explored
                if allowed <= 0:
                    st.truncated = True
                    return
                expand_list = level[:allowed]
                leftover = len(level) - len(expand_list)

                # -- expand phase (dynamic chunked dispatch + stealing)
                records, srec = self._expand_level(
                    expand_list, in_qs, out_q, per_shard
                )
                stolen += srec

                # -- admit phase: all of this level's successors, one
                # sorted batch per home worker (exactly the sequential
                # admission order restricted to each shape).
                candidates = []  # (path, fp, home, state, wid_gen)
                for rec in records.values():
                    for path, cfp, home, state in rec.succs:
                        candidates.append((path, cfp, home, state, rec.wid))
                        if cfp is not None and home != rec.wid:
                            exchanges += 1
                candidates.sort(key=lambda c: c[0])
                admitted_paths = self._admit_level(candidates, in_qs, out_q)
                prunes: dict[tuple, int] = {}
                next_level = []
                for path, cfp, home, state, _gen in candidates:
                    if cfp is None or path in admitted_paths:
                        next_level.append((path, state, home))
                    else:
                        parent = path[:-1]
                        prunes[parent] = prunes.get(parent, 0) + 1

                # -- yield phase: replay global BFS order with prefix
                # accounting, so every yield shows sequential counters.
                for path, _state, _home in expand_list:
                    rec = records[path]
                    st.states_explored += 1
                    st.chained += rec.chained
                    if rec.deltas:
                        cum = rec.deltas if cum is None else tuple(
                            a + b for a, b in zip(cum, rec.deltas)
                        )
                    if rec.error is not None:
                        if self.counter_sink is not None and cum is not None:
                            self.counter_sink(cum)
                        _set_extras(st, n, stolen, exchanges, per_shard)
                        raise _rebuild_exception(*rec.error)
                    if rec.is_answer:
                        st.answers += 1
                        if self.counter_sink is not None and cum is not None:
                            self.counter_sink(cum)
                        _set_extras(st, n, stolen, exchanges, per_shard)
                        yield rec.answer
                    else:
                        st.pruned += prunes.get(path, 0)

                if leftover:
                    # Sequential semantics: the budget expired at pop
                    # time with work remaining (the unexpanded tail plus
                    # whatever was admitted above).
                    st.truncated = True
                    return
                level = next_level
        finally:
            if self.counter_sink is not None and cum is not None:
                self.counter_sink(cum)
            _set_extras(st, n, stolen, exchanges, per_shard)
            self._shutdown(workers, in_qs, out_q)
            if store_dir is not None:
                shutil.rmtree(store_dir, ignore_errors=True)

    # -- parent: level phases -------------------------------------------

    def _expand_level(self, expand_list, in_qs, out_q, per_shard):
        """Dispatch one level's expansions in chunks, stealing between
        home queues to keep workers busy.  Returns (records by path,
        tasks stolen)."""
        n = self.shards
        total = len(expand_list)
        chunk = self._chunk_size or max(1, -(-total // (n * 4)))
        home_qs: list[deque] = [deque() for _ in range(n)]
        for path, state, home in expand_list:
            home_qs[home].append((path, state))
        stolen = 0
        outstanding = 0
        records: dict[tuple, _Record] = {}

        def next_chunk(wid):
            nonlocal stolen
            q = home_qs[wid]
            was_stolen = False
            if not q:
                donors = [u for u in range(n) if home_qs[u]]
                if not donors:
                    return None
                if self._jitter is not None:
                    self._jitter.shuffle(donors)
                donors.sort(key=lambda u: -len(home_qs[u]))
                q = home_qs[donors[0]]
                was_stolen = True
            take = min(chunk, len(q))
            if was_stolen:
                # steal from the tail: the donor keeps its earliest paths
                batch = [q.pop() for _ in range(take)][::-1]
                stolen += take
            else:
                batch = [q.popleft() for _ in range(take)]
            return batch

        order = list(range(n))
        if self._jitter is not None:
            self._jitter.shuffle(order)
        for wid in order:
            batch = next_chunk(wid)
            if batch is not None:
                in_qs[wid].put(("expand", batch))
                outstanding += 1
        while outstanding:
            msg = out_q.get()
            kind, wid = msg[0], msg[1]
            if kind == "crashed":
                raise _WorkerFailure(
                    f"shard worker {wid} crashed:\n{msg[2]}"
                )
            assert kind == "results"
            outstanding -= 1
            for raw in msg[2]:
                rec = _Record(*raw)
                records[rec.path] = rec
                per_shard[wid] += 1
            batch = next_chunk(wid)
            if batch is not None:
                in_qs[wid].put(("expand", batch))
                outstanding += 1
        return records, stolen

    def _admit_level(self, candidates, in_qs, out_q):
        """Send each home worker its (path-sorted) batch of fingerprints
        and collect the union of admitted paths."""
        n = self.shards
        batches: list[list] = [[] for _ in range(n)]
        for path, cfp, home, _state, _gen in candidates:
            if cfp is not None:
                batches[home].append((path, cfp))
        sent = 0
        for wid in range(n):
            if batches[wid]:
                in_qs[wid].put(("admit", batches[wid]))
                sent += 1
        admitted: set[tuple] = set()
        while sent:
            msg = out_q.get()
            kind, wid = msg[0], msg[1]
            if kind == "crashed":
                raise _WorkerFailure(
                    f"shard worker {wid} crashed:\n{msg[2]}"
                )
            assert kind == "admitted"
            admitted.update(msg[2])
            sent -= 1
        return admitted

    def _shutdown(self, workers, in_qs, out_q) -> None:
        for q in in_qs:
            try:
                q.put(("stop",))
            except Exception:
                pass
        for w in workers:
            w.join(timeout=2.0)
        for w in workers:
            if w.is_alive():
                w.terminate()
                w.join(timeout=1.0)
        for q in (*in_qs, out_q):
            q.cancel_join_thread()
            q.close()

    # -- worker ----------------------------------------------------------

    def _worker_main(self, wid, in_q, out_q, store_dir) -> None:
        try:
            from ..smt import solver_cache
            from ..store.solver import SolverStore

            if store_dir is not None and solver_cache.backing is None:
                solver_cache.backing = SolverStore(store_dir)
            backing = solver_cache.backing
            # This worker's slice of the admission state: same logic,
            # same counting as the sequential kernel, restricted to the
            # shapes this shard owns.
            kern = SearchKernel(
                self.step,
                strategy="bfs",
                fingerprint=self.fingerprint,
                subsume=self.subsume,
                chain_limit=self.chain_limit,
                expander=self.expander,
            )
            while True:
                msg = in_q.get()
                kind = msg[0]
                if kind == "stop":
                    return
                if kind == "admit":
                    # Level barrier for this shard: pick up solver
                    # results published by sibling shards since the
                    # index was last built.
                    if backing is not None and hasattr(backing, "refresh"):
                        backing.refresh()
                    admitted = [
                        path for path, fp in msg[1] if kern._admit_fp(fp)
                    ]
                    out_q.put(("admitted", wid, admitted))
                elif kind == "expand":
                    results = [
                        tuple(self._expand_one(kern, wid, path, state))
                        for path, state in msg[1]
                    ]
                    if backing is not None:
                        backing.flush()
                    out_q.put(("results", wid, results))
        except Exception:
            try:
                out_q.put(("crashed", wid, traceback.format_exc()))
            except Exception:
                os._exit(1)

    def _expand_one(self, kern, wid, path, state):
        """One task: enter, expand (chains run to their choice point),
        fingerprint + route the successors.  Mirrors one iteration of
        the sequential kernel loop; exceptions become per-task error
        records so the parent can re-raise them at the exact global
        index the sequential run would."""
        rec = _Record(path, wid)
        chained0 = kern.stats.chained
        probe = self.counter_probe
        base = probe() if probe is not None else None
        try:
            if self.enter is not None:
                self.enter(state)
            final, succs = kern._expand(state)
            if succs is None:
                rec.answer, rec.is_answer = final, True
            else:
                n = self.shards
                packed = []
                for i, s in enumerate(succs):
                    fp = self.fingerprint(s)
                    home = hash(fp.shape) % n if fp is not None else wid
                    packed.append((path + (i,), fp, home, s))
                rec.succs = packed
        except Exception as exc:
            rec.error = (type(exc).__name__, str(exc))
            rec.succs = []
        rec.chained = kern.stats.chained - chained0
        if base is not None:
            now = probe()
            rec.deltas = tuple(b - a for a, b in zip(base, now))
        return (rec.path, rec.wid, rec.chained, rec.deltas, rec.answer,
                rec.is_answer, rec.succs, rec.error)

"""Shared search infrastructure for both symbolic engines.

* :mod:`repro.search.kernel` — the strategy-pluggable search loop with
  seen-set memoisation and subsumption pruning;
* :mod:`repro.search.fingerprint` — canonical state fingerprints for
  ``core.State`` and ``scv.SState``;
* :mod:`repro.search.intern` — the hash-consing table fingerprints are
  built over.
"""

from .fingerprint import CoreFingerprinter, ScvFingerprinter
from .intern import Interner
from .kernel import Fingerprint, KernelStats, STRATEGIES, SearchKernel

__all__ = [
    "CoreFingerprinter",
    "Fingerprint",
    "Interner",
    "KernelStats",
    "STRATEGIES",
    "ScvFingerprinter",
    "SearchKernel",
]

"""Shared search infrastructure for both symbolic engines.

* :mod:`repro.search.kernel` — the strategy-pluggable search loop with
  seen-set memoisation and subsumption pruning;
* :mod:`repro.search.fingerprint` — canonical state fingerprints for
  ``core.State`` and ``scv.SState``;
* :mod:`repro.search.intern` — the hash-consing table fingerprints are
  built over;
* :mod:`repro.search.parallel` — the sharded frontier engine: the same
  bfs search partitioned across forked worker processes with a
  deterministic merge (byte-identical answers and stats).
"""

from .fingerprint import CoreFingerprinter, ScvFingerprinter
from .intern import Interner
from .kernel import Fingerprint, KernelStats, STRATEGIES, SearchKernel
from .parallel import ShardStats, ShardedSearch, fork_available

__all__ = [
    "CoreFingerprinter",
    "Fingerprint",
    "Interner",
    "KernelStats",
    "STRATEGIES",
    "ScvFingerprinter",
    "SearchKernel",
    "ShardStats",
    "ShardedSearch",
    "fork_available",
]

"""Concrete interpreter for the untyped language (the validation oracle)."""

from .interp import (
    ContractBlame,
    Interp,
    InterpTimeout,
    PrimBlame,
    RuntimeFault,
    UserAbort,
    run_source,
)

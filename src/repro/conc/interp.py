"""Concrete interpreter for the untyped Racket subset.

An environment-based evaluator with full contract monitoring and blame
(Findler–Felleisen).  It is the ground truth the symbolic engine is
measured against: every counterexample the tool reports is re-run here
(§4.5), and the soundness property tests compare symbolic and concrete
outcomes.

Faults are Python exceptions carrying blame:

* :class:`PrimBlame` — a partial primitive's precondition was violated
  at a labelled application site;
* :class:`ContractBlame` — a contract boundary was crossed wrongly,
  blaming a *party* (module name, "client", or an opaque import);
* :class:`UserAbort` — the program called ``(error ...)``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional

from ..lang.ast import (
    Module,
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from ..lang.parser import parse_program
from ..lang.prims import PrimError, UserError, base_primitives
from ..lang.runtime import (
    Cell,
    Closure,
    Env,
    Guarded,
    Prim,
    StructCtor,
    is_applicable,
)
from ..lang.values import (
    ANY_C,
    AndContract,
    AnyContract,
    ConsContract,
    Contract,
    DepFuncContract,
    FlatContract,
    FuncContract,
    ListContract,
    ListofContract,
    NIL,
    NotContract,
    OneOfContract,
    OrContract,
    Pair,
    RecContract,
    StructContract,
    StructType,
    StructVal,
    VOID,
    from_pylist,
    is_truthy,
    racket_equal,
    to_pylist,
)


class RuntimeFault(Exception):
    """Base of all run-time faults."""


@dataclass
class PrimBlame(RuntimeFault):
    op: str
    label: str
    message: str

    def __str__(self) -> str:
        return f"{self.op} @ {self.label}: {self.message}"


@dataclass
class ContractBlame(RuntimeFault):
    party: str
    description: str
    label: str = ""

    def __str__(self) -> str:
        return f"contract violation: blaming {self.party} ({self.description})"


@dataclass
class UserAbort(RuntimeFault):
    message: str
    label: str = ""

    def __str__(self) -> str:
        return f"error: {self.message}"


class InterpTimeout(RuntimeFault):
    """Fuel exhausted."""


class _Ctx:
    """Callback context handed to primitives."""

    __slots__ = ("interp", "label")

    def __init__(self, interp: "Interp", label: str) -> None:
        self.interp = interp
        self.label = label

    def apply(self, fn, args):
        return self.interp.apply(fn, list(args), self.label)


class Interp:
    """The evaluator.  One instance per program run (holds fuel and the
    global namespace)."""

    def __init__(self, *, fuel: int = 2_000_000) -> None:
        self.fuel = fuel
        self.globals = Env()
        for name, fn in base_primitives().items():
            self.globals.define(name, Prim(name, fn))
        self.globals.define("any/c", ANY_C)
        self.globals.define("empty", NIL)
        self.globals.define("null", NIL)
        self.opaque_exprs: dict[str, UExpr] = {}

    # -- evaluation ----------------------------------------------------

    def eval(self, e: UExpr, env: Env):
        self.fuel -= 1
        if self.fuel <= 0:
            raise InterpTimeout("out of fuel")
        if isinstance(e, Quote):
            return self._datum(e.datum)
        if isinstance(e, UVar):
            cell = self._lookup(e.name, env)
            if not cell.is_defined:
                raise RuntimeFault(f"{e.name}: used before definition")
            return cell.value
        if isinstance(e, ULam):
            return Closure(e, env)
        if isinstance(e, UIf):
            test = self.eval(e.test, env)
            return self.eval(e.then if is_truthy(test) else e.orelse, env)
        if isinstance(e, UBegin):
            out = VOID
            for sub in e.exprs:
                out = self.eval(sub, env)
            return out
        if isinstance(e, ULetrec):
            child = env.child()
            cells = [child.define(n, Cell.UNDEFINED) for n, _ in e.bindings]
            for cell, (_, rhs) in zip(cells, e.bindings):
                cell.value = self.eval(rhs, child)
            return self.eval(e.body, child)
        if isinstance(e, USet):
            cell = self._lookup(e.name, env)
            cell.value = self.eval(e.value, env)
            return VOID
        if isinstance(e, UApp):
            fn = self.eval(e.fn, env)
            args = [self.eval(a, env) for a in e.args]
            return self.apply(fn, args, e.label)
        if isinstance(e, UOpaque):
            expr = self.opaque_exprs.get(e.label)
            if expr is None:
                raise RuntimeFault(
                    f"opaque •^{e.label} has no concrete binding"
                )
            return self.eval(expr, self.globals)
        raise RuntimeFault(f"cannot evaluate {e!r}")

    def _lookup(self, name: str, env: Env) -> Cell:
        try:
            return env.lookup(name)
        except KeyError:
            return self.globals.lookup(name)

    def _datum(self, d):
        """Quoted data: lists become Racket lists, the rest are values."""
        if isinstance(d, list):
            return from_pylist([self._datum(x) for x in d])
        return d

    # -- application ---------------------------------------------------

    def apply(self, fn, args: list, label: str):
        self.fuel -= 1
        if self.fuel <= 0:
            raise InterpTimeout("out of fuel")
        if isinstance(fn, Closure):
            if len(args) != len(fn.lam.params):
                raise PrimBlame(
                    fn.name, label,
                    f"arity mismatch: expected {len(fn.lam.params)}, got {len(args)}",
                )
            child = fn.env.child()
            for p, a in zip(fn.lam.params, args):
                child.define(p, a)
            return self.eval(fn.lam.body, child)
        if isinstance(fn, Prim):
            try:
                return fn.fn(args, _Ctx(self, label))
            except PrimError as pe:
                raise PrimBlame(pe.op, label, pe.message) from None
            except UserError as ue:
                raise UserAbort(ue.message, label) from None
        if isinstance(fn, StructCtor):
            if len(args) != len(fn.struct_type.fields):
                raise PrimBlame(
                    fn.name, label,
                    f"expected {len(fn.struct_type.fields)} fields",
                )
            return StructVal(fn.struct_type, tuple(args))
        if isinstance(fn, Guarded):
            return self._apply_guarded(fn, args, label)
        raise PrimBlame("apply", label, f"not a procedure: {fn!r}")

    def _apply_guarded(self, g: Guarded, args: list, label: str):
        ctc = g.contract
        if isinstance(ctc, FuncContract):
            doms, rng = ctc.doms, ctc.rng
        else:
            assert isinstance(ctc, DepFuncContract)
            doms, rng = ctc.doms, None
        if len(args) != len(doms):
            raise ContractBlame(
                g.neg, f"arity: expected {len(doms)} args", label
            )
        checked = [
            self.monitor(d, a, pos=g.neg, neg=g.pos, label=label)
            for d, a in zip(doms, args)
        ]
        result = self.apply(g.inner, checked, label)
        if rng is None:
            rng_val = self.apply(ctc.rng_maker, checked, label)
            from ..lang.prims import _as_contract

            rng = _as_contract(rng_val)
        return self.monitor(rng, result, pos=g.pos, neg=g.neg, label=label)

    # -- contract monitoring (§4.3) --------------------------------------

    def monitor(self, ctc: Contract, value, *, pos: str, neg: str, label: str):
        """``mon(ctc, value)`` with blame parties; returns the (possibly
        wrapped) value or raises :class:`ContractBlame`."""
        if isinstance(ctc, AnyContract):
            return value
        if isinstance(ctc, FlatContract):
            if is_truthy(self.apply(ctc.pred, [value], label)):
                return value
            raise ContractBlame(pos, f"{ctc!r} on {value!r}", label)
        if isinstance(ctc, OneOfContract):
            if any(racket_equal(value, c) for c in ctc.choices):
                return value
            raise ContractBlame(pos, f"{ctc!r} on {value!r}", label)
        if isinstance(ctc, NotContract):
            failed = False
            try:
                self.monitor(ctc.part, value, pos=pos, neg=neg, label=label)
            except ContractBlame:
                failed = True
            if failed:
                return value
            raise ContractBlame(pos, f"{ctc!r} on {value!r}", label)
        if isinstance(ctc, AndContract):
            for part in ctc.parts:
                value = self.monitor(part, value, pos=pos, neg=neg, label=label)
            return value
        if isinstance(ctc, OrContract):
            higher: list[Contract] = []
            for part in ctc.parts:
                if isinstance(part, (FuncContract, DepFuncContract)):
                    higher.append(part)
                    continue
                try:
                    return self.monitor(part, value, pos=pos, neg=neg, label=label)
                except ContractBlame:
                    continue
            if higher and is_applicable(value):
                return self.monitor(higher[0], value, pos=pos, neg=neg, label=label)
            raise ContractBlame(pos, f"{ctc!r} on {value!r}", label)
        if isinstance(ctc, ConsContract):
            if not isinstance(value, Pair):
                raise ContractBlame(pos, f"cons/c on non-pair {value!r}", label)
            return Pair(
                self.monitor(ctc.car, value.car, pos=pos, neg=neg, label=label),
                self.monitor(ctc.cdr, value.cdr, pos=pos, neg=neg, label=label),
            )
        if isinstance(ctc, ListofContract):
            items = to_pylist(value)
            if items is None:
                raise ContractBlame(pos, f"listof on non-list {value!r}", label)
            return from_pylist(
                [
                    self.monitor(ctc.elem, x, pos=pos, neg=neg, label=label)
                    for x in items
                ]
            )
        if isinstance(ctc, ListContract):
            items = to_pylist(value)
            if items is None or len(items) != len(ctc.elems):
                raise ContractBlame(pos, f"list/c on {value!r}", label)
            return from_pylist(
                [
                    self.monitor(c, x, pos=pos, neg=neg, label=label)
                    for c, x in zip(ctc.elems, items)
                ]
            )
        if isinstance(ctc, StructContract):
            if not (isinstance(value, StructVal) and value.type == ctc.type):
                raise ContractBlame(pos, f"struct/c on {value!r}", label)
            return StructVal(
                value.type,
                tuple(
                    self.monitor(c, v, pos=pos, neg=neg, label=label)
                    for c, v in zip(ctc.fields, value.values)
                ),
            )
        if isinstance(ctc, RecContract):
            forced = self.apply(ctc.thunk, [], label)
            from ..lang.prims import _as_contract

            return self.monitor(
                _as_contract(forced), value, pos=pos, neg=neg, label=label
            )
        if isinstance(ctc, (FuncContract, DepFuncContract)):
            if not is_applicable(value):
                raise ContractBlame(pos, f"-> on non-procedure {value!r}", label)
            return Guarded(ctc, value, pos, neg)
        raise RuntimeFault(f"unknown contract {ctc!r}")

    # -- modules and programs ----------------------------------------------

    def load_module(
        self, module: Module, opaque_values: Optional[dict[str, object]] = None
    ) -> Env:
        """Evaluate a module; exports land (monitored) in the globals."""
        opaque_values = opaque_values or {}
        menv = self.globals.child()

        for sdef in module.structs:
            stype = StructType(sdef.name, sdef.fields)
            bindings: list[tuple[str, object]] = [
                (sdef.name, StructCtor(stype)),
                (
                    f"{sdef.name}?",
                    Prim(
                        f"{sdef.name}?",
                        lambda args, ctx, st=stype: isinstance(args[0], StructVal)
                        and args[0].type == st,
                    ),
                ),
            ]
            for i, fieldname in enumerate(sdef.fields):
                accessor = f"{sdef.name}-{fieldname}"

                def acc(args, ctx, st=stype, idx=i, name=accessor):
                    v = args[0]
                    if not (isinstance(v, StructVal) and v.type == st):
                        raise PrimError(name, f"expected {st.name}, got {v!r}")
                    return v.values[idx]

                bindings.append((accessor, Prim(accessor, acc)))
            for bname, bval in bindings:
                menv.define(bname, bval)
                # Struct bindings are global in the symbolic engine's base
                # heap; mirroring that lets synthesized clients (which run
                # outside the module) build and inspect its structs.
                self.globals.define(bname, bval)

        for oname, ctc_expr in module.opaques:
            if oname in opaque_values:
                value = opaque_values[oname]
            elif oname in self.opaque_exprs:
                # Counterexample instantiation: an unknown import closed
                # over by a synthesized expression (scalar or lambda).
                value = self.eval(self.opaque_exprs[oname], self.globals)
            else:
                raise RuntimeFault(
                    f"module {module.name}: opaque {oname} has no concrete value"
                )
            if ctc_expr is not None:
                ctc = self._eval_contract(ctc_expr, menv)
                value = self.monitor(
                    ctc, value, pos=oname, neg=module.name, label=oname
                )
            menv.define(oname, value)

        cells = [menv.define(n, Cell.UNDEFINED) for n, _ in module.definitions]
        for cell, (_, rhs) in zip(cells, module.definitions):
            cell.value = self.eval(rhs, menv)

        for p in module.provides:
            value = menv.lookup(p.name).value
            if p.contract is not None:
                ctc = self._eval_contract(p.contract, menv)
                value = self.monitor(
                    ctc, value, pos=module.name, neg=f"client-of-{module.name}",
                    label=p.name,
                )
            self.globals.define(p.name, value)
        return menv

    def _eval_contract(self, e: UExpr, env: Env) -> Contract:
        from ..lang.prims import _as_contract

        return _as_contract(self.eval(e, env))

    def run_program(
        self,
        program: Program,
        *,
        opaque_values: Optional[dict[str, object]] = None,
        opaque_exprs: Optional[dict[str, UExpr]] = None,
    ):
        """Load all modules and evaluate the main expression."""
        self.opaque_exprs = dict(opaque_exprs or {})
        for m in program.modules:
            self.load_module(m, opaque_values)
        if program.main is None:
            return VOID
        return self.eval(program.main, self.globals)


def run_source(
    source: str,
    *,
    fuel: int = 2_000_000,
    opaque_values: Optional[dict[str, object]] = None,
    opaque_exprs: Optional[dict[str, UExpr]] = None,
):
    """Parse and run a program from text; returns the main value."""
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        program = parse_program(source)
        interp = Interp(fuel=fuel)
        return interp.run_program(
            program, opaque_values=opaque_values, opaque_exprs=opaque_exprs
        )
    finally:
        sys.setrecursionlimit(old_limit)

"""Lowering core and scv terms to a flat bytecode.

Both machines interpret an AST by re-dispatching on node *types* at
every step — an ``isinstance`` ladder plus per-step attribute
extraction.  The lowering pass walks each **unit** (the program/module
root, plus every lambda body) once, in pre-order, and emits one compact
instruction per node: a plain tuple ``(opcode, operand, ...)`` whose
operands are pre-extracted — child nodes for control transfers,
canonical opaque locations, blame parties, labels.  The dispatch-loop
executors (``repro.compile.executor``) then switch on a small integer
and read positional operands instead of re-walking the AST, in the
push/enter/return style of the G-machine and TIM compilers this pass is
modelled on.

Instructions whose operands are all constants (variable references,
blame sites, location and datum literals) are interned through
:class:`repro.search.intern.Interner`, so the thousands of structurally
equal references a monitored module expands into share one tuple — the
same hash-consing discipline the fingerprinter uses.

The stream is *per unit* and pre-order, which makes it deterministic
for a given AST: the serialized form (``repro.compile.cache``) can be
rebound to a freshly parsed program by replaying the same walk, and the
golden tests in ``tests/test_compile.py`` pin the opcode sequences for
the representative forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.syntax import (
    App,
    Err,
    Fix,
    If,
    Lam,
    Loc,
    Num,
    Opq,
    PrimApp,
    Ref,
)
from ..lang.ast import (
    Quote,
    UApp,
    UBegin,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from ..search.intern import Interner

# ---------------------------------------------------------------------------
# Opcodes (shared namespace; not every opcode occurs in both engines)
# ---------------------------------------------------------------------------

OP_CONST = 1  # allocate a concrete value (core Num)
OP_CLOSURE = 2  # allocate a closure (core Lam / scv ULam)
OP_OPAQUE = 3  # enter the canonical location of a labelled unknown
OP_FIX = 4  # unfold a fixpoint (core Fix)
OP_IF = 5  # push the branch continuation, evaluate the test
OP_APP = 6  # push the application frame, evaluate the operator
OP_PRIM = 7  # primitive application (core PrimApp)
OP_VAR = 8  # variable reference (scv UVar / core Ref)
OP_LOC = 9  # a heap location in expression position
OP_ERR = 10  # an error literal (core Err)
OP_QUOTE = 11  # allocate a quoted datum (scv Quote)
OP_BLAME = 12  # blame answer (scv UBlameE)
OP_BEGIN = 13  # sequencing (scv UBegin)
OP_LETREC = 14  # allocate recursion cells, evaluate bindings (scv ULetrec)
OP_SET = 15  # push the assignment frame (scv USet)
OP_MON = 16  # push the contract monitor (scv UMon)
OP_DELEGATE = 17  # no compact form: fall back to the step machine

OPCODE_NAMES = {
    OP_CONST: "const",
    OP_CLOSURE: "closure",
    OP_OPAQUE: "opaque",
    OP_FIX: "fix",
    OP_IF: "if",
    OP_APP: "app",
    OP_PRIM: "prim",
    OP_VAR: "var",
    OP_LOC: "loc",
    OP_ERR: "err",
    OP_QUOTE: "quote",
    OP_BLAME: "blame",
    OP_BEGIN: "begin",
    OP_LETREC: "letrec",
    OP_SET: "set",
    OP_MON: "mon",
    OP_DELEGATE: "delegate",
}


@dataclass(frozen=True)
class CompiledUnit:
    """One flat instruction array: a module/program root or one lambda
    body, with its nodes in the same pre-order as ``instructions``."""

    kind: str  # "module" | "lambda"
    root: object
    instructions: tuple
    nodes: tuple

    def opcode_names(self) -> tuple[str, ...]:
        """The human-readable opcode sequence (golden-test surface)."""
        return tuple(OPCODE_NAMES[ins[0]] for ins in self.instructions)


def _typed_key(x):
    """A type-tagged shadow of an instruction tuple.  Python's ``==``
    conflates ``False == 0 == 0.0`` (and ``1 == 1.0``), so interning
    keyed on the raw tuple would collapse ``(quote #f)`` with
    ``(quote 0)`` into one instruction — tag every scalar with its
    concrete class to keep distinct constants distinct."""
    cls = x.__class__
    if cls is tuple:
        return tuple(_typed_key(v) for v in x)
    return (cls, x)


class InstrInterner:
    """Type-exact hash-consing for instruction tuples, built on the
    search kernel's :class:`~repro.search.intern.Interner` (which
    canonicalises the type-tagged keys) plus a key→instruction table."""

    __slots__ = ("_interner", "_by_key")

    def __init__(self) -> None:
        self._interner = Interner()
        self._by_key: dict = {}

    def intern(self, ins: tuple) -> tuple:
        key = self._interner.intern(_typed_key(ins))
        hit = self._by_key.get(key)
        if hit is None:
            hit = self._by_key[key] = ins
        return hit


def _intern_instr(interner, ins: tuple) -> tuple:
    """Canonicalise a constant-only instruction; node-carrying or
    unhashable instructions pass through untouched."""
    if interner is None:
        return ins
    try:
        return interner.intern(ins)
    except TypeError:
        return ins


# ---------------------------------------------------------------------------
# scv lowering
# ---------------------------------------------------------------------------


def _scv_instr(e, interner):
    """The instruction for one scv node; imports of the machine-internal
    nodes are local to keep this module import-light."""
    from ..scv.machine import UBlameE, ULocE, UMon

    cls = e.__class__
    if cls is Quote:
        return _intern_instr(interner, (OP_QUOTE, e.datum)), ()
    if cls is ULocE:
        return _intern_instr(interner, (OP_LOC, e.loc)), ()
    if cls is UBlameE:
        # Operands in Blame-constructor order: (party, label, description).
        return (
            _intern_instr(interner, (OP_BLAME, e.party, e.label, e.description)),
            (),
        )
    if cls is UVar:
        return _intern_instr(interner, (OP_VAR, e.name)), ()
    if cls is ULam:
        return (OP_CLOSURE,), ()  # body is its own unit
    if cls is UOpaque:
        return _intern_instr(interner, (OP_OPAQUE, Loc(f"o:{e.label}"))), ()
    if cls is UIf:
        return (OP_IF, e.test, e.then, e.orelse), (e.test, e.then, e.orelse)
    if cls is UBegin:
        first, rest = e.exprs[0], e.exprs[1:]
        return (OP_BEGIN, first, rest), e.exprs
    if cls is ULetrec:
        children = tuple(b[1] for b in e.bindings) + (e.body,)
        return (OP_LETREC, e.bindings, e.body), children
    if cls is USet:
        return (OP_SET, e.name, e.value), (e.value,)
    if cls is UApp:
        return (OP_APP, e.fn, e.args, e.label), (e.fn,) + e.args
    if cls is UMon:
        return (
            (OP_MON, e.contract, e.value, e.pos, e.neg, e.label),
            (e.contract, e.value),
        )
    return (OP_DELEGATE,), ()


def lower_scv_unit(root, interner=None, pending=None,
                   kind: str = "module") -> CompiledUnit:
    """Lower one scv unit.  Lambda bodies are not descended into; their
    roots are appended to ``pending`` (the unit work-list)."""
    instructions = []
    order = []
    stack = [root]
    while stack:
        e = stack.pop()
        order.append(e)
        ins, children = _scv_instr(e, interner)
        instructions.append(ins)
        if e.__class__ is ULam and pending is not None:
            pending.append(e.body)
        stack.extend(reversed(children))
    return CompiledUnit(kind, root, tuple(instructions), tuple(order))


def lower_scv(root, interner=None) -> list[CompiledUnit]:
    """All units reachable from an assembled scv program: the root unit
    first, then every lambda body in discovery order."""
    interner = interner if interner is not None else InstrInterner()
    pending: list = [root]
    units: list[CompiledUnit] = []
    while pending:
        unit_root = pending.pop(0)
        kind = "module" if not units else "lambda"
        units.append(lower_scv_unit(unit_root, interner, pending, kind))
    return units


def scv_opcode_for(e) -> int:
    """The opcode an scv node lowers to (cache-validation surface)."""
    return _scv_instr(e, None)[0][0]


# ---------------------------------------------------------------------------
# core lowering
# ---------------------------------------------------------------------------


def _core_instr(e, interner):
    cls = e.__class__
    if cls is Num:
        return _intern_instr(interner, (OP_CONST, e.value)), ()
    if cls is Lam:
        return (OP_CLOSURE,), ()  # body is its own unit
    if cls is Opq:
        return _intern_instr(interner, (OP_OPAQUE, Loc(f"o:{e.label}"))), ()
    if cls is Fix:
        return (OP_FIX,), (e.body,)
    if cls is If:
        return (OP_IF, e.test, e.then, e.orelse), (e.test, e.then, e.orelse)
    if cls is App:
        return (OP_APP, e.fn, e.arg), (e.fn, e.arg)
    if cls is PrimApp:
        return (OP_PRIM, e.op, e.args, e.label), e.args
    if cls is Ref:
        return _intern_instr(interner, (OP_VAR, e.name)), ()
    if cls is Loc:
        return _intern_instr(interner, (OP_LOC, e)), ()
    if cls is Err:
        return _intern_instr(interner, (OP_ERR, e.label, e.op)), ()
    return (OP_DELEGATE,), ()


def lower_core_unit(root, interner=None, pending=None,
                    kind: str = "module") -> CompiledUnit:
    instructions = []
    order = []
    stack = [root]
    while stack:
        e = stack.pop()
        order.append(e)
        ins, children = _core_instr(e, interner)
        instructions.append(ins)
        if e.__class__ is Lam and pending is not None:
            pending.append(e.body)
        stack.extend(reversed(children))
    return CompiledUnit(kind, root, tuple(instructions), tuple(order))


def lower_core(root, interner=None) -> list[CompiledUnit]:
    interner = interner if interner is not None else InstrInterner()
    pending: list = [root]
    units: list[CompiledUnit] = []
    while pending:
        unit_root = pending.pop(0)
        kind = "module" if not units else "lambda"
        units.append(lower_core_unit(unit_root, interner, pending, kind))
    return units


def core_opcode_for(e) -> int:
    """The opcode a core node lowers to (cache-validation surface)."""
    return _core_instr(e, None)[0][0]

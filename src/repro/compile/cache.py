"""Content-addressed persistence for compiled units.

One JSON file per (program digest, engine, client slice):

    <cache dir>/<program_digest>.<engine>.<client or 'all'>.json

so the serve path and warm CI reuse compiled code exactly when they
reuse verdicts — the key is the same ``program_digest`` the verdict
store is addressed by, and a module edit that changes the digest
orphans the old unit file (the invalidation test in
``tests/test_compile.py`` pins this).

The serialized form is self-contained per unit: the opcode plus one
encoded operand per instruction field.  Node-valued operands are stored
as indices into the unit's pre-order node list (``["n", i]``), and the
loader resolves them against a fresh walk of the just-parsed AST —
validating at every index that the node's class still matches the
stored opcode.  Any mismatch (schema drift, truncated file, digest
collision) makes ``load`` return ``None`` and the caller compiles
fresh; a cache can cause a recompile, never a wrong program.  Writes
are best-effort (tmp file + ``os.replace``) and never raise into the
run.
"""

from __future__ import annotations

import json
import os
from fractions import Fraction
from typing import Optional

from ..core.syntax import Loc
from ..lang.sexp import Symbol
from .lower import CompiledUnit, core_opcode_for, scv_opcode_for

FORMAT_VERSION = 1


class _EncodeError(Exception):
    """An operand with no stable serialized form."""


def _encode(x, index):
    cls = x.__class__
    if x is None or cls in (int, str, bool, float):
        return ["v", x]
    if cls is Symbol:
        return ["sym", x.name]
    if cls is Loc:
        return ["loc", x.name]
    if cls is Fraction:
        return ["q", x.numerator, x.denominator]
    if cls is complex:
        return ["c", x.real, x.imag]
    if cls is tuple:
        return ["t", [_encode(v, index) for v in x]]
    if cls is list:
        return ["list", [_encode(v, index) for v in x]]
    idx = index.get(id(x))
    if idx is not None:
        return ["n", idx]
    raise _EncodeError(repr(x))


def _decode(enc, nodes):
    tag = enc[0]
    if tag == "v":
        return enc[1]
    if tag == "sym":
        return Symbol(enc[1])
    if tag == "loc":
        return Loc(enc[1])
    if tag == "q":
        return Fraction(enc[1], enc[2])
    if tag == "c":
        return complex(enc[1], enc[2])
    if tag == "t":
        return tuple(_decode(v, nodes) for v in enc[1])
    if tag == "list":
        return [_decode(v, nodes) for v in enc[1]]
    if tag == "n":
        return nodes[enc[1]]
    raise _EncodeError(repr(enc))


def _walk_unit(root, children_of, pending):
    """The same pre-order walk the lowering pass makes (lambda bodies go
    to ``pending``, not into this unit)."""
    nodes = []
    stack = [root]
    while stack:
        e = stack.pop()
        nodes.append(e)
        kids, lam_body = children_of(e)
        if lam_body is not None:
            pending.append(lam_body)
        stack.extend(reversed(kids))
    return nodes


class CompiledUnitCache:
    """Digest-keyed unit persistence under one directory.

    ``program_root`` at load time must be the freshly parsed AST the
    digest was computed over; decoded node references are rebound to it.
    """

    def __init__(self, cache_dir: str, program_digest: str,
                 client: Optional[str] = None) -> None:
        self.cache_dir = cache_dir
        self.program_digest = program_digest
        self.client = client or "all"
        self.hits = 0
        self.misses = 0

    def _path(self, engine: str) -> str:
        return os.path.join(
            self.cache_dir,
            f"{self.program_digest}.{engine}.{self.client}.json",
        )

    # -- store ----------------------------------------------------------

    def store(self, engine: str, units: list[CompiledUnit]) -> bool:
        try:
            payload = {
                "version": FORMAT_VERSION,
                "engine": engine,
                "program": self.program_digest,
                "units": [self._encode_unit(u) for u in units],
            }
        except _EncodeError:
            return False
        path = self._path(engine)
        tmp = path + ".tmp"
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            return False
        return True

    @staticmethod
    def _encode_unit(unit: CompiledUnit) -> dict:
        index = {id(n): i for i, n in enumerate(unit.nodes)}
        return {
            "kind": unit.kind,
            "instructions": [
                [ins[0]] + [_encode(op, index) for op in ins[1:]]
                for ins in unit.instructions
            ],
        }

    # -- load -----------------------------------------------------------

    def load(self, engine: str, program_root) -> Optional[list[CompiledUnit]]:
        path = self._path(engine)
        try:
            with open(path, encoding="utf-8") as f:
                payload = json.load(f)
        except (OSError, ValueError):
            self.misses += 1
            return None
        units = self._rebind(engine, payload, program_root)
        if units is None:
            self.misses += 1
        else:
            self.hits += 1
        return units

    def _rebind(self, engine, payload, program_root):
        if not isinstance(payload, dict) or \
                payload.get("version") != FORMAT_VERSION or \
                payload.get("engine") != engine or \
                payload.get("program") != self.program_digest:
            return None
        stored_units = payload.get("units")
        if not isinstance(stored_units, list) or not stored_units:
            return None
        if engine == "scv":
            opcode_for = scv_opcode_for
            children_of = _scv_children
        else:
            opcode_for = core_opcode_for
            children_of = _core_children
        pending = [program_root]
        out = []
        try:
            for stored in stored_units:
                if not pending:
                    return None
                root = pending.pop(0)
                nodes = _walk_unit(root, children_of, pending)
                instrs = stored["instructions"]
                if len(instrs) != len(nodes):
                    return None
                decoded = []
                for node, enc in zip(nodes, instrs):
                    if enc[0] != opcode_for(node):
                        return None
                    decoded.append(
                        tuple([enc[0]] + [_decode(op, nodes)
                                          for op in enc[1:]])
                    )
                out.append(CompiledUnit(str(stored.get("kind", "module")),
                                        root, tuple(decoded), tuple(nodes)))
        except (KeyError, IndexError, TypeError, _EncodeError):
            return None
        if pending:  # fewer stored units than reachable lambdas
            return None
        return out


# -- traversal shape (must mirror the lowering pass's children) ----------


def _scv_children(e):
    """(in-unit children, lambda body or None) for one scv node."""
    from ..lang.ast import (
        UApp,
        UBegin,
        UIf,
        ULam,
        ULetrec,
        USet,
    )
    from ..scv.machine import UMon

    cls = e.__class__
    if cls is ULam:
        return (), e.body
    if cls is UIf:
        return (e.test, e.then, e.orelse), None
    if cls is UBegin:
        return e.exprs, None
    if cls is ULetrec:
        return tuple(b[1] for b in e.bindings) + (e.body,), None
    if cls is USet:
        return (e.value,), None
    if cls is UApp:
        return (e.fn,) + e.args, None
    if cls is UMon:
        return (e.contract, e.value), None
    return (), None


def _core_children(e):
    from ..core.syntax import App, Fix, If, Lam, PrimApp

    cls = e.__class__
    if cls is Lam:
        return (), e.body
    if cls is Fix:
        return (e.body,), None
    if cls is If:
        return (e.test, e.then, e.orelse), None
    if cls is App:
        return (e.fn, e.arg), None
    if cls is PrimApp:
        return e.args, None
    return (), None

"""Bytecode compilation of the core and scv machines.

``lower`` turns each program unit (module root + every lambda body)
into a flat instruction stream; ``executor`` runs the streams in a
tight dispatch loop behind the ``SearchKernel`` expander interface,
materialising full machine states only at observable points; ``cache``
persists compiled units keyed by ``program_digest`` next to the verdict
store.  The step machines remain the source of truth — every compiled
run is checked byte-identical against them by the differential oracle.
"""

from .cache import CompiledUnitCache
from .executor import CoreExecutor, ScvExecutor
from .lower import (
    OPCODE_NAMES,
    CompiledUnit,
    lower_core,
    lower_scv,
)

__all__ = [
    "CompiledUnit",
    "CompiledUnitCache",
    "CoreExecutor",
    "OPCODE_NAMES",
    "ScvExecutor",
    "lower_core",
    "lower_scv",
]

"""Dispatch-loop executors over the lowered bytecode.

Both executors implement the kernel's ``expander`` contract:

    expand(state, chain_limit) -> (final_state, successors, chained)

with **exactly** the semantics of ``SearchKernel._expand`` over the
step machine: run the deterministic single-successor chain (up to
``chain_limit`` adoptions) in a tight loop, and return the same
``(final_state, successors)`` pair — ``None`` successors for answers —
with every returned state stamped with the same post-step counter bases
the step machine would stamp.  A full machine state is only
materialised at the *observable* points: the states handed back to the
kernel (fingerprinted, pruned, admitted to the frontier) and the states
handed to the step machine's own rule methods at choice points.  In
between, the machine registers live in Python locals.

The byte-identity argument, which the differential oracle
(``tests/test_differential.py``) and the corpus identity suite
(``tests/test_compile.py``) enforce:

* **Counters.**  ``step`` rewinds the global location/label counters to
  the state's bases and stamps successors with the post-step values.
  Inside a deterministic chain the rewind is a no-op — each state's
  bases equal the counters its predecessor's step left behind — so the
  fused loop sets the counters once on entry and reads them only when
  materialising.
* **Inline transitions** replicate the machine's single-successor rules
  field for field (same ``Blame`` strings, same frame construction,
  same allocation order).  Only transitions that are certainly
  single-successor are inlined.
* **Choice points delegate.**  Anything that may branch or synthesise
  code — δ on primitives, opaque application/havoc, contract monitor
  expansion, branching ``if`` — is delegated to the step machine itself
  on a materialised state, so prover interaction and synthesised-node
  minting go through literally the same code.

``dispatch_steps`` counts executed micro-steps (inline + delegated);
it is deterministic for a given search and is threaded through the
sharded engine's counter probe so sharded runs report it identically.
"""

from __future__ import annotations

import time

from ..core.heap import (
    SLam,
    SNum,
    SOpq,
    current_loc_counter,
    set_loc_counter,
)
from ..core.machine import State, _opq_loc
from ..core.syntax import (
    App,
    Err,
    Fix,
    If,
    Lam,
    Loc,
    Num,
    Opq,
    PrimApp,
    subst,
)
from ..lang.values import VOID
from ..prims import REGISTRY as _PRIM_REGISTRY
from ..scv.delta import OBlame, OEval, OLoc, OValue, delta_u
from ..scv.heap import TAG_BOOLEAN, UAlias, UClos, UConc, UOpq, UPrim
from ..scv.machine import (
    Blame,
    KApp,
    KBegin,
    KIf,
    KLetrec,
    KMonC,
    KMonV,
    KSet,
    SState,
    _UNDEFINED,
    _alloc_datum,
    current_syn_counter,
    set_syn_counter,
)
from .lower import (
    OP_APP,
    OP_BEGIN,
    OP_BLAME,
    OP_CLOSURE,
    OP_IF,
    OP_LETREC,
    OP_LOC,
    OP_MON,
    OP_OPAQUE,
    OP_QUOTE,
    OP_SET,
    OP_VAR,
    lower_core,
    lower_scv,
    lower_scv_unit,
)

#: Names the inline δ fast path may handle directly.  Sourced from the
#: primitive registry (layer four of its consumers) so the executor's
#: dispatch set cannot drift from the declarations; per-program struct
#: predicates/accessors are checked against ``m.struct_prims`` at the
#: call site.  Anything else (a shadowed or unknown name) delegates to
#: the machine's general step for the canonical treatment.
_INLINE_UPRIM_NAMES = frozenset(_PRIM_REGISTRY)


class _ExecutorBase:
    """Shared unit bookkeeping: the program is lowered up front (all
    reachable units), machine-synthesised expressions are compiled on
    miss, and the per-run counters land in the stats object the search
    reports from."""

    engine = ""

    def __init__(self, machine, program=None, stats=None, cache=None):
        self.m = machine
        self.stats = stats
        self.units = []
        self.code = {}  # id(node) -> instruction tuple
        self._pins = []  # keep compiled roots alive (id() stability)
        self.compile_ms = 0.0
        self.cache_hit = False
        if program is not None:
            self.load_program(program, cache)

    def _lower_program(self, root):  # pragma: no cover - overridden
        raise NotImplementedError

    def _lower_miss_unit(self, root):  # pragma: no cover - overridden
        raise NotImplementedError

    def load_program(self, root, cache=None) -> None:
        t0 = time.perf_counter()
        units = None
        if cache is not None:
            units = cache.load(self.engine, root)
            self.cache_hit = units is not None
        if units is None:
            units = self._lower_program(root)
            if cache is not None:
                cache.store(self.engine, units)
        self.units = units
        self._pins.append(root)
        code = self.code
        for unit in units:
            for node, ins in zip(unit.nodes, unit.instructions):
                code[id(node)] = ins
        self.compile_ms = (time.perf_counter() - t0) * 1000.0
        if self.stats is not None:
            if hasattr(self.stats, "compiled_units"):
                self.stats.compiled_units = len(units)
            if hasattr(self.stats, "compile_ms"):
                self.stats.compile_ms = round(self.compile_ms, 3)

    def _compile_miss(self, node):
        """Compile a machine-synthesised expression (monitor expansion,
        havoc/guard wrappers) the first time the loop enters it."""
        unit = self._lower_miss_unit(node)
        self._pins.append(node)
        code = self.code
        for n, ins in zip(unit.nodes, unit.instructions):
            code[id(n)] = ins
        return code[id(node)]


# ---------------------------------------------------------------------------
# scv: instruction-driven CESK dispatch
# ---------------------------------------------------------------------------


class ScvExecutor(_ExecutorBase):
    engine = "scv"

    def _lower_program(self, root):
        return lower_scv(root)

    def _lower_miss_unit(self, root):
        pending: list = []
        units = [lower_scv_unit(root, None, pending, kind="lambda")]
        while pending:
            units.append(lower_scv_unit(pending.pop(0), None, pending,
                                        kind="lambda"))
        # Register the nested lambda bodies too, so re-entry is a hit.
        for extra in units[1:]:
            self._pins.append(extra.root)
            for n, ins in zip(extra.nodes, extra.instructions):
                self.code[id(n)] = ins
        return units[0]

    def expand(self, st, limit):
        m = self.m
        code = self.code
        control, env, heap, kont = st.control, st.env, st.heap, st.kont
        ge = st.gen_effort
        set_syn_counter(st.syn_base)
        set_loc_counter(st.loc_base)
        cur = st  # materialised SState for the current point, when fresh
        chained = 0
        steps = 0
        try:
            while True:
                ccls = control.__class__
                if ccls is Blame or (ccls is Loc and not kont):
                    if cur is None:
                        cur = SState(control, env, heap, kont, ge,
                                     current_syn_counter(),
                                     current_loc_counter())
                    return cur, None, chained

                at_cap = chained >= limit
                if ccls is Loc:
                    # ---- plug phase: dispatch on the continuation frame
                    frame = kont[-1]
                    fcls = frame.__class__
                    if fcls is KApp:
                        if frame.pending:
                            steps += 1
                            if at_cap:
                                if cur is None:
                                    cur = SState(control, env, heap, kont, ge,
                                                 current_syn_counter(),
                                                 current_loc_counter())
                                succ = SState(
                                    frame.pending[0], frame.env, heap,
                                    kont[:-1] + (KApp(
                                        frame.done + (control,),
                                        frame.pending[1:], frame.env,
                                        frame.label),),
                                    ge, current_syn_counter(),
                                    current_loc_counter(),
                                )
                                return cur, [succ], chained
                            kont = kont[:-1] + (KApp(
                                frame.done + (control,), frame.pending[1:],
                                frame.env, frame.label),)
                            env = frame.env
                            control = frame.pending[0]
                            chained += 1
                            cur = None
                            continue
                        done = frame.done + (control,)
                        fn, args = done[0], done[1:]
                        _, s = heap.deref(fn)
                        if s.__class__ is UClos:
                            steps += 1
                            if len(args) != len(s.lam.params):
                                blame = Blame(
                                    "Λ", frame.label,
                                    f"arity: {s.lam.name or 'λ'} expects "
                                    f"{len(s.lam.params)}, got {len(args)}",
                                )
                                if at_cap:
                                    if cur is None:
                                        cur = SState(
                                            control, env, heap, kont, ge,
                                            current_syn_counter(),
                                            current_loc_counter(),
                                        )
                                    succ = SState(blame, env, heap, (), ge,
                                                  current_syn_counter(),
                                                  current_loc_counter())
                                    return cur, [succ], chained
                                control = blame
                                kont = ()
                                chained += 1
                                cur = None
                                continue
                            bindings = dict(zip(s.lam.params, args))
                            if at_cap:
                                if cur is None:
                                    cur = SState(control, env, heap, kont, ge,
                                                 current_syn_counter(),
                                                 current_loc_counter())
                                succ = SState(
                                    s.lam.body, s.env.extend(bindings), heap,
                                    kont[:-1], ge, current_syn_counter(),
                                    current_loc_counter(),
                                )
                                return cur, [succ], chained
                            control = s.lam.body
                            env = s.env.extend(bindings)
                            kont = kont[:-1]
                            chained += 1
                            cur = None
                            continue
                        if s.__class__ is UPrim and (
                            s.name in _INLINE_UPRIM_NAMES
                            or s.name in m.struct_prims
                        ):
                            # δ on a primitive: run it in place and
                            # adopt the (very common) single outcome —
                            # the transition δ produces is exactly what
                            # ``apply``/``_run_outcomes`` would build.
                            steps += 1
                            # δ may allocate: snapshot the pre-step
                            # counter stamps now, materialise lazily.
                            syn0 = current_syn_counter()
                            loc0 = current_loc_counter()
                            outcomes = delta_u(m, heap, s.name, args,
                                               frame.label)
                            rest = kont[:-1]
                            if len(outcomes) == 1 and not at_cap:
                                o = outcomes[0]
                                ocls = o.__class__
                                if ocls is OValue:
                                    control, heap = o.heap.alloc(o.storeable)
                                    ge += o.effort
                                    kont = rest
                                elif ocls is OLoc:
                                    control, heap = o.loc, o.heap
                                    ge += o.effort
                                    kont = rest
                                elif ocls is OBlame:
                                    control = Blame(o.party, o.label,
                                                    o.description)
                                    heap = o.heap
                                    kont = ()
                                else:  # OEval
                                    control, env, heap = o.expr, o.env, o.heap
                                    ge += o.effort
                                    kont = rest
                                chained += 1
                                cur = None
                                continue
                            if cur is None:
                                cur = SState(control, env, heap, kont, ge,
                                             syn0, loc0)
                            succs = m._run_outcomes(outcomes, cur, rest)
                            base_syn = current_syn_counter()
                            base_loc = current_loc_counter()
                            succs = [
                                SState(x.control, x.env, x.heap, x.kont,
                                       x.gen_effort, base_syn, base_loc)
                                for x in succs
                            ]
                            return cur, succs, chained
                        # opaques / guards / struct ctors: the demonic
                        # context and contracts may branch — delegate.
                    elif fcls is KIf:
                        target, s = heap.deref(control)
                        scls = s.__class__
                        if scls is UConc:
                            taken = frame.orelse if s.value is False \
                                else frame.then
                        elif scls is not UOpq or \
                                TAG_BOOLEAN not in s.possible:
                            taken = frame.then
                        else:
                            taken = None  # genuinely branches: delegate
                        if taken is not None:
                            steps += 1
                            if at_cap:
                                if cur is None:
                                    cur = SState(control, env, heap, kont, ge,
                                                 current_syn_counter(),
                                                 current_loc_counter())
                                succ = SState(taken, frame.env, heap,
                                              kont[:-1], ge,
                                              current_syn_counter(),
                                              current_loc_counter())
                                return cur, [succ], chained
                            control = taken
                            env = frame.env
                            kont = kont[:-1]
                            chained += 1
                            cur = None
                            continue
                    elif fcls is KBegin:
                        steps += 1
                        first, remaining = frame.rest[0], frame.rest[1:]
                        k = kont[:-1] + (KBegin(remaining, frame.env),) \
                            if remaining else kont[:-1]
                        if at_cap:
                            if cur is None:
                                cur = SState(control, env, heap, kont, ge,
                                             current_syn_counter(),
                                             current_loc_counter())
                            succ = SState(first, frame.env, heap, k, ge,
                                          current_syn_counter(),
                                          current_loc_counter())
                            return cur, [succ], chained
                        control = first
                        env = frame.env
                        kont = k
                        chained += 1
                        cur = None
                        continue
                    elif fcls is KLetrec:
                        steps += 1
                        h = heap.set(frame.cells[frame.index], UAlias(control))
                        nxt = frame.index + 1
                        if nxt < len(frame.bindings):
                            k = kont[:-1] + (KLetrec(
                                frame.cells, nxt, frame.bindings, frame.body,
                                frame.env),)
                            c2 = frame.bindings[nxt][1]
                        else:
                            k = kont[:-1]
                            c2 = frame.body
                        if at_cap:
                            if cur is None:
                                cur = SState(control, env, heap, kont, ge,
                                             current_syn_counter(),
                                             current_loc_counter())
                            succ = SState(c2, frame.env, h, k, ge,
                                          current_syn_counter(),
                                          current_loc_counter())
                            return cur, [succ], chained
                        control = c2
                        env = frame.env
                        heap = h
                        kont = k
                        chained += 1
                        cur = None
                        continue
                    elif fcls is KSet:
                        steps += 1
                        if at_cap and cur is None:
                            cur = SState(control, env, heap, kont, ge,
                                         current_syn_counter(),
                                         current_loc_counter())
                        h = heap.set(frame.cell, UAlias(control))
                        lv, h = h.alloc(UConc(VOID))
                        if at_cap:
                            succ = SState(lv, env, h, kont[:-1], ge,
                                          current_syn_counter(),
                                          current_loc_counter())
                            return cur, [succ], chained
                        control = lv
                        heap = h
                        kont = kont[:-1]
                        chained += 1
                        cur = None
                        continue
                    elif fcls is KMonC:
                        steps += 1
                        k = kont[:-1] + (KMonV(control, frame.pos, frame.neg,
                                               frame.label),)
                        if at_cap:
                            if cur is None:
                                cur = SState(control, env, heap, kont, ge,
                                             current_syn_counter(),
                                             current_loc_counter())
                            succ = SState(frame.value, frame.env, heap, k, ge,
                                          current_syn_counter(),
                                          current_loc_counter())
                            return cur, [succ], chained
                        control = frame.value
                        env = frame.env
                        kont = k
                        chained += 1
                        cur = None
                        continue
                else:
                    # ---- eval phase: instruction dispatch
                    ins = code.get(id(control))
                    if ins is None:
                        ins = self._compile_miss(control)
                    op = ins[0]
                    # Materialise the chain-end state *before* executing
                    # the capped instruction: allocating ops bump the
                    # location counter, and the returned state must carry
                    # the counter values from when it was produced.
                    if at_cap and cur is None:
                        cur = SState(control, env, heap, kont, ge,
                                     current_syn_counter(),
                                     current_loc_counter())
                    c2 = env2 = None
                    h2 = heap
                    k2 = kont
                    kont2_clear = False
                    if op == OP_APP:
                        k2 = kont + (KApp((), ins[2], env, ins[3]),)
                        c2 = ins[1]
                    elif op == OP_VAR:
                        l = env.lookup(ins[1])
                        if l is None:
                            c2 = Blame("top", "",
                                       f"unbound variable {ins[1]}")
                            kont2_clear = True
                        else:
                            c2, _ = heap.deref(l)
                    elif op == OP_LOC:
                        c2 = ins[1]
                    elif op == OP_IF:
                        k2 = kont + (KIf(ins[2], ins[3], env),)
                        c2 = ins[1]
                    elif op == OP_QUOTE:
                        c2, h2 = _alloc_datum(heap, ins[1])
                    elif op == OP_CLOSURE:
                        c2, h2 = heap.alloc(UClos(control, env))
                    elif op == OP_OPAQUE:
                        l = ins[1]
                        h2 = heap if l in heap else heap.set(l, m.fresh_opq())
                        c2 = l
                    elif op == OP_BEGIN:
                        rest = ins[2]
                        k2 = kont + (KBegin(rest, env),) if rest else kont
                        c2 = ins[1]
                    elif op == OP_MON:
                        k2 = kont + (KMonC(ins[2], env, ins[3], ins[4],
                                           ins[5]),)
                        c2 = ins[1]
                    elif op == OP_LETREC:
                        bindings, bodye = ins[1], ins[2]
                        h2 = heap
                        frame_d = {}
                        cells = []
                        for name, _b in bindings:
                            l, h2 = h2.alloc(UConc(_UNDEFINED), prefix="cell")
                            frame_d[name] = l
                            cells.append(l)
                        env2 = env.extend(frame_d)
                        if not bindings:
                            c2 = bodye
                        else:
                            k2 = kont + (KLetrec(tuple(cells), 0, bindings,
                                                 bodye, env2),)
                            c2 = bindings[0][1]
                    elif op == OP_SET:
                        l = env.lookup(ins[1])
                        if l is None:
                            c2 = Blame("top", "", f"set!: unbound {ins[1]}")
                            kont2_clear = True
                        else:
                            k2 = kont + (KSet(l),)
                            c2 = ins[2]
                    elif op == OP_BLAME:
                        c2 = Blame(ins[1], ins[2], ins[3])
                        kont2_clear = True
                    if c2 is not None:
                        steps += 1
                        if env2 is None:
                            env2 = env
                        if kont2_clear:
                            k2 = ()
                        if at_cap:
                            succ = SState(c2, env2, h2, k2, ge,
                                          current_syn_counter(),
                                          current_loc_counter())
                            return cur, [succ], chained
                        control, env, heap, kont = c2, env2, h2, k2
                        chained += 1
                        cur = None
                        continue
                    # OP_DELEGATE and anything unrecognised: fall through.

                # ---- delegation: one full machine step on a
                # materialised state (choice points, monitor synthesis,
                # δ, opaque application, unknown forms)
                if cur is None:
                    cur = SState(control, env, heap, kont, ge,
                                 current_syn_counter(), current_loc_counter())
                succs = m.step(cur)
                steps += 1
                if succs is not None and len(succs) == 1 and not at_cap:
                    nxt = succs[0]
                    control, env, heap, kont = (nxt.control, nxt.env,
                                                nxt.heap, nxt.kont)
                    ge = nxt.gen_effort
                    chained += 1
                    cur = nxt
                    continue
                return cur, succs, chained
        finally:
            if steps and self.stats is not None and \
                    hasattr(self.stats, "dispatch_steps"):
                self.stats.dispatch_steps += steps


# ---------------------------------------------------------------------------
# core: zipper-driven reduction
# ---------------------------------------------------------------------------


def _plug_core(stack, focus):
    """Rebuild the whole-term control expression from the focus and its
    context stack (innermost frame last) — value-equal to the machine's
    ``plug`` closures, so materialised states fingerprint identically."""
    e = focus
    for frame in reversed(stack):
        tag = frame[0]
        if tag == "appfn":
            e = App(e, frame[1])
        elif tag == "apparg":
            e = App(frame[1], e)
        elif tag == "if":
            e = If(e, frame[1], frame[2])
        else:  # ("prim", op, before, after, label)
            e = PrimApp(frame[1], frame[2] + (e,) + frame[3], frame[4])
    return e


class CoreExecutor(_ExecutorBase):
    """Fused reduction for the substitution-based SPCF machine.

    The machine re-walks the term from the root on every step to find
    the redex (``_reduce``'s contextual closure).  The executor instead
    keeps a **zipper**: the focused sub-expression plus a stack of
    context frames.  Redex *navigation* (pushing into an application's
    operator, an ``if``'s test, the first unevaluated primitive operand)
    is free — it is part of finding the redex within one machine step —
    while each *contraction* is one micro-step, in exactly the machine's
    order.  Because β-reduction substitutes fresh ``App``/``Lam`` nodes,
    core instruction streams are not directly executable (node identity
    does not survive substitution); the compiled units drive caching,
    accounting and the golden tests, and the executor dispatches on node
    classes like the machine — its win is eliminating the per-step root
    re-walk, which is quadratic in redex depth for the interpreted loop.

    Contractions that are certainly single-successor run inline (value
    allocation, ``Fix`` unfolding, β on a known lambda, ``Err`` peeling
    one context frame); δ-applications, conditionals and opaque
    application delegate to the machine's own rule methods on the
    current heap, and their results are plugged back through the zipper.
    """

    engine = "core"

    def _lower_program(self, root):
        return lower_core(root)

    def _lower_miss_unit(self, root):
        from .lower import lower_core_unit

        pending: list = []
        unit = lower_core_unit(root, None, pending, kind="lambda")
        for extra_root in pending:
            self._pins.append(extra_root)
        return unit

    def expand(self, st, limit):
        m = self.m
        heap = st.heap
        focus = st.control
        stack: list = []
        set_loc_counter(st.loc_base)
        cur = st
        chained = 0
        steps = 0

        def materialise():
            return State(_plug_core(stack, focus), heap,
                         current_loc_counter())

        try:
            while True:
                cls = focus.__class__
                # ---- answers -------------------------------------------
                if (cls is Loc or cls is Err) and not stack:
                    if cur is None:
                        cur = State(focus, heap, current_loc_counter())
                    return cur, None, chained
                at_cap = chained >= limit

                # ---- navigation (free) / inline contractions ----------
                if cls is Loc:
                    frame = stack[-1]
                    tag = frame[0]
                    if tag == "appfn":
                        arg = frame[1]
                        acls = arg.__class__
                        if acls is Loc:
                            results = None  # contraction: β / opaque app
                            fn_loc = focus
                            s = heap.get(fn_loc)
                            if s.__class__ is SLam:
                                steps += 1
                                if at_cap:
                                    if cur is None:
                                        cur = materialise()
                                    stack.pop()
                                    focus = subst(s.lam.body, s.lam.var, arg)
                                    succ = materialise()
                                    return cur, [succ], chained
                                stack.pop()
                                focus = subst(s.lam.body, s.lam.var, arg)
                                chained += 1
                                cur = None
                                continue
                            # SCase / SOpq: may branch or allocate in
                            # rule-specific ways — delegate below.
                            delegate = lambda: m._apply(fn_loc, arg, heap)
                        elif acls is Err:
                            # Error: App(l, Err) contracts to Err.
                            steps += 1
                            if at_cap:
                                if cur is None:
                                    cur = materialise()
                                stack.pop()
                                focus = arg
                                succ = materialise()
                                return cur, [succ], chained
                            stack.pop()
                            focus = arg
                            chained += 1
                            cur = None
                            continue
                        else:
                            stack.pop()
                            stack.append(("apparg", focus))
                            focus = arg
                            continue
                    elif tag == "apparg":
                        fn_loc = frame[1]
                        arg = focus
                        s = heap.get(fn_loc)
                        if s.__class__ is SLam:
                            steps += 1
                            if at_cap:
                                if cur is None:
                                    cur = materialise()
                                stack.pop()
                                focus = subst(s.lam.body, s.lam.var, arg)
                                succ = materialise()
                                return cur, [succ], chained
                            stack.pop()
                            focus = subst(s.lam.body, s.lam.var, arg)
                            chained += 1
                            cur = None
                            continue
                        delegate = lambda: m._apply(fn_loc, arg, heap)
                    elif tag == "if":
                        test = focus
                        delegate = lambda: m._apply_if(
                            test, frame[1], frame[2], heap)
                    else:  # ("prim", op, before, after, label)
                        op, before, after, label = (frame[1], frame[2],
                                                    frame[3], frame[4])
                        done = before + (focus,)
                        nxt_i = None
                        for j, a in enumerate(after):
                            if a.__class__ is not Loc:
                                nxt_i = j
                                break
                        if nxt_i is not None:
                            nxt = after[nxt_i]
                            if nxt.__class__ is Err:
                                # Error inside an operand: the whole
                                # PrimApp contracts to it.
                                steps += 1
                                if at_cap:
                                    if cur is None:
                                        cur = materialise()
                                    stack.pop()
                                    focus = nxt
                                    succ = materialise()
                                    return cur, [succ], chained
                                stack.pop()
                                focus = nxt
                                chained += 1
                                cur = None
                                continue
                            stack.pop()
                            stack.append(("prim", op,
                                          done + after[:nxt_i],
                                          after[nxt_i + 1:], label))
                            focus = nxt
                            continue
                        node = PrimApp(op, done + after, label)
                        delegate = lambda: m._apply_prim(node, heap)
                    # Contraction consumes the top frame; materialise the
                    # pre-step state before popping it.
                    steps += 1
                    if cur is None:
                        cur = materialise()
                    stack.pop()
                    results = delegate()
                    base = current_loc_counter()
                    if len(results) == 1 and not at_cap:
                        focus, heap = results[0]
                        chained += 1
                        cur = None
                        continue
                    succs = [State(_plug_core(stack, e2), h2, base)
                             for e2, h2 in results]
                    return cur, succs, chained

                if cls is Err:
                    # Error: peel exactly one context frame per step.
                    steps += 1
                    if at_cap:
                        if cur is None:
                            cur = materialise()
                        stack.pop()
                        succ = materialise()
                        return cur, [succ], chained
                    stack.pop()
                    chained += 1
                    cur = None
                    continue

                # ---- eval-position forms -------------------------------
                if cls is Num:
                    steps += 1
                    if at_cap and cur is None:
                        cur = materialise()
                    l, h = heap.alloc(SNum(focus.value))
                    if at_cap:
                        focus, heap = l, h
                        succ = materialise()
                        return cur, [succ], chained
                    focus, heap = l, h
                    chained += 1
                    cur = None
                    continue
                if cls is Lam:
                    steps += 1
                    if at_cap and cur is None:
                        cur = materialise()
                    l, h = heap.alloc(SLam(focus))
                    if at_cap:
                        focus, heap = l, h
                        succ = materialise()
                        return cur, [succ], chained
                    focus, heap = l, h
                    chained += 1
                    cur = None
                    continue
                if cls is Opq:
                    steps += 1
                    if at_cap and cur is None:
                        cur = materialise()
                    l = _opq_loc(focus.label)
                    h = heap if l in heap else heap.set(l, SOpq(focus.type))
                    if at_cap:
                        focus, heap = l, h
                        succ = materialise()
                        return cur, [succ], chained
                    focus, heap = l, h
                    chained += 1
                    cur = None
                    continue
                if cls is Fix:
                    steps += 1
                    if at_cap and cur is None:
                        cur = materialise()
                    unfolded = subst(focus.body, focus.var, focus)
                    if at_cap:
                        focus = unfolded
                        succ = materialise()
                        return cur, [succ], chained
                    focus = unfolded
                    chained += 1
                    cur = None
                    continue
                if cls is If:
                    t = focus.test
                    tcls = t.__class__
                    if tcls is Err:
                        steps += 1
                        if at_cap and cur is None:
                            cur = materialise()
                        if at_cap:
                            focus = t
                            succ = materialise()
                            return cur, [succ], chained
                        focus = t
                        chained += 1
                        cur = None
                        continue
                    stack.append(("if", focus.then, focus.orelse))
                    focus = t
                    continue
                if cls is App:
                    fn, arg = focus.fn, focus.arg
                    if fn.__class__ is not Loc:
                        if fn.__class__ is Err:
                            steps += 1
                            if at_cap and cur is None:
                                cur = materialise()
                            if at_cap:
                                focus = fn
                                succ = materialise()
                                return cur, [succ], chained
                            focus = fn
                            chained += 1
                            cur = None
                            continue
                        stack.append(("appfn", arg))
                        focus = fn
                        continue
                    if arg.__class__ is not Loc:
                        if arg.__class__ is Err:
                            steps += 1
                            if at_cap and cur is None:
                                cur = materialise()
                            if at_cap:
                                focus = arg
                                succ = materialise()
                                return cur, [succ], chained
                            focus = arg
                            chained += 1
                            cur = None
                            continue
                        stack.append(("apparg", fn))
                        focus = arg
                        continue
                    # Both operands finished: redex in place.
                    stack.append(("appfn", arg))
                    focus = fn
                    continue
                if cls is PrimApp:
                    args = focus.args
                    nxt_i = None
                    for j, a in enumerate(args):
                        if a.__class__ is not Loc:
                            nxt_i = j
                            break
                    if nxt_i is not None:
                        nxt = args[nxt_i]
                        if nxt.__class__ is Err:
                            steps += 1
                            if at_cap and cur is None:
                                cur = materialise()
                            if at_cap:
                                focus = nxt
                                succ = materialise()
                                return cur, [succ], chained
                            focus = nxt
                            chained += 1
                            cur = None
                            continue
                        stack.append(("prim", focus.op, args[:nxt_i],
                                      args[nxt_i + 1:], focus.label))
                        focus = nxt
                        continue
                    # All operands are locations: δ in place.
                    steps += 1
                    if cur is None:
                        cur = materialise()
                    node = focus
                    results = m._apply_prim(node, heap)
                    base = current_loc_counter()
                    if len(results) == 1 and not at_cap:
                        focus, heap = results[0]
                        chained += 1
                        cur = None
                        continue
                    succs = [State(_plug_core(stack, e2), h2, base)
                             for e2, h2 in results]
                    return cur, succs, chained

                # Ref / unknown node: let the machine raise its own
                # StuckError on the materialised state.
                if cur is None:
                    cur = materialise()
                succs = m.step(cur)
                steps += 1
                return cur, succs, chained
        finally:
            if steps and self.stats is not None and \
                    hasattr(self.stats, "dispatch_steps"):
                self.stats.dispatch_steps += steps

"""Demonic-context reconstruction — closing the paper's Theorem-1 loop
for module programs.

A module-program finding means: *some* well-behaved client can drive
this module (or one of its unknown imports) into blame.  The symbolic
run already contains that client, just not as a program: the machine's
opaque-application rule left its behaviour in the heap —

* the client location (``o:demonic-ctx``) holds either a ``UCase``
  argument-pattern table (the client returned without observing its
  arguments) or a *havoc wrapper closure* recording which provide it
  probed, with which fresh-opaque arguments, and the continuation the
  result was fed to;
* every probe location carries the tag narrowings and refinements the
  surviving path imposed, and the SMT model assigns each a concrete
  scalar;
* continuations are themselves unknowns, so the structure nests: a
  client that applies a *returned* function shows up as a havoc closure
  inside a havoc closure.

Reconstruction therefore reuses the ordinary heap reconstructor
(``scv.counterexample.UReconstructor``): concretising the client
location yields a lambda whose ``UCase`` tables render as nested
``if``/``equal?`` dispatch with a model-chosen default, whose probes
are concrete scalars (or synthesized lambdas, recursively), and whose
parameters we α-rename to the provide names for readability.  Blame
that strikes before the client is ever applied (a module initialiser
faulting at load) gets the trivial client — any client reproduces it.

Validation (:func:`check_client`) then re-runs modules + client call
under ``conc.interp`` and demands blame at the same source label (or
on the same party, for contract blame) — flipping the report's
``validated`` flag from ``skipped`` to a real verdict.  The model may
still be filtered here: the solver only sees the integer fragment, so
a path whose feasibility hinges on non-integer structure can yield a
client that takes a different concrete branch (see
docs/COUNTEREXAMPLES.md for the soundness argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.syntax import Loc
from ..lang.ast import (
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from ..lang.pretty import pp, pp_program
from ..scv.engine import CLIENT_LABEL
from ..scv.heap import UOpq

#: Label of the synthesized client's application site.  A known-shaped
#: label (no colon) so the call site itself could be blamed in a
#: concrete re-run without being mistaken for machine-internal blame.
CEX_CLIENT_LABEL = "cex-client"


@dataclass
class SynthesizedClient:
    """A concrete counterexample client, ready to run.

    ``client`` is ``None`` for programs whose blame does not go through
    a client application (no provides, or blame at module load) — the
    re-run then simply loads the modules and evaluates ``main``."""

    program: Program  # modules + client-call main, labels preserved
    provides: tuple[str, ...]
    client: Optional[ULam]  # the demonic context, concretised
    trivial: bool  # True when any client would do

    def client_text(self) -> Optional[str]:
        return None if self.client is None else pp(self.client)


def provide_names(
    program: Program, client_of: Optional[str] = None
) -> tuple[str, ...]:
    """The names the demonic client received, in boundary order — its
    argument list.  ``client_of`` mirrors
    ``scv.engine.client_provides``: ``None`` for every module's
    provides, a module name for that module's, ``""`` for none (the
    persistent store's narrowed verification units)."""
    from ..scv.engine import client_provides

    return tuple(client_provides(program, client_of))


def trivial_client(provides: tuple[str, ...]) -> ULam:
    """The client that ignores its arguments — sufficient whenever the
    blame fires before (or without) any client application."""
    return ULam(provides, Quote(0), name="client")


def synthesize_client(
    program: Program, heap, recon, *, client_of: Optional[str] = None
) -> Optional[SynthesizedClient]:
    """Reconstruct the demonic context from a blame-state ``heap`` under
    ``recon`` (an ``scv.counterexample.UReconstructor`` for that heap).

    Returns ``None`` for non-module programs (nothing to synthesize: the
    instantiated main *is* the executable counterexample), otherwise a
    :class:`SynthesizedClient` — falling back to the trivial client when
    the client location was never specialised or cannot be concretised.
    ``client_of`` must match the narrowing the machine ran under
    (``scv.engine.inject_program``): the client lambda's arity is the
    narrowed provide count.
    """
    if not program.modules:
        return None
    provides = provide_names(program, client_of)
    if not provides:
        return SynthesizedClient(program, provides, None, True)
    client: Optional[ULam] = None
    trivial = True
    loc = Loc(f"o:{CLIENT_LABEL}")
    if loc in heap:
        _, s = heap.deref(loc)
        if not isinstance(s, UOpq):  # the client was applied on this path
            # Imported lazily: scv.counterexample imports this module.
            from ..scv.counterexample import UReconstructionError

            try:
                expr = recon.loc_value(loc)
            except UReconstructionError:
                expr = None  # unmodelable client: fall back to trivial
            if (
                isinstance(expr, ULam)
                and len(expr.params) == len(provides)
            ):
                client = _rename_params(expr, provides)
                trivial = False
    if client is None:
        client = trivial_client(provides)
    call = UApp(client, tuple(UVar(n) for n in provides),
                label=CEX_CLIENT_LABEL)
    main: UExpr = call if program.main is None else UBegin(
        (call, program.main)
    )
    return SynthesizedClient(
        Program(program.modules, main), provides, client, trivial
    )


def closed_program_text(
    program: Program,
    bindings: dict[str, UExpr],
    client: Optional[SynthesizedClient] = None,
) -> str:
    """The counterexample as one closed, runnable surface program:
    modules with opaque imports instantiated from ``bindings``, then the
    client call (module programs) or the instantiated main (top-level
    programs)."""
    target = client.program if client is not None else program
    return pp_program(target, opaque_exprs=bindings)


def check_client(
    sc: SynthesizedClient, blame, bindings: dict[str, UExpr], *,
    fuel: int = 200_000,
) -> bool:
    """Re-run the synthesized client program concretely and confirm
    blame lands at the same source label (primitive faults) or on the
    same party (contract blame, whose labels may be machine-synthetic).
    """
    from ..conc.interp import (
        ContractBlame,
        Interp,
        InterpTimeout,
        PrimBlame,
        RuntimeFault,
        UserAbort,
    )

    interp = Interp(fuel=fuel)
    try:
        interp.run_program(sc.program, opaque_exprs=bindings)
    except PrimBlame as b:
        return b.label == blame.label
    except UserAbort as b:
        return b.label == blame.label
    except ContractBlame as b:
        return b.party == blame.party or b.label == blame.label
    except (RuntimeFault, InterpTimeout, RecursionError):
        return False
    return False


# ---------------------------------------------------------------------------
# Capture-respecting parameter renaming
# ---------------------------------------------------------------------------


def _rename_params(lam: ULam, names: tuple[str, ...]) -> ULam:
    """α-rename the client lambda's machine-minted parameters (``.h0``
    …) to the provide names, so the emitted client reads as code about
    the module's API.  Free occurrences only: nested havoc lambdas
    rebind the same machine names."""
    mapping = dict(zip(lam.params, names))
    return ULam(names, _rename_free(lam.body, mapping), name="client")


def _rename_free(e: UExpr, mapping: dict[str, str]) -> UExpr:
    if not mapping:
        return e
    if isinstance(e, UVar):
        return UVar(mapping.get(e.name, e.name))
    if isinstance(e, (Quote, UOpaque)):
        return e
    if isinstance(e, ULam):
        inner = {k: v for k, v in mapping.items() if k not in e.params}
        return ULam(e.params, _rename_free(e.body, inner), e.name)
    if isinstance(e, UIf):
        return UIf(
            _rename_free(e.test, mapping),
            _rename_free(e.then, mapping),
            _rename_free(e.orelse, mapping),
        )
    if isinstance(e, UBegin):
        return UBegin(tuple(_rename_free(x, mapping) for x in e.exprs))
    if isinstance(e, ULetrec):
        inner = {
            k: v for k, v in mapping.items()
            if k not in {n for n, _ in e.bindings}
        }
        return ULetrec(
            tuple((n, _rename_free(x, inner)) for n, x in e.bindings),
            _rename_free(e.body, inner),
        )
    if isinstance(e, USet):
        return USet(mapping.get(e.name, e.name), _rename_free(e.value, mapping))
    if isinstance(e, UApp):
        return UApp(
            _rename_free(e.fn, mapping),
            tuple(_rename_free(a, mapping) for a in e.args),
            e.label,
        )
    # Fail loudly on unknown node kinds (like the pretty/substitution
    # walks do): silently skipping one would leave machine names free in
    # the client and make validation fail with no pointer at the cause.
    raise TypeError(f"cannot rename inside {e!r}")

"""Executable counterexample synthesis.

This package turns a symbolic finding into a *runnable artifact* — the
paper's headline deliverable: blame witnesses are relatively complete
counterexamples you can execute.  Two reconstruction directions live
here:

* :func:`~repro.synth.client.synthesize_client` — **demonic-context
  reconstruction** for module programs: the blame-state heap records
  everything the unknown client did (argument-pattern ``UCase`` tables
  and havoc wrapper closures laid down at each ``(•ctx prov …)``
  application step), and the SMT model pins every scalar it chose; the
  synthesizer reads both off and emits a closed, surface-syntax client
  lambda over the module's provides;
* :func:`~repro.synth.client.closed_program_text` — the fully closed
  program: modules with their opaque imports instantiated, plus the
  client call (or, for top-level programs, the main expression with
  every ``•`` substituted), rendered through :mod:`repro.lang.pretty`.

Both backends' counterexample modules route through here, so every
``counterexample`` report row can carry a program a human (or CI) can
feed straight back to ``conc.interp``.
"""

from .client import (
    CEX_CLIENT_LABEL,
    SynthesizedClient,
    check_client,
    closed_program_text,
    provide_names,
    synthesize_client,
)

__all__ = [
    "CEX_CLIENT_LABEL",
    "SynthesizedClient",
    "check_client",
    "closed_program_text",
    "provide_names",
    "synthesize_client",
]

"""Surface pretty-printer — core AST back to parseable source text.

The inverse of :mod:`lang.parser` up to desugaring: the printer emits
the *core* forms (``λ``, ``if``, ``begin``, ``letrec``, ``set!``,
``quote``, applications, ``•``), never the surface sugar they came
from, so printed text re-parses to the same core AST.  The contract is
**parse ∘ print = id** modulo generated metadata:

* blame labels are minted fresh by every parse (``fresh_label``), so a
  re-parse numbers them differently;
* ``ULam.name`` / ``UOpaque.label`` are debug identities the printed
  text cannot carry (``define`` sugar restores lambda names, but a
  ``letrec``-bound named lambda prints as a bare ``λ``).

:func:`strip_metadata` erases exactly those fields; the round-trip
property test (``tests/test_lang_pretty.py``) checks
``strip(parse(pp(parse(src)))) == strip(parse(src))`` over the whole
benchmark corpus, plus exact idempotence of ``pp ∘ parse``.

This is what makes counterexamples *executable artifacts*: the
synthesized demonic clients of :mod:`repro.synth` are rendered through
this printer into closed programs you can feed straight back to
``python -m repro verify`` or the concrete interpreter.
"""

from __future__ import annotations

from fractions import Fraction

from .ast import (
    Module,
    Program,
    Provide,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
)
from .sexp import Symbol, write_datum


class PrettyError(Exception):
    """The expression has no faithful surface rendering."""


def pp_datum(d: object) -> str:
    """A quoted datum with its reader prefix where one is needed."""
    if isinstance(d, (Symbol, list)):
        return "'" + write_datum(d)
    if isinstance(d, Fraction):
        return f"{d.numerator}/{d.denominator}"
    return write_datum(d)


def pp(e: UExpr) -> str:
    """One expression as (single-line) surface text."""
    if isinstance(e, Quote):
        return pp_datum(e.datum)
    if isinstance(e, UVar):
        return e.name
    if isinstance(e, ULam):
        return f"(λ ({' '.join(e.params)}) {pp(e.body)})"
    if isinstance(e, UIf):
        return f"(if {pp(e.test)} {pp(e.then)} {pp(e.orelse)})"
    if isinstance(e, UBegin):
        return "(begin " + " ".join(pp(x) for x in e.exprs) + ")"
    if isinstance(e, ULetrec):
        if not e.bindings:
            return pp(e.body)
        rows = " ".join(f"[{n} {pp(x)}]" for n, x in e.bindings)
        return f"(letrec ({rows}) {pp(e.body)})"
    if isinstance(e, USet):
        return f"(set! {e.name} {pp(e.value)})"
    if isinstance(e, UOpaque):
        return "•"
    if isinstance(e, UApp):
        return "(" + " ".join([pp(e.fn), *(pp(a) for a in e.args)]) + ")"
    raise PrettyError(f"no surface form for {e!r}")


def _pp_define(name: str, e: UExpr) -> str:
    """``(define …)`` — function-style when the value is a lambda named
    after its binding (that is how the sugar parses, and the style
    restores ``ULam.name`` on re-parse)."""
    if isinstance(e, ULam) and e.name == name:
        return f"(define ({name}{''.join(' ' + p for p in e.params)}) {pp(e.body)})"
    return f"(define {name} {pp(e)})"


def pp_module(
    m: Module, *, opaque_exprs: dict[str, UExpr] | None = None
) -> str:
    """One module as multi-line surface text.

    With ``opaque_exprs``, each ``define-opaque`` import named there is
    *instantiated*: printed as a plain ``define`` of the concrete
    expression (dropping its contract), which is how a synthesized
    counterexample closes a module over its unknown imports."""
    lines = [f"(module {m.name}"]
    for sd in m.structs:
        lines.append(f"  (struct {sd.name} ({' '.join(sd.fields)}))")
    for oname, ctc in m.opaques:
        if opaque_exprs is not None and oname in opaque_exprs:
            lines.append(f"  {_pp_define(oname, opaque_exprs[oname])}")
        elif ctc is None:
            lines.append(f"  (define-opaque {oname})")
        else:
            lines.append(f"  (define-opaque {oname} {pp(ctc)})")
    for name, e in m.definitions:
        lines.append(f"  {_pp_define(name, e)}")
    if m.provides:
        entries = " ".join(_pp_provide(p) for p in m.provides)
        lines.append(f"  (provide {entries})")
    lines[-1] += ")"
    return "\n".join(lines)


def _pp_provide(p: Provide) -> str:
    if p.contract is None:
        return p.name
    return f"[{p.name} {pp(p.contract)}]"


def pp_program(
    program: Program, *, opaque_exprs: dict[str, UExpr] | None = None
) -> str:
    """A whole program as surface text (modules, then the top level)."""
    parts = [
        pp_module(m, opaque_exprs=opaque_exprs) for m in program.modules
    ]
    if program.main is not None:
        main = program.main
        if opaque_exprs is not None:
            main = substitute_opaques(main, opaque_exprs)
        parts.append(pp(main))
    return "\n".join(parts) + "\n"


def substitute_opaques(e: UExpr, bindings: dict[str, UExpr]) -> UExpr:
    """Replace each ``•^label`` in ``e`` by its binding (labels missing
    from ``bindings`` are left opaque)."""
    if isinstance(e, UOpaque):
        return bindings.get(e.label, e)
    if isinstance(e, (Quote, UVar)):
        return e
    if isinstance(e, ULam):
        return ULam(e.params, substitute_opaques(e.body, bindings), e.name)
    if isinstance(e, UIf):
        return UIf(
            substitute_opaques(e.test, bindings),
            substitute_opaques(e.then, bindings),
            substitute_opaques(e.orelse, bindings),
        )
    if isinstance(e, UBegin):
        return UBegin(tuple(substitute_opaques(x, bindings) for x in e.exprs))
    if isinstance(e, ULetrec):
        return ULetrec(
            tuple((n, substitute_opaques(x, bindings)) for n, x in e.bindings),
            substitute_opaques(e.body, bindings),
        )
    if isinstance(e, USet):
        return USet(e.name, substitute_opaques(e.value, bindings))
    if isinstance(e, UApp):
        return UApp(
            substitute_opaques(e.fn, bindings),
            tuple(substitute_opaques(a, bindings) for a in e.args),
            e.label,
        )
    raise PrettyError(f"cannot substitute into {e!r}")


# ---------------------------------------------------------------------------
# Metadata-erased equality (the round-trip normal form)
# ---------------------------------------------------------------------------


def strip_metadata(e: UExpr) -> UExpr:
    """Erase parse-generated metadata — blame labels, lambda display
    names, opaque labels — leaving the structural core two parses of
    equivalent text agree on."""
    if isinstance(e, (Quote, UVar)):
        return e
    if isinstance(e, ULam):
        return ULam(e.params, strip_metadata(e.body))
    if isinstance(e, UIf):
        return UIf(
            strip_metadata(e.test),
            strip_metadata(e.then),
            strip_metadata(e.orelse),
        )
    if isinstance(e, UBegin):
        return UBegin(tuple(strip_metadata(x) for x in e.exprs))
    if isinstance(e, ULetrec):
        return ULetrec(
            tuple((n, strip_metadata(x)) for n, x in e.bindings),
            strip_metadata(e.body),
        )
    if isinstance(e, USet):
        return USet(e.name, strip_metadata(e.value))
    if isinstance(e, UOpaque):
        return UOpaque("")
    if isinstance(e, UApp):
        return UApp(
            strip_metadata(e.fn),
            tuple(strip_metadata(a) for a in e.args),
        )
    raise PrettyError(f"cannot strip {e!r}")


def strip_program(program: Program) -> Program:
    """``strip_metadata`` over a whole program."""
    def strip_module(m: Module) -> Module:
        return Module(
            m.name,
            m.structs,
            tuple((n, strip_metadata(e)) for n, e in m.definitions),
            tuple(
                (n, None if c is None else strip_metadata(c))
                for n, c in m.opaques
            ),
            tuple(
                Provide(p.name,
                        None if p.contract is None else strip_metadata(p.contract))
                for p in m.provides
            ),
        )

    return Program(
        tuple(strip_module(m) for m in program.modules),
        None if program.main is None else strip_metadata(program.main),
    )

"""Concrete primitive operations — a thin view over ``repro.prims``.

Historically this module *was* δ's concrete implementation; it is now a
compatibility facade over the primitive registry
(``repro.prims.declarations``), where every primitive is declared once
with the metadata all four engine layers consume.  What remains here is
the interface the concrete interpreter and the symbolic engines import:

* :func:`base_primitives` — surface name → concrete callable
  ``fn(args, ctx) -> value``, in registry declaration order (which is
  also the symbolic global frame's allocation order);
* :class:`PrimError` / :class:`UserError` — the error types those
  callables raise (re-exported from ``repro.prims.errors``);
* ``_as_contract`` — value-to-contract coercion, used by the concrete
  interpreter's contract attachment.

Primitives are partial — ``car`` of a non-pair, ``/`` by zero, ``<`` on
a complex number all raise :class:`PrimError` — and these precondition
violations are exactly the blame sources the paper's symbolic execution
hunts for (§3.1: "failures can only occur with the application of
partial, primitive operations").  To add or change a primitive, edit
the registry declarations, not this module.
"""

from __future__ import annotations

from typing import Callable

from ..prims import PrimError, REGISTRY, UserError

__all__ = ["PrimError", "UserError", "base_primitives", "_as_contract",
           "_looks_applicable"]


def base_primitives() -> dict[str, Callable]:
    """All primitives as ``name -> fn(args, ctx)``, in registry
    declaration order.  ``ctx`` provides ``apply(fn, args)`` for
    higher-order primitives and ``label`` for blame."""
    return {name: spec.concrete for name, spec in REGISTRY.items()}


def __getattr__(name: str):
    # ``_as_contract``/``_looks_applicable`` live with the declarations;
    # resolving them lazily keeps ``import repro.prims`` working as the
    # first repro import (eager re-export here would re-enter the still
    # initialising declarations module through ``lang.__init__``).
    if name in ("_as_contract", "_looks_applicable"):
        from ..prims import declarations

        value = getattr(declarations, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

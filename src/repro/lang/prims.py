"""Primitive operations of the untyped language.

Each primitive is a Python callable ``fn(args, ctx) -> value`` where
``ctx`` provides ``apply(fn, args)`` (to call back into the interpreter,
e.g. for contract combinators taking predicates) and ``label`` (the
application's blame label).  Precondition violations raise
:class:`PrimError`, which the interpreters convert into blame at the
application site — these are exactly the "partial primitive" error
sources of the paper (§3.1: "failures can only occur with the
application of partial, primitive operations").
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

from .sexp import Symbol
from .values import (
    AndContract,
    Box,
    ConsContract,
    Contract,
    DepFuncContract,
    FlatContract,
    FuncContract,
    ListContract,
    ListofContract,
    NIL,
    Nil,
    NotContract,
    OneOfContract,
    OrContract,
    Pair,
    RecContract,
    StructContract,
    StructType,
    VOID,
    from_pylist,
    is_exact,
    is_integer,
    is_number,
    is_real,
    is_truthy,
    racket_equal,
    to_pylist,
)


class PrimError(Exception):
    """A primitive's precondition was violated."""

    def __init__(self, op: str, message: str) -> None:
        super().__init__(f"{op}: {message}")
        self.op = op
        self.message = message


class UserError(Exception):
    """The program called ``(error ...)`` deliberately."""

    def __init__(self, message: str) -> None:
        super().__init__(message)
        self.message = message


def _want_numbers(op: str, args: list) -> None:
    for a in args:
        if not is_number(a):
            raise PrimError(op, f"expected number, got {a!r}")


def _want_reals(op: str, args: list) -> None:
    for a in args:
        if not is_real(a):
            raise PrimError(op, f"expected real, got {a!r}")


def _want_integers(op: str, args: list) -> None:
    for a in args:
        if not (is_integer(a) and is_exact(a)):
            raise PrimError(op, f"expected exact integer, got {a!r}")


def _norm(v):
    """Normalise exact rationals with denominator 1 to ints."""
    if isinstance(v, Fraction) and v.denominator == 1:
        return int(v)
    return v


def _arity(op: str, args: list, n: int) -> None:
    if len(args) != n:
        raise PrimError(op, f"expected {n} arguments, got {len(args)}")


# ---------------------------------------------------------------------------
# Numbers
# ---------------------------------------------------------------------------


def _prim_add(args, ctx):
    _want_numbers("+", args)
    out = 0
    for a in args:
        out = out + a
    return _norm(out)


def _prim_sub(args, ctx):
    _want_numbers("-", args)
    if not args:
        raise PrimError("-", "needs at least 1 argument")
    if len(args) == 1:
        return _norm(-args[0])
    out = args[0]
    for a in args[1:]:
        out = out - a
    return _norm(out)


def _prim_mul(args, ctx):
    _want_numbers("*", args)
    out = 1
    for a in args:
        out = out * a
    return _norm(out)


def _prim_div(args, ctx):
    _want_numbers("/", args)
    if not args:
        raise PrimError("/", "needs at least 1 argument")
    vals = args if len(args) > 1 else [1] + list(args)
    out = vals[0]
    for a in vals[1:]:
        if a == 0:
            raise PrimError("/", "division by zero")
        if is_exact(out) and is_exact(a):
            out = Fraction(out) / Fraction(a)
        else:
            out = out / a
    return _norm(out)


def _prim_quotient(args, ctx):
    _arity("quotient", args, 2)
    _want_integers("quotient", args)
    if args[1] == 0:
        raise PrimError("quotient", "division by zero")
    a, b = int(args[0]), int(args[1])
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q  # truncating, like Racket


def _prim_remainder(args, ctx):
    _arity("remainder", args, 2)
    _want_integers("remainder", args)
    if args[1] == 0:
        raise PrimError("remainder", "division by zero")
    a, b = int(args[0]), int(args[1])
    return a - b * (abs(a) // abs(b)) * (1 if (a >= 0) == (b >= 0) else -1)


def _prim_modulo(args, ctx):
    _arity("modulo", args, 2)
    _want_integers("modulo", args)
    if args[1] == 0:
        raise PrimError("modulo", "division by zero")
    return int(args[0]) % int(args[1])


def _prim_add1(args, ctx):
    _arity("add1", args, 1)
    _want_numbers("add1", args)
    return _norm(args[0] + 1)


def _prim_sub1(args, ctx):
    _arity("sub1", args, 1)
    _want_numbers("sub1", args)
    return _norm(args[0] - 1)


def _prim_abs(args, ctx):
    _arity("abs", args, 1)
    _want_reals("abs", args)
    return _norm(abs(args[0]))


def _prim_min(args, ctx):
    _want_reals("min", args)
    if not args:
        raise PrimError("min", "needs at least 1 argument")
    return _norm(min(args))


def _prim_max(args, ctx):
    _want_reals("max", args)
    if not args:
        raise PrimError("max", "needs at least 1 argument")
    return _norm(max(args))


def _compare(op: str, py) -> Callable:
    def fn(args, ctx):
        # Comparisons are partial: they require *real* arguments.  This
        # is the precondition the paper's argmin counterexample violates
        # with 0+1i (§5.2).
        if len(args) < 2:
            raise PrimError(op, "needs at least 2 arguments")
        _want_reals(op, args)
        return all(py(args[i], args[i + 1]) for i in range(len(args) - 1))

    return fn


def _prim_num_eq(args, ctx):
    if len(args) < 2:
        raise PrimError("=", "needs at least 2 arguments")
    _want_numbers("=", args)
    return all(args[i] == args[i + 1] for i in range(len(args) - 1))


def _pred(name: str, test) -> Callable:
    def fn(args, ctx):
        _arity(name, args, 1)
        return bool(test(args[0]))

    return fn


def _prim_exact_to_inexact(args, ctx):
    _arity("exact->inexact", args, 1)
    _want_numbers("exact->inexact", args)
    v = args[0]
    if isinstance(v, complex):
        return v
    return float(v)


def _prim_expt(args, ctx):
    _arity("expt", args, 2)
    _want_numbers("expt", args)
    base, power = args
    if is_exact(base) and is_integer(power) and is_exact(power):
        p = int(power)
        if p >= 0:
            return _norm(Fraction(base) ** p)
        if base == 0:
            raise PrimError("expt", "0 to a negative power")
        return _norm(Fraction(base) ** p)
    return base**power


def _prim_sqrt(args, ctx):
    _arity("sqrt", args, 1)
    _want_numbers("sqrt", args)
    v = args[0]
    if is_real(v) and v >= 0:
        if is_exact(v):
            r = int(v) if is_integer(v) else None
            if r is not None:
                s = int(r**0.5)
                for cand in (s - 1, s, s + 1):
                    if cand >= 0 and cand * cand == r:
                        return cand
        return float(v) ** 0.5
    # Negative or complex input: complex result (the numeric tower!).
    return complex(v) ** 0.5


# ---------------------------------------------------------------------------
# Pairs and lists
# ---------------------------------------------------------------------------


def _prim_cons(args, ctx):
    _arity("cons", args, 2)
    return Pair(args[0], args[1])


def _prim_car(args, ctx):
    _arity("car", args, 1)
    if not isinstance(args[0], Pair):
        raise PrimError("car", f"expected pair, got {args[0]!r}")
    return args[0].car


def _prim_cdr(args, ctx):
    _arity("cdr", args, 1)
    if not isinstance(args[0], Pair):
        raise PrimError("cdr", f"expected pair, got {args[0]!r}")
    return args[0].cdr


def _prim_list(args, ctx):
    return from_pylist(list(args))


def _prim_length(args, ctx):
    _arity("length", args, 1)
    items = to_pylist(args[0])
    if items is None:
        raise PrimError("length", f"expected proper list, got {args[0]!r}")
    return len(items)


def _prim_append(args, ctx):
    out = NIL
    lists = []
    for a in args:
        items = to_pylist(a)
        if items is None:
            raise PrimError("append", f"expected proper list, got {a!r}")
        lists.append(items)
    flat = [x for lst in lists for x in lst]
    return from_pylist(flat)


def _prim_reverse(args, ctx):
    _arity("reverse", args, 1)
    items = to_pylist(args[0])
    if items is None:
        raise PrimError("reverse", f"expected proper list, got {args[0]!r}")
    return from_pylist(list(reversed(items)))


def _prim_list_p(args, ctx):
    _arity("list?", args, 1)
    return to_pylist(args[0]) is not None


def _prim_member(args, ctx):
    _arity("member", args, 2)
    v, lst = args
    while isinstance(lst, Pair):
        if racket_equal(v, lst.car):
            return lst
        lst = lst.cdr
    return False


# ---------------------------------------------------------------------------
# Higher-order list primitives (call back into the interpreter)
# ---------------------------------------------------------------------------


def _prim_map(args, ctx):
    if len(args) < 2:
        raise PrimError("map", "needs a function and at least one list")
    f = args[0]
    lists = []
    for a in args[1:]:
        items = to_pylist(a)
        if items is None:
            raise PrimError("map", f"expected proper list, got {a!r}")
        lists.append(items)
    if len({len(l) for l in lists}) > 1:
        raise PrimError("map", "lists differ in length")
    out = [ctx.apply(f, list(row)) for row in zip(*lists)]
    return from_pylist(out)


def _prim_filter(args, ctx):
    _arity("filter", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("filter", f"expected proper list, got {lst!r}")
    return from_pylist([x for x in items if is_truthy(ctx.apply(f, [x]))])


def _prim_foldl(args, ctx):
    _arity("foldl", args, 3)
    f, init, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("foldl", f"expected proper list, got {lst!r}")
    acc = init
    for x in items:
        acc = ctx.apply(f, [x, acc])
    return acc


def _prim_foldr(args, ctx):
    _arity("foldr", args, 3)
    f, init, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("foldr", f"expected proper list, got {lst!r}")
    acc = init
    for x in reversed(items):
        acc = ctx.apply(f, [x, acc])
    return acc


def _prim_andmap(args, ctx):
    _arity("andmap", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("andmap", f"expected proper list, got {lst!r}")
    out = True
    for x in items:
        out = ctx.apply(f, [x])
        if not is_truthy(out):
            return False
    return out


def _prim_ormap(args, ctx):
    _arity("ormap", args, 2)
    f, lst = args
    items = to_pylist(lst)
    if items is None:
        raise PrimError("ormap", f"expected proper list, got {lst!r}")
    for x in items:
        out = ctx.apply(f, [x])
        if is_truthy(out):
            return out
    return False


# ---------------------------------------------------------------------------
# Equality, booleans, misc
# ---------------------------------------------------------------------------


def _prim_not(args, ctx):
    _arity("not", args, 1)
    return args[0] is False


def _prim_equal(args, ctx):
    _arity("equal?", args, 2)
    return racket_equal(args[0], args[1])


def _prim_eqv(args, ctx):
    _arity("eqv?", args, 2)
    a, b = args
    if is_number(a) and is_number(b):
        return is_exact(a) == is_exact(b) and a == b
    return a is b or a == b if isinstance(a, (Symbol, str, Nil)) else a is b


def _prim_void(args, ctx):
    return VOID


def _prim_error(args, ctx):
    msg = " ".join(str(a) for a in args) if args else "error"
    raise UserError(msg)


# ---------------------------------------------------------------------------
# Strings
# ---------------------------------------------------------------------------


def _prim_string_length(args, ctx):
    _arity("string-length", args, 1)
    if not isinstance(args[0], str):
        raise PrimError("string-length", f"expected string, got {args[0]!r}")
    return len(args[0])


def _prim_string_append(args, ctx):
    for a in args:
        if not isinstance(a, str):
            raise PrimError("string-append", f"expected string, got {a!r}")
    return "".join(args)


def _prim_string_eq(args, ctx):
    if len(args) < 2:
        raise PrimError("string=?", "needs at least 2 arguments")
    for a in args:
        if not isinstance(a, str):
            raise PrimError("string=?", f"expected string, got {a!r}")
    return all(args[i] == args[i + 1] for i in range(len(args) - 1))


# ---------------------------------------------------------------------------
# Boxes
# ---------------------------------------------------------------------------


def _prim_box(args, ctx):
    _arity("box", args, 1)
    return Box(args[0])


def _prim_unbox(args, ctx):
    _arity("unbox", args, 1)
    if not isinstance(args[0], Box):
        raise PrimError("unbox", f"expected box, got {args[0]!r}")
    return args[0].content


def _prim_set_box(args, ctx):
    _arity("set-box!", args, 2)
    if not isinstance(args[0], Box):
        raise PrimError("set-box!", f"expected box, got {args[0]!r}")
    args[0].content = args[1]
    return VOID


# ---------------------------------------------------------------------------
# Contract constructors
# ---------------------------------------------------------------------------


def _as_contract(v: object) -> Contract:
    """Coerce a value to a contract: contracts pass through, applicable
    values become flat contracts, literals become equality contracts."""
    if isinstance(v, Contract):
        return v
    if callable(getattr(v, "__call__", None)) or _looks_applicable(v):
        return FlatContract(v, name=getattr(v, "name", "flat"))
    # Literal datum: equality contract (Racket coerces these too).
    return OneOfContract((v,))


def _looks_applicable(v: object) -> bool:
    from .values import StructType

    return (
        type(v).__name__ in ("Closure", "Prim", "Guarded", "StructCtor")
        or isinstance(v, StructType)
    )


def _prim_arrow(args, ctx):
    if not args:
        raise PrimError("->", "needs at least a range contract")
    parts = [_as_contract(a) for a in args]
    return FuncContract(tuple(parts[:-1]), parts[-1])


def _prim_make_arrow_d(args, ctx):
    if len(args) < 1:
        raise PrimError("->d", "needs domains and a range maker")
    doms = tuple(_as_contract(a) for a in args[:-1])
    return DepFuncContract(doms, args[-1])


def _prim_and_c(args, ctx):
    return AndContract(tuple(_as_contract(a) for a in args))


def _prim_or_c(args, ctx):
    return OrContract(tuple(_as_contract(a) for a in args))


def _prim_not_c(args, ctx):
    _arity("not/c", args, 1)
    return NotContract(_as_contract(args[0]))


def _prim_cons_c(args, ctx):
    _arity("cons/c", args, 2)
    return ConsContract(_as_contract(args[0]), _as_contract(args[1]))


def _prim_listof(args, ctx):
    _arity("listof", args, 1)
    return ListofContract(_as_contract(args[0]))


def _prim_list_c(args, ctx):
    return ListContract(tuple(_as_contract(a) for a in args))


def _prim_one_of_c(args, ctx):
    return OneOfContract(tuple(args))


def _prim_comparison_c(name: str, op: str) -> Callable:
    def fn(args, ctx):
        _arity(name, args, 1)
        bound = args[0]
        _want_reals(name, [bound])

        def check(vals, inner_ctx):
            v = vals[0]
            if not is_real(v):
                return False
            if op == "=":
                return v == bound
            if op == "<":
                return v < bound
            if op == ">":
                return v > bound
            if op == "<=":
                return v <= bound
            return v >= bound

        from .runtime import Prim

        return FlatContract(Prim(f"{name}:{bound}", check), name=f"({name} {bound})")

    return fn


def _prim_make_rec_contract(args, ctx):
    _arity("make-rec-contract", args, 1)
    return RecContract(args[0])


def _prim_struct_c(args, ctx):
    if not args:
        raise PrimError("struct/c", "needs a struct constructor")
    ctor = args[0]
    stype = getattr(ctor, "struct_type", None)
    if stype is None:
        raise PrimError("struct/c", f"expected struct constructor, got {ctor!r}")
    fields = tuple(_as_contract(a) for a in args[1:])
    if len(fields) != len(stype.fields):
        raise PrimError(
            "struct/c", f"{stype.name} has {len(stype.fields)} fields"
        )
    return StructContract(stype, fields)


def _prim_flat_contract_p(args, ctx):
    _arity("flat-contract?", args, 1)
    return isinstance(args[0], (FlatContract, OneOfContract))


# ---------------------------------------------------------------------------
# The table
# ---------------------------------------------------------------------------


def base_primitives() -> dict[str, Callable]:
    """Name → implementation for every primitive."""
    from .values import is_exact, is_integer, is_number, is_real

    return {
        "+": _prim_add,
        "-": _prim_sub,
        "*": _prim_mul,
        "/": _prim_div,
        "quotient": _prim_quotient,
        "remainder": _prim_remainder,
        "modulo": _prim_modulo,
        "add1": _prim_add1,
        "sub1": _prim_sub1,
        "abs": _prim_abs,
        "min": _prim_min,
        "max": _prim_max,
        "expt": _prim_expt,
        "sqrt": _prim_sqrt,
        "exact->inexact": _prim_exact_to_inexact,
        "=": _prim_num_eq,
        "<": _compare("<", lambda a, b: a < b),
        ">": _compare(">", lambda a, b: a > b),
        "<=": _compare("<=", lambda a, b: a <= b),
        ">=": _compare(">=", lambda a, b: a >= b),
        "zero?": _pred("zero?", lambda v: is_number(v) and v == 0),
        "positive?": _pred("positive?", lambda v: is_real(v) and v > 0),
        "negative?": _pred("negative?", lambda v: is_real(v) and v < 0),
        "even?": _pred("even?", lambda v: is_integer(v) and int(v) % 2 == 0),
        "odd?": _pred("odd?", lambda v: is_integer(v) and int(v) % 2 == 1),
        "number?": _pred("number?", is_number),
        "real?": _pred("real?", is_real),
        "integer?": _pred("integer?", is_integer),
        "exact-integer?": _pred(
            "exact-integer?", lambda v: is_integer(v) and is_exact(v)
        ),
        "exact-nonnegative-integer?": _pred(
            "exact-nonnegative-integer?",
            lambda v: is_integer(v) and is_exact(v) and v >= 0,
        ),
        "rational?": _pred("rational?", is_real),
        "exact?": _pred("exact?", is_exact),
        "boolean?": _pred("boolean?", lambda v: isinstance(v, bool)),
        "symbol?": _pred("symbol?", lambda v: isinstance(v, Symbol)),
        "string?": _pred("string?", lambda v: isinstance(v, str)),
        "pair?": _pred("pair?", lambda v: isinstance(v, Pair)),
        "null?": _pred("null?", lambda v: v is NIL),
        "empty?": _pred("empty?", lambda v: v is NIL),
        "box?": _pred("box?", lambda v: isinstance(v, Box)),
        "not": _prim_not,
        "equal?": _prim_equal,
        "eqv?": _prim_eqv,
        "eq?": _prim_eqv,
        "void": _prim_void,
        "error": _prim_error,
        "cons": _prim_cons,
        "car": _prim_car,
        "cdr": _prim_cdr,
        "first": _prim_car,
        "rest": _prim_cdr,
        "list": _prim_list,
        "length": _prim_length,
        "append": _prim_append,
        "reverse": _prim_reverse,
        "list?": _prim_list_p,
        "member": _prim_member,
        "map": _prim_map,
        "filter": _prim_filter,
        "foldl": _prim_foldl,
        "foldr": _prim_foldr,
        "andmap": _prim_andmap,
        "ormap": _prim_ormap,
        "string-length": _prim_string_length,
        "string-append": _prim_string_append,
        "string=?": _prim_string_eq,
        "box": _prim_box,
        "unbox": _prim_unbox,
        "set-box!": _prim_set_box,
        "->": _prim_arrow,
        "make->d": _prim_make_arrow_d,
        "and/c": _prim_and_c,
        "or/c": _prim_or_c,
        "not/c": _prim_not_c,
        "cons/c": _prim_cons_c,
        "listof": _prim_listof,
        "list/c": _prim_list_c,
        "one-of/c": _prim_one_of_c,
        "=/c": _prim_comparison_c("=/c", "="),
        "</c": _prim_comparison_c("</c", "<"),
        ">/c": _prim_comparison_c(">/c", ">"),
        "<=/c": _prim_comparison_c("<=/c", "<="),
        ">=/c": _prim_comparison_c(">=/c", ">="),
        "make-rec-contract": _prim_make_rec_contract,
        "struct/c": _prim_struct_c,
        "flat-contract?": _prim_flat_contract_p,
        "procedure?": _pred(
            "procedure?",
            lambda v: type(v).__name__ in ("Closure", "Prim", "Guarded", "StructCtor"),
        ),
    }

"""Surface syntax → core AST.

Desugars the Racket-subset surface language into the small core of
``lang.ast``:

========================  =========================================
surface                   core
========================  =========================================
``(define (f x) e)``      ``letrec*`` binding with a named lambda
``cond`` / ``case``       nested ``if``
``and`` / ``or``          nested ``if``
``let`` / ``let*``        immediate lambda application
named ``let``             ``letrec`` + application
``when`` / ``unless``     ``if`` with a void branch
``(->d ([x c]...) r)``    ``(make->d c ... (λ (x ...) r))``
``(recursive-contract e)`` ``(make-rec-contract (λ () e))``
``•``                     ``UOpaque`` (a labelled unknown)
========================  =========================================

Contracts are *expressions* (first-class, §4.3): ``->``, ``and/c`` etc.
are ordinary primitives applied at runtime.
"""

from __future__ import annotations

from typing import Optional

from .ast import (
    Module,
    Program,
    Provide,
    Quote,
    StructDef,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
    fresh_label,
)
from .sexp import Datum, Symbol, read_all


class ParseError(Exception):
    """The surface form is not in the supported subset."""


def _sym(d: Datum) -> str:
    if not isinstance(d, Symbol):
        raise ParseError(f"expected identifier, got {d!r}")
    return d.name


def _is(d: Datum, name: str) -> bool:
    return isinstance(d, list) and len(d) > 0 and d[0] == Symbol(name)


def parse_expr(d: Datum) -> UExpr:
    """Parse one expression datum."""
    if isinstance(d, Symbol):
        if d.name == "•":
            return UOpaque(fresh_label("opq"))
        return UVar(d.name)
    if isinstance(d, (int, float, complex, str, bool)) or type(d).__name__ == "Fraction":
        return Quote(d)
    if not isinstance(d, list):
        raise ParseError(f"unparseable datum {d!r}")
    if not d:
        raise ParseError("empty application")

    head = d[0]
    if isinstance(head, Symbol):
        name = head.name
        if name == "quote":
            return Quote(d[1])
        if name in ("lambda", "λ"):
            return _parse_lambda(d)
        if name == "if":
            if len(d) != 4:
                raise ParseError(f"if needs 3 parts: {d!r}")
            return UIf(parse_expr(d[1]), parse_expr(d[2]), parse_expr(d[3]))
        if name == "cond":
            return _parse_cond(d[1:])
        if name == "case":
            return _parse_case(d)
        if name == "and":
            return _parse_and(d[1:])
        if name == "or":
            return _parse_or(d[1:])
        if name == "when":
            return UIf(parse_expr(d[1]), _body(d[2:]), UApp(UVar("void"), (), label=fresh_label("a")))
        if name == "unless":
            return UIf(parse_expr(d[1]), UApp(UVar("void"), (), label=fresh_label("a")), _body(d[2:]))
        if name == "begin":
            return _body(d[1:])
        if name == "let":
            return _parse_let(d)
        if name == "let*":
            return _parse_let_star(d)
        if name in ("letrec", "letrec*"):
            return _parse_letrec(d)
        if name == "set!":
            return USet(_sym(d[1]), parse_expr(d[2]))
        if name == "->d":
            return _parse_arrow_d(d)
        if name == "recursive-contract":
            return UApp(
                UVar("make-rec-contract"),
                (ULam((), parse_expr(d[1])),),
                label=fresh_label("a"),
            )
        if name == "•":
            return UOpaque(fresh_label("opq"))
    fn = parse_expr(head)
    args = tuple(parse_expr(a) for a in d[1:])
    return UApp(fn, args, label=fresh_label("a"))


def _parse_lambda(d: list) -> ULam:
    if len(d) < 3:
        raise ParseError(f"lambda needs params and body: {d!r}")
    params_d = d[1]
    if not isinstance(params_d, list):
        raise ParseError("variadic lambdas are not in the subset")
    params = tuple(_sym(p) for p in params_d)
    return ULam(params, _body(d[2:]))


def _body(forms: list) -> UExpr:
    """A body: internal defines become a letrec*, the rest a begin."""
    defines: list[tuple[str, UExpr]] = []
    exprs: list[UExpr] = []
    for f in forms:
        if _is(f, "define"):
            name, expr = _parse_define(f)
            if exprs:
                raise ParseError("define after expression in body")
            defines.append((name, expr))
        elif _is(f, "struct"):
            raise ParseError("struct definitions are module-level only")
        else:
            exprs.append(parse_expr(f))
    if not exprs:
        raise ParseError("empty body")
    body = exprs[0] if len(exprs) == 1 else UBegin(tuple(exprs))
    if defines:
        return ULetrec(tuple(defines), body)
    return body


def _parse_define(d: list) -> tuple[str, UExpr]:
    """``(define x e)`` or ``(define (f x ...) body...)``."""
    if len(d) < 3:
        raise ParseError(f"malformed define: {d!r}")
    target = d[1]
    if isinstance(target, Symbol):
        return target.name, parse_expr(d[2])
    if isinstance(target, list) and target and isinstance(target[0], Symbol):
        fn_name = target[0].name
        params = tuple(_sym(p) for p in target[1:])
        return fn_name, ULam(params, _body(d[2:]), name=fn_name)
    raise ParseError(f"malformed define target: {target!r}")


def _parse_cond(clauses: list) -> UExpr:
    if not clauses:
        # Falling off a cond is a runtime error in Racket; encode as an
        # application of the error primitive.
        return UApp(
            UVar("error"), (Quote("cond: all clauses failed"),), label=fresh_label("a")
        )
    first = clauses[0]
    if not isinstance(first, list) or not first:
        raise ParseError(f"malformed cond clause {first!r}")
    if first[0] == Symbol("else"):
        return _body(first[1:])
    test = parse_expr(first[0])
    if len(first) == 1:
        # (cond [e] ...) — value of the test when truthy.
        tmp = fresh_label("t")
        return UApp(
            ULam((tmp,), UIf(UVar(tmp), UVar(tmp), _parse_cond(clauses[1:]))),
            (test,),
            label=fresh_label("a"),
        )
    return UIf(test, _body(first[1:]), _parse_cond(clauses[1:]))


def _parse_case(d: list) -> UExpr:
    """``(case e [(d ...) body] ... [else body])`` via equal? chains."""
    subject = parse_expr(d[1])
    tmp = fresh_label("case")

    def clause_chain(clauses: list) -> UExpr:
        if not clauses:
            return UApp(
                UVar("error"), (Quote("case: no matching clause"),), label=fresh_label("a")
            )
        c = clauses[0]
        if not isinstance(c, list) or not c:
            raise ParseError(f"malformed case clause {c!r}")
        if c[0] == Symbol("else"):
            return _body(c[1:])
        if not isinstance(c[0], list):
            raise ParseError(f"case datum list expected, got {c[0]!r}")
        tests = [
            UApp(UVar("equal?"), (UVar(tmp), Quote(datum)), label=fresh_label("a"))
            for datum in c[0]
        ]
        test = tests[0] if len(tests) == 1 else _or_chain(tests)
        return UIf(test, _body(c[1:]), clause_chain(clauses[1:]))

    return UApp(
        ULam((tmp,), clause_chain(d[2:])), (subject,), label=fresh_label("a")
    )


def _or_chain(tests: list[UExpr]) -> UExpr:
    out = tests[-1]
    for t in reversed(tests[:-1]):
        out = UIf(t, Quote(True), out)
    return out


def _parse_and(parts: list) -> UExpr:
    if not parts:
        return Quote(True)
    if len(parts) == 1:
        return parse_expr(parts[0])
    return UIf(parse_expr(parts[0]), _parse_and(parts[1:]), Quote(False))


def _parse_or(parts: list) -> UExpr:
    if not parts:
        return Quote(False)
    if len(parts) == 1:
        return parse_expr(parts[0])
    tmp = fresh_label("or")
    return UApp(
        ULam((tmp,), UIf(UVar(tmp), UVar(tmp), _parse_or(parts[1:]))),
        (parse_expr(parts[0]),),
        label=fresh_label("a"),
    )


def _parse_let(d: list) -> UExpr:
    if len(d) >= 3 and isinstance(d[1], Symbol):
        # Named let: (let loop ([x e] ...) body).
        loop = d[1].name
        bindings = d[2]
        names = tuple(_sym(b[0]) for b in bindings)
        inits = tuple(parse_expr(b[1]) for b in bindings)
        fn = ULam(names, _body(d[3:]), name=loop)
        return ULetrec(
            ((loop, fn),),
            UApp(UVar(loop), inits, label=fresh_label("a")),
        )
    bindings = d[1]
    names = tuple(_sym(b[0]) for b in bindings)
    inits = tuple(parse_expr(b[1]) for b in bindings)
    return UApp(ULam(names, _body(d[2:])), inits, label=fresh_label("a"))


def _parse_let_star(d: list) -> UExpr:
    bindings = d[1]
    body_forms = d[2:]
    if not bindings:
        return _body(body_forms)
    first, rest = bindings[0], bindings[1:]
    inner = _parse_let_star([Symbol("let*"), rest] + body_forms)
    return UApp(
        ULam((_sym(first[0]),), inner),
        (parse_expr(first[1]),),
        label=fresh_label("a"),
    )


def _parse_letrec(d: list) -> UExpr:
    bindings = tuple((_sym(b[0]), parse_expr(b[1])) for b in d[1])
    return ULetrec(bindings, _body(d[2:]))


def _parse_arrow_d(d: list) -> UExpr:
    """``(->d ([x dom] ...) rng)`` — the range may mention the args."""
    binders = d[1]
    names = tuple(_sym(b[0]) for b in binders)
    doms = tuple(parse_expr(b[1]) for b in binders)
    rng_maker = ULam(names, parse_expr(d[2]))
    return UApp(
        UVar("make->d"), doms + (rng_maker,), label=fresh_label("a")
    )


# ---------------------------------------------------------------------------
# Modules and programs
# ---------------------------------------------------------------------------


def parse_module(d: Datum) -> Module:
    """``(module name form ...)``."""
    if not _is(d, "module"):
        raise ParseError(f"expected (module ...), got {d!r}")
    assert isinstance(d, list)
    name = _sym(d[1])
    structs: list[StructDef] = []
    definitions: list[tuple[str, UExpr]] = []
    opaques: list[tuple[str, Optional[UExpr]]] = []
    provides: list[Provide] = []
    for form in d[2:]:
        if _is(form, "struct"):
            sname = _sym(form[1])
            fields = tuple(_sym(f) for f in form[2])
            structs.append(StructDef(sname, fields))
        elif _is(form, "define"):
            definitions.append(_parse_define(form))
        elif _is(form, "define-opaque"):
            oname = _sym(form[1])
            ctc = parse_expr(form[2]) if len(form) > 2 else None
            opaques.append((oname, ctc))
        elif _is(form, "provide"):
            for p in form[1:]:
                if isinstance(p, Symbol):
                    provides.append(Provide(p.name, None))
                elif isinstance(p, list) and len(p) == 2:
                    provides.append(Provide(_sym(p[0]), parse_expr(p[1])))
                else:
                    raise ParseError(f"malformed provide entry {p!r}")
        else:
            raise ParseError(f"unknown module form {form!r}")
    return Module(
        name,
        tuple(structs),
        tuple(definitions),
        tuple(opaques),
        tuple(provides),
    )


def parse_program(source: str) -> Program:
    """Parse a whole program: modules followed by top-level expressions."""
    data = read_all(source)
    modules: list[Module] = []
    top: list[UExpr] = []
    top_defines: list[tuple[str, UExpr]] = []
    for d in data:
        if _is(d, "module"):
            modules.append(parse_module(d))
        elif _is(d, "define"):
            top_defines.append(_parse_define(d))
        else:
            top.append(parse_expr(d))
    main: Optional[UExpr] = None
    if top or top_defines:
        body = top[0] if len(top) == 1 else UBegin(tuple(top)) if top else Quote(False)
        main = ULetrec(tuple(top_defines), body) if top_defines else body
    return Program(tuple(modules), main)


def parse_expr_string(source: str) -> UExpr:
    """Convenience: parse a single expression from text."""
    data = read_all(source)
    if len(data) != 1:
        raise ParseError("expected exactly one expression")
    return parse_expr(data[0])

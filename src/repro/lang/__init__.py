"""Untyped Racket-subset front end: reader, AST, parser, values, prims."""

from .ast import (
    Module,
    Program,
    Provide,
    Quote,
    StructDef,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
    fresh_label,
)
from .parser import ParseError, parse_expr_string, parse_module, parse_program
from .prims import PrimError, UserError, base_primitives
from .runtime import Cell, Closure, Env, Guarded, Prim, StructCtor, is_applicable
from .sexp import ReadError, Symbol, read_all, read_one, write_datum
from .values import (
    ANY_C,
    Box,
    Contract,
    NIL,
    Pair,
    StructType,
    StructVal,
    VOID,
    from_pylist,
    is_integer,
    is_number,
    is_real,
    is_truthy,
    racket_equal,
    to_pylist,
)

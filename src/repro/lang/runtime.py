"""Applicable run-time values shared by the interpreters.

``Closure``/``Prim``/``StructCtor``/``Guarded`` are the four applicable
value shapes; ``Guarded`` is the contract wrapper produced by monitoring
a higher-order contract (the function-contract proxy of Findler &
Felleisen).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .ast import ULam
from .values import StructType


class Cell:
    """A mutable binding cell (for ``set!`` and ``letrec``)."""

    __slots__ = ("value",)

    UNDEFINED = object()

    def __init__(self, value: object = UNDEFINED) -> None:
        self.value = value

    @property
    def is_defined(self) -> bool:
        return self.value is not Cell.UNDEFINED


class Env:
    """A chained environment of mutable cells."""

    __slots__ = ("cells", "parent")

    def __init__(self, parent: Optional["Env"] = None) -> None:
        self.cells: dict[str, Cell] = {}
        self.parent = parent

    def lookup(self, name: str) -> Cell:
        env: Optional[Env] = self
        while env is not None:
            cell = env.cells.get(name)
            if cell is not None:
                return cell
            env = env.parent
        raise KeyError(f"unbound variable {name}")

    def define(self, name: str, value: object) -> Cell:
        cell = Cell(value)
        self.cells[name] = cell
        return cell

    def child(self) -> "Env":
        return Env(self)


@dataclass
class Closure:
    """A lambda paired with its defining environment."""

    lam: ULam
    env: Env

    @property
    def name(self) -> str:
        return self.lam.name or "λ"

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


@dataclass
class Prim:
    """A named primitive."""

    name: str
    fn: Callable

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


@dataclass
class StructCtor:
    """A struct constructor (applicable, and carries its type for
    ``struct/c``)."""

    struct_type: StructType

    @property
    def name(self) -> str:
        return self.struct_type.name

    def __repr__(self) -> str:
        return f"#<procedure:{self.struct_type.name}>"


@dataclass
class Guarded:
    """A value wrapped in a higher-order contract with blame parties.

    Applying a ``Guarded`` monitors arguments against the domains with
    the parties *swapped* (the caller is responsible for arguments) and
    the result against the range with the original parties.
    """

    contract: object  # FuncContract | DepFuncContract
    inner: object
    pos: str  # blamed if the value misbehaves
    neg: str  # blamed if the context misbehaves

    @property
    def name(self) -> str:
        return getattr(self.inner, "name", "guarded")

    def __repr__(self) -> str:
        return f"#<guarded:{self.name}>"


def is_applicable(v: object) -> bool:
    return isinstance(v, (Closure, Prim, StructCtor, Guarded))

"""S-expression reader for the Racket subset.

Produces plain Python data: lists for parenthesised forms, and atoms —
``Symbol``, ``int``, ``fractions.Fraction``, ``float``, ``complex``,
``str``, ``bool``.  The numeric literals cover the slice of Racket's
tower the benchmarks need: exact integers and rationals, inexact
decimals, and complex literals like ``0+1i`` (which the paper's §5.2
counterexamples depend on).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterator, Union


class ReadError(Exception):
    """Malformed s-expression input."""


@dataclass(frozen=True)
class Symbol:
    """An interned-by-equality symbol."""

    name: str

    def __repr__(self) -> str:
        return self.name


Datum = Union[Symbol, int, Fraction, float, complex, str, bool, list]


_TOKEN = re.compile(
    r"""
    (?P<ws>       \s+ | ;[^\n]*        )  # whitespace / line comment
  | (?P<lparen>   [(\[]                )
  | (?P<rparen>   [)\]]                )
  | (?P<quote>    '                    )
  | (?P<string>   "(?:[^"\\]|\\.)*"    )
  | (?P<bool>     \#t\b | \#f\b | \#true\b | \#false\b )
  | (?P<atom>     [^\s()\[\];"']+      )
    """,
    re.VERBOSE,
)

_COMPLEX = re.compile(r"^([+-]?\d+(?:\.\d+)?(?:/\d+)?)?([+-]\d*(?:\.\d+)?(?:/\d+)?)i$")


def _parse_real(text: str) -> Union[int, Fraction, float]:
    if "/" in text:
        num, den = text.split("/")
        return Fraction(int(num), int(den))
    if "." in text or "e" in text or "E" in text:
        return float(text)
    return int(text)


def parse_atom(text: str) -> Datum:
    """Classify a bare token as a number or a symbol."""
    m = _COMPLEX.match(text)
    if m:
        real = _parse_real(m.group(1)) if m.group(1) else 0
        imag_text = m.group(2)
        if imag_text in ("+", "-"):
            imag_text += "1"
        imag = _parse_real(imag_text)
        return complex(float(real), float(imag))
    try:
        return _parse_real(text)
    except (ValueError, ZeroDivisionError):
        return Symbol(text)


def tokenize(source: str) -> Iterator[tuple[str, str]]:
    pos = 0
    while pos < len(source):
        m = _TOKEN.match(source, pos)
        if m is None:
            raise ReadError(f"unreadable input at offset {pos}: {source[pos:pos+20]!r}")
        pos = m.end()
        kind = m.lastgroup
        assert kind is not None
        if kind == "ws":
            continue
        yield kind, m.group()


def _unescape(s: str) -> str:
    body = s[1:-1]
    return (
        body.replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace('\\"', '"')
        .replace("\\\\", "\\")
    )


def read_all(source: str) -> list[Datum]:
    """Read every datum in ``source``."""
    stack: list[list[Datum]] = [[]]
    quotes: list[int] = []  # nesting depths at which a quote is pending

    def emit(d: Datum) -> None:
        while quotes and quotes[-1] == len(stack):
            quotes.pop()
            d = [Symbol("quote"), d]
        stack[-1].append(d)

    for kind, text in tokenize(source):
        if kind == "lparen":
            stack.append([])
        elif kind == "rparen":
            if len(stack) == 1:
                raise ReadError("unbalanced right parenthesis")
            done = stack.pop()
            emit(done)
        elif kind == "quote":
            quotes.append(len(stack))
        elif kind == "string":
            emit(_unescape(text))
        elif kind == "bool":
            emit(text in ("#t", "#true"))
        elif kind == "atom":
            emit(parse_atom(text))
        else:  # pragma: no cover - regex exhausts kinds
            raise ReadError(f"unknown token kind {kind}")
    if len(stack) != 1:
        raise ReadError("unbalanced left parenthesis")
    if quotes:
        raise ReadError("dangling quote")
    return stack[0]


def read_one(source: str) -> Datum:
    """Read exactly one datum."""
    data = read_all(source)
    if len(data) != 1:
        raise ReadError(f"expected one datum, got {len(data)}")
    return data[0]


def write_datum(d: Datum) -> str:
    """Render a datum back to source syntax."""
    if isinstance(d, bool):
        return "#t" if d else "#f"
    if isinstance(d, list):
        return "(" + " ".join(write_datum(x) for x in d) + ")"
    if isinstance(d, str):
        escaped = d.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    if isinstance(d, complex):
        re_part = int(d.real) if d.real == int(d.real) else d.real
        im_part = int(d.imag) if d.imag == int(d.imag) else d.imag
        sign = "+" if d.imag >= 0 else ""
        return f"{re_part}{sign}{im_part}i"
    return str(d)

"""Core AST of the untyped Racket subset.

The parser (``lang.parser``) desugars surface forms (``define``,
``cond``, ``let``, ``and``/``or``...) into this small core:

* literals (``Quote``), variables, lambdas, applications;
* ``If``, ``Begin``, ``Letrec`` (for mutual recursion), ``SetBang``;
* ``OpaqueExpr`` — the untyped ``•`` of §4, labelled;
* primitive applications are ordinary ``App`` of primitive *variables*
  (resolved by the interpreters' global environment), but partial
  primitives get blame labels through the surrounding ``App``'s label.

Every application and opaque carries a label for blame, mirroring SPCF.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional


_label_counter = itertools.count()


def fresh_label(prefix: str = "u") -> str:
    return f"{prefix}{next(_label_counter)}"


def reset_labels() -> None:
    """Restart the label counter (labels are only unique per program;
    the batch driver resets between programs for stable reports)."""
    global _label_counter
    _label_counter = itertools.count()


@dataclass(frozen=True)
class UExpr:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is UExpr:
            raise TypeError("UExpr is abstract")


@dataclass(frozen=True)
class Quote(UExpr):
    """A self-evaluating or quoted datum (numbers, booleans, strings,
    symbols, and quoted lists)."""

    datum: object

    def __repr__(self) -> str:
        return f"'{self.datum!r}"


@dataclass(frozen=True)
class UVar(UExpr):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ULam(UExpr):
    params: tuple[str, ...]
    body: "UExpr"
    name: Optional[str] = None  # for error messages / recursion display

    def __repr__(self) -> str:
        return f"(λ ({' '.join(self.params)}) {self.body!r})"


@dataclass(frozen=True)
class UApp(UExpr):
    fn: "UExpr"
    args: tuple["UExpr", ...]
    label: str = ""

    def __repr__(self) -> str:
        return f"({self.fn!r} " + " ".join(map(repr, self.args)) + ")"


@dataclass(frozen=True)
class UIf(UExpr):
    test: "UExpr"
    then: "UExpr"
    orelse: "UExpr"

    def __repr__(self) -> str:
        return f"(if {self.test!r} {self.then!r} {self.orelse!r})"


@dataclass(frozen=True)
class UBegin(UExpr):
    exprs: tuple["UExpr", ...]

    def __repr__(self) -> str:
        return "(begin " + " ".join(map(repr, self.exprs)) + ")"


@dataclass(frozen=True)
class ULetrec(UExpr):
    bindings: tuple[tuple[str, "UExpr"], ...]
    body: "UExpr"

    def __repr__(self) -> str:
        bs = " ".join(f"[{n} {e!r}]" for n, e in self.bindings)
        return f"(letrec ({bs}) {self.body!r})"


@dataclass(frozen=True)
class USet(UExpr):
    name: str
    value: "UExpr"

    def __repr__(self) -> str:
        return f"(set! {self.name} {self.value!r})"


@dataclass(frozen=True)
class UOpaque(UExpr):
    """The untyped unknown ``•`` — optionally constrained by a contract
    expression (evaluated at monitor time)."""

    label: str

    def __repr__(self) -> str:
        return f"•^{self.label}"


# ---------------------------------------------------------------------------
# Module-level forms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StructDef:
    """``(struct name (field ...))`` — generates constructor, predicate
    and accessors in the module environment."""

    name: str
    fields: tuple[str, ...]


@dataclass(frozen=True)
class Provide:
    """One ``(provide [name contract-expr])`` entry; the contract
    expression is unevaluated core AST (contracts are first-class)."""

    name: str
    contract: Optional[UExpr]  # None = provide without contract


@dataclass(frozen=True)
class Module:
    """A module: struct definitions, value definitions (letrec* scope),
    opaque definitions (unknown imports), and provides."""

    name: str
    structs: tuple[StructDef, ...]
    definitions: tuple[tuple[str, UExpr], ...]
    opaques: tuple[tuple[str, Optional[UExpr]], ...]  # (name, contract)
    provides: tuple[Provide, ...]


@dataclass(frozen=True)
class Program:
    """Modules plus an optional top-level expression to run."""

    modules: tuple[Module, ...]
    main: Optional[UExpr]


def subexprs_u(e: UExpr):
    """All subexpressions, pre-order."""
    yield e
    if isinstance(e, ULam):
        yield from subexprs_u(e.body)
    elif isinstance(e, UApp):
        yield from subexprs_u(e.fn)
        for a in e.args:
            yield from subexprs_u(a)
    elif isinstance(e, UIf):
        yield from subexprs_u(e.test)
        yield from subexprs_u(e.then)
        yield from subexprs_u(e.orelse)
    elif isinstance(e, UBegin):
        for a in e.exprs:
            yield from subexprs_u(a)
    elif isinstance(e, ULetrec):
        for _, b in e.bindings:
            yield from subexprs_u(b)
        yield from subexprs_u(e.body)
    elif isinstance(e, USet):
        yield from subexprs_u(e.value)

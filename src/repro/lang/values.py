"""Run-time values of the untyped language.

The numeric tower ("tower-lite") distinguishes, like Racket:

* exact integers (``int``), exact rationals (``fractions.Fraction``),
* inexact reals (``float``),
* complex numbers (``complex``).

The §5.2 counterexamples (``argmin``, ``posn``) hinge on ``number?``
accepting complex values while ``<`` requires reals, so the tower is
load-bearing for the reproduction, not decoration.

Booleans are Python ``bool`` (checked before ``int`` everywhere, since
``bool`` subclasses ``int``); Racket truthiness: everything except
``#f`` is true.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional, Union


Number = Union[int, Fraction, float, complex]


class Nil:
    """The empty list (singleton)."""

    _instance: Optional["Nil"] = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "'()"


NIL = Nil()


@dataclass(frozen=True)
class Pair:
    """An immutable cons cell (Racket pairs are immutable)."""

    car: object
    cdr: object

    def __repr__(self) -> str:
        return f"(cons {self.car!r} {self.cdr!r})"


class Void:
    """The result of side-effecting operations (singleton)."""

    _instance: Optional["Void"] = None

    def __new__(cls) -> "Void":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<void>"


VOID = Void()


@dataclass(frozen=True)
class StructType:
    name: str
    fields: tuple[str, ...]

    def __repr__(self) -> str:
        return f"#<struct-type:{self.name}>"


@dataclass(frozen=True)
class StructVal:
    type: StructType
    values: tuple[object, ...]

    def __repr__(self) -> str:
        inner = " ".join(map(repr, self.values))
        return f"({self.type.name} {inner})"


class Box:
    """A mutable cell — one of the two mutable values (used by the
    concrete interpreter; the symbolic engine models boxes through its
    heap)."""

    __slots__ = ("content",)

    def __init__(self, content: object) -> None:
        self.content = content

    def __repr__(self) -> str:
        return f"(box {self.content!r})"


class Vector:
    """A fixed-length mutable sequence (the symbolic engine models
    vectors through its heap, like boxes)."""

    __slots__ = ("items",)

    def __init__(self, items: list) -> None:
        self.items = items

    def __repr__(self) -> str:
        inner = " ".join(map(repr, self.items))
        return f"(vector{' ' if inner else ''}{inner})"


# ---------------------------------------------------------------------------
# Contracts (first-class values, §4.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Contract:
    def __post_init__(self) -> None:  # pragma: no cover - abstract guard
        if type(self) is Contract:
            raise TypeError("Contract is abstract")


@dataclass(frozen=True)
class FlatContract(Contract):
    """A predicate used as a contract; ``pred`` is any applicable value."""

    pred: object
    name: str = "flat"

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnyContract(Contract):
    def __repr__(self) -> str:
        return "any/c"


ANY_C = AnyContract()


@dataclass(frozen=True)
class FuncContract(Contract):
    """``(-> dom ... rng)`` — a higher-order function contract."""

    doms: tuple[Contract, ...]
    rng: Contract

    def __repr__(self) -> str:
        inner = " ".join(map(repr, self.doms + (self.rng,)))
        return f"(-> {inner})"


@dataclass(frozen=True)
class DepFuncContract(Contract):
    """``(->d (x ...) dom ... rng-maker)`` — dependent range: the range
    contract is computed by applying ``rng_maker`` (a closure) to the
    actual arguments.  This is how the paper's ``posn/c`` interface
    (range depends on the message) is expressed."""

    doms: tuple[Contract, ...]
    rng_maker: object  # applicable value returning a Contract

    def __repr__(self) -> str:
        return f"(->d {' '.join(map(repr, self.doms))} <dep>)"


@dataclass(frozen=True)
class AndContract(Contract):
    parts: tuple[Contract, ...]

    def __repr__(self) -> str:
        return f"(and/c {' '.join(map(repr, self.parts))})"


@dataclass(frozen=True)
class OrContract(Contract):
    parts: tuple[Contract, ...]

    def __repr__(self) -> str:
        return f"(or/c {' '.join(map(repr, self.parts))})"


@dataclass(frozen=True)
class NotContract(Contract):
    part: Contract

    def __repr__(self) -> str:
        return f"(not/c {self.part!r})"


@dataclass(frozen=True)
class ConsContract(Contract):
    """``(cons/c car/c cdr/c)``"""

    car: Contract
    cdr: Contract

    def __repr__(self) -> str:
        return f"(cons/c {self.car!r} {self.cdr!r})"


@dataclass(frozen=True)
class ListofContract(Contract):
    """``(listof c)`` — a proper list of elements satisfying ``c``."""

    elem: Contract

    def __repr__(self) -> str:
        return f"(listof {self.elem!r})"


@dataclass(frozen=True)
class ListContract(Contract):
    """``(list/c c ...)`` — fixed-length list."""

    elems: tuple[Contract, ...]

    def __repr__(self) -> str:
        return f"(list/c {' '.join(map(repr, self.elems))})"


@dataclass(frozen=True)
class OneOfContract(Contract):
    """``(one-of/c v ...)`` — equality with one of the given datums."""

    choices: tuple[object, ...]

    def __repr__(self) -> str:
        return f"(one-of/c {' '.join(map(repr, self.choices))})"


@dataclass(frozen=True)
class StructContract(Contract):
    """``(struct/c name field/c ...)``"""

    type: StructType
    fields: tuple[Contract, ...]

    def __repr__(self) -> str:
        return f"(struct/c {self.type.name} ...)"


@dataclass(frozen=True)
class RecContract(Contract):
    """``(recursive-contract e)`` — delays evaluation of ``e`` until the
    contract is attached (ties knots like ``tree/c``)."""

    thunk: object  # applicable value of zero arguments returning a Contract

    def __repr__(self) -> str:
        return "(recursive-contract ...)"


# ---------------------------------------------------------------------------
# Type predicates shared by both interpreters
# ---------------------------------------------------------------------------


def is_number(v: object) -> bool:
    return isinstance(v, (int, Fraction, float, complex)) and not isinstance(v, bool)


def is_real(v: object) -> bool:
    return isinstance(v, (int, Fraction, float)) and not isinstance(v, bool)


def is_integer(v: object) -> bool:
    if isinstance(v, bool):
        return False
    if isinstance(v, int):
        return True
    if isinstance(v, Fraction):
        return v.denominator == 1
    if isinstance(v, float):
        return v.is_integer()
    return False


def is_exact(v: object) -> bool:
    return isinstance(v, (int, Fraction)) and not isinstance(v, bool)


def is_truthy(v: object) -> bool:
    """Racket truthiness: only #f is false."""
    return v is not False


def racket_equal(a: object, b: object) -> bool:
    """``equal?`` — structural equality; numbers compare by value within
    exactness class (mirroring ``equal?``'s use of ``eqv?`` on numbers)."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if is_number(a) and is_number(b):
        if is_exact(a) != is_exact(b) and not isinstance(a, complex) and not isinstance(b, complex):
            return False
        return a == b
    if isinstance(a, Pair) and isinstance(b, Pair):
        return racket_equal(a.car, b.car) and racket_equal(a.cdr, b.cdr)
    if isinstance(a, StructVal) and isinstance(b, StructVal):
        return a.type == b.type and all(
            racket_equal(x, y) for x, y in zip(a.values, b.values)
        )
    if isinstance(a, Vector) and isinstance(b, Vector):
        return len(a.items) == len(b.items) and all(
            racket_equal(x, y) for x, y in zip(a.items, b.items)
        )
    return a == b


def from_pylist(items: list) -> object:
    """Build a Racket list value from a Python list."""
    out: object = NIL
    for item in reversed(items):
        out = Pair(item, out)
    return out


def to_pylist(v: object) -> Optional[list]:
    """Flatten a proper list to a Python list; None if improper."""
    out = []
    while isinstance(v, Pair):
        out.append(v.car)
        v = v.cdr
    return out if v is NIL else None

"""repro — reproduction of "Relatively Complete Counterexamples for
Higher-Order Programs" (Nguyễn & Van Horn, PLDI 2015).

Packages
--------
``repro.smt``
    First-order solver (the Z3 substitute): CDCL + LIA + EUF.
``repro.core``
    Symbolic PCF — the paper's §3 semantics, proof relation, and
    counterexample construction.
``repro.lang``
    Untyped Racket-subset front end (reader, AST, contracts, modules).
``repro.conc``
    Concrete interpreter used to validate counterexamples.
``repro.scv``
    The scaled-up tool of §4–5: symbolic execution for the untyped
    language with contracts, dynamic typing, structs and state.
``repro.bench``
    The Table 1 corpus and the harness that regenerates it.
"""

__version__ = "1.0.0"

"""Benchmark report schema and rendering.

The batch runner emits one :class:`ProgramResult` per (program,
backend) pair and aggregates them into a :class:`BenchReport`,
serialised as ``BENCH_driver.json``.  The JSON shape is versioned
(``schema``) and kept deliberately flat and sorted so that per-PR diffs
of the benchmark file are meaningful and the perf trajectory can be
tracked across commits.

Schema ``repro-bench/v8`` (the bytecode-compilation revision;
supersedes the sharded-search ``v7``):

* every program row carries a ``backend`` field (``core`` or ``scv``);
* rows and totals carry the search kernel's economy counters:
  ``pruned_states`` (frontier states dropped by fingerprint
  memoisation/subsumption), ``solver_cache_hits`` (queries answered by
  the canonicalized solver-result cache), and ``chained_steps``
  (deterministic micro-steps folded into macro states), so partial work
  stays visible even on rows whose budget expired inside a compressed
  chain;
* new in v5 — the incremental-solving economy counters from the
  per-path solver contexts (``smt.incremental``):
  ``solver_fresh_solves`` (from-scratch solver context builds — cache
  misses on the one-shot path plus path-context rebuilds),
  ``solver_incremental`` (checks answered on a warm context, reusing
  its scopes and lemmas), ``solver_clauses_reused`` (lemma and learned
  clauses already present when those checks started, summed), and
  ``solver_scope_depth`` (the deepest assertion-scope stack seen; totals
  take the max, not the sum).  ``--no-incremental`` zeroes the
  incremental counters and reverts every solver query to a from-scratch
  solve, for differential debugging;
* counterexample rows carry ``client``: the closed, runnable surface
  program synthesized by ``repro.synth`` (modules with opaque imports
  instantiated plus the demonic-client call, or the instantiated main
  for top-level programs), and module findings now report a real
  ``validated_conc`` verdict instead of ``null``/skipped;
* totals gain ``validated_counterexamples`` — the count of
  counterexample rows whose surface re-run confirmed the blame — which
  the CI perf gate treats as ratchet-only (a drop fails the build);
* ``backends`` holds per-backend totals (counts, states, solver
  queries, cache hits, wall time) so the two engines' cost profiles
  diff cleanly;
* new in v6 — the persistent-store economy counters from
  :mod:`repro.store`: per row, ``store_hits``/``store_misses`` (verdict
  -store lookups for the row's verification units) and
  ``modules_reverified`` (units actually recomputed — for a multi-
  module scv program under the store, one unit per module plus one for
  the top-level expression).  All three are zero when no store is
  configured.  Totals sum them.  Store counters are *volatile* for
  differential purposes: a warm run differs from a cold run in exactly
  these fields plus timing;
* ``agreement`` records the cross-check: for every program both
  backends ran, their verdicts must not *conflict* (one proving safe
  while the other exhibits a counterexample).  Inconclusive statuses
  (timeout, truncation, no-model) neither agree nor disagree.  For
  programs where both backends exhibit counterexamples, the normalized
  counterexamples (canonical ``err_op``, canonical scalar bindings —
  see the two ``counterexample`` modules) are compared field by field
  under ``agreement.counterexamples``;
* new in v7 — the sharded-search counters from
  :mod:`repro.search.parallel`: per row, ``shards`` (frontier shards
  the search ran with; 1 for the sequential kernel), ``stolen_tasks``
  (expansion chunks reassigned away from their home shard),
  ``frontier_exchanges`` (successor states routed to a different shard
  than the one that generated them), and ``shard_states`` (per-shard
  expanded-state counts).  All four are *volatile*: sharding is
  required to be invisible in every other field — a sharded row must
  be byte-identical to its sequential twin outside the volatile set —
  while these four describe the scheduling itself.  Totals sum the
  counters (not ``shards``/``shard_states``) and gain ``max_wall_ms``,
  the slowest single program row — the metric in-program sharding
  exists to shrink, gated by ``perfgate`` alongside the totals;
* v7 addendum (the serving revision): rows carry
  ``deadline_enforced`` — False when a positive wall-clock budget could
  not be armed (no ``SIGALRM``, or the caller was not the main thread),
  instead of the budget being silently dropped.  Volatile: it describes
  the execution environment, not the program;
* new in v8 — the bytecode-compilation counters from
  :mod:`repro.compile`: per row, ``compiled_units`` (instruction
  streams lowered for the program — the module/main unit plus one per
  lambda), ``compile_ms`` (lowering or cache-load time) and
  ``dispatch_steps`` (micro-steps executed by the fused dispatch loop).
  All three are zero on ``--no-compile`` runs, and hence *volatile* for
  differential purposes: compiled and interpreted rows must be
  byte-identical outside the volatile set — that identity is the
  compile oracle.  Totals sum all three, and ``dispatch_steps`` joins
  the perf-gate ratchets (skipped cleanly on pre-v8 or interpreted
  baselines where the total is missing or zero).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

SCHEMA = "repro-bench/v8"

# Terminal statuses a verification attempt can end in.
STATUS_SAFE = "safe"  # search exhausted, no (modelable) error
STATUS_COUNTEREXAMPLE = "counterexample"  # confirmed concrete input found
STATUS_NO_MODEL = "no-counterexample"  # errors seen, none modelable/validated
STATUS_TRUNCATED = "truncated"  # state budget hit before an answer
STATUS_TIMEOUT = "timeout"  # wall-clock budget hit
STATUS_UNSUPPORTED = "unsupported"  # outside the backend's subset
STATUS_ERROR = "error"  # driver-level failure (bug!)

#: Statuses that constitute a definite verdict for cross-checking.
_CONCLUSIVE = (STATUS_SAFE, STATUS_COUNTEREXAMPLE)

#: Row fields that legitimately differ between otherwise-identical runs
#: (timing, and the solver-economy counters toggled by --no-incremental
#: / --no-memo).  The single source of truth for every differential
#: comparison — the equivalence tests and the CI leg both read it.
VOLATILE_ROW_FIELDS = frozenset({
    "wall_ms",
    "solver_cache_hits",
    "solver_fresh_solves",
    "solver_incremental",
    "solver_clauses_reused",
    "solver_scope_depth",
    # The persistent-store economy (repro.store): warm and cold runs
    # must agree on everything *except* how much came from the store.
    "store_hits",
    "store_misses",
    "modules_reverified",
    # The sharded-search scheduling counters (repro.search.parallel): a
    # sharded run must agree with the sequential run on everything
    # *except* how the work was distributed.
    "shards",
    "stolen_tasks",
    "frontier_exchanges",
    "shard_states",
    # Whether the per-program wall-clock budget could actually be armed
    # (SIGALRM, main thread only — see driver.backends._deadline).  An
    # execution-environment fact, not a property of the program: a
    # threaded caller's row must still compare equal to a process row.
    "deadline_enforced",
    # The bytecode-compilation counters (repro.compile): a compiled run
    # must agree with the interpreted run on everything *except* that it
    # compiled — these three are zero with --no-compile.
    "compiled_units",
    "compile_ms",
    "dispatch_steps",
})


@dataclass
class CexReport:
    """A confirmed (or attempted) counterexample, rendered for humans.

    ``bindings`` and ``err_op`` are in the *canonical* cross-backend
    normal form (scalars bare, operations under their surface names —
    see ``core.counterexample``/``scv.counterexample``), so reports from
    the two backends compare field by field; ``err_detail`` keeps the
    backend's original colourful description.

    Validation flags are three-valued: True/False record a re-run's
    outcome, None records that the oracle was skipped (rare since the
    demonic-context synthesis of ``repro.synth``: only module programs
    whose client cannot be reconstructed at all).

    ``client`` is the executable artifact: a closed surface program —
    modules with their opaque imports instantiated, plus the
    synthesized client call (or the instantiated main, for top-level
    programs) — that reproduces the blame under ``conc.interp``."""

    bindings: dict[str, str]  # opaque label -> canonical value
    err_label: str
    err_op: str  # canonical operation / description
    validated_core: Optional[bool]  # re-run under the symbolic backend's oracle
    validated_conc: Optional[bool]  # re-run under conc.interp (None: skipped)
    err_detail: str = ""  # backend-specific original rendering
    client: Optional[str] = None  # closed runnable surface program


@dataclass
class ProgramResult:
    name: str
    kind: str  # expected verdict: "safe" | "buggy" (or "?" for ad-hoc files)
    status: str
    wall_ms: float
    backend: str = "core"
    states_explored: int = 0
    proof_queries: int = 0
    solver_queries: int = 0
    pruned_states: int = 0  # dropped by fingerprint memoisation
    solver_cache_hits: int = 0  # queries answered from the result cache
    chained_steps: int = 0  # micro-steps folded into macro states
    solver_fresh_solves: int = 0  # from-scratch solver context builds
    solver_incremental: int = 0  # checks answered on a warm context
    solver_clauses_reused: int = 0  # lemma/learned clauses carried into checks
    solver_scope_depth: int = 0  # deepest assertion-scope stack seen
    errors_found: int = 0
    cex_attempts: int = 0
    store_hits: int = 0  # verification units replayed from the store
    store_misses: int = 0  # units the store did not hold
    modules_reverified: int = 0  # units actually recomputed this run
    shards: int = 1  # frontier shards the search ran with
    stolen_tasks: int = 0  # expansion chunks reassigned between shards
    frontier_exchanges: int = 0  # successors routed to a different shard
    shard_states: list = field(default_factory=list)  # per-shard expansions
    deadline_enforced: bool = True  # was the wall-clock budget actually armed
    compiled_units: int = 0  # instruction streams lowered (0: interpreted)
    compile_ms: float = 0.0  # lowering / cache-load time
    dispatch_steps: int = 0  # micro-steps run by the fused dispatch loop
    counterexample: Optional[CexReport] = None
    detail: str = ""

    @property
    def as_expected(self) -> Optional[bool]:
        """Did the verdict match the corpus annotation?"""
        if self.kind == "safe":
            return self.status == STATUS_SAFE
        if self.kind == "buggy":
            return (
                self.status == STATUS_COUNTEREXAMPLE
                and self.counterexample is not None
                and self.counterexample.validated_core is not False
                and self.counterexample.validated_conc is not False
            )
        return None


def result_from_row(row: dict) -> ProgramResult:
    """The inverse of ``asdict``: rebuild a :class:`ProgramResult` from
    one JSON row (a report's ``programs`` entry, a stored verdict's
    ``result``, or a serve job's row)."""
    d = dict(row)
    cex = d.get("counterexample")
    if cex is not None:
        d["counterexample"] = CexReport(**cex)
    return ProgramResult(**d)


def _totals(results: list[ProgramResult]) -> dict:
    expected = [r.as_expected for r in results]
    return {
        "programs": len(results),
        "as_expected": sum(1 for e in expected if e),
        "unexpected": sum(1 for e in expected if e is False),
        "safe": sum(1 for r in results if r.status == STATUS_SAFE),
        "counterexamples": sum(
            1 for r in results if r.status == STATUS_COUNTEREXAMPLE
        ),
        "validated_counterexamples": sum(
            1
            for r in results
            if r.status == STATUS_COUNTEREXAMPLE
            and r.counterexample is not None
            and r.counterexample.validated_conc is True
        ),
        "timeouts": sum(1 for r in results if r.status == STATUS_TIMEOUT),
        "states_explored": sum(r.states_explored for r in results),
        "chained_steps": sum(r.chained_steps for r in results),
        "pruned_states": sum(r.pruned_states for r in results),
        "solver_queries": sum(r.solver_queries for r in results),
        "solver_cache_hits": sum(r.solver_cache_hits for r in results),
        "solver_fresh_solves": sum(r.solver_fresh_solves for r in results),
        "solver_incremental": sum(r.solver_incremental for r in results),
        "solver_clauses_reused": sum(r.solver_clauses_reused for r in results),
        "solver_scope_depth": max(
            (r.solver_scope_depth for r in results), default=0
        ),
        "store_hits": sum(r.store_hits for r in results),
        "store_misses": sum(r.store_misses for r in results),
        "modules_reverified": sum(r.modules_reverified for r in results),
        "stolen_tasks": sum(r.stolen_tasks for r in results),
        "frontier_exchanges": sum(r.frontier_exchanges for r in results),
        "compiled_units": sum(r.compiled_units for r in results),
        "compile_ms": round(sum(r.compile_ms for r in results), 1),
        "dispatch_steps": sum(r.dispatch_steps for r in results),
        "wall_ms": round(sum(r.wall_ms for r in results), 1),
        # The slowest single program row: the wall-clock target of
        # in-program sharding (ROADMAP: "the wall-clock of the slowest
        # path, not the sum of all paths").
        "max_wall_ms": round(max((r.wall_ms for r in results), default=0.0), 1),
    }


def _is_scalar_rendering(v: str) -> bool:
    """Function values render as ``(fun …)``/``(λ …)`` and are engine-
    specific shapes; only scalar renderings are comparable verbatim."""
    return bool(v) and not v.startswith("(")


def _compare_counterexamples(shared: dict) -> dict:
    """Field-by-field comparison of normalized counterexamples on
    programs where *both* backends exhibit one.

    Both backends normalize to the same form (canonical ``err_op``,
    scalar bindings rendered bare), and blame labels are deterministic
    per source (counters reset per run), so label and op must match
    outright.  Bindings are compared on the labels both models bound to
    scalars — two engines may legitimately pick *different* witnesses
    for the same fault, so binding differences are reported for
    inspection but do not count as mismatches.
    """
    compared = 0
    matched = 0
    mismatches = []
    binding_diffs = []
    for n, rows in sorted(shared.items()):
        cexes = {
            b: r.counterexample
            for b, r in rows.items()
            if r.status == STATUS_COUNTEREXAMPLE and r.counterexample is not None
        }
        if len(cexes) < 2:
            continue
        compared += 1
        (b1, c1), (b2, c2) = sorted(cexes.items())[:2]
        ok = True
        for fld in ("err_label", "err_op"):
            v1, v2 = getattr(c1, fld), getattr(c2, fld)
            if v1 != v2:
                ok = False
                mismatches.append(
                    {"name": n, "field": fld, b1: v1, b2: v2}
                )
        for label in sorted(set(c1.bindings) & set(c2.bindings)):
            v1, v2 = c1.bindings[label], c2.bindings[label]
            if (
                v1 != v2
                and _is_scalar_rendering(v1)
                and _is_scalar_rendering(v2)
            ):
                binding_diffs.append(
                    {"name": n, "label": label, b1: v1, b2: v2}
                )
        if ok:
            matched += 1
    return {
        "compared": compared,
        "matched": matched,
        "mismatches": mismatches,
        "binding_differences": binding_diffs,
    }


@dataclass
class BenchReport:
    config: dict
    results: list[ProgramResult] = field(default_factory=list)

    def totals(self) -> dict:
        return _totals(self.results)

    def backend_names(self) -> list[str]:
        return sorted({r.backend for r in self.results})

    def backend_totals(self) -> dict[str, dict]:
        return {
            b: _totals([r for r in self.results if r.backend == b])
            for b in self.backend_names()
        }

    def agreement(self) -> dict:
        """Cross-check verdicts between backends on shared programs, and
        compare normalized counterexamples where both backends found
        one."""
        by_name: dict[str, dict[str, ProgramResult]] = {}
        for r in self.results:
            by_name.setdefault(r.name, {})[r.backend] = r
        shared = {n: v for n, v in by_name.items() if len(v) > 1}
        disagreements = []
        agreed = 0
        inconclusive = 0
        for n, rows in sorted(shared.items()):
            verdicts = {b: r.status for b, r in rows.items()}
            conclusive = {s for s in verdicts.values() if s in _CONCLUSIVE}
            if len(conclusive) > 1:
                disagreements.append({"name": n, "verdicts": verdicts})
            elif any(s not in _CONCLUSIVE for s in verdicts.values()):
                inconclusive += 1
            else:
                agreed += 1
        return {
            "shared_programs": len(shared),
            "agreed": agreed,
            "inconclusive": inconclusive,
            "disagreements": disagreements,
            "counterexamples": _compare_counterexamples(shared),
        }

    @property
    def all_as_expected(self) -> bool:
        return all(r.as_expected is not False for r in self.results)

    @property
    def backends_agree(self) -> bool:
        return not self.agreement()["disagreements"]

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "config": self.config,
            "totals": self.totals(),
            "backends": self.backend_totals(),
            "agreement": self.agreement(),
            "programs": [
                asdict(r)
                for r in sorted(self.results, key=lambda r: (r.name, r.backend))
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------

_STATUS_MARK = {
    STATUS_SAFE: "✓",
    STATUS_COUNTEREXAMPLE: "✗",
    STATUS_NO_MODEL: "?",
    STATUS_TRUNCATED: "…",
    STATUS_TIMEOUT: "⏱",
    STATUS_UNSUPPORTED: "-",
    STATUS_ERROR: "!",
}

_VALIDATION_WORD = {True: "ok", False: "FAILED", None: "skipped"}


def render_result(
    r: ProgramResult, *, verbose: bool = False, show_client: bool = True
) -> str:
    mark = _STATUS_MARK.get(r.status, "?")
    flag = ""
    if r.as_expected is False:
        flag = "  << UNEXPECTED"
    line = (
        f"{mark} {r.name:28s} {r.backend:4s} {r.status:16s} "
        f"{r.states_explored:6d} states {r.solver_queries:4d} solver "
        f"{r.solver_cache_hits:3d} cached {r.wall_ms:8.1f} ms{flag}"
    )
    if r.counterexample is not None and (verbose or r.as_expected is False):
        cex = r.counterexample
        parts = [f"    • [{k}] = {v}" for k, v in sorted(cex.bindings.items())]
        parts.append(
            f"    breaks with {cex.err_op} at {cex.err_label} "
            f"(core: {_VALIDATION_WORD[cex.validated_core]}, "
            f"surface: {_VALIDATION_WORD[cex.validated_conc]})"
        )
        if verbose and show_client and cex.client:
            parts.append("    client program:")
            parts.extend(f"      {ln}" for ln in cex.client.rstrip().splitlines())
        line += "\n" + "\n".join(parts)
    if r.detail and (verbose or r.status in (STATUS_ERROR, STATUS_UNSUPPORTED)):
        line += f"\n    {r.detail}"
    return line


def render_report(report: BenchReport, *, verbose: bool = False) -> str:
    lines = [
        render_result(r, verbose=verbose)
        for r in sorted(report.results, key=lambda r: (r.name, r.backend))
    ]
    t = report.totals()
    lines.append(
        f"-- {t['programs']} runs: {t['safe']} safe, "
        f"{t['counterexamples']} counterexamples "
        f"({t['validated_counterexamples']} surface-validated), "
        f"{t['timeouts']} timeouts; "
        f"{t['unexpected']} unexpected verdicts; "
        f"{t['states_explored']} states ({t['pruned_states']} pruned), "
        f"{t['solver_queries']} solver calls "
        f"({t['solver_cache_hits']} cache hits, "
        f"{t['solver_fresh_solves']} fresh / "
        f"{t['solver_incremental']} incremental solves), "
        f"{t['wall_ms']:.0f} ms total"
    )
    if t["store_hits"] or t["store_misses"]:
        lines.append(
            f"-- store: {t['store_hits']} unit hits, "
            f"{t['store_misses']} misses "
            f"({t['modules_reverified']} units re-verified)"
        )
    agreement = report.agreement()
    if agreement["shared_programs"]:
        dis = agreement["disagreements"]
        lines.append(
            f"-- cross-check: {agreement['agreed']}/{agreement['shared_programs']} "
            f"shared programs agree, {agreement['inconclusive']} inconclusive, "
            f"{len(dis)} disagreements"
            + ("" if not dis else ": " + ", ".join(d["name"] for d in dis))
        )
        cex = agreement["counterexamples"]
        if cex["compared"]:
            mism = cex["mismatches"]
            lines.append(
                f"-- counterexamples: {cex['matched']}/{cex['compared']} "
                f"shared findings at identical sites, "
                f"{len(cex['binding_differences'])} witness differences"
                + ("" if not mism
                   else "; MISMATCHES: "
                   + ", ".join(f"{m['name']}.{m['field']}" for m in mism))
            )
    return "\n".join(lines)

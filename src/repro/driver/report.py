"""Benchmark report schema and rendering.

The batch runner emits one :class:`ProgramResult` per (program,
backend) pair and aggregates them into a :class:`BenchReport`,
serialised as ``BENCH_driver.json``.  The JSON shape is versioned
(``schema``) and kept deliberately flat and sorted so that per-PR diffs
of the benchmark file are meaningful and the perf trajectory can be
tracked across commits.

Schema ``repro-bench/v2`` (the multi-backend revision):

* every program row carries a ``backend`` field (``core`` or ``scv``);
* ``backends`` holds per-backend totals (counts, states, solver
  queries, wall time) so the two engines' cost profiles diff cleanly;
* ``agreement`` records the cross-check: for every program both
  backends ran, their verdicts must not *conflict* (one proving safe
  while the other exhibits a counterexample).  Inconclusive statuses
  (timeout, truncation, no-model) neither agree nor disagree.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

SCHEMA = "repro-bench/v2"

# Terminal statuses a verification attempt can end in.
STATUS_SAFE = "safe"  # search exhausted, no (modelable) error
STATUS_COUNTEREXAMPLE = "counterexample"  # confirmed concrete input found
STATUS_NO_MODEL = "no-counterexample"  # errors seen, none modelable/validated
STATUS_TRUNCATED = "truncated"  # state budget hit before an answer
STATUS_TIMEOUT = "timeout"  # wall-clock budget hit
STATUS_UNSUPPORTED = "unsupported"  # outside the backend's subset
STATUS_ERROR = "error"  # driver-level failure (bug!)

#: Statuses that constitute a definite verdict for cross-checking.
_CONCLUSIVE = (STATUS_SAFE, STATUS_COUNTEREXAMPLE)


@dataclass
class CexReport:
    """A confirmed (or attempted) counterexample, rendered for humans.

    Validation flags are three-valued: True/False record a re-run's
    outcome, None records that the oracle was skipped (the scv backend
    skips both for demonic-context counterexamples, which have no
    concrete client to re-run)."""

    bindings: dict[str, str]  # opaque label -> pretty value
    err_label: str
    err_op: str
    validated_core: Optional[bool]  # re-run under the symbolic backend's oracle
    validated_conc: Optional[bool]  # re-run under conc.interp (None: skipped)


@dataclass
class ProgramResult:
    name: str
    kind: str  # expected verdict: "safe" | "buggy" (or "?" for ad-hoc files)
    status: str
    wall_ms: float
    backend: str = "core"
    states_explored: int = 0
    proof_queries: int = 0
    solver_queries: int = 0
    errors_found: int = 0
    cex_attempts: int = 0
    counterexample: Optional[CexReport] = None
    detail: str = ""

    @property
    def as_expected(self) -> Optional[bool]:
        """Did the verdict match the corpus annotation?"""
        if self.kind == "safe":
            return self.status == STATUS_SAFE
        if self.kind == "buggy":
            return (
                self.status == STATUS_COUNTEREXAMPLE
                and self.counterexample is not None
                and self.counterexample.validated_core is not False
                and self.counterexample.validated_conc is not False
            )
        return None


def _totals(results: list[ProgramResult]) -> dict:
    expected = [r.as_expected for r in results]
    return {
        "programs": len(results),
        "as_expected": sum(1 for e in expected if e),
        "unexpected": sum(1 for e in expected if e is False),
        "safe": sum(1 for r in results if r.status == STATUS_SAFE),
        "counterexamples": sum(
            1 for r in results if r.status == STATUS_COUNTEREXAMPLE
        ),
        "timeouts": sum(1 for r in results if r.status == STATUS_TIMEOUT),
        "states_explored": sum(r.states_explored for r in results),
        "solver_queries": sum(r.solver_queries for r in results),
        "wall_ms": round(sum(r.wall_ms for r in results), 1),
    }


@dataclass
class BenchReport:
    config: dict
    results: list[ProgramResult] = field(default_factory=list)

    def totals(self) -> dict:
        return _totals(self.results)

    def backend_names(self) -> list[str]:
        return sorted({r.backend for r in self.results})

    def backend_totals(self) -> dict[str, dict]:
        return {
            b: _totals([r for r in self.results if r.backend == b])
            for b in self.backend_names()
        }

    def agreement(self) -> dict:
        """Cross-check verdicts between backends on shared programs."""
        by_name: dict[str, dict[str, str]] = {}
        for r in self.results:
            by_name.setdefault(r.name, {})[r.backend] = r.status
        shared = {n: v for n, v in by_name.items() if len(v) > 1}
        disagreements = []
        agreed = 0
        inconclusive = 0
        for n, verdicts in sorted(shared.items()):
            conclusive = {s for s in verdicts.values() if s in _CONCLUSIVE}
            if len(conclusive) > 1:
                disagreements.append({"name": n, "verdicts": verdicts})
            elif any(s not in _CONCLUSIVE for s in verdicts.values()):
                inconclusive += 1
            else:
                agreed += 1
        return {
            "shared_programs": len(shared),
            "agreed": agreed,
            "inconclusive": inconclusive,
            "disagreements": disagreements,
        }

    @property
    def all_as_expected(self) -> bool:
        return all(r.as_expected is not False for r in self.results)

    @property
    def backends_agree(self) -> bool:
        return not self.agreement()["disagreements"]

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "config": self.config,
            "totals": self.totals(),
            "backends": self.backend_totals(),
            "agreement": self.agreement(),
            "programs": [
                asdict(r)
                for r in sorted(self.results, key=lambda r: (r.name, r.backend))
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------

_STATUS_MARK = {
    STATUS_SAFE: "✓",
    STATUS_COUNTEREXAMPLE: "✗",
    STATUS_NO_MODEL: "?",
    STATUS_TRUNCATED: "…",
    STATUS_TIMEOUT: "⏱",
    STATUS_UNSUPPORTED: "-",
    STATUS_ERROR: "!",
}

_VALIDATION_WORD = {True: "ok", False: "FAILED", None: "skipped"}


def render_result(r: ProgramResult, *, verbose: bool = False) -> str:
    mark = _STATUS_MARK.get(r.status, "?")
    flag = ""
    if r.as_expected is False:
        flag = "  << UNEXPECTED"
    line = (
        f"{mark} {r.name:28s} {r.backend:4s} {r.status:16s} "
        f"{r.states_explored:6d} states {r.solver_queries:4d} solver "
        f"{r.wall_ms:8.1f} ms{flag}"
    )
    if r.counterexample is not None and (verbose or r.as_expected is False):
        cex = r.counterexample
        parts = [f"    • [{k}] = {v}" for k, v in sorted(cex.bindings.items())]
        parts.append(
            f"    breaks with {cex.err_op} at {cex.err_label} "
            f"(core: {_VALIDATION_WORD[cex.validated_core]}, "
            f"surface: {_VALIDATION_WORD[cex.validated_conc]})"
        )
        line += "\n" + "\n".join(parts)
    if r.detail and (verbose or r.status in (STATUS_ERROR, STATUS_UNSUPPORTED)):
        line += f"\n    {r.detail}"
    return line


def render_report(report: BenchReport, *, verbose: bool = False) -> str:
    lines = [
        render_result(r, verbose=verbose)
        for r in sorted(report.results, key=lambda r: (r.name, r.backend))
    ]
    t = report.totals()
    lines.append(
        f"-- {t['programs']} runs: {t['safe']} safe, "
        f"{t['counterexamples']} counterexamples, {t['timeouts']} timeouts; "
        f"{t['unexpected']} unexpected verdicts; "
        f"{t['states_explored']} states, {t['solver_queries']} solver calls, "
        f"{t['wall_ms']:.0f} ms total"
    )
    agreement = report.agreement()
    if agreement["shared_programs"]:
        dis = agreement["disagreements"]
        lines.append(
            f"-- cross-check: {agreement['agreed']}/{agreement['shared_programs']} "
            f"shared programs agree, {agreement['inconclusive']} inconclusive, "
            f"{len(dis)} disagreements"
            + ("" if not dis else ": " + ", ".join(d["name"] for d in dis))
        )
    return "\n".join(lines)

"""Benchmark report schema and rendering.

The batch runner emits one :class:`ProgramResult` per corpus program and
aggregates them into a :class:`BenchReport`, serialised as
``BENCH_driver.json``.  The JSON shape is versioned (``schema``) and kept
deliberately flat and sorted so that per-PR diffs of the benchmark file
are meaningful and the perf trajectory can be tracked across commits.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

SCHEMA = "repro-bench/v1"

# Terminal statuses a verification attempt can end in.
STATUS_SAFE = "safe"  # search exhausted, no (modelable) error
STATUS_COUNTEREXAMPLE = "counterexample"  # confirmed concrete input found
STATUS_NO_MODEL = "no-counterexample"  # errors seen, none modelable/validated
STATUS_TRUNCATED = "truncated"  # state budget hit before an answer
STATUS_TIMEOUT = "timeout"  # wall-clock budget hit
STATUS_UNSUPPORTED = "unsupported"  # outside the lowerable subset
STATUS_ERROR = "error"  # driver-level failure (bug!)


@dataclass
class CexReport:
    """A confirmed (or attempted) counterexample, rendered for humans."""

    bindings: dict[str, str]  # opaque label -> pretty value
    err_label: str
    err_op: str
    validated_core: bool  # re-run under core.concrete (Theorem 1)
    validated_conc: Optional[bool]  # re-run under conc.interp (None: skipped)


@dataclass
class ProgramResult:
    name: str
    kind: str  # expected verdict: "safe" | "buggy" (or "?" for ad-hoc files)
    status: str
    wall_ms: float
    states_explored: int = 0
    proof_queries: int = 0
    solver_queries: int = 0
    errors_found: int = 0
    cex_attempts: int = 0
    counterexample: Optional[CexReport] = None
    detail: str = ""

    @property
    def as_expected(self) -> Optional[bool]:
        """Did the verdict match the corpus annotation?"""
        if self.kind == "safe":
            return self.status == STATUS_SAFE
        if self.kind == "buggy":
            return (
                self.status == STATUS_COUNTEREXAMPLE
                and self.counterexample is not None
                and self.counterexample.validated_core
                and self.counterexample.validated_conc is not False
            )
        return None


@dataclass
class BenchReport:
    config: dict
    results: list[ProgramResult] = field(default_factory=list)

    def totals(self) -> dict:
        n = len(self.results)
        expected = [r.as_expected for r in self.results]
        return {
            "programs": n,
            "as_expected": sum(1 for e in expected if e),
            "unexpected": sum(1 for e in expected if e is False),
            "safe": sum(1 for r in self.results if r.status == STATUS_SAFE),
            "counterexamples": sum(
                1 for r in self.results if r.status == STATUS_COUNTEREXAMPLE
            ),
            "timeouts": sum(1 for r in self.results if r.status == STATUS_TIMEOUT),
            "states_explored": sum(r.states_explored for r in self.results),
            "solver_queries": sum(r.solver_queries for r in self.results),
            "wall_ms": round(sum(r.wall_ms for r in self.results), 1),
        }

    @property
    def all_as_expected(self) -> bool:
        return all(r.as_expected is not False for r in self.results)

    def to_json(self) -> dict:
        return {
            "schema": SCHEMA,
            "config": self.config,
            "totals": self.totals(),
            "programs": [
                asdict(r) for r in sorted(self.results, key=lambda r: r.name)
            ],
        }

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")


# ---------------------------------------------------------------------------
# Human-readable rendering
# ---------------------------------------------------------------------------

_STATUS_MARK = {
    STATUS_SAFE: "✓",
    STATUS_COUNTEREXAMPLE: "✗",
    STATUS_NO_MODEL: "?",
    STATUS_TRUNCATED: "…",
    STATUS_TIMEOUT: "⏱",
    STATUS_UNSUPPORTED: "-",
    STATUS_ERROR: "!",
}


def render_result(r: ProgramResult, *, verbose: bool = False) -> str:
    mark = _STATUS_MARK.get(r.status, "?")
    flag = ""
    if r.as_expected is False:
        flag = "  << UNEXPECTED"
    line = (
        f"{mark} {r.name:28s} {r.status:16s} "
        f"{r.states_explored:6d} states {r.solver_queries:4d} solver "
        f"{r.wall_ms:8.1f} ms{flag}"
    )
    if r.counterexample is not None and (verbose or r.as_expected is False):
        cex = r.counterexample
        parts = [f"    • [{k}] = {v}" for k, v in sorted(cex.bindings.items())]
        parts.append(
            f"    breaks with {cex.err_op} at {cex.err_label} "
            f"(core: {'ok' if cex.validated_core else 'FAILED'}, "
            f"surface: "
            + {True: "ok", False: "FAILED", None: "skipped"}[cex.validated_conc]
            + ")"
        )
        line += "\n" + "\n".join(parts)
    if r.detail and (verbose or r.status in (STATUS_ERROR, STATUS_UNSUPPORTED)):
        line += f"\n    {r.detail}"
    return line


def render_report(report: BenchReport, *, verbose: bool = False) -> str:
    lines = [
        render_result(r, verbose=verbose)
        for r in sorted(report.results, key=lambda r: r.name)
    ]
    t = report.totals()
    lines.append(
        f"-- {t['programs']} programs: {t['safe']} safe, "
        f"{t['counterexamples']} counterexamples, {t['timeouts']} timeouts; "
        f"{t['unexpected']} unexpected verdicts; "
        f"{t['states_explored']} states, {t['solver_queries']} solver calls, "
        f"{t['wall_ms']:.0f} ms total"
    )
    return "\n".join(lines)

"""Batch verification driver.

Glues the front end to the symbolic engine end-to-end:

``lang.parser`` → ``driver.lower`` → ``core.search`` (→ ``smt``) →
``core.counterexample`` → validation by ``core.concrete`` *and* by the
surface-level interpreter ``conc.interp``.

* ``lower``  — type-inferring translation of the contract-free surface
  subset into SPCF core terms (and back, for counterexample values);
* ``corpus`` — the seeded benchmark suite (safe + buggy variants);
* ``runner`` — per-program verification plus the parallel batch runner;
* ``report`` — the machine-readable ``BENCH_driver.json`` schema.
"""

from .corpus import CORPUS, CorpusProgram, corpus_names, get_program
from .lower import LowerError, lower_expr, lower_program, raise_expr
from .report import (
    SCHEMA,
    BenchReport,
    CexReport,
    ProgramResult,
    render_report,
    render_result,
)
from .runner import RunConfig, run_corpus, verify_program, verify_source

__all__ = [
    "CORPUS",
    "CorpusProgram",
    "corpus_names",
    "get_program",
    "LowerError",
    "lower_expr",
    "lower_program",
    "raise_expr",
    "SCHEMA",
    "BenchReport",
    "CexReport",
    "ProgramResult",
    "render_report",
    "render_result",
    "RunConfig",
    "run_corpus",
    "verify_program",
    "verify_source",
]

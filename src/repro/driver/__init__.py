"""Batch verification driver.

Glues the front end to the symbolic engines end-to-end through a
backend-dispatch architecture (``driver.backends``):

* the ``core`` backend: ``lang.parser`` → ``driver.lower`` →
  ``core.search`` (→ ``smt``) → ``core.counterexample`` → validation by
  ``core.concrete`` *and* the surface interpreter ``conc.interp``;
* the ``scv`` backend: ``lang.parser`` → ``scv.engine`` (modules,
  contracts, demonic client) → ``scv`` machine search →
  ``scv.counterexample`` → surface validation where a concrete client
  exists;
* ``both`` runs each corpus program on every backend it supports and
  cross-checks the verdicts.

Modules:

* ``backends`` — the :class:`Backend` protocol, both engines, registry;
* ``lower``  — type-inferring translation of the contract-free surface
  subset into SPCF core terms (and back, for counterexample values);
* ``corpus`` — the seeded benchmark suite (safe + buggy variants,
  annotated with supporting backends);
* ``runner`` — per-program verification plus the parallel batch runner;
* ``report`` — the machine-readable ``BENCH_driver.json`` schema
  (``repro-bench/v2``: per-backend sections + agreement cross-check).
"""

from .backends import (
    BACKEND_CHOICES,
    BACKENDS,
    Backend,
    RunConfig,
    TypedCoreBackend,
    UntypedScvBackend,
    get_backend,
)
from .corpus import CORPUS, CorpusProgram, corpus_names, get_program
from .lower import LowerError, lower_expr, lower_program, raise_expr
from .report import (
    SCHEMA,
    BenchReport,
    CexReport,
    ProgramResult,
    render_report,
    render_result,
)
from .runner import expand_tasks, run_corpus, verify_program, verify_source

__all__ = [
    "BACKEND_CHOICES",
    "BACKENDS",
    "Backend",
    "CORPUS",
    "CorpusProgram",
    "corpus_names",
    "get_program",
    "get_backend",
    "LowerError",
    "lower_expr",
    "lower_program",
    "raise_expr",
    "SCHEMA",
    "BenchReport",
    "CexReport",
    "ProgramResult",
    "render_report",
    "render_result",
    "RunConfig",
    "TypedCoreBackend",
    "UntypedScvBackend",
    "expand_tasks",
    "run_corpus",
    "verify_program",
    "verify_source",
]

"""``python -m repro`` — the command-line driver.

Subcommands (full reference: docs/CLI.md):

* ``verify FILE``  — run the full pipeline on one surface program;
  ``--emit-cex-client`` additionally prints the synthesized closed
  client program behind a counterexample (docs/COUNTEREXAMPLES.md);
* ``bench``        — run the benchmark corpus (optionally in parallel)
  and write the machine-readable ``BENCH_driver.json``;
* ``corpus list`` / ``corpus show NAME`` — inspect the corpus;
* ``store stats`` / ``store gc`` / ``store verify`` — maintain the
  persistent verification store (docs/ARCHITECTURE.md);
* ``serve``       — the long-lived verification service: an HTTP/JSON
  API with a persistent job queue and a process-based worker pool over
  a shared store directory (docs/SERVER.md).  Budget flags set the
  server-side defaults a request's ``config`` may override.

``verify`` and ``bench`` accept ``--store [DIR]`` to read/write the
persistent content-addressed result store (default directory
``.repro-store``; the ``REPRO_STORE`` environment variable supplies a
default, ``--no-store`` disables it).  Warm runs replay stored verdicts
byte-identically, re-verifying only units whose content changed.

Both ``verify`` and ``bench`` take ``--backend {core,scv,both}``:
``core`` is the typed §3 SPCF pipeline, ``scv`` the untyped §4 contract
pipeline, and ``both`` runs each program on every backend it supports
and cross-checks the verdicts (disagreements fail the run).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import asdict

from .backends import BACKEND_CHOICES
from .corpus import CORPUS, corpus_names, get_program
from .report import STATUS_COUNTEREXAMPLE, STATUS_SAFE, render_report, render_result
from .runner import RunConfig, expand_tasks, run_corpus, verify_source


_DEFAULTS = RunConfig()  # the single source of budget defaults


def _to_int(text, what: str) -> int:
    """The one funnel for numeric options, wherever they arrive from.

    Flags go through :func:`_int_flag` (argparse's clean usage error),
    environment variables through :func:`_env_int` — both exit 2 with a
    message naming the option instead of dumping a ``ValueError``
    traceback (or worse, silently substituting a default)."""
    try:
        return int(str(text).strip())
    except (TypeError, ValueError):
        raise ValueError(
            f"{what} must be an integer, got {text!r}"
        ) from None


def _int_flag(what: str):
    """An argparse ``type=`` callable with a named, clear error."""

    def parse(text: str) -> int:
        try:
            return _to_int(text, what)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None

    parse.__name__ = "int"  # argparse shows this in usage errors
    return parse


def _env_int(var: str, default: int) -> int:
    """Resolve an integer environment variable, exiting 2 on garbage
    (``REPRO_SHARDS=abc`` must be a clear CLI error, not a traceback
    and not a silently-ignored setting)."""
    raw = os.environ.get(var)
    if raw is None or not raw.strip():
        return default
    try:
        return _to_int(raw, f"environment variable {var}")
    except ValueError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        raise SystemExit(2) from None


def _add_budget_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="core",
        help="verification engine: typed core pipeline, untyped scv "
        "pipeline, or both cross-checked (default core)",
    )
    p.add_argument(
        "--max-states", type=int, default=_DEFAULTS.max_states,
        help=f"symbolic search state budget per program "
        f"(default {_DEFAULTS.max_states})",
    )
    p.add_argument(
        "--fuel", type=int, default=_DEFAULTS.fuel,
        help=f"concrete validation step budget (default {_DEFAULTS.fuel})",
    )
    p.add_argument(
        "--timeout", type=float, default=_DEFAULTS.timeout_s, metavar="SECONDS",
        help=f"per-program wall-clock budget (default {_DEFAULTS.timeout_s:g})",
    )
    p.add_argument(
        "--mode", choices=("implications", "euf"), default=_DEFAULTS.mode,
        help="heap translation mode (paper Fig. 4 ablation)",
    )
    p.add_argument(
        "--strategy", choices=("bfs", "dfs", "depth"),
        default=_DEFAULTS.strategy,
        help="search kernel frontier discipline: breadth-first (the "
        "paper's §5.3 default), depth-first, or deepest-first priority "
        "(default bfs)",
    )
    p.add_argument(
        "--shards", type=_int_flag("--shards"), default=None, metavar="N",
        help="partition each program's bfs frontier across N forked "
        "worker processes with a deterministic merge (byte-identical "
        "verdicts and counterexamples; see docs/ARCHITECTURE.md). "
        "Default: the REPRO_SHARDS environment variable, else 1. "
        "Ignored by batch-runner pool workers when --jobs > 1 (the pool "
        "is already saturating cores and its workers cannot fork)",
    )
    p.add_argument(
        "--compile", dest="compile", action="store_true", default=None,
        help="lower each program to flat bytecode and expand states "
        "with the fused dispatch loop (byte-identical verdicts and "
        "counterexamples; the default). Resolution: --compile/"
        "--no-compile > the REPRO_COMPILE environment variable "
        "(0/false = off) > on",
    )
    p.add_argument(
        "--no-compile", dest="compile", action="store_false",
        help="run the step-at-a-time machines instead of the bytecode "
        "dispatch loop (the differential oracle; verdicts must be "
        "identical)",
    )
    p.add_argument(
        "--no-memo", action="store_true",
        help="disable state-fingerprint memoisation and the solver-query "
        "cache (the pre-kernel micro-step search; for A/B comparison)",
    )
    p.add_argument(
        "--no-incremental", action="store_true",
        help="disable the per-path incremental solver contexts: every "
        "proof query re-solves its path condition from scratch "
        "(differential debugging; verdicts must be identical)",
    )
    p.add_argument(
        "--store", nargs="?", const=None, default=argparse.SUPPRESS,
        metavar="DIR",
        help="persist and replay verification results in a content-"
        "addressed store (default directory .repro-store, or the "
        "REPRO_STORE environment variable)",
    )
    p.add_argument(
        "--no-store", action="store_true",
        help="ignore the store even if REPRO_STORE is set",
    )


def _store_dir(args: argparse.Namespace):
    """Resolve the store directory: --no-store > --store [DIR] >
    $REPRO_STORE > off."""
    if args.no_store:
        return None
    if hasattr(args, "store"):  # --store was given (maybe without a DIR)
        from ..store import DEFAULT_STORE_DIR

        return args.store or DEFAULT_STORE_DIR
    return os.environ.get("REPRO_STORE") or None


def _shards(args: argparse.Namespace) -> int:
    """Resolve the shard count: --shards N > $REPRO_SHARDS > 1."""
    if args.shards is not None:
        return max(1, args.shards)
    return max(1, _env_int("REPRO_SHARDS", 1))


def _compile_enabled(args: argparse.Namespace) -> bool:
    """Resolve bytecode compilation: --compile/--no-compile >
    $REPRO_COMPILE (0/false/off/no = off) > on."""
    if getattr(args, "compile", None) is not None:
        return args.compile
    raw = os.environ.get("REPRO_COMPILE")
    if raw is None or not raw.strip():
        return _DEFAULTS.compile
    return raw.strip().lower() not in ("0", "false", "off", "no")


def _config(args: argparse.Namespace, jobs: int = 1) -> RunConfig:
    return RunConfig(
        max_states=args.max_states,
        fuel=args.fuel,
        timeout_s=args.timeout,
        mode=args.mode,
        jobs=jobs,
        strategy=args.strategy,
        memo=not args.no_memo,
        incremental=not args.no_incremental,
        store_dir=_store_dir(args),
        shards=_shards(args),
        compile=_compile_enabled(args),
    )


def _cmd_verify(args: argparse.Namespace) -> int:
    if args.file == "-":
        source = sys.stdin.read()
        name = "<stdin>"
    else:
        try:
            with open(args.file, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            print(f"repro: cannot read {args.file}: {exc.strerror}", file=sys.stderr)
            return 2
        name = args.file
    backends = ("core", "scv") if args.backend == "both" else (args.backend,)
    results = [
        verify_source(source, name=name, config=_config(args), backend=b)
        for b in backends
    ]
    if args.json:
        rows = [asdict(r) for r in results]
        print(json.dumps(rows[0] if len(rows) == 1 else rows,
                         indent=2, sort_keys=True))
    else:
        for r in results:
            # With --emit-cex-client the client is printed once, as the
            # raw extractable block below, not also inside the row.
            print(render_result(
                r, verbose=True, show_client=not args.emit_cex_client
            ))
            if (
                args.emit_cex_client
                and r.counterexample is not None
                and r.counterexample.client
            ):
                print(f";; [{r.backend}] synthesized counterexample client "
                      "(closed program; re-runs the blame concretely):")
                print(r.counterexample.client.rstrip())
    statuses = {r.status for r in results}
    if len(results) > 1 and statuses == {STATUS_SAFE, STATUS_COUNTEREXAMPLE}:
        print("repro: backends disagree", file=sys.stderr)
        return 3
    if statuses == {STATUS_SAFE}:
        return 0
    if STATUS_COUNTEREXAMPLE in statuses:
        return 1
    return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.smoke:
        names = corpus_names(tag="smoke")
    else:
        names = [p.name for p in CORPUS]
    if args.filter:
        names = [n for n in names if args.filter in n]
    if not expand_tasks(names, args.backend):
        print("no corpus programs match the filter and backend selection",
              file=sys.stderr)
        return 2
    cfg = _config(args, jobs=args.jobs)
    verbose = args.verbose

    def progress(r):
        print(render_result(r, verbose=verbose), flush=True)

    report = run_corpus(
        names, config=cfg, progress=progress if verbose else None,
        backend=args.backend,
    )
    if not verbose:
        print(render_report(report))
    else:
        for line in render_report(report).splitlines():
            if line.startswith("--"):
                print(line)
    report.write(args.out)
    print(f"wrote {args.out}")
    if not report.backends_agree:
        return 3
    return 0 if report.all_as_expected else 1


def _cmd_corpus(args: argparse.Namespace) -> int:
    if args.corpus_cmd == "show":
        try:
            p = get_program(args.name)
        except KeyError:
            print(f"repro: no corpus program named {args.name!r} "
                  "(see `repro corpus list`)", file=sys.stderr)
            return 2
        print(f"; {p.name} [{p.kind}] {' '.join(p.tags)}")
        print(f"; {p.description}")
        print(p.source)
        return 0
    # list
    for p in CORPUS:
        if args.kind and p.kind != args.kind:
            continue
        if args.tag and args.tag not in p.tags:
            continue
        tags = ",".join(p.tags)
        print(f"{p.name:28s} {p.kind:5s} [{tags}] {p.description}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from dataclasses import asdict as _asdict

    from ..serve.app import run_serve
    from ..store import DEFAULT_STORE_DIR

    # The server *is* the store's serving layer: --no-store merely
    # falls back to the default directory instead of disabling it.
    root = _store_dir(args) or DEFAULT_STORE_DIR
    port = args.port if args.port is not None else \
        _env_int("REPRO_SERVE_PORT", 8321)
    workers = args.workers if args.workers is not None else \
        _env_int("REPRO_SERVE_WORKERS", min(4, os.cpu_count() or 1))
    if workers < 1:
        print("repro: --workers must be at least 1", file=sys.stderr)
        return 2
    base = _asdict(_config(args))
    base["store_dir"] = root
    return run_serve(
        host=args.host,
        port=port,
        workers=workers,
        store_root=root,
        base_config=base,
        drain_timeout_s=args.drain_timeout,
        quiet=not args.verbose,
    )


def _cmd_store(args: argparse.Namespace) -> int:
    from ..store import DEFAULT_STORE_DIR, get_store
    from ..store.verdicts import check_entries

    root = args.dir or os.environ.get("REPRO_STORE") or DEFAULT_STORE_DIR
    if not os.path.isdir(root):
        print(f"repro: no store at {root!r} (run with --store first, or "
              "pass --dir)", file=sys.stderr)
        return 2
    store = get_store(root)
    if args.store_cmd == "stats":
        print(json.dumps(store.stats(), indent=2, sort_keys=True))
        return 0
    if args.store_cmd == "gc":
        summary = store.gc(max_bytes=args.max_bytes)
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    # verify: re-run a sample of stored verdicts and compare
    outcome = check_entries(store, sample=args.sample)
    print(json.dumps(outcome, indent=2, sort_keys=True))
    if outcome["mismatches"]:
        print(f"repro: {len(outcome['mismatches'])} stored verdict(s) "
              "disagree with fresh runs", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Higher-order symbolic execution with counterexamples "
        "(NguyenH15 reproduction)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p_verify = sub.add_parser("verify", help="verify one program file")
    p_verify.add_argument("file", help="surface-syntax program ('-' for stdin)")
    p_verify.add_argument("--json", action="store_true", help="JSON output")
    p_verify.add_argument(
        "--emit-cex-client", action="store_true",
        help="after a counterexample, print the synthesized closed client "
        "program (runnable surface syntax) that reproduces the blame",
    )
    _add_budget_flags(p_verify)
    p_verify.set_defaults(fn=_cmd_verify)

    p_bench = sub.add_parser("bench", help="run the benchmark corpus")
    p_bench.add_argument("--smoke", action="store_true",
                         help="only the fast smoke-tagged subset")
    p_bench.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes (default 1)")
    p_bench.add_argument("--filter", default="",
                         help="only programs whose name contains this")
    p_bench.add_argument("--out", default="BENCH_fresh.json",
                         help="report path (default BENCH_fresh.json; the "
                         "committed BENCH_driver.json is the CI perf-gate "
                         "baseline — overwrite it only to re-baseline "
                         "deliberately)")
    p_bench.add_argument("--verbose", "-v", action="store_true",
                         help="stream per-program results")
    _add_budget_flags(p_bench)
    p_bench.set_defaults(fn=_cmd_bench)

    p_corpus = sub.add_parser("corpus", help="inspect the corpus")
    corpus_sub = p_corpus.add_subparsers(dest="corpus_cmd", required=True)
    p_list = corpus_sub.add_parser("list", help="list corpus programs")
    p_list.add_argument("--kind", choices=("safe", "buggy"), default=None)
    p_list.add_argument("--tag", default=None)
    p_list.set_defaults(fn=_cmd_corpus)
    p_show = corpus_sub.add_parser("show", help="print one program's source")
    p_show.add_argument("name")
    p_show.set_defaults(fn=_cmd_corpus)

    p_serve = sub.add_parser(
        "serve",
        help="run the long-lived verification service over the store "
        "(HTTP/JSON; see docs/SERVER.md)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=_int_flag("--port"), default=None, metavar="PORT",
        help="listen port (default: the REPRO_SERVE_PORT environment "
        "variable, else 8321; 0 picks an ephemeral port)",
    )
    p_serve.add_argument(
        "--workers", type=_int_flag("--workers"), default=None, metavar="N",
        help="verification worker processes (default: REPRO_SERVE_WORKERS, "
        "else min(4, cpu count))",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="grace period for in-flight jobs on SIGTERM before workers "
        "are killed (default 60)",
    )
    p_serve.add_argument(
        "--verbose", "-v", action="store_true",
        help="log every HTTP request to stderr",
    )
    _add_budget_flags(p_serve)
    p_serve.set_defaults(fn=_cmd_serve)

    p_store = sub.add_parser(
        "store", help="maintain the persistent verification store"
    )
    p_store.add_argument(
        "--dir", default=None, metavar="DIR",
        help="store directory (default: $REPRO_STORE or .repro-store)",
    )
    store_sub = p_store.add_subparsers(dest="store_cmd", required=True)
    p_sstats = store_sub.add_parser(
        "stats", help="entry counts and sizes, as JSON"
    )
    p_sstats.set_defaults(fn=_cmd_store)
    p_sgc = store_sub.add_parser(
        "gc", help="compact the solver shards and optionally bound the size"
    )
    p_sgc.add_argument(
        "--max-bytes", type=int, default=None,
        help="evict oldest entries until the store fits this many bytes",
    )
    p_sgc.set_defaults(fn=_cmd_store)
    p_sverify = store_sub.add_parser(
        "verify",
        help="re-run a sample of stored verdicts and compare (exit 1 on "
        "any disagreement)",
    )
    p_sverify.add_argument(
        "--sample", type=int, default=16,
        help="how many entries to re-check, evenly spaced over the store "
        "(default 16; 0 = all)",
    )
    p_sverify.set_defaults(fn=_cmd_store)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into head) — not our error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Lowering the contract-free surface subset into SPCF core.

The symbolic engine (``core.machine``/``core.search``) works over the
typed core of §3, while the corpus is written in the Racket-subset
surface syntax of ``lang.parser``.  This module bridges the two:

* a monomorphic unification-based type inference assigns a ``nat`` or
  arrow type to every binder and every opaque ``•``;
* the inferred program is lowered to curried core terms — multi-argument
  lambdas and applications become chains, ``letrec`` becomes sequential
  ``Fix``/application, ``begin`` becomes application of a discarding
  lambda;
* surface primitives map onto core δ-operations (``quotient`` → ``div``
  etc.), **preserving the surface application's blame label** so an
  ``Err`` raised by the core machine names the same source site as a
  ``PrimBlame`` raised by the concrete surface interpreter;
* ``raise_expr`` maps counterexample values (built from core ``Num``,
  ``Lam``, ``If`` and ``=?`` tests) back into surface syntax so they can
  be fed to ``conc.interp`` for independent validation.

Booleans follow the PCF convention: comparisons produce 1/0 and ``if``
tests non-zero-ness.  Surface ``#t``/``#f`` lower to 1/0, which agrees
with the surface interpreter as long as test positions hold the results
of comparisons and predicates — which the corpus maintains — rather
than arbitrary numbers (where 0 is truthy in Racket but false in PCF).
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.syntax import (
    App,
    Expr,
    Fix,
    FunType,
    If,
    Lam,
    NAT,
    Num,
    Opq,
    PrimApp,
    Ref,
    Type,
)
from ..lang.ast import (
    Program,
    Quote,
    UApp,
    UBegin,
    UExpr,
    UIf,
    ULam,
    ULetrec,
    UOpaque,
    USet,
    UVar,
    fresh_label,
)


class LowerError(Exception):
    """The surface program falls outside the SPCF-expressible subset."""


# ---------------------------------------------------------------------------
# Inference-time types (union-find over nat / arrows)
# ---------------------------------------------------------------------------


class _TyVar:
    """A unification variable; ``link`` points along the union-find chain
    to either another variable or a resolved structure."""

    __slots__ = ("link",)

    def __init__(self) -> None:
        self.link: Optional[_Ty] = None


class _TyFun:
    __slots__ = ("dom", "rng")

    def __init__(self, dom: "_Ty", rng: "_Ty") -> None:
        self.dom = dom
        self.rng = rng


_NAT = object()  # the unique base type token
_Ty = Union[_TyVar, _TyFun, object]


def _find(t: _Ty) -> _Ty:
    while isinstance(t, _TyVar) and t.link is not None:
        t = t.link
    return t


def _occurs(v: _TyVar, t: _Ty) -> bool:
    t = _find(t)
    if t is v:
        return True
    if isinstance(t, _TyFun):
        return _occurs(v, t.dom) or _occurs(v, t.rng)
    return False


def _unify(a: _Ty, b: _Ty, where: str) -> None:
    a, b = _find(a), _find(b)
    if a is b:
        return
    if isinstance(a, _TyVar):
        if _occurs(a, b):
            raise LowerError(f"infinite type in {where}")
        a.link = b
        return
    if isinstance(b, _TyVar):
        _unify(b, a, where)
        return
    if isinstance(a, _TyFun) and isinstance(b, _TyFun):
        _unify(a.dom, b.dom, where)
        _unify(a.rng, b.rng, where)
        return
    raise LowerError(f"cannot unify number with function in {where}")


def _resolve(t: _Ty) -> Type:
    """Ground an inference type; unconstrained variables default to nat."""
    t = _find(t)
    if isinstance(t, _TyVar) or t is _NAT:
        return NAT
    assert isinstance(t, _TyFun)
    return FunType(_resolve(t.dom), _resolve(t.rng))


# ---------------------------------------------------------------------------
# Surface primitives expressible as core δ-operations
# ---------------------------------------------------------------------------

# surface name -> (core op, arity); n-ary +/-/* are folded to nested binary
_BINOPS = {
    "+": "+",
    "-": "-",
    "*": "*",
    "quotient": "div",
    "modulo": "mod",
    "=": "=?",
    "<": "<?",
    "<=": "<=?",
}
# Surface primitives whose semantics cannot be matched by a core
# δ-operation over all of ℤ.  Core ``mod`` computes ``a % abs(b)``
# (nonnegative); Racket's ``remainder`` takes the dividend's sign and
# ``modulo`` the divisor's, so they only all agree when the divisor is a
# known positive constant — which ``modulo`` therefore requires below.
_REJECTED = {
    "remainder": "remainder truncates toward zero, which does not match "
    "the core's Euclidean mod on negative dividends; use "
    "(modulo _ k) with a positive constant k",
}
_SWAPPED = {">": "<?", ">=": "<=?"}  # (> a b) ≡ (< b a)
_UNOPS = {"add1": "add1", "sub1": "sub1", "zero?": "zero?"}
_VARIADIC = {"+", "-", "*"}

#: every surface identifier the lowerer treats as a primitive operator
PRIM_NAMES = (
    frozenset(_BINOPS)
    | frozenset(_SWAPPED)
    | frozenset(_UNOPS)
    | frozenset(_REJECTED)
    | frozenset({"not", "positive?", "negative?", "even?", "odd?"})
)


def _free_uvars(e: UExpr) -> set[str]:
    """Free variable names of a surface expression."""
    if isinstance(e, UVar):
        return {e.name}
    if isinstance(e, (Quote, UOpaque)):
        return set()
    if isinstance(e, ULam):
        return _free_uvars(e.body) - set(e.params)
    if isinstance(e, UApp):
        out = _free_uvars(e.fn)
        for a in e.args:
            out |= _free_uvars(a)
        return out
    if isinstance(e, UIf):
        return _free_uvars(e.test) | _free_uvars(e.then) | _free_uvars(e.orelse)
    if isinstance(e, UBegin):
        out = set()
        for sub in e.exprs:
            out |= _free_uvars(sub)
        return out
    if isinstance(e, ULetrec):
        bound = {n for n, _ in e.bindings}
        out = _free_uvars(e.body)
        for _, rhs in e.bindings:
            out |= _free_uvars(rhs)
        return out - bound
    if isinstance(e, USet):
        return {e.name} | _free_uvars(e.value)
    raise LowerError(f"unsupported surface form {e!r}")


class _Lowerer:
    """Two passes over one surface expression: infer, then build."""

    def __init__(self) -> None:
        self.lam_params: dict[int, list[_TyVar]] = {}
        self.letrec_vars: dict[int, list[_TyVar]] = {}
        self.begin_types: dict[int, list[_Ty]] = {}
        self.opaque_types: dict[str, _Ty] = {}

    # -- pass 1: inference -------------------------------------------------

    def infer(self, e: UExpr, env: dict[str, _Ty]) -> _Ty:
        if isinstance(e, Quote):
            if isinstance(e.datum, bool) or isinstance(e.datum, int):
                return _NAT
            raise LowerError(f"only integer literals lower to SPCF: {e!r}")
        if isinstance(e, UVar):
            if e.name in env:
                return env[e.name]
            if e.name in PRIM_NAMES:
                raise LowerError(
                    f"primitive {e.name} used as a value (call it instead)"
                )
            raise LowerError(f"unbound variable {e.name}")
        if isinstance(e, UOpaque):
            t = self.opaque_types.get(e.label)
            if t is None:
                t = self.opaque_types[e.label] = _TyVar()
            return t
        if isinstance(e, ULam):
            params = [_TyVar() for _ in e.params]
            self.lam_params[id(e)] = params
            body_env = {**env, **dict(zip(e.params, params))}
            body = self.infer(e.body, body_env)
            out: _Ty = body
            for p in reversed(params):
                out = _TyFun(p, out)
            return out
        if isinstance(e, UIf):
            _unify(self.infer(e.test, env), _NAT, "if test")
            then = self.infer(e.then, env)
            _unify(then, self.infer(e.orelse, env), "if branches")
            return then
        if isinstance(e, UBegin):
            tys = [self.infer(sub, env) for sub in e.exprs]
            self.begin_types[id(e)] = tys
            return tys[-1] if tys else _NAT
        if isinstance(e, ULetrec):
            cells = [_TyVar() for _ in e.bindings]
            self.letrec_vars[id(e)] = cells
            scope = dict(env)
            for (name, rhs), cell in zip(e.bindings, cells):
                rhs_ty = self.infer(rhs, {**scope, name: cell})
                _unify(rhs_ty, cell, f"letrec binding {name}")
                scope[name] = cell
            return self.infer(e.body, scope)
        if isinstance(e, UApp):
            prim = self._prim_name(e, env)
            if prim is not None:
                if prim in _REJECTED:
                    raise LowerError(f"{prim}: {_REJECTED[prim]}")
                for a in e.args:
                    _unify(self.infer(a, env), _NAT, f"argument of {prim}")
                self._check_prim_arity(prim, len(e.args))
                return _NAT
            fn = self.infer(e.fn, env)
            for a in e.args:
                arg = self.infer(a, env)
                rng = _TyVar()
                _unify(fn, _TyFun(arg, rng), f"application at {e.label}")
                fn = rng
            return fn
        if isinstance(e, USet):
            raise LowerError("set! is not in the SPCF-expressible subset")
        raise LowerError(f"unsupported surface form {e!r}")

    @staticmethod
    def _prim_name(e: UApp, env: dict[str, _Ty]) -> Optional[str]:
        if isinstance(e.fn, UVar) and e.fn.name not in env:
            if e.fn.name in PRIM_NAMES:
                return e.fn.name
        return None

    @staticmethod
    def _check_prim_arity(name: str, n: int) -> None:
        if name in _VARIADIC:
            if n < 1:
                raise LowerError(f"{name} needs at least 1 argument")
        elif name in _BINOPS or name in _SWAPPED:
            if n != 2:
                raise LowerError(f"{name} lowers at exactly 2 arguments, got {n}")
        elif n != 1:
            raise LowerError(f"{name} expects 1 argument, got {n}")

    # -- pass 2: construction ----------------------------------------------

    def build(self, e: UExpr, scope: set[str]) -> Expr:
        if isinstance(e, Quote):
            if isinstance(e.datum, bool):
                return Num(1 if e.datum else 0)
            assert isinstance(e.datum, int)
            return Num(e.datum)
        if isinstance(e, UVar):
            return Ref(e.name)
        if isinstance(e, UOpaque):
            return Opq(_resolve(self.opaque_types[e.label]), e.label)
        if isinstance(e, ULam):
            params = self.lam_params[id(e)]
            body = self.build(e.body, scope | set(e.params))
            out: Expr = body
            for name, ty in zip(reversed(e.params), reversed(params)):
                out = Lam(name, _resolve(ty), out)
            return out
        if isinstance(e, UIf):
            return If(
                self.build(e.test, scope),
                self.build(e.then, scope),
                self.build(e.orelse, scope),
            )
        if isinstance(e, UBegin):
            tys = self.begin_types[id(e)]
            out = self.build(e.exprs[-1], scope)
            for sub, ty in zip(reversed(e.exprs[:-1]), reversed(tys[:-1])):
                # Core SPCF is effect-free, so earlier begin forms only
                # matter if they diverge or error: run them, drop the value.
                out = App(Lam("_", _resolve(ty), out), self.build(sub, scope))
            return out
        if isinstance(e, ULetrec):
            return self._build_letrec(e, scope)
        if isinstance(e, UApp):
            prim = self._prim_name_scoped(e, scope)
            if prim is not None:
                return self._build_prim(prim, e, scope)
            out = self.build(e.fn, scope)
            for a in e.args:
                out = App(out, self.build(a, scope))
            return out
        raise LowerError(f"unsupported surface form {e!r}")

    def _prim_name_scoped(self, e: UApp, scope: set[str]) -> Optional[str]:
        if isinstance(e.fn, UVar) and e.fn.name not in scope:
            if e.fn.name in PRIM_NAMES:
                return e.fn.name
        return None

    def _build_prim(self, name: str, e: UApp, scope: set[str]) -> Expr:
        args = [self.build(a, scope) for a in e.args]
        label = e.label or fresh_label("a")
        if name in _VARIADIC:
            if name == "-" and len(args) == 1:
                return PrimApp("-", (Num(0), args[0]), label)
            if len(args) == 1:
                return args[0]
            out = args[0]
            for a in args[1:]:
                out = PrimApp(_BINOPS[name], (out, a), label)
            return out
        if name == "modulo":
            divisor = args[1]
            if not (isinstance(divisor, Num) and divisor.value > 0):
                raise LowerError(
                    "modulo lowers only with a positive constant divisor "
                    "(Racket takes the divisor's sign; the core's Euclidean "
                    "mod is nonnegative — they agree only for constant k > 0)"
                )
            return PrimApp("mod", tuple(args), label)
        if name in _BINOPS:
            return PrimApp(_BINOPS[name], tuple(args), label)
        if name in _SWAPPED:
            return PrimApp(_SWAPPED[name], (args[1], args[0]), label)
        if name in _UNOPS:
            return PrimApp(_UNOPS[name], tuple(args), label)
        # Predicate sugar over the core δ-operations.
        (x,) = args
        if name == "not":
            return If(x, Num(0), Num(1))
        if name == "positive?":
            return PrimApp("<?", (Num(0), x), label)
        if name == "negative?":
            return PrimApp("<?", (x, Num(0)), label)
        if name == "even?":
            return PrimApp("=?", (PrimApp("mod", (x, Num(2)), label), Num(0)), label)
        assert name == "odd?"
        return PrimApp("=?", (PrimApp("mod", (x, Num(2)), label), Num(1)), label)

    def _build_letrec(self, e: ULetrec, scope: set[str]) -> Expr:
        """Sequential letrec*: each binding may reference itself (→ Fix)
        and earlier bindings; mutual recursion is out of the subset."""
        cells = self.letrec_vars[id(e)]
        names = {n for n, _ in e.bindings}
        out = self.build(e.body, scope | names)
        later: set[str] = set()  # bindings strictly after the current one
        for (name, rhs), cell in zip(reversed(e.bindings), reversed(cells)):
            free = _free_uvars(rhs)
            forward = free & later
            if forward:
                raise LowerError(
                    f"letrec binding {name} references later binding(s) "
                    f"{sorted(forward)}: mutual recursion is not lowerable"
                )
            ty = _resolve(cell)
            rhs_core = self.build(rhs, scope | names)
            if name in free:
                rhs_core = Fix(name, ty, rhs_core)
            out = App(Lam(name, ty, out), rhs_core)
            later.add(name)
        return out


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


def lower_expr(e: UExpr) -> Expr:
    """Lower one closed surface expression to a core term."""
    lw = _Lowerer()
    lw.infer(e, {})
    return lw.build(e, set())


def lower_program(program: Program) -> Expr:
    """Lower a parsed surface program (top-level defines + expression).

    Modules (with their contracts and structs) belong to the §4 untyped
    pipeline and are out of this bridge's scope.
    """
    if program.modules:
        raise LowerError("modules/contracts are not in the lowerable subset")
    if program.main is None:
        raise LowerError("program has no top-level expression to verify")
    return lower_expr(program.main)


# ---------------------------------------------------------------------------
# Raising counterexample values back to surface syntax
# ---------------------------------------------------------------------------

# The canonical core-op → surface-name table lives with the
# counterexample renderer (both backends normalize against it).
from ..core.counterexample import CANONICAL_OPS as _CORE_TO_SURFACE_OP  # noqa: E402


def raise_expr(e: Expr) -> UExpr:
    """Render a *counterexample value* (core ``Num``/``Lam``/``If`` with
    ``=?`` tests, as built by ``core.counterexample``) as surface syntax
    suitable for ``conc.interp`` opaque bindings."""
    if isinstance(e, Num):
        return Quote(e.value)
    if isinstance(e, Ref):
        return UVar(e.name)
    if isinstance(e, Lam):
        return ULam((e.var,), raise_expr(e.body))
    if isinstance(e, If):
        return UIf(raise_expr(e.test), raise_expr(e.then), raise_expr(e.orelse))
    if isinstance(e, App):
        return UApp(raise_expr(e.fn), (raise_expr(e.arg),), label=fresh_label("cex"))
    if isinstance(e, PrimApp):
        op = _CORE_TO_SURFACE_OP.get(e.op)
        if op is None:
            raise LowerError(f"cannot raise primitive {e.op} to surface syntax")
        return UApp(
            UVar(op), tuple(raise_expr(a) for a in e.args), label=fresh_label("cex")
        )
    raise LowerError(f"cannot raise {e!r} to surface syntax")

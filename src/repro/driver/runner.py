"""End-to-end verification of one program, and the parallel batch runner.

Per program (``verify_source``):

1. ``lang.parser`` reads the surface text (one parse, reused throughout —
   blame labels are minted by the parse, so both engines must see the
   same ones);
2. ``driver.lower`` bridges it into SPCF core and ``core.typecheck``
   sanity-checks the inferred types;
3. ``core.search`` breadth-first-explores the nondeterministic machine,
   stopping at error answers;
4. for each error state ``core.counterexample.construct`` translates the
   heap (Fig. 4), asks the solver for a model, reconstructs concrete
   inputs, and ``check_counterexample`` re-runs them under
   ``core.concrete`` (the Theorem 1 check);
5. the confirmed counterexample is additionally re-run under the
   *surface* interpreter ``conc.interp`` — an independent oracle that
   must blame the same source label.

The batch runner (``run_corpus``) fans programs out over a
``multiprocessing`` pool; each worker enforces a per-program wall-clock
budget with ``SIGALRM`` so a pathological program degrades to a
``timeout`` row instead of wedging the run.
"""

from __future__ import annotations

import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Callable, Iterable, Optional

from ..conc.interp import Interp, InterpTimeout, PrimBlame, RuntimeFault
from ..core import (
    Machine,
    ProofSystem,
    SearchStats,
    TypeError_,
    check_program,
    construct,
    find_errors,
    pp,
)
from ..core.heap import reset_locs
from ..core.syntax import reset_labels as reset_core_labels
from ..lang.ast import Program
from ..lang.ast import reset_labels as reset_surface_labels
from ..lang.parser import ParseError, parse_program
from ..lang.sexp import ReadError
from .corpus import CORPUS, CorpusProgram, get_program
from .lower import LowerError, lower_program, raise_expr
from .report import (
    STATUS_COUNTEREXAMPLE,
    STATUS_ERROR,
    STATUS_NO_MODEL,
    STATUS_SAFE,
    STATUS_TIMEOUT,
    STATUS_TRUNCATED,
    STATUS_UNSUPPORTED,
    BenchReport,
    CexReport,
    ProgramResult,
)


@dataclass(frozen=True)
class RunConfig:
    """Budgets and knobs shared by every program in a batch."""

    max_states: int = 50_000  # symbolic search budget
    fuel: int = 200_000  # concrete validation step budget
    timeout_s: float = 30.0  # per-program wall clock
    max_cex_attempts: int = 20  # error states to try to model before giving up
    mode: str = "implications"  # heap translation mode (paper Fig. 4)
    jobs: int = 1  # worker processes


class _Deadline(Exception):
    """Raised inside a worker when the per-program wall clock expires."""


@contextmanager
def _deadline(seconds: float):
    """Arm a wall-clock alarm around a block (POSIX main thread only;
    elsewhere the block simply runs unbounded)."""
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return
    def _on_alarm(signum, frame):
        raise _Deadline()
    try:
        old = signal.signal(signal.SIGALRM, _on_alarm)
    except ValueError:  # not in the main thread
        yield
        return
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, old)


def _surface_revalidate(
    program: Program, bindings: dict, err_label: str, fuel: int
) -> bool:
    """Independent oracle: instantiate the *surface* program with the
    counterexample and confirm the surface interpreter blames the same
    source label."""
    opaque_exprs = {label: raise_expr(v) for label, v in bindings.items()}
    interp = Interp(fuel=fuel)
    try:
        interp.run_program(program, opaque_exprs=opaque_exprs)
    except PrimBlame as blame:
        return blame.label == err_label
    except (RuntimeFault, InterpTimeout):
        return False
    return False


def verify_source(
    source: str,
    *,
    name: str = "<input>",
    kind: str = "?",
    config: Optional[RunConfig] = None,
) -> ProgramResult:
    """Run the whole pipeline on one surface program."""
    cfg = config or RunConfig()
    # Labels and heap locations are only unique per program; restarting
    # the counters here makes reports (and solver model choices)
    # reproducible regardless of worker assignment.
    reset_surface_labels()
    reset_core_labels()
    reset_locs()
    t0 = time.perf_counter()
    stats = SearchStats()
    proof = ProofSystem(mode=cfg.mode)

    def done(status: str, **kw) -> ProgramResult:
        return ProgramResult(
            name=name,
            kind=kind,
            status=status,
            wall_ms=(time.perf_counter() - t0) * 1000,
            states_explored=stats.states_explored,
            proof_queries=proof.queries,
            solver_queries=proof.solver_queries,
            **kw,
        )

    try:
        program = parse_program(source)
        core = lower_program(program)
        check_program(core)
    except (ParseError, ReadError, LowerError, TypeError_) as exc:
        return done(STATUS_UNSUPPORTED, detail=f"{type(exc).__name__}: {exc}")

    errors_found = 0
    attempts = 0
    try:
        with _deadline(cfg.timeout_s):
            machine = Machine(proof)
            for result in find_errors(
                core, machine=machine, max_states=cfg.max_states, stats=stats
            ):
                errors_found += 1
                if attempts >= cfg.max_cex_attempts:
                    break  # enough unmodelable errors: give up on this one
                attempts += 1
                cex = construct(
                    core,
                    result.state,
                    mode=cfg.mode,
                    validate=True,
                    fuel=cfg.fuel,
                )
                if cex is None or not cex.validated:
                    continue
                conc_ok = _surface_revalidate(
                    program, cex.bindings, cex.err.label, cfg.fuel
                )
                return done(
                    STATUS_COUNTEREXAMPLE,
                    errors_found=errors_found,
                    cex_attempts=attempts,
                    counterexample=CexReport(
                        bindings={
                            label: pp(v) for label, v in cex.bindings.items()
                        },
                        err_label=cex.err.label,
                        err_op=cex.err.op,
                        validated_core=bool(cex.validated),
                        validated_conc=conc_ok,
                    ),
                )
    except _Deadline:
        return done(
            STATUS_TIMEOUT,
            errors_found=errors_found,
            cex_attempts=attempts,
            detail=f"wall clock exceeded {cfg.timeout_s:g}s",
        )
    except Exception as exc:  # driver bug or engine stuck-state: report, not crash
        return done(
            STATUS_ERROR,
            errors_found=errors_found,
            detail=f"{type(exc).__name__}: {exc}",
        )

    if errors_found:
        return done(
            STATUS_NO_MODEL, errors_found=errors_found, cex_attempts=attempts,
            detail="error states found but none had a validated model",
        )
    if stats.truncated:
        return done(
            STATUS_TRUNCATED,
            detail=f"state budget {cfg.max_states} exhausted without an answer",
        )
    return done(STATUS_SAFE)


def verify_program(
    prog: CorpusProgram, config: Optional[RunConfig] = None
) -> ProgramResult:
    return verify_source(
        prog.source, name=prog.name, kind=prog.kind, config=config
    )


# ---------------------------------------------------------------------------
# Parallel batch runner
# ---------------------------------------------------------------------------

# Worker-side configuration, installed once per worker by the initializer
# (cheaper than pickling the config into every task).
_WORKER_CFG: Optional[RunConfig] = None


def _init_worker(cfg_fields: dict) -> None:
    global _WORKER_CFG
    _WORKER_CFG = RunConfig(**cfg_fields)


def _run_one(name: str) -> ProgramResult:
    assert _WORKER_CFG is not None
    return verify_program(get_program(name), _WORKER_CFG)


def run_corpus(
    names: Optional[Iterable[str]] = None,
    *,
    config: Optional[RunConfig] = None,
    progress: Optional[Callable[[ProgramResult], None]] = None,
) -> BenchReport:
    """Verify a set of corpus programs, fanning out over ``config.jobs``
    worker processes (sequentially when ``jobs`` is 1)."""
    cfg = config or RunConfig()
    todo = list(names) if names is not None else [p.name for p in CORPUS]
    for n in todo:
        get_program(n)  # fail fast on unknown names

    report = BenchReport(
        config={**asdict(cfg), "programs": len(todo)},
    )

    if cfg.jobs <= 1 or len(todo) <= 1:
        for n in todo:
            r = _run_one_with(cfg, n)
            report.results.append(r)
            if progress is not None:
                progress(r)
        return report

    import multiprocessing as mp

    ctx = mp.get_context()
    with ctx.Pool(
        processes=min(cfg.jobs, len(todo)),
        initializer=_init_worker,
        initargs=(asdict(cfg),),
    ) as pool:
        for r in pool.imap_unordered(_run_one, todo, chunksize=1):
            report.results.append(r)
            if progress is not None:
                progress(r)
    return report


def _run_one_with(cfg: RunConfig, name: str) -> ProgramResult:
    return verify_program(get_program(name), cfg)

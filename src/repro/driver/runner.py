"""End-to-end verification of one program, and the parallel batch runner.

``verify_source`` dispatches one surface program to a verification
:mod:`backend <repro.driver.backends>` (``core`` — the typed §3 SPCF
pipeline — or ``scv`` — the untyped §4 contract pipeline).  The batch
runner (``run_corpus``) expands the requested backend selection into
(program, backend) tasks — ``both`` runs every program on every backend
it is annotated for and the report cross-checks the verdicts — and fans
the tasks out over a ``multiprocessing`` pool; each worker enforces a
per-program wall-clock budget with ``SIGALRM`` so a pathological
program degrades to a ``timeout`` row instead of wedging the run.

Timeout rows are *partial results*, not blanks: the backends read every
counter (states explored, chained micro-steps, proof/solver queries,
cache hits) at result-assembly time, so a row cut short by the alarm
still reports the work observed and the per-backend totals stay
meaningful (pinned by ``tests/test_synth.py``'s timeout tests).

The alarm guards *verification only*: on the success path the backends
exit the deadline context — cancelling the SIGALRM and restoring the
previous handler — before result assembly (surface re-validation,
client synthesis, serialization), so a fast verification followed by
slow report assembly cannot be killed by a stale alarm (pinned by
``tests/test_driver_incremental.py``).
"""

from __future__ import annotations

import atexit
from dataclasses import asdict
from typing import Callable, Iterable, Optional

from .backends import BACKENDS, RunConfig, get_backend
from .corpus import CORPUS, CorpusProgram, get_program
from .report import BenchReport, ProgramResult

__all__ = [
    "RunConfig",
    "expand_backends",
    "expand_tasks",
    "init_worker",
    "run_corpus",
    "run_job",
    "verify_program",
    "verify_source",
]


def verify_source(
    source: str,
    *,
    name: str = "<input>",
    kind: str = "?",
    config: Optional[RunConfig] = None,
    backend: str = "core",
) -> ProgramResult:
    """Run the selected backend's whole pipeline on one surface program.

    With ``config.store_dir`` set, the persistent store is in the loop:
    stored verification units replay and fresh ones are written back
    (see :mod:`repro.store.verdicts`)."""
    if config is not None and config.store_dir:
        # Imported lazily: the store builds on the driver, not vice versa.
        from ..store.verdicts import verify_with_store

        return verify_with_store(
            source, name=name, kind=kind, config=config, backend=backend
        )
    return get_backend(backend).verify(source, name=name, kind=kind, config=config)


def verify_program(
    prog: CorpusProgram,
    config: Optional[RunConfig] = None,
    *,
    backend: str = "core",
) -> ProgramResult:
    return verify_source(
        prog.source, name=prog.name, kind=prog.kind, config=config,
        backend=backend,
    )


def expand_backends(backend: str) -> tuple[str, ...]:
    """A backend selection as the concrete engines to run: ``both``
    expands to every registered backend, anything else passes through
    (``get_backend`` validates it)."""
    if backend == "both":
        return tuple(BACKENDS)
    get_backend(backend)  # raises with the helpful message
    return (backend,)


def run_job(
    source: str,
    *,
    name: str = "<input>",
    kind: str = "?",
    config: Optional[RunConfig] = None,
    backend: str = "core",
) -> list[ProgramResult]:
    """One *job*: a source text against a backend selection, through
    the same store-aware path as the batch runner — one row per engine.

    This is the unit of work a ``repro serve`` worker process executes;
    it is also exactly what ``repro verify --backend both`` does for a
    file.  Rows come back in ``expand_backends`` order, so a job's
    report is deterministic for a given request."""
    return [
        verify_source(source, name=name, kind=kind, config=config, backend=b)
        for b in expand_backends(backend)
    ]


def expand_tasks(
    names: Iterable[str], backend: str
) -> list[tuple[str, str]]:
    """(program, backend) pairs for a backend selection.

    ``both`` runs each program on every backend its corpus annotation
    supports; a single backend name runs the programs annotated for it
    and silently skips the rest (e.g. contract-bearing scv-only
    benchmarks under ``--backend core``)."""
    tasks: list[tuple[str, str]] = []
    for n in names:
        prog = get_program(n)
        if backend == "both":
            tasks.extend((n, b) for b in prog.backends)
        elif backend in prog.backends:
            tasks.append((n, backend))
    return tasks


# ---------------------------------------------------------------------------
# Parallel batch runner
# ---------------------------------------------------------------------------

# Worker-side configuration, installed once per worker by the initializer
# (cheaper than pickling the config into every task).
_WORKER_CFG: Optional[RunConfig] = None


def init_worker(cfg_fields: dict) -> None:
    """Worker-process bootstrap, shared by the batch pool and ``repro
    serve``: install the run configuration and make sure any solver
    entries still buffered at process exit reach their shard directory
    (the normal end-of-verification flush covers the happy path; the
    ``atexit`` hook covers teardown after an exception or a drain)."""
    global _WORKER_CFG
    _WORKER_CFG = RunConfig(**cfg_fields)
    from ..store.solver import flush_all_stores

    atexit.register(flush_all_stores)


# Back-compat alias: the initializer predates the serve refactor.
_init_worker = init_worker


def _run_one(task: tuple[str, str]) -> ProgramResult:
    assert _WORKER_CFG is not None
    name, backend = task
    return verify_program(get_program(name), _WORKER_CFG, backend=backend)


def run_corpus(
    names: Optional[Iterable[str]] = None,
    *,
    config: Optional[RunConfig] = None,
    progress: Optional[Callable[[ProgramResult], None]] = None,
    backend: str = "core",
) -> BenchReport:
    """Verify a set of corpus programs on the selected backend(s),
    fanning out over ``config.jobs`` worker processes (sequentially when
    ``jobs`` is 1)."""
    cfg = config or RunConfig()
    if backend != "both" and backend not in BACKENDS:
        get_backend(backend)  # raises with the helpful message
    todo = list(names) if names is not None else [p.name for p in CORPUS]
    for n in todo:
        get_program(n)  # fail fast on unknown names
    tasks = expand_tasks(todo, backend)

    report = BenchReport(
        config={**asdict(cfg), "backend": backend, "programs": len(todo),
                "runs": len(tasks)},
    )

    if cfg.jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            r = _run_one_with(cfg, task)
            report.results.append(r)
            if progress is not None:
                progress(r)
        return report

    import multiprocessing as mp

    # Nested-pool handling: in-program frontier shards only make sense
    # when the batch runner is not already saturating the cores — and
    # pool workers are daemonic, so they could not fork shard children
    # anyway.  Demote the worker-side config to shards=1 (identical
    # output by construction; see repro.search.parallel) rather than
    # ship a knob the workers would have to ignore.
    worker_cfg = cfg if cfg.shards <= 1 else RunConfig(
        **{**asdict(cfg), "shards": 1}
    )

    ctx = mp.get_context()
    with ctx.Pool(
        processes=min(cfg.jobs, len(tasks)),
        initializer=init_worker,
        initargs=(asdict(worker_cfg),),
    ) as pool:
        for r in pool.imap_unordered(_run_one, tasks, chunksize=1):
            report.results.append(r)
            if progress is not None:
                progress(r)
    return report


def _run_one_with(cfg: RunConfig, task: tuple[str, str]) -> ProgramResult:
    name, backend = task
    return verify_program(get_program(name), cfg, backend=backend)
